#pragma once
// Data-parallel loops and reductions over index ranges.
//
// parallel_for splits [begin, end) into contiguous blocks, one task per
// worker (static schedule) or many small chunks claimed via an atomic
// cursor (dynamic schedule). parallel_reduce gives each worker a private
// accumulator and merges them at the end — no locks on the hot path, in
// the spirit of OpenMP `reduction` clauses.
//
// parallel_for_blocked is a template so the per-block body is invoked
// directly and can inline into the caller's loop; a std::function overload
// is kept for callers that already hold a type-erased body.

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace celia::parallel {

/// Contiguous index block [begin, end).
struct BlockedRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Splits [begin, end) into at most `parts` near-equal contiguous ranges.
std::vector<BlockedRange> split_range(std::uint64_t begin, std::uint64_t end,
                                      std::size_t parts);

enum class Schedule { kStatic, kDynamic };

struct ForOptions {
  Schedule schedule = Schedule::kStatic;
  /// Chunk size for the dynamic schedule; 0 picks a heuristic
  /// (~8 chunks per worker).
  std::uint64_t chunk = 0;
  /// Pool to run on; nullptr means default_pool().
  ThreadPool* pool = nullptr;
};

/// Invoke body(range) in parallel over [begin, end). `body` may be called
/// concurrently from several workers and must outlive the call (it does:
/// the call blocks until every block completes).
template <typename Body>
  requires std::invocable<Body&, BlockedRange>
void parallel_for_blocked(std::uint64_t begin, std::uint64_t end, Body&& body,
                          ForOptions options = {}) {
  if (begin >= end) return;
  ThreadPool& pool = options.pool ? *options.pool : default_pool();

  if (options.schedule == Schedule::kStatic) {
    const auto ranges = split_range(begin, end, pool.num_threads());
    std::vector<std::future<void>> futures;
    futures.reserve(ranges.size());
    for (const auto range : ranges)
      futures.push_back(pool.submit([range, &body] { body(range); }));
    for (auto& f : futures) f.get();
    return;
  }

  // Dynamic schedule: workers claim chunks from a shared atomic cursor.
  std::uint64_t chunk = options.chunk;
  if (chunk == 0) {
    const std::uint64_t total = end - begin;
    chunk = std::max<std::uint64_t>(
        1, total / (8 * std::max<std::size_t>(1, pool.num_threads())));
  }
  auto cursor = std::make_shared<std::atomic<std::uint64_t>>(begin);
  std::vector<std::future<void>> futures;
  futures.reserve(pool.num_threads());
  for (std::size_t t = 0; t < pool.num_threads(); ++t) {
    futures.push_back(pool.submit([cursor, end, chunk, &body] {
      for (;;) {
        const std::uint64_t start =
            cursor->fetch_add(chunk, std::memory_order_relaxed);
        if (start >= end) return;
        body(BlockedRange{start, std::min(start + chunk, end)});
      }
    }));
  }
  for (auto& f : futures) f.get();
}

/// Type-erased overload for callers that already hold a std::function.
void parallel_for_blocked(std::uint64_t begin, std::uint64_t end,
                          const std::function<void(BlockedRange)>& body,
                          ForOptions options = {});

/// Invoke body(i) for each i in [begin, end) in parallel.
template <typename Body>
void parallel_for(std::uint64_t begin, std::uint64_t end, Body&& body,
                  ForOptions options = {}) {
  parallel_for_blocked(
      begin, end,
      [&body](BlockedRange range) {
        for (std::uint64_t i = range.begin; i < range.end; ++i) body(i);
      },
      options);
}

/// Parallel reduction: each worker folds its block into a private
/// accumulator (starting from `identity`) via `fold(acc, i)`; partial
/// accumulators are combined with `merge(a, b)`.
template <typename T, typename Fold, typename Merge>
T parallel_reduce(std::uint64_t begin, std::uint64_t end, T identity,
                  Fold&& fold, Merge&& merge, ForOptions options = {}) {
  ThreadPool& pool = options.pool ? *options.pool : default_pool();
  const auto ranges = split_range(begin, end, pool.num_threads());
  std::vector<std::future<T>> partials;
  partials.reserve(ranges.size());
  for (const auto range : ranges) {
    partials.push_back(pool.submit([range, identity, &fold]() {
      T acc = identity;
      for (std::uint64_t i = range.begin; i < range.end; ++i)
        acc = fold(std::move(acc), i);
      return acc;
    }));
  }
  T result = identity;
  for (auto& partial : partials)
    result = merge(std::move(result), partial.get());
  return result;
}

}  // namespace celia::parallel
