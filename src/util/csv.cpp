#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace celia::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::header(std::initializer_list<std::string> columns) {
  header(std::vector<std::string>(columns));
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_ || rows_ > 0)
    throw std::logic_error("CsvWriter: header after data");
  write_fields(columns);
  header_written_ = true;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  write_fields(fields);
  ++rows_;
}

void CsvWriter::row_values(const std::vector<double>& fields, int decimals) {
  std::vector<std::string> strings;
  strings.reserve(fields.size());
  char buffer[64];
  for (double v : fields) {
    std::snprintf(buffer, sizeof(buffer), "%.*g",
                  decimals > 0 ? decimals + 6 : 6, v);
    strings.emplace_back(buffer);
  }
  row(strings);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) out_ << ',';
    out_ << csv_escape(field);
    first = false;
  }
  out_ << '\n';
}

std::vector<std::string> csv_parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace celia::util
