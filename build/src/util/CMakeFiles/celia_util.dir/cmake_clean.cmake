file(REMOVE_RECURSE
  "CMakeFiles/celia_util.dir/cli.cpp.o"
  "CMakeFiles/celia_util.dir/cli.cpp.o.d"
  "CMakeFiles/celia_util.dir/csv.cpp.o"
  "CMakeFiles/celia_util.dir/csv.cpp.o.d"
  "CMakeFiles/celia_util.dir/format.cpp.o"
  "CMakeFiles/celia_util.dir/format.cpp.o.d"
  "CMakeFiles/celia_util.dir/histogram.cpp.o"
  "CMakeFiles/celia_util.dir/histogram.cpp.o.d"
  "CMakeFiles/celia_util.dir/logging.cpp.o"
  "CMakeFiles/celia_util.dir/logging.cpp.o.d"
  "CMakeFiles/celia_util.dir/rng.cpp.o"
  "CMakeFiles/celia_util.dir/rng.cpp.o.d"
  "CMakeFiles/celia_util.dir/stats.cpp.o"
  "CMakeFiles/celia_util.dir/stats.cpp.o.d"
  "CMakeFiles/celia_util.dir/table.cpp.o"
  "CMakeFiles/celia_util.dir/table.cpp.o.d"
  "libcelia_util.a"
  "libcelia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
