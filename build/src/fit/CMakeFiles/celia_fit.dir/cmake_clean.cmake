file(REMOVE_RECURSE
  "CMakeFiles/celia_fit.dir/basis.cpp.o"
  "CMakeFiles/celia_fit.dir/basis.cpp.o.d"
  "CMakeFiles/celia_fit.dir/demand_fit.cpp.o"
  "CMakeFiles/celia_fit.dir/demand_fit.cpp.o.d"
  "CMakeFiles/celia_fit.dir/least_squares.cpp.o"
  "CMakeFiles/celia_fit.dir/least_squares.cpp.o.d"
  "CMakeFiles/celia_fit.dir/model_select.cpp.o"
  "CMakeFiles/celia_fit.dir/model_select.cpp.o.d"
  "libcelia_fit.a"
  "libcelia_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celia_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
