#pragma once
// Cloud configurations and the configuration space (paper §III-A).
//
// A configuration G_j = <m_j,1 ... m_j,M> gives the number of nodes taken
// from each of M resource types, 0 <= m_j,i <= m_i,max. The space size is
// S = prod(m_i,max + 1) - 1 (the all-zero tuple is excluded): with the
// paper's nine EC2 types and m_i,max = 5, S = 6^9 - 1 = 10,077,695.
//
// Configurations are indexed 0..S-1 by the mixed-radix value of the tuple
// minus one, so enumeration, decoding and random access are O(M).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace celia::cloud {
class Catalog;
}  // namespace celia::cloud

namespace celia::core {

/// Node counts per resource type, aligned with the catalog's type order.
using Configuration = std::vector<int>;

/// Render "[5,5,5,3,0,0,0,0,0]" — the paper's annotation format.
std::string to_string(const Configuration& config);

class ConfigurationSpace {
 public:
  /// `max_counts[i]` = m_i,max for type i. Throws on empty or negative.
  explicit ConfigurationSpace(std::vector<int> max_counts);

  /// Space over the full EC2 catalog with the paper's limit of 5 per type.
  static ConfigurationSpace ec2_default();

  /// Space over an arbitrary catalog using its per-type instance limits
  /// (m_i,max = catalog.limit(i)); limits may differ per type.
  static ConfigurationSpace for_catalog(const cloud::Catalog& catalog);

  std::size_t num_types() const { return max_counts_.size(); }
  const std::vector<int>& max_counts() const { return max_counts_; }

  /// Total number of non-empty configurations (paper Eq. 1).
  std::uint64_t size() const { return size_; }

  /// Decode index (0-based, < size()) into node counts.
  Configuration decode(std::uint64_t index) const;
  void decode_into(std::uint64_t index, std::span<int> out) const;

  /// Inverse of decode. Throws std::invalid_argument for out-of-range
  /// counts or the all-zero configuration.
  std::uint64_t encode(std::span<const int> config) const;

 private:
  std::vector<int> max_counts_;
  std::vector<std::uint64_t> radix_;   // radix_[i] = max_counts_[i] + 1
  std::uint64_t size_ = 0;
};

}  // namespace celia::core
