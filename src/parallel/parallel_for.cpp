#include "parallel/parallel_for.hpp"

#include <algorithm>

namespace celia::parallel {

std::vector<BlockedRange> split_range(std::uint64_t begin, std::uint64_t end,
                                      std::size_t parts) {
  std::vector<BlockedRange> ranges;
  if (begin >= end || parts == 0) return ranges;
  const std::uint64_t total = end - begin;
  const std::uint64_t count = std::min<std::uint64_t>(parts, total);
  const std::uint64_t base = total / count;
  const std::uint64_t extra = total % count;
  std::uint64_t cursor = begin;
  for (std::uint64_t p = 0; p < count; ++p) {
    const std::uint64_t len = base + (p < extra ? 1 : 0);
    ranges.push_back({cursor, cursor + len});
    cursor += len;
  }
  return ranges;
}

void parallel_for_blocked(std::uint64_t begin, std::uint64_t end,
                          const std::function<void(BlockedRange)>& body,
                          ForOptions options) {
  // Explicit template argument so this forwards to the template above
  // instead of recursing into itself.
  parallel_for_blocked<const std::function<void(BlockedRange)>&>(
      begin, end, body, options);
}

}  // namespace celia::parallel
