#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace celia::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::gauge("celia_pool_threads",
             "Worker threads owned by live thread pools")
      .add(static_cast<double>(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  obs::gauge("celia_pool_threads").add(-static_cast<double>(workers_.size()));
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    static obs::Counter& tasks_run = obs::counter(
        "celia_pool_tasks_total", "Tasks executed by thread-pool workers");
    tasks_run.add(1);
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace celia::parallel
