#pragma once
// Seeded, deterministic PROVIDER-API fault injection — the control-plane
// sibling of cloud/faults.hpp (which breaks the data plane: node crashes,
// boot failures, gray instances).
//
// Real IaaS control planes reject, throttle and partially fulfill
// requests: RunInstances answers RequestLimitExceeded under per-account
// throttling, InsufficientInstanceCapacity when a type's pool drains in a
// zone, 5xx-style transient errors, and whole-region brownouts during
// incidents. ExpoCloud (PAPERS.md) treats instance-creation failure as a
// first-class event a framework must survive; this layer lets the
// simulator inject exactly those events, reproducibly:
//
//   * throttling — each API call is rejected with RequestLimitExceeded
//     with probability `throttle_probability`;
//   * transient errors — each call fails with a retryable
//     ServiceUnavailable with probability `transient_error_probability`;
//   * capacity windows — inside [start, end) a type's effective limit
//     drops below the catalog limit: requests beyond it are rejected with
//     InsufficientCapacity (retrying does not help until the window ends;
//     the orchestrator re-plans against a shrunken catalog instead);
//   * brownouts — inside [start, end) EVERY call fails with
//     RegionalBrownout (what trips circuit breakers).
//
// Every stochastic draw is a pure function of (model seed, API request
// ordinal): a fault timeline replays bit-identically from its seed, and a
// model with zero probabilities and no windows is inert() — the provider
// then takes its exact legacy code path.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace celia::cloud {

class Catalog;

/// What the provider API answered instead of fulfilling a call. Kinds map
/// to the EC2-style errors named above; retryability is a property of the
/// KIND (see api_error_retryable and the DESIGN.md table).
enum class ApiErrorKind {
  kRequestLimitExceeded,  // throttled: back off and retry
  kInsufficientCapacity,  // type exhausted: re-plan, retrying is futile
  kServiceUnavailable,    // transient 5xx: retry (counts against breaker)
  kRegionalBrownout,      // region down: breaker opens, retry after cooldown
};

std::string_view api_error_name(ApiErrorKind kind);

/// Whether retrying the SAME request can ever succeed while conditions
/// persist. InsufficientCapacity is the one "no": the capacity window must
/// pass, or the caller must ask for a different (shrunken) configuration.
bool api_error_retryable(ApiErrorKind kind);

/// One typed control-plane rejection, surfaced through ProvisionOutcome
/// instead of silent success or an untyped throw.
struct ApiError {
  ApiErrorKind kind = ApiErrorKind::kServiceUnavailable;
  std::string message;
  /// Simulated time of the rejected call.
  double at_seconds = 0.0;
};

/// Inside [start_seconds, end_seconds) the provider hands out at most
/// `effective_limit` instances of `type_index` per request burst — a
/// drained pool, not a quota change (the catalog is untouched).
struct CapacityWindow {
  std::size_t type_index = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  int effective_limit = 0;
};

/// Inside [start_seconds, end_seconds) every control-plane call fails.
struct BrownoutWindow {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

struct ApiFaultModel {
  /// Control-plane draw seed — deliberately separate from the provider's
  /// data-plane seed so adding API faults never perturbs boot/crash/gray
  /// schedules.
  std::uint64_t seed = 0;
  /// Per-call probability of RequestLimitExceeded.
  double throttle_probability = 0.0;
  /// Per-call probability of a transient ServiceUnavailable.
  double transient_error_probability = 0.0;
  std::vector<CapacityWindow> capacity_windows;
  std::vector<BrownoutWindow> brownouts;

  /// True when the model can reject nothing: the provider takes its exact
  /// legacy path (bit-identical provisioning).
  bool inert() const {
    return throttle_probability == 0.0 && transient_error_probability == 0.0 &&
           capacity_windows.empty() && brownouts.empty();
  }
};

/// Throws std::invalid_argument on out-of-range probabilities, inverted
/// or negative windows, or (when `catalog` is given) a capacity window
/// whose type_index is out of range or whose effective_limit exceeds the
/// catalog limit.
void validate(const ApiFaultModel& model, const Catalog* catalog = nullptr);

/// Whether API request number `request` (a provider-wide ordinal) is
/// throttled / transiently failed. Pure functions of (model, request).
bool api_throttled(const ApiFaultModel& model, std::uint64_t request);
bool api_transient_error(const ApiFaultModel& model, std::uint64_t request);

/// Effective per-burst limit of `type_index` at time `now`: the minimum
/// over all covering capacity windows, `catalog_limit` when none cover.
int effective_limit(const ApiFaultModel& model, std::size_t type_index,
                    double now, int catalog_limit);

/// Whether `now` falls inside any brownout window.
bool in_brownout(const ApiFaultModel& model, double now);

}  // namespace celia::cloud
