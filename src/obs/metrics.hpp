#pragma once
// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms, cheap enough to leave ON in the sweep and executor hot
// paths.
//
// Hot-path design: every counter/histogram keeps kMetricShards
// cache-line-aligned slots; a thread is pinned to one slot (a round-robin
// thread-local index), so an increment is a single RELAXED fetch_add on a
// line no other thread is hammering — no locks, no contention, ~1 ns.
// Reads (`value()`, the exporters) sum the shards; totals are exact once
// the writing threads have quiesced (the concurrency test pins this).
//
// Instrumentation sites cache the metric reference (registration takes a
// registry mutex; it happens once per site via a static local). Metric
// objects are never deallocated, so cached references stay valid for the
// process lifetime.
//
// Two kill switches:
//  * runtime: set_metrics_enabled(false) turns every record into a
//    relaxed-load-and-branch (the bench baseline);
//  * compile time: -DCELIA_OBS_DISABLED compiles record paths to true
//    no-ops (registry and exporters still link, values stay zero).
//
// Naming scheme (see DESIGN.md "Observability"):
//   celia_<layer>_<what>[_<unit>][_total]
// e.g. celia_sweep_configurations_total, celia_frontier_query_seconds.
// Exporters: write_prometheus() (text exposition format) and
// write_json() (one snapshot object keyed by metric name).

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace celia::obs {

/// Shards per metric. More shards = less false sharing with many threads;
/// 32 covers the pools this codebase creates (hardware_concurrency workers
/// plus the main thread) with few collisions.
inline constexpr std::size_t kMetricShards = 32;

/// This thread's shard slot in [0, kMetricShards): assigned round-robin on
/// first use, stable for the thread's lifetime.
std::size_t thread_shard() noexcept;

/// Runtime kill switch (default on). Disabled metrics cost one relaxed
/// load per record call.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

namespace detail {

struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

extern std::atomic<bool> g_metrics_enabled;

inline bool recording() noexcept {
#ifdef CELIA_OBS_DISABLED
  return false;
#else
  return g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

}  // namespace detail

/// Monotonic counter. The hot path is one relaxed atomic add on this
/// thread's shard.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!detail::recording()) return;
    shards_[thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& shard : shards_)
      shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  std::array<detail::Shard, kMetricShards> shards_{};
};

/// Last-value gauge with an atomic add (CAS loop; gauges are not on the
/// sweep hot path).
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!detail::recording()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void add(double delta) noexcept {
    if (!detail::recording()) return;
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything above bounds.back().
/// record() is one relaxed add into this thread's shard row (plus a
/// relaxed CAS for the running sum).
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept {
    if (!detail::recording()) return;
    std::size_t bucket = 0;
    while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
    counts_[thread_shard() * stride_ + bucket].fetch_add(
        1, std::memory_order_relaxed);
    Shade& shade = sums_[thread_shard()];
    double current = shade.sum.load(std::memory_order_relaxed);
    while (!shade.sum.compare_exchange_weak(current, current + value,
                                            std::memory_order_relaxed)) {
    }
  }

  const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Per-bucket counts (size bounds().size() + 1; last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  void reset() noexcept;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shade {
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::size_t stride_ = 0;  // bounds_.size() + 1, padded to a cache line
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::unique_ptr<Shade[]> sums_;
};

/// Log-spaced latency bounds (seconds): 1-2-5 decades from 1 us to 100 s.
/// The default for every `*_seconds` histogram in the codebase.
std::span<const double> latency_bounds_seconds() noexcept;

/// Quantile estimate over fixed histogram buckets, with the PROMETHEUS
/// histogram_quantile() semantics: find the bucket holding the q-th
/// observation rank and interpolate linearly inside it (the first
/// bucket's lower edge is 0; an answer landing in the overflow bucket is
/// clamped to bounds.back(), the largest value the histogram can still
/// resolve). `counts` must be per-bucket counts of length
/// bounds.size() + 1 (last = overflow) and q in [0, 1] — throws
/// std::invalid_argument otherwise. Returns 0 when the histogram is
/// empty. Exact whenever the true quantile sits on a bucket boundary or
/// the observations inside the deciding bucket are uniformly spaced —
/// pinned by obs_percentile_test.cpp.
double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> counts, double q);

/// quantile_from_buckets over a live histogram's current totals.
double histogram_quantile(const Histogram& histogram, double q);

/// The p50/p99 convenience snapshot used by serving-layer SLO probes.
struct LatencyQuantiles {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Quantiles of everything the histogram has recorded so far.
LatencyQuantiles latency_quantiles(const Histogram& histogram);

/// Quantiles of the WINDOW between two cumulative bucket snapshots (the
/// rolling-percentile building block: snapshot bucket_counts() at probe
/// time, diff against the previous probe's snapshot). `previous` must be
/// an earlier snapshot of the same histogram (element-wise <=); throws
/// std::invalid_argument on shape mismatch or a non-monotonic pair.
LatencyQuantiles latency_quantiles_since(
    const Histogram& histogram, std::span<const std::uint64_t> previous);

/// The process-wide registry. Metrics are created on first lookup and
/// live forever; looking a name up again returns the same object (and
/// throws std::invalid_argument if the kinds disagree).
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  /// Empty `bounds` uses latency_bounds_seconds().
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {},
                       std::string_view help = {});

  /// Prometheus text exposition format (# HELP / # TYPE + samples;
  /// histograms expand to cumulative _bucket{le=...}, _sum, _count).
  void write_prometheus(std::ostream& os) const;
  /// One JSON object keyed by metric name; histograms carry bounds,
  /// counts, sum and count.
  void write_json(std::ostream& os) const;

  /// Zero every metric value; registrations (and cached references at
  /// instrumentation sites) survive. For tests and benchmarks.
  void reset();

  std::vector<std::string> names() const;

 private:
  Registry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, std::string_view help,
                        Kind kind, std::span<const double> bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
};

/// Convenience wrappers over Registry::global(). Instrumentation sites
/// should cache the returned reference in a static local:
///   static obs::Counter& hits = obs::counter("celia_x_hits_total");
Counter& counter(std::string_view name, std::string_view help = {});
Gauge& gauge(std::string_view name, std::string_view help = {});
Histogram& histogram(std::string_view name,
                     std::span<const double> bounds = {},
                     std::string_view help = {});

/// Prometheus text dump of every registered metric.
void dump_metrics(std::ostream& os);
std::string dump_metrics();
/// JSON snapshot of every registered metric.
void dump_metrics_json(std::ostream& os);
std::string dump_metrics_json();
/// Zero all metric values (registrations survive).
void reset_metrics();

}  // namespace celia::obs
