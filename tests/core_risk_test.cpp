// Tests for pattern-aware probabilistic selection (core/risk.hpp).

#include <gtest/gtest.h>

#include <cmath>

#include "core/enumerate.hpp"
#include "core/risk.hpp"
#include "core/time_cost.hpp"
#include "util/stats.hpp"

namespace {

using namespace celia::core;

ResourceCapacity flat_capacity() {
  return ResourceCapacity(std::vector<double>(9, 1e9), celia::cloud::Catalog::ec2_table3());
}

TEST(NormalMath, CdfKnownValues) {
  EXPECT_NEAR(celia::util::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(celia::util::normal_cdf(1.645), 0.95, 1e-3);
  EXPECT_NEAR(celia::util::normal_cdf(-1.645), 0.05, 1e-3);
}

TEST(NormalMath, QuantileInvertsCdf) {
  for (const double p : {0.01, 0.05, 0.25, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(celia::util::normal_cdf(celia::util::normal_quantile(p)), p,
                1e-8)
        << p;
  }
}

TEST(NormalMath, QuantileDomainChecked) {
  EXPECT_THROW(celia::util::normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(celia::util::normal_quantile(1.0), std::domain_error);
}

TEST(RobustMinCost, NoneModelMatchesDeterministicSweep) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  RiskSpec spec;
  spec.model = RiskModel::kNone;
  const auto robust =
      robust_min_cost(space, capacity, 9e15, 24 * 3600.0, spec);
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  SweepOptions options;
  options.collect_pareto = false;
  const auto classic = sweep(space, capacity, 9e15, constraints, options);
  ASSERT_TRUE(robust.has_value());
  ASSERT_TRUE(classic.any_feasible);
  EXPECT_EQ(robust->config_index, classic.min_cost.config_index);
  EXPECT_DOUBLE_EQ(robust->cost, classic.min_cost.cost);
}

TEST(RobustMinCost, BottleneckStricterThanSumCapacity) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  RiskSpec sum_spec{RiskModel::kSumCapacity, 0.95, 0.08, 1.0};
  RiskSpec min_spec{RiskModel::kBottleneck, 0.95, 0.08, 1.0};
  const double demand = 9e15;
  const auto sum_plan =
      robust_min_cost(space, capacity, demand, 24 * 3600.0, sum_spec);
  const auto min_plan =
      robust_min_cost(space, capacity, demand, 24 * 3600.0, min_spec);
  ASSERT_TRUE(sum_plan && min_plan);
  EXPECT_GE(min_plan->cost, sum_plan->cost - 1e-9);
}

TEST(RobustMinCost, ConfidenceMonotone) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  double previous = 0.0;
  for (const double confidence : {0.5, 0.9, 0.99}) {
    RiskSpec spec{RiskModel::kBottleneck, confidence, 0.06, 1.0};
    const auto plan =
        robust_min_cost(space, capacity, 9e15, 24 * 3600.0, spec);
    ASSERT_TRUE(plan.has_value()) << confidence;
    EXPECT_GE(plan->cost, previous - 1e-9) << confidence;
    previous = plan->cost;
  }
}

TEST(RobustMinCost, MedianFactorRelaxesSelection) {
  // A higher median factor (turbo) makes the same confidence cheaper.
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  RiskSpec slow{RiskModel::kBottleneck, 0.95, 0.06, 0.97};
  RiskSpec fast{RiskModel::kBottleneck, 0.95, 0.06, 1.10};
  const auto plan_slow =
      robust_min_cost(space, capacity, 9e15, 24 * 3600.0, slow);
  const auto plan_fast =
      robust_min_cost(space, capacity, 9e15, 24 * 3600.0, fast);
  ASSERT_TRUE(plan_slow && plan_fast);
  EXPECT_LE(plan_fast->cost, plan_slow->cost + 1e-9);
}

TEST(RobustMinCost, BottleneckFeasibilityMatchesHandFormula) {
  // One-configuration space: [5,0,...] => m = 5, U = 1e10. Feasible at
  // confidence g iff 5 * ln(1 - Phi((ln x)/sigma)) >= ln g with
  // x = D / (U T').
  const ConfigurationSpace tiny(std::vector<int>{5, 0, 0, 0, 0, 0, 0, 0, 0});
  const auto capacity = flat_capacity();
  const double u = 1e10, deadline = 3600.0, sigma = 0.06;
  const double confidence = 0.95;

  auto feasible_by_hand = [&](double demand) {
    const double x = demand / (u * deadline);
    const double tail =
        1.0 - celia::util::normal_cdf(std::log(x) / sigma);
    return tail > 0 && 5.0 * std::log(tail) >= std::log(confidence);
  };

  RiskSpec spec{RiskModel::kBottleneck, confidence, sigma, 1.0};
  // Pick demands straddling the hand-computed threshold.
  for (const double demand : {0.80 * u * deadline, 0.90 * u * deadline,
                              0.97 * u * deadline, 1.05 * u * deadline}) {
    // The tiny space contains subsets [1..5,0...]; only full [5] has
    // capacity u, so min over space exists iff some m in 1..5 qualifies.
    const auto plan = robust_min_cost(tiny, capacity, demand, deadline, spec);
    bool any = false;
    for (int count = 1; count <= 5; ++count) {
      const double cap = count * 2e9;
      const double x = demand / (cap * deadline);
      const double tail =
          1.0 - celia::util::normal_cdf(std::log(x) / sigma);
      if (tail > 0 && count * std::log(tail) >= std::log(confidence))
        any = true;
    }
    EXPECT_EQ(plan.has_value(), any) << demand / (u * deadline);
    (void)feasible_by_hand;
  }
}

TEST(RobustMinCost, BadSpecThrows) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  RiskSpec spec{RiskModel::kBottleneck, 1.5, 0.06, 1.0};
  EXPECT_THROW(robust_min_cost(space, capacity, 1e15, 3600.0, spec),
               std::invalid_argument);
  RiskSpec no_sigma{RiskModel::kSumCapacity, 0.95, 0.0, 1.0};
  EXPECT_THROW(robust_min_cost(space, capacity, 1e15, 3600.0, no_sigma),
               std::invalid_argument);
  EXPECT_THROW(robust_min_cost(space, capacity, 0.0, 3600.0, RiskSpec{}),
               std::invalid_argument);
}

TEST(RobustMinCost, ImpossibleDeadlineReturnsNullopt) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  EXPECT_FALSE(robust_min_cost(space, capacity, 1e18, 1.0, RiskSpec{})
                   .has_value());
}

}  // namespace
