// Tests for the hardware substrate: micro-architecture catalog, IPC model,
// perf counters, local server (src/hw/).

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "hw/ipc_model.hpp"
#include "hw/local_server.hpp"
#include "hw/microarch.hpp"
#include "hw/perf_counter.hpp"
#include "hw/workload_class.hpp"

namespace {

using namespace celia::hw;

TEST(Microarch, CatalogHasFourProcessors) {
  EXPECT_EQ(processor_catalog().size(), 4u);
}

TEST(Microarch, LookupReturnsPaperFrequencies) {
  EXPECT_DOUBLE_EQ(processor(Microarch::kHaswellE5_2666v3).base_frequency_ghz,
                   2.9);
  EXPECT_DOUBLE_EQ(processor(Microarch::kHaswellE5_2676v3).base_frequency_ghz,
                   2.3);
  EXPECT_DOUBLE_EQ(processor(Microarch::kSandyBridgeE5_2670).base_frequency_ghz,
                   2.5);
  EXPECT_DOUBLE_EQ(processor(Microarch::kBroadwellE5_2630v4).base_frequency_ghz,
                   2.2);
}

TEST(Microarch, AllProcessorsHaveSmt2) {
  for (const auto& model : processor_catalog())
    EXPECT_EQ(model.threads_per_core, 2);
}

TEST(Microarch, NamesMatchXeonModels) {
  EXPECT_EQ(to_string(Microarch::kBroadwellE5_2630v4),
            "Intel Xeon E5-2630 v4");
}

TEST(IpcModel, RatesArePositiveForAllCombinations) {
  for (const auto& model : processor_catalog()) {
    for (int w = 0; w < kNumWorkloadClasses; ++w) {
      const auto workload = static_cast<WorkloadClass>(w);
      EXPECT_GT(ipc(model.microarch, workload), 0.0);
      EXPECT_GT(vcpu_rate(model.microarch, workload), 0.0);
    }
  }
}

TEST(IpcModel, VcpuRateIsIpcTimesFrequency) {
  const double rate =
      vcpu_rate(Microarch::kHaswellE5_2666v3, WorkloadClass::kNBody);
  EXPECT_DOUBLE_EQ(rate, 0.476 * 2.9e9);
}

TEST(IpcModel, NBodyHasLowestIpc) {
  // FP-divide/sqrt heavy n-body sustains the lowest IPC on every part.
  for (const auto& model : processor_catalog()) {
    const double nbody = ipc(model.microarch, WorkloadClass::kNBody);
    EXPECT_LT(nbody, ipc(model.microarch, WorkloadClass::kVideoEncoding));
    EXPECT_LT(nbody, ipc(model.microarch, WorkloadClass::kGenomeAlignment));
  }
}

TEST(PerfCounter, StartsEmpty) {
  PerfCounter counter;
  EXPECT_EQ(counter.instructions(), 0u);
  EXPECT_EQ(counter.total_ops(), 0u);
}

TEST(PerfCounter, AccumulatesPerClass) {
  PerfCounter counter;
  counter.add(OpClass::kFloatMul, 10);
  counter.add(OpClass::kFloatMul, 5);
  counter.add(OpClass::kBranch, 3);
  EXPECT_EQ(counter.ops(OpClass::kFloatMul), 15u);
  EXPECT_EQ(counter.ops(OpClass::kBranch), 3u);
  EXPECT_EQ(counter.total_ops(), 18u);
}

TEST(PerfCounter, InstructionsApplyCostTable) {
  PerfCounter counter;
  counter.add(OpClass::kFloatDiv, 2);   // cost 8
  counter.add(OpClass::kFloatSqrt, 1);  // cost 10
  counter.add(OpClass::kIntArith, 5);   // cost 1
  EXPECT_EQ(counter.instructions(), 2u * 8 + 10 + 5);
}

TEST(PerfCounter, MergeAddsCounts) {
  PerfCounter a, b;
  a.add(OpClass::kLoadStore, 7);
  b.add(OpClass::kLoadStore, 3);
  b.add(OpClass::kOther, 1);
  a.merge(b);
  EXPECT_EQ(a.ops(OpClass::kLoadStore), 10u);
  EXPECT_EQ(a.ops(OpClass::kOther), 1u);
}

TEST(PerfCounter, ResetClears) {
  PerfCounter counter;
  counter.add(OpClass::kBranch, 9);
  counter.reset();
  EXPECT_EQ(counter.instructions(), 0u);
}

TEST(PerfCounter, OpClassNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumOpClasses; ++i)
    names.insert(op_class_name(static_cast<OpClass>(i)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumOpClasses));
}

TEST(LocalServer, DefaultsToPaperMeasurementHost) {
  const LocalServer server;
  EXPECT_EQ(server.model().microarch, Microarch::kBroadwellE5_2630v4);
  EXPECT_EQ(server.hardware_threads(), 20);
}

TEST(LocalServer, RuntimeScalesInverselyWithThreads) {
  const LocalServer server;
  const double t1 =
      server.runtime_seconds(1'000'000'000, WorkloadClass::kNBody, 1);
  const double t10 =
      server.runtime_seconds(1'000'000'000, WorkloadClass::kNBody, 10);
  EXPECT_NEAR(t1 / t10, 10.0, 1e-9);
}

TEST(LocalServer, ThreadsCappedAtHardware) {
  const LocalServer server;
  const double t20 =
      server.runtime_seconds(1'000'000'000, WorkloadClass::kNBody, 20);
  const double t100 =
      server.runtime_seconds(1'000'000'000, WorkloadClass::kNBody, 100);
  EXPECT_DOUBLE_EQ(t20, t100);
}

TEST(LocalServer, NonPositiveThreadsThrow) {
  const LocalServer server;
  EXPECT_THROW(server.runtime_seconds(1, WorkloadClass::kNBody, 0),
               std::invalid_argument);
}

}  // namespace
