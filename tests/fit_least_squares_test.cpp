// Tests for basis functions and least squares (src/fit/).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fit/basis.hpp"
#include "fit/least_squares.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::fit;

TEST(Basis, EvaluatesEachForm) {
  EXPECT_DOUBLE_EQ(eval_basis(Basis::kConstant, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(eval_basis(Basis::kLinear, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(eval_basis(Basis::kQuadratic, 5.0), 25.0);
  EXPECT_DOUBLE_EQ(eval_basis(Basis::kCubic, 2.0), 8.0);
  EXPECT_DOUBLE_EQ(eval_basis(Basis::kLog, std::exp(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(eval_basis(Basis::kXLogX, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(eval_basis(Basis::kSqrt, 16.0), 4.0);
}

TEST(Basis, DomainViolationsThrow) {
  EXPECT_THROW(eval_basis(Basis::kLog, 0.0), std::domain_error);
  EXPECT_THROW(eval_basis(Basis::kLog, -1.0), std::domain_error);
  EXPECT_THROW(eval_basis(Basis::kXLogX, 0.0), std::domain_error);
  EXPECT_THROW(eval_basis(Basis::kSqrt, -1.0), std::domain_error);
}

TEST(SolveLinearSystem, SolvesIdentity) {
  const auto x = solve_linear_system({1, 0, 0, 1}, {3, 4});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Leading zero on the diagonal: fails without partial pivoting.
  const auto x = solve_linear_system({0, 1, 1, 0}, {2, 3});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1, 2}),
               std::runtime_error);
}

TEST(SolveLinearSystem, ShapeMismatchThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 3}, {1, 2}),
               std::invalid_argument);
}

TEST(FitLeastSquares, RecoversExactLine) {
  std::vector<Sample> samples;
  for (double x = 1; x <= 10; ++x) samples.push_back({x, 3.0 + 2.0 * x});
  const FitResult fit = fit_least_squares(samples, linear_form());
  EXPECT_NEAR(fit.coeffs[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coeffs[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
}

TEST(FitLeastSquares, RecoversExactQuadratic) {
  std::vector<Sample> samples;
  for (double x = 1; x <= 10; ++x)
    samples.push_back({x, 1.0 - 4.0 * x + 0.5 * x * x});
  const FitResult fit = fit_least_squares(samples, quadratic_form());
  EXPECT_NEAR(fit.coeffs[0], 1.0, 1e-8);
  EXPECT_NEAR(fit.coeffs[1], -4.0, 1e-8);
  EXPECT_NEAR(fit.coeffs[2], 0.5, 1e-9);
}

TEST(FitLeastSquares, RecoversExactLogarithm) {
  std::vector<Sample> samples;
  for (double x : {0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0})
    samples.push_back({x, 7.0 + 1.5 * std::log(x)});
  const FitResult fit = fit_least_squares(samples, log_form());
  EXPECT_NEAR(fit.coeffs[0], 7.0, 1e-9);
  EXPECT_NEAR(fit.coeffs[1], 1.5, 1e-9);
}

TEST(FitLeastSquares, HandlesHugeScales) {
  // Demand-like magnitudes: x ~ 1e5, y ~ 1e15 with an x^2 basis — the
  // scaled normal equations must stay well conditioned.
  std::vector<Sample> samples;
  for (double x = 8192; x <= 131072; x *= 2)
    samples.push_back({x, 260.0 * x * x + 50.0 * x});
  const FitResult fit = fit_least_squares(samples, quadratic_form());
  for (const auto& s : samples)
    EXPECT_NEAR(fit.predict(s.x), s.y, s.y * 1e-9);
}

TEST(FitLeastSquares, NoisyFitHasReasonableR2) {
  celia::util::Xoshiro256 rng(1);
  std::vector<Sample> samples;
  for (double x = 1; x <= 50; ++x)
    samples.push_back({x, 10.0 + 5.0 * x + rng.normal(0.0, 2.0)});
  const FitResult fit = fit_least_squares(samples, linear_form());
  EXPECT_GT(fit.r2, 0.98);
  EXPECT_NEAR(fit.coeffs[1], 5.0, 0.2);
}

TEST(FitLeastSquares, PredictEvaluatesModel) {
  std::vector<Sample> samples;
  for (double x = 1; x <= 5; ++x) samples.push_back({x, 2.0 * x});
  const FitResult fit = fit_least_squares(samples, linear_form());
  EXPECT_NEAR(fit.predict(100.0), 200.0, 1e-6);
}

TEST(FitLeastSquares, UnderdeterminedThrows) {
  const std::vector<Sample> samples = {{1, 1}, {2, 2}};
  EXPECT_THROW(fit_least_squares(samples, quadratic_form()),
               std::invalid_argument);
}

TEST(FitLeastSquares, EmptyBasisThrows) {
  const std::vector<Sample> samples = {{1, 1}, {2, 2}};
  EXPECT_THROW(fit_least_squares(samples, {}), std::invalid_argument);
}

TEST(FitLeastSquares, AdjustedR2PenalizesModelSize) {
  celia::util::Xoshiro256 rng(3);
  std::vector<Sample> samples;
  for (double x = 1; x <= 20; ++x)
    samples.push_back({x, 4.0 + 3.0 * x + rng.normal(0.0, 1.0)});
  const FitResult lin = fit_least_squares(samples, linear_form());
  const FitResult quad = fit_least_squares(samples, quadratic_form());
  // Quadratic never has smaller raw R^2, but adjusted R^2 should not be
  // meaningfully better on truly linear data.
  EXPECT_GE(quad.r2, lin.r2 - 1e-12);
  EXPECT_LT(quad.adjusted_r2 - lin.adjusted_r2, 5e-3);
}

}  // namespace
