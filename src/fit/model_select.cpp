#include "fit/model_select.hpp"

#include <stdexcept>

namespace celia::fit {

std::string_view shape_name(Shape shape) {
  switch (shape) {
    case Shape::kLinear:
      return "linear";
    case Shape::kQuadratic:
      return "quadratic";
    case Shape::kLogarithmic:
      return "logarithmic";
  }
  return "?";
}

ShapeDetection detect_shape(std::span<const Sample> samples,
                            double min_gain) {
  if (samples.size() < 4)
    throw std::invalid_argument("detect_shape: need at least 4 samples");

  // Candidates ordered simplest-first: log and linear are both
  // 2-coefficient forms; quadratic must justify its extra coefficient.
  struct Candidate {
    Shape shape;
    std::vector<Basis> bases;
    int complexity;
  };
  const Candidate candidates[] = {
      {Shape::kLinear, linear_form(), 0},
      {Shape::kLogarithmic, log_form(), 0},
      {Shape::kQuadratic, quadratic_form(), 1},
  };

  ShapeDetection detection{Shape::kLinear, {}, {}};
  bool have_best = false;
  int best_complexity = 0;
  for (const auto& candidate : candidates) {
    FitResult fit = fit_least_squares(samples, candidate.bases);
    const bool better =
        !have_best ||
        (candidate.complexity <= best_complexity
             ? fit.adjusted_r2 > detection.fit.adjusted_r2
             : fit.adjusted_r2 > detection.fit.adjusted_r2 + min_gain);
    if (better) {
      detection.shape = candidate.shape;
      detection.fit = fit;
      best_complexity = candidate.complexity;
      have_best = true;
    }
    detection.candidates.push_back(std::move(fit));
  }
  return detection;
}

}  // namespace celia::fit
