# Empty dependencies file for example_celia_planner.
# This may be replaced when dependencies are built.
