// Regression tests for the replacement jitter streams: each
// provision_replacement call retries on its own seed-derived stream
// (CloudProvider::replacement_jitter_seed), so a burst of replacements
// after one correlated outage spreads out instead of retrying in phase —
// and the exact retry timestamps are pinned, not just "some jitter".

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cloud/catalog.hpp"
#include "cloud/faults.hpp"
#include "cloud/provider.hpp"
#include "util/backoff.hpp"

namespace {

using celia::cloud::CloudProvider;
using celia::cloud::FaultModel;
using celia::cloud::ProvisionResult;
using celia::util::BackoffPolicy;

FaultModel flaky_boots() {
  FaultModel faults;
  faults.boot_failure_probability = 0.7;
  faults.boot_timeout_seconds = 10.0;
  return faults;
}

TEST(ReplacementJitter, RetryTimestampsArePinnedToTheSequenceStream) {
  constexpr std::uint64_t kProviderSeed = 4242;
  CloudProvider provider(kProviderSeed);
  const FaultModel faults = flaky_boots();
  const BackoffPolicy backoff;

  // Several consecutive replacements: replacement k must draw every retry
  // delay from the stream seeded by replacement_jitter_seed(seed, k),
  // regardless of how many instance ids earlier calls consumed.
  int total_retries = 0;
  for (std::uint64_t sequence = 0; sequence < 6; ++sequence) {
    const ProvisionResult result =
        provider.provision_replacement(0, faults, backoff);
    const std::uint64_t stream =
        CloudProvider::replacement_jitter_seed(kProviderSeed, sequence);
    ASSERT_EQ(result.report.retry_delays.size(),
              static_cast<std::size_t>(result.report.retries));
    for (int retry = 0; retry < result.report.retries; ++retry) {
      EXPECT_DOUBLE_EQ(result.report.retry_delays[retry],
                       celia::util::backoff_delay(backoff, retry + 1, stream))
          << "replacement " << sequence << ", retry " << retry;
    }
    total_retries += result.report.retries;
  }
  // The fault model is hot enough that the pinning above was exercised.
  ASSERT_GT(total_retries, 0);
}

TEST(ReplacementJitter, StreamsAreDeterministicAndPairwiseDistinct) {
  std::set<std::uint64_t> streams;
  for (std::uint64_t sequence = 0; sequence < 64; ++sequence) {
    const std::uint64_t stream =
        CloudProvider::replacement_jitter_seed(4242, sequence);
    EXPECT_EQ(stream, CloudProvider::replacement_jitter_seed(4242, sequence));
    streams.insert(stream);
  }
  // 64 consecutive replacement calls, 64 unrelated jitter streams.
  EXPECT_EQ(streams.size(), 64u);
  // Different providers never share a stream either.
  EXPECT_NE(CloudProvider::replacement_jitter_seed(4242, 0),
            CloudProvider::replacement_jitter_seed(4243, 0));
}

TEST(ReplacementJitter, BurstReplacementsDoNotRetryInLockstep) {
  // The thundering-herd scenario: many replacements issued back to back
  // after one outage. Their FIRST retry delays must not collapse onto a
  // handful of values (the legacy provider_seed ^ next_id derivation made
  // consecutive ids differ only in low bits).
  const BackoffPolicy backoff;
  std::set<double> first_delays;
  for (std::uint64_t sequence = 0; sequence < 16; ++sequence) {
    const std::uint64_t stream =
        CloudProvider::replacement_jitter_seed(7, sequence);
    first_delays.insert(celia::util::backoff_delay(backoff, 1, stream));
  }
  EXPECT_EQ(first_delays.size(), 16u);
}

}  // namespace
