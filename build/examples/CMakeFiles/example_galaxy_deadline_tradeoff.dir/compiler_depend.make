# Empty compiler generated dependencies file for example_galaxy_deadline_tradeoff.
# This may be replaced when dependencies are built.
