file(REMOVE_RECURSE
  "libcelia_core.a"
)
