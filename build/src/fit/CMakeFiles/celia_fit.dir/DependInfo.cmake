
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fit/basis.cpp" "src/fit/CMakeFiles/celia_fit.dir/basis.cpp.o" "gcc" "src/fit/CMakeFiles/celia_fit.dir/basis.cpp.o.d"
  "/root/repo/src/fit/demand_fit.cpp" "src/fit/CMakeFiles/celia_fit.dir/demand_fit.cpp.o" "gcc" "src/fit/CMakeFiles/celia_fit.dir/demand_fit.cpp.o.d"
  "/root/repo/src/fit/least_squares.cpp" "src/fit/CMakeFiles/celia_fit.dir/least_squares.cpp.o" "gcc" "src/fit/CMakeFiles/celia_fit.dir/least_squares.cpp.o.d"
  "/root/repo/src/fit/model_select.cpp" "src/fit/CMakeFiles/celia_fit.dir/model_select.cpp.o" "gcc" "src/fit/CMakeFiles/celia_fit.dir/model_select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/celia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
