#pragma once
// Ground-truth achieved-IPC model.
//
// ipc(uarch, workload) is the sustained retired-instructions-per-cycle of
// ONE busy hyper-thread (vCPU) when its sibling thread is also busy — i.e.
// it already folds in SMT sharing of the physical core, matching the
// paper's observation that an EC2 vCPU is a hyper-thread, not a core.
//
// The table is calibrated so the derived normalized performance
// (instructions/second/$) reproduces the paper's Figure 3: c4 instances are
// ~2x and m4 instances ~1.5x the performance-per-dollar of r3 instances,
// uniformly across resource types within a category.
//
// These values are the *simulated truth*. CELIA never reads them directly:
// it re-derives capacities through baseline measurements, exactly like the
// paper does against real EC2.

#include "hw/microarch.hpp"
#include "hw/workload_class.hpp"

namespace celia::hw {

/// Sustained IPC of one vCPU (hyper-thread) for the given workload class.
double ipc(Microarch microarch, WorkloadClass workload);

/// Instruction execution rate of one vCPU in instructions/second:
/// ipc x base frequency.
double vcpu_rate(Microarch microarch, WorkloadClass workload);

}  // namespace celia::hw
