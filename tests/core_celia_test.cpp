// Tests for the CELIA facade (core/celia.hpp): the full measurement-driven
// build and its predictions.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/analysis.hpp"
#include "core/celia.hpp"

namespace {

using namespace celia::core;
using celia::apps::AppParams;
using celia::cloud::CloudProvider;

const Celia& galaxy_celia() {
  static const Celia instance = [] {
    CloudProvider provider(2017);
    const auto app = celia::apps::make_galaxy();
    return Celia::build(*app, provider);
  }();
  return instance;
}

TEST(Celia, BuildDetectsPaperDemandShapes) {
  CloudProvider provider(1);
  for (const auto& app : celia::apps::all_apps()) {
    const Celia celia = Celia::build(*app, provider);
    if (app->name() == "x264") {
      EXPECT_EQ(celia.demand_model().n_shape(), celia::fit::Shape::kLinear);
      EXPECT_EQ(celia.demand_model().a_shape(),
                celia::fit::Shape::kQuadratic);
    } else if (app->name() == "galaxy") {
      EXPECT_EQ(celia.demand_model().n_shape(),
                celia::fit::Shape::kQuadratic);
      EXPECT_EQ(celia.demand_model().a_shape(), celia::fit::Shape::kLinear);
    } else if (app->name() == "sand") {
      EXPECT_EQ(celia.demand_model().n_shape(), celia::fit::Shape::kLinear);
      EXPECT_EQ(celia.demand_model().a_shape(),
                celia::fit::Shape::kLogarithmic);
    }
  }
}

TEST(Celia, FittedDemandTracksExactDemand) {
  CloudProvider provider(2);
  for (const auto& app : celia::apps::all_apps()) {
    const Celia celia = Celia::build(*app, provider);
    // At grid points and in-between, the fitted model should be within a
    // few percent of the closed form.
    for (const AppParams& params : app->profile_grid()) {
      const double exact = app->exact_demand(params);
      const double fitted = celia.predict_demand(params);
      EXPECT_NEAR(fitted / exact, 1.0, 0.05)
          << app->name() << " n=" << params.n << " a=" << params.a;
    }
  }
}

TEST(Celia, ExtrapolatesToValidationScale) {
  // Table IV predictions use parameters far beyond the profile grid
  // (e.g. galaxy 65536 masses was profiled, but x264 runs 8000 clips vs a
  // 32-clip grid). Linearity must carry the extrapolation.
  CloudProvider provider(3);
  const auto app = celia::apps::make_x264();
  const Celia celia = Celia::build(*app, provider);
  const AppParams params{8000, 20};
  EXPECT_NEAR(celia.predict_demand(params) / app->exact_demand(params), 1.0,
              0.05);
}

TEST(Celia, PredictUsesMeasuredCapacity) {
  const Celia& celia = galaxy_celia();
  const Configuration config = {5, 5, 5, 3, 0, 0, 0, 0, 0};
  const Prediction p = celia.predict({65536, 8000}, config);
  // ~24 hours on the paper's Fig. 6(a) annotated configuration.
  EXPECT_NEAR(p.seconds / 3600.0, 24.0, 4.0);
  EXPECT_NEAR(p.cost, 95.0, 20.0);
}

TEST(Celia, SelectReproducesFigure4Shape) {
  const Celia& celia = galaxy_celia();
  SweepOptions options;
  options.sample_stride = 1000;
  const SweepResult result = celia.select({65536, 8000}, 24.0, 350.0, options);
  EXPECT_EQ(result.total, 10'077'695u);
  // Millions of feasible configurations, a small Pareto frontier.
  EXPECT_GT(result.feasible, 1'000'000u);
  EXPECT_GT(result.pareto.size(), 10u);
  EXPECT_LT(result.pareto.size(), 200u);
  EXPECT_FALSE(result.feasible_points.empty());
}

TEST(Celia, MinCostMatchesSelect) {
  const Celia& celia = galaxy_celia();
  const auto best = celia.min_cost_configuration({65536, 8000}, 24.0);
  ASSERT_TRUE(best.has_value());
  const SweepResult result = celia.select({65536, 8000}, 24.0, 1e18);
  EXPECT_EQ(best->config_index, result.min_cost.config_index);
  // The cheapest feasible point is the cheapest Pareto point.
  ASSERT_FALSE(result.pareto.empty());
  EXPECT_EQ(result.pareto.front().config_index, best->config_index);
}

TEST(Celia, MinCostInfeasibleReturnsNullopt) {
  const Celia& celia = galaxy_celia();
  EXPECT_FALSE(
      celia.min_cost_configuration({262144, 8000}, 0.05).has_value());
}

TEST(Celia, TighterDeadlineNeverCheaper) {
  const Celia& celia = galaxy_celia();
  const AppParams params{65536, 8000};
  double previous = 0.0;
  for (const double deadline : {72.0, 48.0, 24.0, 12.0}) {
    const auto best = celia.min_cost_configuration(params, deadline);
    ASSERT_TRUE(best.has_value()) << deadline;
    EXPECT_GE(best->cost, previous - 1e-9);
    previous = best->cost;
  }
}

TEST(Celia, ParetoSpanStatistics) {
  const Celia& celia = galaxy_celia();
  const SweepResult result = celia.select({65536, 8000}, 24.0, 350.0);
  const ParetoSpan span = pareto_span(result.pareto);
  EXPECT_GT(span.span_ratio, 1.0);
  EXPECT_LT(span.span_ratio, 2.0);
  EXPECT_DOUBLE_EQ(span.saving_fraction, 1.0 - span.min_cost / span.max_cost);
}

TEST(Celia, AccessorsExposeModels) {
  const Celia& celia = galaxy_celia();
  EXPECT_EQ(celia.app_name(), "galaxy");
  EXPECT_EQ(celia.workload(), celia::hw::WorkloadClass::kNBody);
  EXPECT_EQ(celia.space().size(), 10'077'695u);
  EXPECT_EQ(celia.capacity().num_types(), 9u);
  EXPECT_GT(celia.demand_model().grid_r2(), 0.99);
}

}  // namespace
