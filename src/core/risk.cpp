#include "core/risk.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "cloud/catalog.hpp"
#include "core/simd.hpp"
#include "core/sweep_plan.hpp"
#include "parallel/parallel_for.hpp"
#include "util/stats.hpp"

namespace celia::core {

std::string_view risk_model_name(RiskModel model) {
  switch (model) {
    case RiskModel::kNone:
      return "deterministic";
    case RiskModel::kSumCapacity:
      return "sum-capacity";
    case RiskModel::kBottleneck:
      return "bottleneck";
  }
  return "?";
}

std::optional<CostTimePoint> robust_min_cost(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    double demand, double deadline_seconds, const RiskSpec& spec,
    parallel::ThreadPool* pool) {
  return robust_min_cost(space, capacity, cloud::Catalog::ec2_table3(),
                         demand, deadline_seconds, spec, pool);
}

std::optional<CostTimePoint> robust_min_cost(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    const cloud::Catalog& catalog, double demand, double deadline_seconds,
    const RiskSpec& spec, parallel::ThreadPool* pool) {
  if (demand <= 0)
    throw std::invalid_argument("robust_min_cost: non-positive demand");
  if (spec.model != RiskModel::kNone &&
      (!(spec.confidence > 0 && spec.confidence < 1) || spec.sigma <= 0 ||
       spec.median_factor <= 0))
    throw std::invalid_argument("robust_min_cost: bad risk spec");
  if (space.num_types() != capacity.num_types() ||
      space.num_types() != catalog.size())
    throw std::invalid_argument("robust_min_cost: width mismatch");
  if (!capacity.compatible_with(catalog))
    throw std::invalid_argument(
        "robust_min_cost: capacity was characterized against a structurally "
        "different catalog than '" + catalog.name() + "'");

  const std::size_t m = space.num_types();
  const std::span<const double> catalog_hourly = catalog.hourly_costs();
  std::vector<double> rates(m), hourly(m), var_terms(m);
  for (std::size_t i = 0; i < m; ++i) {
    rates[i] = capacity.rate(i);
    hourly[i] = catalog_hourly[i];
    const double term = rates[i] * spec.sigma;
    var_terms[i] = term * term;
  }

  const double z = spec.model == RiskModel::kSumCapacity
                       ? util::normal_quantile(spec.confidence)
                       : 0.0;
  const double ln_confidence = std::log(spec.confidence);
  const double ln_median = std::log(spec.median_factor);

  // The risk walk IS the sweep walk: the same SweepPlan lanes (so kNone
  // reproduces sweep()'s doubles bit for bit) plus the exact integer
  // `instances` lane that feeds kBottleneck's lognormal tail bound.
  const SweepPlan plan(space, rates, hourly, var_terms,
                       /*track_instances=*/true);
  const bool use_kernel = spec.model == RiskModel::kNone;
  simd::ClassifyParams params;
  params.demand = demand;
  params.deadline = deadline_seconds;
  // kNone has no budget cut: +inf never rejects a finite cost, so the
  // shared classify kernel answers `u > 0 && demand / u < deadline`.
  params.budget = std::numeric_limits<double>::infinity();

  std::mutex merge_mutex;
  std::optional<CostTimePoint> best;

  parallel::ForOptions for_options;
  for_options.pool = pool;
  parallel::parallel_for_blocked(
      0, space.size(),
      [&](parallel::BlockedRange range) {
        if (range.empty()) return;
        std::optional<CostTimePoint> local;
        const auto note = [&](std::uint64_t index, double seconds,
                              double cost) {
          if (!local || cost < local->cost ||
              (cost == local->cost && seconds < local->seconds)) {
            local = CostTimePoint{index, seconds, cost};
          }
        };
        const auto consider = [&](std::uint64_t index, double u, double cu,
                                  double v, int instances) {
          if (u <= 0) return;
          bool feasible = false;
          switch (spec.model) {
            case RiskModel::kNone:
              feasible = demand / u < deadline_seconds;
              break;
            case RiskModel::kSumCapacity: {
              const double u_eff = spec.median_factor * (u - z * std::sqrt(v));
              feasible = u_eff > 0 && demand / u_eff < deadline_seconds;
              break;
            }
            case RiskModel::kBottleneck: {
              // Need min over `instances` lognormal factors >= x.
              const double x = demand / (u * deadline_seconds);
              if (x <= 0) {
                feasible = true;
              } else {
                const double tail = 1.0 - util::normal_cdf(
                                              (std::log(x) - ln_median) /
                                              spec.sigma);
                feasible =
                    tail > 0 && instances * std::log(tail) >= ln_confidence;
              }
              break;
            }
          }
          if (feasible) {
            const double seconds = demand / u;  // deterministic quote
            const double cost = seconds / 3600.0 * cu;
            note(index, seconds, cost);
          }
        };

        const simd::Kernels& kernels = simd::active_kernels();
        std::vector<double> seconds(use_kernel ? SweepPlan::kBatch : 0);
        std::vector<double> cost(use_kernel ? SweepPlan::kBatch : 0);
        std::vector<std::uint64_t> mask(use_kernel ? SweepPlan::kBatch / 64
                                                   : 0);
        plan.walk(range, [&](std::uint64_t first, std::size_t n,
                             const SweepPlan::Lanes& lanes) {
          if (use_kernel) {
            const std::size_t hits =
                kernels.classify(lanes.u(), lanes.cu, n, params,
                                 seconds.data(), cost.data(), mask.data());
            if (hits == 0) return;
            for (std::size_t w = 0; w < (n + 63) / 64; ++w) {
              std::uint64_t bits = mask[w];
              while (bits != 0) {
                const std::size_t j =
                    w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                note(first + j, seconds[j], cost[j]);
              }
            }
            return;
          }
          const double* u = lanes.u();
          const double* v = lanes.v;  // nullptr when var_terms is all-zero
          for (std::size_t j = 0; j < n; ++j) {
            consider(first + j, u[j], lanes.cu[j], v != nullptr ? v[j] : 0.0,
                     lanes.instances[j]);
          }
        });

        if (local) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          if (!best || local->cost < best->cost ||
              (local->cost == best->cost && local->seconds < best->seconds))
            best = local;
        }
      },
      for_options);
  return best;
}

}  // namespace celia::core
