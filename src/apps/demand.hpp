#pragma once
// Multi-dimensional resource demand.
//
// The paper's Eqs. (2)-(6) model demand as a single scalar (instructions),
// which is only honest for compute-bound applications. Workloads whose
// bottleneck shifts between CPU, IO, network and memory — the
// disaggregated-storage OLTP family in apps/oltp/ — need a demand VECTOR:
// one non-negative component per resource dimension, paired with a
// DemandDimensions schema naming the components. Capacity generalizes the
// same way (core::ResourceCapacity carries one rate per type per
// dimension) and completion time becomes the max over bottleneck
// dimensions:
//
//     T_j = max_d  D_d / U_{j,d}        (generalized Eq. 2)
//
// The 1-D case degenerates to the paper's scalar model bit-identically —
// a max over one element is that element — which is what keeps the three
// seed applications' numbers pinned (tests/core_vector_demand_test.cpp).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace celia::apps {

/// Canonical dimension names. Schemas are free-form lists of names; these
/// four are the ones the shipped applications use.
inline constexpr std::string_view kDimInstructions = "instructions";
inline constexpr std::string_view kDimIoOps = "io_ops";
inline constexpr std::string_view kDimNetBytes = "net_bytes";
inline constexpr std::string_view kDimMemBytes = "mem_bytes";

/// An ordered, named list of demand dimensions — the schema a demand
/// vector and a capacity rate matrix are both indexed by. Immutable after
/// construction; identified by a fingerprint so planners can refuse to
/// combine a demand vector with a capacity characterized for a different
/// schema (the same way capacities pin a catalog structure fingerprint).
class DemandDimensions {
 public:
  /// The paper's scalar model: the single "instructions" dimension.
  static const DemandDimensions& scalar();

  /// The OLTP family's four dimensions: instructions, io_ops, net_bytes,
  /// mem_bytes (in that order; instructions is always dimension 0).
  static const DemandDimensions& oltp();

  /// Arbitrary schema. Throws std::invalid_argument when `names` is empty,
  /// holds an empty/duplicate name, or exceeds 16 dimensions. Dimension 0
  /// is the scalar-compatibility dimension and should be "instructions"
  /// for anything the legacy entry points may see.
  explicit DemandDimensions(std::vector<std::string> names);

  std::size_t size() const { return names_.size(); }
  const std::string& name(std::size_t dim) const { return names_.at(dim); }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of a dimension by name; nullopt when absent.
  std::optional<std::size_t> index_of(std::string_view name) const;

  /// Human-readable schema summary for diagnostics: the ordered names
  /// joined with ", " (e.g. "instructions, io_ops, net_bytes, mem_bytes").
  /// Error messages that reject a schema quote this so the caller can see
  /// WHICH dimensions were offending, not just how many.
  std::string describe() const;

  /// Order-sensitive FNV-1a over the names; equal schemas have equal
  /// fingerprints. Serialized with the rate matrix in model-format v3.
  std::uint64_t fingerprint() const { return fingerprint_; }

  friend bool operator==(const DemandDimensions& a, const DemandDimensions& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
  std::uint64_t fingerprint_ = 0;
};

/// A demand vector: values_[d] is the demand in dimension d of some
/// DemandDimensions schema (instructions, IO operations, bytes, ...).
/// Plain data; validation happens at the planner boundary
/// (core::validate_query) exactly as for scalar demand.
struct DemandVector {
  std::vector<double> values;

  /// The 1-D vector the scalar-compatibility shims produce.
  static DemandVector scalar(double instructions) { return {{instructions}}; }

  std::size_t size() const { return values.size(); }
  double operator[](std::size_t dim) const { return values[dim]; }

  friend bool operator==(const DemandVector&, const DemandVector&) = default;
};

}  // namespace celia::apps
