// Tests for model persistence (core/serialize.hpp).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "cloud/catalog.hpp"
#include "cloud/provider.hpp"
#include "core/enumerate.hpp"
#include "core/query.hpp"
#include "core/serialize.hpp"

namespace {

using namespace celia::core;
using celia::cloud::CloudProvider;

Celia build_galaxy() {
  CloudProvider provider(2017);
  return Celia::build(*celia::apps::make_galaxy(), provider);
}

TEST(Serialize, RoundTripPreservesIdentity) {
  const Celia original = build_galaxy();
  const Celia loaded = model_from_string(model_to_string(original));
  EXPECT_EQ(loaded.app_name(), original.app_name());
  EXPECT_EQ(loaded.workload(), original.workload());
  EXPECT_EQ(loaded.space().size(), original.space().size());
  EXPECT_EQ(loaded.demand_model().n_shape(),
            original.demand_model().n_shape());
  EXPECT_EQ(loaded.demand_model().a_shape(),
            original.demand_model().a_shape());
}

TEST(Serialize, RoundTripPreservesPredictionsExactly) {
  const Celia original = build_galaxy();
  const Celia loaded = model_from_string(model_to_string(original));
  for (const auto& params :
       {celia::apps::AppParams{65536, 8000}, celia::apps::AppParams{8192, 1000},
        celia::apps::AppParams{131072, 3000}}) {
    EXPECT_DOUBLE_EQ(loaded.predict_demand(params),
                     original.predict_demand(params));
    const Configuration config = {5, 5, 5, 3, 0, 0, 0, 0, 0};
    const Prediction a = original.predict(params, config);
    const Prediction b = loaded.predict(params, config);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
  }
}

TEST(Serialize, RoundTripPreservesSelection) {
  const Celia original = build_galaxy();
  const Celia loaded = model_from_string(model_to_string(original));
  const auto a = original.min_cost_configuration({65536, 8000}, 24.0);
  const auto b = loaded.min_cost_configuration({65536, 8000}, 24.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->config_index, b->config_index);
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
}

TEST(Serialize, SecondRoundTripIsStable) {
  const Celia original = build_galaxy();
  const std::string once = model_to_string(original);
  const std::string twice = model_to_string(model_from_string(once));
  EXPECT_EQ(once, twice);
}

TEST(Serialize, FormatIsVersioned) {
  const std::string text = model_to_string(build_galaxy());
  EXPECT_EQ(text.rfind("celia-model 3\n", 0), 0u);
}

TEST(Serialize, RejectsWrongVersion) {
  std::string text = model_to_string(build_galaxy());
  text.replace(text.find("celia-model 3"), 13, "celia-model 9");
  EXPECT_THROW(model_from_string(text), std::runtime_error);
}

TEST(Serialize, RoundTripPreservesTheCatalog) {
  const Celia original = build_galaxy();
  const Celia loaded = model_from_string(model_to_string(original));
  EXPECT_EQ(loaded.catalog().fingerprint(),
            original.catalog().fingerprint());
  EXPECT_EQ(loaded.catalog().name(), original.catalog().name());
  ASSERT_EQ(loaded.catalog().size(), original.catalog().size());
  for (std::size_t i = 0; i < loaded.catalog().size(); ++i) {
    EXPECT_EQ(loaded.catalog().type(i).name, original.catalog().type(i).name);
    EXPECT_EQ(loaded.catalog().limit(i), original.catalog().limit(i));
  }
}

/// Drop every line whose key starts with `prefix`.
std::string strip_lines(std::string text, const std::string& prefix) {
  while (true) {
    const std::size_t begin = text.find(prefix);
    if (begin == std::string::npos) break;
    text.erase(begin, text.find('\n', begin) + 1 - begin);
  }
  return text;
}

/// Strip the v3 dimension section and rewind the header: byte-for-byte
/// what a v2 writer produced (for a scalar model).
std::string as_v2(std::string text) {
  text.replace(text.find("celia-model 3"), 13, "celia-model 2");
  return strip_lines(std::move(text), "capacity.");
}

/// Additionally strip the v2 catalog section: what a v1 writer produced.
std::string as_v1(std::string text) {
  text.replace(text.find("celia-model 3"), 13, "celia-model 1");
  return strip_lines(strip_lines(std::move(text), "capacity."), "catalog.");
}

TEST(Serialize, VersionOneFilesStillLoad) {
  const Celia original = build_galaxy();
  const Celia loaded = model_from_string(as_v1(model_to_string(original)));
  // A v1 file carries no catalog, so it is restored against Table III —
  // which is also what its writer planned against.
  EXPECT_EQ(loaded.catalog().fingerprint(),
            celia::cloud::Catalog::ec2_table3().fingerprint());
  EXPECT_TRUE(loaded.capacity().is_scalar());
  EXPECT_DOUBLE_EQ(loaded.predict_demand({65536, 8000}),
                   original.predict_demand({65536, 8000}));
  const auto a = original.min_cost_configuration({65536, 8000}, 24.0);
  const auto b = loaded.min_cost_configuration({65536, 8000}, 24.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->config_index, b->config_index);
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
}

TEST(Serialize, VersionTwoFilesStillLoad) {
  const Celia original = build_galaxy();
  const Celia loaded = model_from_string(as_v2(model_to_string(original)));
  // A v2 file has no dimension section: it loads as the 1-D scalar model
  // with its embedded catalog intact.
  EXPECT_TRUE(loaded.capacity().is_scalar());
  EXPECT_EQ(loaded.capacity().dimensions(),
            celia::apps::DemandDimensions::scalar());
  EXPECT_EQ(loaded.catalog().fingerprint(),
            original.catalog().fingerprint());
  for (std::size_t i = 0; i < loaded.capacity().num_types(); ++i)
    EXPECT_DOUBLE_EQ(loaded.capacity().per_vcpu_rate(i),
                     original.capacity().per_vcpu_rate(i));
  const auto a = original.min_cost_configuration({65536, 8000}, 24.0);
  const auto b = loaded.min_cost_configuration({65536, 8000}, 24.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->config_index, b->config_index);
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
}

TEST(Serialize, EmbeddedCatalogPinsPlanning) {
  // A model saved against a repriced catalog restores with that catalog
  // and refuses to plan against a structurally different one.
  const Celia original = build_galaxy();
  const Celia loaded = model_from_string(model_to_string(original));
  const celia::cloud::Catalog trimmed(
      "trimmed", "nowhere",
      {loaded.catalog().types().begin(), loaded.catalog().types().end() - 1});
  try {
    (void)sweep(loaded.space(), loaded.capacity(), trimmed,
                Query::make(1e15, {.deadline_seconds = 24 * 3600.0}, {}));
    FAIL() << "sweep against a mismatched catalog succeeded";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("structurally different"),
              std::string::npos)
        << error.what();
  }
}

TEST(Serialize, RejectsGarbage) {
  EXPECT_THROW(model_from_string("not a model at all"),
               std::runtime_error);
  EXPECT_THROW(model_from_string(""), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedInput) {
  const std::string text = model_to_string(build_galaxy());
  const std::string truncated = text.substr(0, text.size() / 2);
  EXPECT_THROW(model_from_string(truncated), std::runtime_error);
}

TEST(Serialize, RejectsCorruptCapacity) {
  std::string text = model_to_string(build_galaxy());
  // Sabotage: make one capacity rate negative.
  const auto pos = text.find("capacity 9 ");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + 11, "-");
  EXPECT_THROW(model_from_string(text), std::runtime_error);
}

// ---------------------------------------------------------------------------
// v3: vector capacities (dimension schema + rate matrix) round-trip.
// ---------------------------------------------------------------------------

Celia build_oltp_vector() {
  const auto app = celia::apps::make_oltp_classic();
  CloudProvider provider(2017);
  const Celia scalar = Celia::build(*app, provider);
  CloudProvider capacity_provider(2017);
  ResourceCapacity capacity =
      characterize_vector_capacity(*app, capacity_provider);
  return Celia(scalar.app_name(), scalar.workload(), scalar.demand_model(),
               std::move(capacity), scalar.space(), scalar.catalog_ptr());
}

TEST(Serialize, VectorCapacityRoundTripsExactly) {
  const Celia original = build_oltp_vector();
  ASSERT_EQ(original.capacity().num_dimensions(), 4u);
  const Celia loaded = model_from_string(model_to_string(original));
  ASSERT_EQ(loaded.capacity().num_dimensions(), 4u);
  EXPECT_EQ(loaded.capacity().dimensions(),
            original.capacity().dimensions());
  for (std::size_t d = 0; d < 4; ++d)
    for (std::size_t i = 0; i < loaded.capacity().num_types(); ++i)
      EXPECT_DOUBLE_EQ(loaded.capacity().per_vcpu_rate(i, d),
                       original.capacity().per_vcpu_rate(i, d))
          << "dimension " << d << " type " << i;
}

TEST(Serialize, VectorModelSecondRoundTripIsStable) {
  const std::string once = model_to_string(build_oltp_vector());
  EXPECT_EQ(once, model_to_string(model_from_string(once)));
}

TEST(Serialize, TamperedDimensionNameThrowsDescriptively) {
  std::string text = model_to_string(build_oltp_vector());
  const std::size_t pos = text.find("\tio_ops");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "\tio_opz");
  try {
    (void)model_from_string(text);
    FAIL() << "load of a name-tampered vector model succeeded";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"),
              std::string::npos)
        << error.what();
  }
}

TEST(Serialize, MissingRateRowThrows) {
  std::string text = model_to_string(build_oltp_vector());
  const std::size_t begin = text.find("capacity.rates 2");
  ASSERT_NE(begin, std::string::npos);
  text.erase(begin, text.find('\n', begin) + 1 - begin);
  EXPECT_THROW(model_from_string(text), std::runtime_error);
}

TEST(Serialize, WorksForAllThreeApplications) {
  for (const auto& app : celia::apps::all_apps()) {
    CloudProvider provider(5);
    const Celia original = Celia::build(*app, provider);
    const Celia loaded = model_from_string(model_to_string(original));
    EXPECT_EQ(loaded.app_name(), original.app_name());
    const celia::apps::AppParams probe =
        original.app_name() == "sand"
            ? celia::apps::AppParams{1024e6, 0.32}
            : (original.app_name() == "galaxy"
                   ? celia::apps::AppParams{65536, 4000}
                   : celia::apps::AppParams{8000, 20});
    EXPECT_DOUBLE_EQ(loaded.predict_demand(probe),
                     original.predict_demand(probe));
  }
}

}  // namespace
