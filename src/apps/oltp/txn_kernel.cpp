#include "apps/oltp/txn_kernel.hpp"

namespace celia::apps::oltp {

namespace {

// SplitMix64-style multiplicative mixing constants.
constexpr std::uint64_t kKeyMul = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kKeyInc = 0xbf58476d1ce4e5b9ull;

/// Hash-probe descent shared by reads and writes: `probes` rounds of key
/// mixing + slot load + parity fold. Returns the last slot touched (the
/// "row" the payload pass starts from) and accumulates into `acc`.
/// Charges per probe: 1 IntMul (key mix), 4 IntArith (increment, shift,
/// mask, fold), 1 LoadStore (slot load), 1 Branch (loop).
std::size_t probe_descent(const TxnTable& table, std::uint64_t probes,
                          std::uint64_t& key, std::uint64_t& acc,
                          hw::PerfCounter& counter) {
  std::size_t slot = 0;
  for (std::uint64_t p = 0; p < probes; ++p) {
    key = key * kKeyMul + kKeyInc;
    slot = static_cast<std::size_t>(key >> 16) & (kTableSlots - 1);
    acc ^= table.slots[slot];
  }
  counter.add(hw::OpClass::kIntMul, probes);
  counter.add(hw::OpClass::kIntArith, 4 * probes);
  counter.add(hw::OpClass::kLoadStore, probes);
  counter.add(hw::OpClass::kBranch, probes);
  return slot;
}

/// Payload checksum over kPayloadWords row words starting at `slot`.
/// Charges per word: 2 IntArith (index add, accumulate), 1 LoadStore,
/// 1 Branch (loop).
void payload_pass(const TxnTable& table, std::size_t slot, std::uint64_t& acc,
                  hw::PerfCounter& counter) {
  for (std::uint64_t w = 0; w < kPayloadWords; ++w)
    acc += table.slots[(slot + w) & (kTableSlots - 1)];
  counter.add(hw::OpClass::kIntArith, 2 * kPayloadWords);
  counter.add(hw::OpClass::kLoadStore, kPayloadWords);
  counter.add(hw::OpClass::kBranch, kPayloadWords);
}

}  // namespace

TxnTable make_table(std::uint64_t seed) {
  TxnTable table;
  table.slots.resize(kTableSlots);
  table.log.assign(kLogSlots, 0);
  std::uint64_t state = seed * kKeyMul + kKeyInc;
  for (auto& slot : table.slots) {
    state = state * kKeyMul + kKeyInc;
    slot = state ^ (state >> 31);
  }
  return table;
}

std::uint64_t run_transactions(TxnTable& table, std::uint64_t reads,
                               std::uint64_t writes,
                               hw::PerfCounter& counter) {
  std::uint64_t acc = 0;
  std::uint64_t key = 0x2545f4914f6cdd1dull;

  // Interleave deterministically: writes are spread evenly through the
  // read stream (every txn is independent, so only the counts matter for
  // the ledger; the interleave keeps the table state realistic).
  const std::uint64_t total = reads + writes;
  std::uint64_t writes_done = 0;
  for (std::uint64_t t = 0; t < total; ++t) {
    const bool is_write =
        writes_done < writes &&
        (t + 1) * writes >= (writes_done + 1) * total;
    if (!is_write) {
      const std::size_t slot =
          probe_descent(table, kProbesPerRead, key, acc, counter);
      payload_pass(table, slot, acc, counter);
      counter.add(hw::OpClass::kOther, kReadOverheadOps);
    } else {
      ++writes_done;
      const std::size_t slot =
          probe_descent(table, kProbesPerWrite, key, acc, counter);
      payload_pass(table, slot, acc, counter);
      // Redo-log record: kLogWords mixed words into the ring.
      // Charges per word: 2 IntArith (cursor mask, mix), 1 LoadStore
      // (store), 1 Branch (loop).
      for (std::uint64_t w = 0; w < kLogWords; ++w) {
        table.log[static_cast<std::size_t>(table.log_cursor++) &
                  (kLogSlots - 1)] = acc ^ (w * kKeyMul);
      }
      counter.add(hw::OpClass::kIntArith, 2 * kLogWords);
      counter.add(hw::OpClass::kLoadStore, kLogWords);
      counter.add(hw::OpClass::kBranch, kLogWords);
      // Store the updated row back (1 IntArith for the new value fold).
      table.slots[slot] = acc;
      counter.add(hw::OpClass::kIntArith, 1);
      counter.add(hw::OpClass::kLoadStore, 1);
      counter.add(hw::OpClass::kOther, kWriteOverheadOps);
    }
  }
  return acc;
}

hw::PerfCounter read_txn_ops() {
  hw::PerfCounter ops;
  ops.add(hw::OpClass::kIntMul, kProbesPerRead);
  ops.add(hw::OpClass::kIntArith, 4 * kProbesPerRead + 2 * kPayloadWords);
  ops.add(hw::OpClass::kLoadStore, kProbesPerRead + kPayloadWords);
  ops.add(hw::OpClass::kBranch, kProbesPerRead + kPayloadWords);
  ops.add(hw::OpClass::kOther, kReadOverheadOps);
  return ops;
}

hw::PerfCounter write_txn_ops() {
  hw::PerfCounter ops;
  ops.add(hw::OpClass::kIntMul, kProbesPerWrite);
  ops.add(hw::OpClass::kIntArith,
          4 * kProbesPerWrite + 2 * kPayloadWords + 2 * kLogWords + 1);
  ops.add(hw::OpClass::kLoadStore,
          kProbesPerWrite + kPayloadWords + kLogWords + 1);
  ops.add(hw::OpClass::kBranch, kProbesPerWrite + kPayloadWords + kLogWords);
  ops.add(hw::OpClass::kOther, kWriteOverheadOps);
  return ops;
}

}  // namespace celia::apps::oltp
