# Empty compiler generated dependencies file for celia_core.
# This may be replaced when dependencies are built.
