#pragma once
// The galaxy elastic application (paper Table II, row 2).
//
// Problem size n = number of masses; accuracy a = number of simulation
// steps s (more steps = finer time resolution = higher accuracy; the paper
// uses s as the accuracy proxy). Masses are block-distributed across MPI
// ranks; every step ends in an all-gather of positions, so the cluster
// execution is bulk-synchronous and pays per-step communication — the
// source of galaxy's higher prediction error in Table IV.

#include "apps/elastic_app.hpp"
#include "apps/galaxy/nbody.hpp"

namespace celia::apps::galaxy {

class GalaxyApp final : public ElasticApp {
 public:
  std::string_view name() const override { return "galaxy"; }
  std::string_view domain() const override { return "astrophysics"; }
  hw::WorkloadClass workload_class() const override {
    return hw::WorkloadClass::kNBody;
  }
  std::string_view size_param_name() const override { return "n (masses)"; }
  std::string_view accuracy_param_name() const override {
    return "s (simulation steps)";
  }
  ParamRange param_range() const override { return {2, 1u << 24, 1, 1e9}; }

  double exact_demand(const AppParams& params) const override;
  void run_instrumented(const AppParams& params, hw::PerfCounter& counter,
                        std::uint64_t seed = 42) const override;
  Workload make_workload(const AppParams& params) const override;
  std::vector<AppParams> profile_grid() const override;
};

}  // namespace celia::apps::galaxy
