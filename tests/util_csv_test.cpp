// Tests for CSV emission/parsing (util/csv.hpp).

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace {

using namespace celia::util;

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuotesDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"app", "cost"});
  writer.row({"galaxy", "126.4"});
  writer.row({"sand", "180"});
  EXPECT_EQ(out.str(), "app,cost\ngalaxy,126.4\nsand,180\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriter, DoubleRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row_values({1.5, 2.25});
  EXPECT_EQ(out.str(), "1.5,2.25\n");
}

TEST(CsvWriter, HeaderAfterDataThrows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row({"x"});
  EXPECT_THROW(writer.header({"h"}), std::logic_error);
}

TEST(CsvWriter, DoubleHeaderThrows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"h"});
  EXPECT_THROW(writer.header({"h"}), std::logic_error);
}

TEST(CsvParse, SimpleFields) {
  const auto fields = csv_parse_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvParse, QuotedFieldWithComma) {
  const auto fields = csv_parse_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST(CsvParse, EscapedQuote) {
  const auto fields = csv_parse_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvParse, EmptyFields) {
  const auto fields = csv_parse_line("a,,b,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvRoundTrip, EscapeThenParse) {
  const std::vector<std::string> original = {"plain", "with,comma",
                                             "with \"quote\"", ""};
  std::string line;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (i) line += ",";
    line += csv_escape(original[i]);
  }
  EXPECT_EQ(csv_parse_line(line), original);
}

}  // namespace
