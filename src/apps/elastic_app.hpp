#pragma once
// The elastic-application interface (paper §I, Table II).
//
// An elastic application P(n, a) produces results whose accuracy/quality is
// a function of resource consumption: problem size n and an accuracy
// parameter a (x264's compression factor f, galaxy's simulation steps s,
// sand's quality threshold t).
//
// Each application exposes three views of itself:
//   * run_instrumented() — actually executes the computational kernel on
//     synthetic input, reporting every operation to a hw::PerfCounter.
//     This is the analogue of running the real binary under `perf` on the
//     local server. Only practical at scaled-down parameters.
//   * demand_vector() — closed-form per-dimension demand (instructions,
//     IO operations, network bytes, memory traffic — see apps/demand.hpp).
//     Dimension 0 is always instructions, and the test suite proves it
//     agrees *exactly* with run_instrumented() at small parameters, which
//     justifies using the closed forms as the simulated ground truth at
//     cloud-scale parameters (where a real instrumented run would take
//     CPU-days). Compute-bound applications (the three seed apps) are
//     1-dimensional; the OLTP family is 4-dimensional.
//   * make_workload() — the application's parallel decomposition, consumed
//     by the cluster execution simulator.
//
// exact_demand() is the legacy scalar view (the instructions dimension
// alone) and is DEPRECATED in favor of demand_vector(); it remains the
// closed-form hook the scalar apps implement, with demand_vector()
// adapting it to a 1-D vector by default.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/demand.hpp"
#include "apps/workload.hpp"
#include "hw/perf_counter.hpp"
#include "hw/workload_class.hpp"

namespace celia::apps {

/// A point in an elastic application's parameter space.
struct AppParams {
  double n = 0.0;  // problem size
  double a = 0.0;  // accuracy parameter

  friend bool operator==(const AppParams&, const AppParams&) = default;
};

/// Valid ranges of the two parameters (used by harnesses for sweeps).
struct ParamRange {
  double min_n, max_n;
  double min_a, max_a;
};

class ElasticApp {
 public:
  virtual ~ElasticApp() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view domain() const = 0;
  virtual hw::WorkloadClass workload_class() const = 0;
  virtual std::string_view size_param_name() const = 0;
  virtual std::string_view accuracy_param_name() const = 0;
  virtual ParamRange param_range() const = 0;

  /// The demand schema of this application. Scalar (one "instructions"
  /// dimension) unless overridden; multi-dimensional applications return
  /// the schema their demand_vector() and capacity matrix are indexed by.
  virtual const DemandDimensions& demand_dimensions() const {
    return DemandDimensions::scalar();
  }

  /// Closed-form per-dimension resource demand D_P(n,a), aligned with
  /// demand_dimensions(). Dimension 0 is always instructions. The default
  /// is the scalar-adapter shim: a 1-D vector wrapping exact_demand(), so
  /// the scalar applications keep their closed forms untouched.
  virtual DemandVector demand_vector(const AppParams& params) const {
    return DemandVector::scalar(exact_demand(params));
  }

  /// DEPRECATED: the scalar (instructions-only) view of demand_vector().
  /// Still the closed-form hook scalar applications implement; new code
  /// should call demand_vector() instead.
  virtual double exact_demand(const AppParams& params) const = 0;

  /// Execute the real kernel at `params`, accumulating operation counts.
  /// Intended for scale-down parameters; cost is proportional to demand.
  virtual void run_instrumented(const AppParams& params,
                                hw::PerfCounter& counter,
                                std::uint64_t seed = 42) const = 0;

  /// The application's parallel structure at `params`.
  virtual Workload make_workload(const AppParams& params) const = 0;

  /// The scale-down parameter grid used for baseline profiling (the
  /// equivalent of the paper's §IV-A measurement campaign).
  virtual std::vector<AppParams> profile_grid() const = 0;
};

}  // namespace celia::apps
