// Regression tests for the run_on_spot horizon give-up path: when the run
// abandons at the horizon, work billed since the last checkpoint must be
// reported as lost — billing and lost-work accounting stay consistent.

#include <gtest/gtest.h>

#include "cloud/spot.hpp"
#include "hw/ipc_model.hpp"

namespace {

using namespace celia::cloud;
using celia::hw::WorkloadClass;

const InstanceType& c4large() { return ec2_catalog()[0]; }

constexpr WorkloadClass kWc = WorkloadClass::kGenomeAlignment;

double fleet_rate(int instances) {
  return celia::hw::vcpu_rate(c4large().microarch, kWc) * c4large().vcpus *
         instances;
}

TEST(SpotGiveUp, AbandonedRunCountsUncheckpointedWorkAsLost) {
  const SpotMarket market(c4large(), 5);
  SpotRunPolicy policy;
  policy.bid_per_hour = 10.0 * c4large().cost_per_hour;  // never evicted
  policy.instances = 1;
  policy.restart_delay_seconds = 0.0;
  policy.checkpoint_interval_seconds = 1800.0;
  policy.checkpoint_cost_seconds = 30.0;

  // Work sized for ~4 checkpoint intervals; horizon cuts it mid-interval.
  const double work = fleet_rate(1) * 4.5 * 1800.0;
  const double horizon = 2.5 * 1800.0 + 2 * 30.0 + 100.0;
  const auto report = run_on_spot(market, kWc, work, policy, horizon);

  ASSERT_FALSE(report.completed);
  EXPECT_NEAR(report.seconds, horizon, 1e-6);
  EXPECT_EQ(report.evictions, 0);
  // With no evictions, everything lost is the uncheckpointed tail — and a
  // horizon that lands mid-interval guarantees the tail is non-empty but
  // smaller than one full checkpoint interval of work.
  EXPECT_GT(report.lost_work_instructions, 0.0);
  EXPECT_LT(report.lost_work_instructions, fleet_rate(1) * 1800.0 * 1.01);
}

TEST(SpotGiveUp, CompletedRunLosesNothingWithoutEvictions) {
  const SpotMarket market(c4large(), 5);
  SpotRunPolicy policy;
  policy.bid_per_hour = 10.0 * c4large().cost_per_hour;
  policy.instances = 1;
  policy.restart_delay_seconds = 0.0;
  const double work = fleet_rate(1) * 600.0;
  const auto report = run_on_spot(market, kWc, work, policy, 1e7);
  ASSERT_TRUE(report.completed);
  EXPECT_DOUBLE_EQ(report.lost_work_instructions, 0.0);
}

TEST(SpotGiveUp, GiveUpReportReplaysBitIdentically) {
  SpotRunPolicy policy;
  policy.bid_per_hour = 0.4 * c4large().cost_per_hour;  // evictions likely
  policy.instances = 2;
  const double work = fleet_rate(2) * 40000.0;
  const double horizon = 20000.0;
  const SpotMarket a(c4large(), 42), b(c4large(), 42);
  const auto first = run_on_spot(a, kWc, work, policy, horizon);
  const auto second = run_on_spot(b, kWc, work, policy, horizon);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.seconds, second.seconds);
  EXPECT_EQ(first.cost, second.cost);
  EXPECT_EQ(first.evictions, second.evictions);
  EXPECT_EQ(first.lost_work_instructions, second.lost_work_instructions);
  EXPECT_EQ(first.checkpoint_overhead_seconds,
            second.checkpoint_overhead_seconds);
  EXPECT_FALSE(first.completed);  // pinned: this work cannot fit the horizon
}

}  // namespace
