#include "fit/least_squares.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace celia::fit {

double FitResult::predict(double x) const {
  double y = 0.0;
  for (std::size_t k = 0; k < bases.size(); ++k)
    y += coeffs[k] * eval_basis(bases[k], x);
  return y;
}

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n)
    throw std::invalid_argument("solve_linear_system: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining |entry| to the diagonal.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col]))
        pivot = row;
    if (std::abs(a[pivot * n + col]) < 1e-12)
      throw std::runtime_error("solve_linear_system: singular matrix");
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k)
        std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k)
        a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }

  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i * n + k] * x[k];
    x[i] = sum / a[i * n + i];
  }
  return x;
}

FitResult fit_least_squares(std::span<const Sample> samples,
                            std::vector<Basis> bases) {
  const std::size_t n = samples.size();
  const std::size_t p = bases.size();
  if (p == 0) throw std::invalid_argument("fit_least_squares: empty basis");
  if (n < p)
    throw std::invalid_argument("fit_least_squares: underdetermined fit");

  // Column scaling keeps the Gram matrix conditioned when basis values span
  // many orders of magnitude (e.g. x^2 with x ~ 1e5).
  std::vector<double> scale(p, 0.0);
  for (std::size_t k = 0; k < p; ++k) {
    double max_abs = 0.0;
    for (const auto& s : samples)
      max_abs = std::max(max_abs, std::abs(eval_basis(bases[k], s.x)));
    scale[k] = max_abs > 0 ? max_abs : 1.0;
  }

  // Normal equations: (Phi^T Phi) c = Phi^T y on the scaled design matrix.
  std::vector<double> gram(p * p, 0.0);
  std::vector<double> rhs(p, 0.0);
  for (const auto& s : samples) {
    std::vector<double> phi(p);
    for (std::size_t k = 0; k < p; ++k)
      phi[k] = eval_basis(bases[k], s.x) / scale[k];
    for (std::size_t i = 0; i < p; ++i) {
      rhs[i] += phi[i] * s.y;
      for (std::size_t j = 0; j < p; ++j) gram[i * p + j] += phi[i] * phi[j];
    }
  }

  std::vector<double> scaled_coeffs =
      solve_linear_system(std::move(gram), std::move(rhs));

  FitResult result;
  result.bases = std::move(bases);
  result.coeffs.resize(p);
  for (std::size_t k = 0; k < p; ++k)
    result.coeffs[k] = scaled_coeffs[k] / scale[k];

  // Goodness of fit.
  double y_mean = 0.0;
  for (const auto& s : samples) y_mean += s.y;
  y_mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (const auto& s : samples) {
    const double r = s.y - result.predict(s.x);
    const double d = s.y - y_mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  result.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : (ss_res == 0 ? 1.0 : 0.0);
  result.rmse = std::sqrt(ss_res / static_cast<double>(n));
  if (n > p) {
    result.adjusted_r2 =
        1.0 - (1.0 - result.r2) * static_cast<double>(n - 1) /
                  static_cast<double>(n - p);
  } else {
    result.adjusted_r2 = result.r2;
  }
  return result;
}

}  // namespace celia::fit
