#pragma once
// core::PlannerEngine — a concurrency-safe owner of named catalog
// snapshots that routes planner Querys to a per-(catalog, model) cache of
// FrontierIndex instances.
//
// The sweep/FrontierIndex machinery treats the catalog as a call
// argument; a long-lived planning SERVICE instead holds many catalogs at
// once (several regions' price lists, yesterday's snapshot next to
// today's) and answers interleaved queries against all of them. The
// engine provides that layer:
//
//   * Catalog snapshots are registered under a name and immutable from
//     then on (swapping a name to a new snapshot is an explicit replace).
//   * Index-eligible queries (deterministic, unsampled — the same
//     eligibility rule as IndexPolicy) are answered from a cached
//     FrontierIndex keyed by (catalog fingerprint, capacity). The first
//     query against a (catalog, model) pair builds the index once —
//     outside the lock, first insertion wins — and every later query
//     hits the cache, whatever other catalogs were queried in between.
//   * Ineligible queries (risk-aware or sampled) run the full sweep at
//     the catalog's prices.
//
// Observability: celia_planner_engine_queries_total counts every plan()
// call, _index_hits_total the ones answered from an already-cached index,
// _index_builds_total the cache misses that built one, and _sweeps_total
// the ineligible queries that swept. hits + builds + sweeps == queries.

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/catalog.hpp"
#include "core/capacity.hpp"
#include "core/celia.hpp"
#include "core/configuration.hpp"
#include "core/enumerate.hpp"
#include "core/frontier_index.hpp"
#include "core/query.hpp"

namespace celia::core {

class PlannerEngine {
 public:
  PlannerEngine() = default;

  // Not copyable or movable: the engine is a service object whose caches
  // are referenced concurrently.
  PlannerEngine(const PlannerEngine&) = delete;
  PlannerEngine& operator=(const PlannerEngine&) = delete;

  /// Register a catalog snapshot under `name`. Throws std::invalid_argument
  /// on a null catalog or empty name, and on a duplicate name unless
  /// `replace` is true (replacing drops the old snapshot's cached indexes
  /// only when no other name still points at the same catalog).
  void add_catalog(std::string name,
                   std::shared_ptr<const cloud::Catalog> catalog,
                   bool replace = false);

  /// The snapshot registered under `name`; throws std::out_of_range for an
  /// unknown name.
  std::shared_ptr<const cloud::Catalog> catalog(std::string_view name) const;

  /// Registered snapshot names, in registration order.
  std::vector<std::string> catalog_names() const;

  std::size_t num_catalogs() const;

  /// Number of FrontierIndex instances currently cached across all
  /// (catalog, model) pairs.
  std::size_t num_cached_indexes() const;

  /// Route `query` for `capacity` against the named catalog, over the
  /// catalog's own configuration space (per-type limits). Throws
  /// std::out_of_range for an unknown name and std::invalid_argument when
  /// `capacity` was characterized against a structurally different
  /// catalog.
  SweepResult plan(std::string_view catalog_name,
                   const ResourceCapacity& capacity, const Query& query);

  /// Route `query` for a full model (e.g. one restored by load_model)
  /// against the named catalog. The model's space is used as-is; its
  /// capacity must be structurally compatible with the catalog — a model
  /// loaded for one catalog cannot silently plan against another.
  SweepResult plan(std::string_view catalog_name, const Celia& model,
                   const Query& query);

 private:
  struct CachedIndex {
    std::uint64_t catalog_fingerprint = 0;
    std::shared_ptr<const FrontierIndex> index;
  };

  std::shared_ptr<const cloud::Catalog> catalog_locked(
      std::string_view name) const;

  SweepResult plan_impl(const cloud::Catalog& catalog,
                        const ConfigurationSpace& space,
                        const ResourceCapacity& capacity, const Query& query);

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<const cloud::Catalog>>>
      catalogs_;
  std::vector<CachedIndex> indexes_;
};

}  // namespace celia::core
