// Shared constraint validation (core/enumerate.hpp validate_query): every
// planner entry point — sweep(), FrontierIndex::query(), recommend(),
// Celia::select / min_cost_configuration — must reject NaN and negative
// deadlines/budgets identically instead of silently sweeping garbage.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"
#include "core/enumerate.hpp"
#include "core/frontier_index.hpp"
#include "core/recommend.hpp"

namespace {

using namespace celia::core;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

ResourceCapacity small_capacity() {
  std::vector<double> per_vcpu = {1.4e9, 1.4e9, 1.4e9, 1.3e9, 1.3e9,
                                  1.3e9, 1.1e9, 1.1e9, 1.1e9};
  return ResourceCapacity(per_vcpu, celia::cloud::Catalog::ec2_table3());
}

/// Malformed (demand, constraints) pairs every entry point must reject.
struct BadQuery {
  double demand;
  Constraints constraints;
};

std::vector<BadQuery> bad_queries() {
  std::vector<BadQuery> bad;
  bad.push_back({kNaN, {}});
  bad.push_back({-1e12, {}});
  bad.push_back({0.0, {}});
  bad.push_back({kInf, {}});
  Constraints c;
  c.deadline_seconds = kNaN;
  bad.push_back({1e12, c});
  c = {};
  c.deadline_seconds = -3600.0;
  bad.push_back({1e12, c});
  c = {};
  c.budget_dollars = kNaN;
  bad.push_back({1e12, c});
  c = {};
  c.budget_dollars = -5.0;
  bad.push_back({1e12, c});
  c = {};
  c.confidence_z = -1.0;
  bad.push_back({1e12, c});
  c = {};
  c.confidence_z = kNaN;
  bad.push_back({1e12, c});
  c = {};
  c.rate_sigma = -0.1;
  bad.push_back({1e12, c});
  c = {};
  c.rate_sigma = kInf;
  bad.push_back({1e12, c});
  return bad;
}

TEST(QueryValidation, ValidatorAcceptsEdgeCasesThatMeanSomething) {
  Constraints c;  // both constraints unbounded
  EXPECT_NO_THROW(validate_query(1e12, c));
  c.deadline_seconds = 0.0;  // admits nothing, but is well-formed
  c.budget_dollars = 0.0;
  EXPECT_NO_THROW(validate_query(1e12, c));
}

TEST(QueryValidation, SweepRejectsMalformedQueries) {
  const ConfigurationSpace space(std::vector<int>(9, 1));
  const auto capacity = small_capacity();
  for (const auto& bad : bad_queries()) {
    EXPECT_THROW(sweep(space, capacity, bad.demand, bad.constraints),
                 std::invalid_argument)
        << "demand=" << bad.demand;
  }
  // A well-formed zero deadline sweeps fine and admits nothing.
  Constraints c;
  c.deadline_seconds = 0.0;
  const auto result = sweep(space, capacity, 1e12, c);
  EXPECT_FALSE(result.any_feasible);
}

TEST(QueryValidation, FrontierIndexQueryRejectsMalformedQueries) {
  const ConfigurationSpace space(std::vector<int>(9, 1));
  const auto capacity = small_capacity();
  const FrontierIndex index = FrontierIndex::build(space, capacity);
  for (const auto& bad : bad_queries()) {
    // Risk-aware rejections overlap (the index refuses them anyway); the
    // malformed fields must throw regardless.
    EXPECT_THROW(index.query(bad.demand, bad.constraints),
                 std::invalid_argument)
        << "demand=" << bad.demand;
  }
  EXPECT_NO_THROW(index.query(1e12, Constraints{}));
}

TEST(QueryValidation, RecommendRejectsMalformedQueries) {
  const ConfigurationSpace space(std::vector<int>(9, 1));
  const auto capacity = small_capacity();
  const std::vector<double> hourly = ec2_hourly_costs();
  for (const auto& bad : bad_queries()) {
    EXPECT_THROW(recommend(space, capacity, hourly, bad.demand,
                           bad.constraints, PickStrategy::kBalanced),
                 std::invalid_argument)
        << "demand=" << bad.demand;
  }
}

TEST(QueryValidation, CeliaEntryPointsRejectMalformedQueries) {
  celia::cloud::CloudProvider provider(2017);
  const auto app = celia::apps::make_galaxy();
  const Celia celia = Celia::build(*app, provider);
  const celia::apps::AppParams params{4096, 1000};

  EXPECT_THROW(celia.min_cost_configuration(params, kNaN),
               std::invalid_argument);
  EXPECT_THROW(celia.min_cost_configuration(params, -24.0),
               std::invalid_argument);
  EXPECT_THROW(celia.select(params, kNaN, 100.0), std::invalid_argument);
  EXPECT_THROW(celia.select(params, -1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(celia.select(params, 24.0, kNaN), std::invalid_argument);
  EXPECT_THROW(celia.select(params, 24.0, -100.0), std::invalid_argument);
}

}  // namespace
