// Tests for the x264 elastic application: the instrumented kernel's
// operation ledger must agree EXACTLY with the closed-form demand, and the
// demand shape must be linear in n and quadratic in f (paper Fig. 2(a,d)).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/x264/encoder.hpp"
#include "apps/x264/x264_app.hpp"
#include "fit/model_select.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::apps::x264;
using celia::apps::AppParams;
using celia::hw::OpClass;
using celia::hw::PerfCounter;

TEST(X264Encoder, Dct8PreservesEnergy) {
  // DCT-II with orthonormal scaling preserves the L2 norm.
  celia::util::Xoshiro256 rng(1);
  double input[8], output[8];
  for (auto& v : input) v = rng.uniform(-1.0, 1.0);
  PerfCounter counter;
  dct8(input, output, counter);
  double in2 = 0, out2 = 0;
  for (int i = 0; i < 8; ++i) {
    in2 += input[i] * input[i];
    out2 += output[i] * output[i];
  }
  EXPECT_NEAR(in2, out2, 1e-9);
}

TEST(X264Encoder, Dct8OfConstantIsDcOnly) {
  double input[8], output[8];
  for (auto& v : input) v = 3.0;
  PerfCounter counter;
  dct8(input, output, counter);
  EXPECT_NEAR(output[0], 3.0 * std::sqrt(8.0), 1e-9);
  for (int k = 1; k < 8; ++k) EXPECT_NEAR(output[k], 0.0, 1e-9);
}

TEST(X264Encoder, MotionSearchFindsExactMatch) {
  // A reference identical to the block: candidate 0 (zero shift) has
  // SAD 0 and must win.
  celia::util::Xoshiro256 rng(11);
  const Block block = make_block(rng);
  PerfCounter counter;
  EXPECT_EQ(motion_search(block, block, counter), 0);
}

TEST(X264Encoder, MotionSearchFindsShiftedMatch) {
  celia::util::Xoshiro256 rng(12);
  const Block reference = make_block(rng);
  // Build the block as reference shifted by candidate 3 (shift 12).
  Block block;
  for (int i = 0; i < 64; ++i) block[i] = reference[(i + 12) % 64];
  PerfCounter counter;
  EXPECT_EQ(motion_search(block, reference, counter), 3);
}

TEST(X264Encoder, BlockLedgerMatchesClosedForm) {
  celia::util::Xoshiro256 rng(2);
  for (const int f : {1, 10, 25, 50}) {
    const Block block = make_block(rng);
    const Block reference = make_block(rng);
    PerfCounter measured;
    encode_block(block, reference, f, measured);
    const PerfCounter expected = block_ops(f);
    for (int i = 0; i < celia::hw::kNumOpClasses; ++i) {
      const auto op = static_cast<OpClass>(i);
      EXPECT_EQ(measured.ops(op), expected.ops(op))
          << "f=" << f << " op=" << celia::hw::op_class_name(op);
    }
  }
}

TEST(X264Encoder, ClipLedgerMatchesClosedForm) {
  const ClipModel model = ClipModel::mini();
  for (const int f : {10, 30}) {
    PerfCounter measured;
    encode_clip(model, f, /*seed=*/7, measured);
    EXPECT_EQ(measured.instructions(), clip_ops(model, f).instructions())
        << "f=" << f;
  }
}

TEST(X264Encoder, InvalidCompressionFactorThrows) {
  celia::util::Xoshiro256 rng(3);
  const Block block = make_block(rng);
  PerfCounter counter;
  EXPECT_THROW(encode_block(block, block, 0, counter),
               std::invalid_argument);
}

TEST(X264App, InstrumentedRunMatchesExactDemand) {
  const X264App app{ClipModel::mini()};
  for (const AppParams params : {AppParams{1, 10}, AppParams{3, 20},
                                 AppParams{2, 50}}) {
    PerfCounter counter;
    app.run_instrumented(params, counter);
    EXPECT_DOUBLE_EQ(static_cast<double>(counter.instructions()),
                     app.exact_demand(params))
        << "n=" << params.n << " f=" << params.a;
  }
}

TEST(X264App, DemandIsLinearInN) {
  const X264App app{ClipModel::mini()};
  const double d1 = app.exact_demand({1, 20});
  for (const double n : {2.0, 5.0, 17.0})
    EXPECT_DOUBLE_EQ(app.exact_demand({n, 20}), n * d1);
}

TEST(X264App, DemandShapeDetectedQuadraticInF) {
  const X264App app{ClipModel::mini()};
  std::vector<celia::fit::Sample> samples;
  for (const double f : {10, 15, 20, 25, 30, 35, 40, 45, 50})
    samples.push_back({f, app.exact_demand({4, f})});
  EXPECT_EQ(celia::fit::detect_shape(samples).shape,
            celia::fit::Shape::kQuadratic);
}

TEST(X264App, FullScaleClipCalibration) {
  // Full-scale per-clip demand at f=10 is ~50 G instructions + the
  // f-squared refinement term (DESIGN.md calibration).
  const X264App app{ClipModel::full()};
  const double per_clip = app.exact_demand({1, 10});
  EXPECT_GT(per_clip, 4.5e10);
  EXPECT_LT(per_clip, 6.5e10);
}

TEST(X264App, WorkloadIsIndependentTasks) {
  const X264App app{ClipModel::mini()};
  const auto workload = app.make_workload({6, 20});
  EXPECT_EQ(workload.pattern, celia::apps::ParallelPattern::kIndependentTasks);
  EXPECT_EQ(workload.task_instructions.size(), 6u);
  double sum = 0;
  for (const double t : workload.task_instructions) sum += t;
  EXPECT_DOUBLE_EQ(sum, workload.total_instructions);
  EXPECT_DOUBLE_EQ(workload.total_instructions, app.exact_demand({6, 20}));
}

TEST(X264App, InvalidParamsThrow) {
  const X264App app{ClipModel::mini()};
  EXPECT_THROW(app.exact_demand({0, 20}), std::invalid_argument);
  EXPECT_THROW(app.exact_demand({4, 0}), std::invalid_argument);
  EXPECT_THROW(app.exact_demand({4, 52}), std::invalid_argument);
}

TEST(X264App, ProfileGridMatchesPaperRanges) {
  const X264App app{ClipModel::mini()};
  const auto grid = app.profile_grid();
  EXPECT_EQ(grid.size(), 25u);
  for (const auto& params : grid) {
    EXPECT_GE(params.n, 2);
    EXPECT_LE(params.n, 32);
    EXPECT_GE(params.a, 10);
    EXPECT_LE(params.a, 50);
  }
}

TEST(X264App, Metadata) {
  const X264App app;
  EXPECT_EQ(app.name(), "x264");
  EXPECT_EQ(app.domain(), "video compression");
  EXPECT_EQ(app.workload_class(),
            celia::hw::WorkloadClass::kVideoEncoding);
}

}  // namespace
