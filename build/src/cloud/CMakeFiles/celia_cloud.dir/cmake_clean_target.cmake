file(REMOVE_RECURSE
  "libcelia_cloud.a"
)
