# Empty dependencies file for example_cluster_trace_viewer.
# This may be replaced when dependencies are built.
