// Microbenchmark M2: Pareto-filter algorithms on point sets up to the
// millions-of-feasible-configurations scale of Figure 4.

#include <benchmark/benchmark.h>

#include "bench_io.hpp"

#include "core/pareto.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::core;

std::vector<CostTimePoint> random_points(std::size_t n, std::uint64_t seed) {
  celia::util::Xoshiro256 rng(seed);
  std::vector<CostTimePoint> points;
  points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Anti-correlated cloud-like cloud of points.
    const double time = rng.uniform(1.0, 24.0);
    const double cost = 400.0 / time * rng.uniform(0.5, 2.0);
    points.push_back({i, time * 3600.0, cost});
  }
  return points;
}

void BM_ParetoFilter(benchmark::State& state) {
  const auto points =
      random_points(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto copy = points;
    benchmark::DoNotOptimize(pareto_filter(std::move(copy)).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ParetoFilter)->Range(1 << 10, 1 << 21)
    ->Unit(benchmark::kMillisecond);

void BM_EpsilonNondominated(benchmark::State& state) {
  const auto points =
      random_points(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto copy = points;
    benchmark::DoNotOptimize(
        epsilon_nondominated(std::move(copy), 600.0, 2.0).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EpsilonNondominated)->Range(1 << 10, 1 << 21)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CELIA_BENCHMARK_MAIN("pareto");
