#include "hw/local_server.hpp"

#include <algorithm>
#include <stdexcept>

namespace celia::hw {

double LocalServer::runtime_seconds(std::uint64_t instructions,
                                    WorkloadClass workload,
                                    int threads) const {
  if (threads <= 0)
    throw std::invalid_argument("LocalServer: threads must be positive");
  const int used = std::min(threads, hardware_threads());
  const double rate = vcpu_rate(model_.microarch, workload) * used;
  return static_cast<double>(instructions) / rate;
}

}  // namespace celia::hw
