#pragma once
// serve::LatencySloProbe — the admission controller's view of "are we
// meeting the latency SLO right now?".
//
// Envoy-style overload managers act on a recent-window latency signal,
// not the lifetime distribution: a service that was fast for an hour and
// is drowning now must shed NOW. The probe therefore keeps a private
// fixed-bucket histogram of the completions in the current TUMBLING
// window (`stride` completions per window); when a window fills it
// computes the window's p50/p99 via obs::quantile_from_buckets and
// latches whether p99 exceeded the SLO. The latched verdict is one
// relaxed atomic load on the submit path — admission never takes the
// probe mutex unless it is the completion that seals a window.
//
// Deterministic by construction: windows are counted in completions (not
// wall time), quantile math is the exact bucket interpolation pinned by
// obs_percentile_test.cpp, and no system clock is consulted — so a
// simulated-clock test or a replayed trace produces the same shed
// decisions every run.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace celia::serve {

class LatencySloProbe {
 public:
  /// `bounds` are ascending histogram bucket bounds (empty = the shared
  /// obs::latency_bounds_seconds()); `slo_seconds` the p99 objective
  /// (infinity disables breaching); `stride` the completions per window
  /// (>= 1, throws std::invalid_argument otherwise).
  LatencySloProbe(double slo_seconds, std::size_t stride,
                  std::span<const double> bounds = {});

  LatencySloProbe(const LatencySloProbe&) = delete;
  LatencySloProbe& operator=(const LatencySloProbe&) = delete;

  /// Record one served request's latency. The completion that fills the
  /// current window seals it: window quantiles are recomputed and the
  /// breached() verdict re-latched (with a fresh shed allowance of
  /// `stride` when the window breached).
  void record(double seconds);

  /// Did the last sealed window's p99 exceed the SLO? One relaxed load.
  bool breached() const {
    return breached_.load(std::memory_order_relaxed);
  }

  /// Admission-control hook: should THIS arriving request be shed?
  /// Consumes one unit of the breached window's shed allowance. The
  /// allowance is bounded (`stride` sheds per breached window) so a
  /// breach can never latch forever: once it is spent the probe re-admits
  /// on probation — the probation completions seal the next window, which
  /// either recovers or re-arms the allowance. Fast path (not breached)
  /// is one relaxed load.
  bool should_shed();

  /// Quantiles of the last sealed window (zero until a window seals).
  obs::LatencyQuantiles window() const;

  double slo_seconds() const { return slo_seconds_; }

 private:
  const double slo_seconds_;
  const std::size_t stride_;
  std::vector<double> bounds_;

  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // current (unsealed) window
  std::size_t in_window_ = 0;
  std::size_t shed_allowance_ = 0;  // sheds left before probation
  obs::LatencyQuantiles sealed_{};
  std::atomic<bool> breached_{false};
};

}  // namespace celia::serve
