// Tests for cloud/api_faults.hpp and CloudProvider::provision_resilient:
// model validation, seeded-draw determinism, the inert-model bit-identity
// guarantee, and the typed control-plane fault paths (throttling,
// transient errors, brownouts, capacity windows, breaker and deadline
// interaction).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cloud/api_faults.hpp"
#include "cloud/catalog.hpp"
#include "cloud/provider.hpp"
#include "util/resilience.hpp"

namespace {

using namespace celia::cloud;
using celia::util::BackoffPolicy;
using celia::util::CircuitBreaker;
using celia::util::DeadlineBudget;
using celia::util::TokenBucket;

ApiFaultModel throttling_model(double probability, std::uint64_t seed = 7) {
  ApiFaultModel model;
  model.seed = seed;
  model.throttle_probability = probability;
  return model;
}

// ------------------------------------------------------------ the model --

TEST(ApiFaultModel, InertDetectsAnyActiveField) {
  EXPECT_TRUE(ApiFaultModel{}.inert());
  EXPECT_FALSE(throttling_model(0.1).inert());
  ApiFaultModel transient;
  transient.transient_error_probability = 0.1;
  EXPECT_FALSE(transient.inert());
  ApiFaultModel capacity;
  capacity.capacity_windows.push_back({0, 0.0, 10.0, 1});
  EXPECT_FALSE(capacity.inert());
  ApiFaultModel brownout;
  brownout.brownouts.push_back({0.0, 10.0});
  EXPECT_FALSE(brownout.inert());
}

TEST(ApiFaultModel, ValidateRejectsMalformedModels) {
  EXPECT_THROW(validate(throttling_model(1.5)), std::invalid_argument);
  EXPECT_THROW(validate(throttling_model(-0.1)), std::invalid_argument);

  ApiFaultModel inverted;
  inverted.capacity_windows.push_back({0, 10.0, 5.0, 1});
  EXPECT_THROW(validate(inverted), std::invalid_argument);

  ApiFaultModel negative_limit;
  negative_limit.capacity_windows.push_back({0, 0.0, 10.0, -1});
  EXPECT_THROW(validate(negative_limit), std::invalid_argument);

  ApiFaultModel bad_brownout;
  bad_brownout.brownouts.push_back({-1.0, 10.0});
  EXPECT_THROW(validate(bad_brownout), std::invalid_argument);

  // Catalog-aware checks: type index range and limit consistency.
  const Catalog& table3 = Catalog::ec2_table3();
  ApiFaultModel bad_type;
  bad_type.capacity_windows.push_back({table3.size(), 0.0, 10.0, 1});
  EXPECT_NO_THROW(validate(bad_type));  // without a catalog: unknown range
  EXPECT_THROW(validate(bad_type, &table3), std::invalid_argument);
  ApiFaultModel over_limit;
  over_limit.capacity_windows.push_back({0, 0.0, 10.0, table3.limit(0) + 1});
  EXPECT_THROW(validate(over_limit, &table3), std::invalid_argument);
}

TEST(ApiFaultModel, DrawsAreDeterministicAndChannelIndependent) {
  ApiFaultModel model = throttling_model(0.3);
  model.transient_error_probability = 0.2;
  for (std::uint64_t request = 0; request < 64; ++request) {
    EXPECT_EQ(api_throttled(model, request), api_throttled(model, request));
    EXPECT_EQ(api_transient_error(model, request),
              api_transient_error(model, request));
  }
  // Raising the transient probability never perturbs the throttle
  // timeline (independent channels).
  ApiFaultModel more_transient = model;
  more_transient.transient_error_probability = 0.9;
  for (std::uint64_t request = 0; request < 64; ++request)
    EXPECT_EQ(api_throttled(model, request),
              api_throttled(more_transient, request));
  // And a different seed gives a different timeline somewhere.
  ApiFaultModel reseeded = model;
  reseeded.seed = model.seed + 1;
  bool differs = false;
  for (std::uint64_t request = 0; request < 256 && !differs; ++request)
    differs = api_throttled(model, request) != api_throttled(reseeded, request);
  EXPECT_TRUE(differs);
}

TEST(ApiFaultModel, EffectiveLimitTakesTheCoveringMinimum) {
  ApiFaultModel model;
  model.capacity_windows.push_back({2, 10.0, 20.0, 3});
  model.capacity_windows.push_back({2, 15.0, 30.0, 1});
  model.capacity_windows.push_back({4, 0.0, 100.0, 0});
  EXPECT_EQ(effective_limit(model, 2, 5.0, 5), 5);    // before any window
  EXPECT_EQ(effective_limit(model, 2, 10.0, 5), 3);   // first window
  EXPECT_EQ(effective_limit(model, 2, 17.0, 5), 1);   // overlap: minimum
  EXPECT_EQ(effective_limit(model, 2, 20.0, 5), 1);   // first ended
  EXPECT_EQ(effective_limit(model, 2, 30.0, 5), 5);   // both ended
  EXPECT_EQ(effective_limit(model, 3, 17.0, 5), 5);   // other type untouched
  EXPECT_EQ(effective_limit(model, 4, 50.0, 5), 0);   // fully drained
}

TEST(ApiFaultModel, BrownoutWindowsAreHalfOpen) {
  ApiFaultModel model;
  model.brownouts.push_back({10.0, 20.0});
  EXPECT_FALSE(in_brownout(model, 9.999));
  EXPECT_TRUE(in_brownout(model, 10.0));
  EXPECT_TRUE(in_brownout(model, 19.999));
  EXPECT_FALSE(in_brownout(model, 20.0));
}

TEST(ApiFaultModel, ErrorKindNamesAndRetryability) {
  EXPECT_EQ(api_error_name(ApiErrorKind::kRequestLimitExceeded),
            "RequestLimitExceeded");
  EXPECT_EQ(api_error_name(ApiErrorKind::kInsufficientCapacity),
            "InsufficientCapacity");
  EXPECT_EQ(api_error_name(ApiErrorKind::kServiceUnavailable),
            "ServiceUnavailable");
  EXPECT_EQ(api_error_name(ApiErrorKind::kRegionalBrownout),
            "RegionalBrownout");
  EXPECT_TRUE(api_error_retryable(ApiErrorKind::kRequestLimitExceeded));
  EXPECT_TRUE(api_error_retryable(ApiErrorKind::kServiceUnavailable));
  EXPECT_TRUE(api_error_retryable(ApiErrorKind::kRegionalBrownout));
  EXPECT_FALSE(api_error_retryable(ApiErrorKind::kInsufficientCapacity));
}

// ------------------------------------------- inert-model bit identity --

std::vector<int> two_of_each_small() {
  std::vector<int> counts(Catalog::ec2_table3().size(), 0);
  counts[0] = 2;
  counts[3] = 2;
  counts[6] = 1;
  return counts;
}

TEST(ProvisionResilient, InertModelIsBitIdenticalToProvisionWithFaults) {
  FaultModel data_faults;
  data_faults.boot_failure_probability = 0.3;
  data_faults.boot_timeout_seconds = 45.0;
  data_faults.boot_delay_seconds = 30.0;
  data_faults.gray_probability = 0.2;
  data_faults.gray_slowdown = 0.7;

  CloudProvider legacy(2017), resilient(2017);
  const ProvisionResult expected =
      legacy.provision_with_faults(two_of_each_small(), data_faults);
  ResilientProvisionOptions options;
  options.faults = data_faults;
  const ProvisionOutcome outcome =
      resilient.provision_resilient(two_of_each_small(), options);

  EXPECT_TRUE(outcome.complete);
  EXPECT_FALSE(outcome.deadline_exhausted);
  EXPECT_TRUE(outcome.errors.empty());
  EXPECT_EQ(outcome.api.throttled, 0u);
  ASSERT_EQ(outcome.instances.size(), expected.instances.size());
  for (std::size_t i = 0; i < expected.instances.size(); ++i) {
    EXPECT_EQ(outcome.instances[i].instance_id,
              expected.instances[i].instance_id);
    EXPECT_EQ(outcome.instances[i].type_index,
              expected.instances[i].type_index);
    EXPECT_EQ(outcome.instances[i].speed_factor,
              expected.instances[i].speed_factor);
  }
  EXPECT_EQ(outcome.ready_seconds, expected.ready_seconds);
  EXPECT_EQ(outcome.report.requested, expected.report.requested);
  EXPECT_EQ(outcome.report.provisioned, expected.report.provisioned);
  EXPECT_EQ(outcome.report.boot_failures, expected.report.boot_failures);
  EXPECT_EQ(outcome.report.retries, expected.report.retries);
  EXPECT_EQ(outcome.report.ready_seconds, expected.report.ready_seconds);
  EXPECT_EQ(outcome.report.wasted_boot_seconds,
            expected.report.wasted_boot_seconds);
  EXPECT_EQ(outcome.report.retry_delays, expected.report.retry_delays);
}

TEST(ProvisionResilient, ValidatesInputLikeLegacyProvisioning) {
  CloudProvider provider(1);
  EXPECT_THROW(provider.provision_resilient(
                   std::vector<int>(Catalog::ec2_table3().size(), 0)),
               std::invalid_argument);
  EXPECT_THROW(provider.provision_resilient({1, 2}), std::invalid_argument);
  std::vector<int> over(Catalog::ec2_table3().size(), 0);
  over[0] = Catalog::ec2_table3().limit(0) + 1;
  EXPECT_THROW(provider.provision_resilient(over), std::invalid_argument);
  ResilientProvisionOptions bad;
  bad.api_faults = throttling_model(2.0);
  EXPECT_THROW(provider.provision_resilient(two_of_each_small(), bad),
               std::invalid_argument);
}

// ----------------------------------------------- typed fault behaviors --

TEST(ProvisionResilient, ThrottlingRetriesAndAdvancesTheClock) {
  ResilientProvisionOptions options;
  options.api_faults = throttling_model(0.5, 11);
  CloudProvider provider(3);
  const ProvisionOutcome outcome =
      provider.provision_resilient(two_of_each_small(), options);
  // With p=0.5 over 5 instances some throttling is effectively certain.
  ASSERT_GT(outcome.api.throttled, 0u);
  EXPECT_GT(outcome.api.backoff_seconds, 0.0);
  EXPECT_GT(outcome.finished_at, 0.0);
  for (const ApiError& error : outcome.errors)
    EXPECT_EQ(error.kind, ApiErrorKind::kRequestLimitExceeded);
  // Every provisioned instance became ready after the call start.
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.instances.size(), 5u);
}

TEST(ProvisionResilient, ReplaysBitIdenticallyFromTheSameSeeds) {
  ResilientProvisionOptions options;
  options.api_faults = throttling_model(0.4, 99);
  options.api_faults.transient_error_probability = 0.2;
  options.faults.boot_failure_probability = 0.2;
  options.faults.boot_timeout_seconds = 30.0;

  const auto run = [&] {
    CloudProvider provider(5);
    return provider.provision_resilient(two_of_each_small(), options);
  };
  const ProvisionOutcome a = run(), b = run();
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].kind, b.errors[i].kind);
    EXPECT_EQ(a.errors[i].at_seconds, b.errors[i].at_seconds);
  }
  EXPECT_EQ(a.api.calls, b.api.calls);
  EXPECT_EQ(a.api.backoff_seconds, b.api.backoff_seconds);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.ready_seconds, b.ready_seconds);
  EXPECT_EQ(a.report.retry_delays, b.report.retry_delays);
}

TEST(ProvisionResilient, CapacityWindowShortfallsAreReportedNotThrown) {
  const Catalog& table3 = Catalog::ec2_table3();
  ResilientProvisionOptions options;
  // Type 0's pool holds only 1 instance for the whole call.
  options.api_faults.capacity_windows.push_back({0, 0.0, 1e9, 1});

  std::vector<int> counts(table3.size(), 0);
  counts[0] = 4;
  counts[1] = 2;
  CloudProvider provider(8);
  const ProvisionOutcome outcome =
      provider.provision_resilient(counts, options);

  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.acquired[0], 1);
  EXPECT_EQ(outcome.shortfall[0], 3);
  EXPECT_EQ(outcome.acquired[1], 2);
  EXPECT_EQ(outcome.shortfall[1], 0);
  EXPECT_EQ(outcome.observed_limits[0], 1);
  EXPECT_EQ(outcome.observed_limits[1], table3.limit(1));
  EXPECT_EQ(outcome.api.capacity_rejections, 1u);  // one rejection, then stop
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_EQ(outcome.errors[0].kind, ApiErrorKind::kInsufficientCapacity);
  EXPECT_EQ(outcome.instances.size(), 3u);
}

TEST(ProvisionResilient, BreakerOpensDuringBrownoutAndBoundsCalls) {
  ResilientProvisionOptions options;
  options.api_faults.brownouts.push_back({0.0, 1e9});  // region down forever
  CircuitBreaker::Policy policy;
  policy.failure_threshold = 3;
  policy.open_seconds = 1e12;  // never re-probes within this call
  CircuitBreaker breaker(policy);
  options.breaker = &breaker;
  options.backoff.max_attempts = 6;

  std::vector<int> counts(Catalog::ec2_table3().size(), 0);
  counts[0] = 3;
  CloudProvider provider(13);
  const ProvisionOutcome outcome =
      provider.provision_resilient(counts, options);

  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.instances.size(), 0u);
  // The breaker opened after `failure_threshold` real calls; every later
  // attempt was vetoed locally without reaching the API.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(outcome.api.calls, 3u);
  EXPECT_EQ(outcome.api.brownout_rejections, 3u);
  EXPECT_GT(outcome.api.breaker_rejections, 0u);
  EXPECT_EQ(breaker.stats().opened, 1u);
}

TEST(ProvisionResilient, DeadlineBudgetCutsRetriesShort) {
  ResilientProvisionOptions options;
  options.api_faults = throttling_model(1.0, 21);  // every call throttled
  options.deadline = DeadlineBudget::until(5.0);
  options.backoff.initial_seconds = 2.0;
  options.backoff.max_attempts = 50;

  std::vector<int> counts(Catalog::ec2_table3().size(), 0);
  counts[0] = 2;
  CloudProvider provider(17);
  const ProvisionOutcome outcome =
      provider.provision_resilient(counts, options);

  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.deadline_exhausted);
  EXPECT_EQ(outcome.instances.size(), 0u);
  EXPECT_EQ(outcome.shortfall[0], 2);
  // The clock never ran past the absolute deadline.
  EXPECT_LE(outcome.finished_at, 5.0);
}

TEST(ProvisionResilient, RetryBudgetBoundsRetryAmplification) {
  // Every call throttled: an unbudgeted loop burns max_attempts calls per
  // instance; with an empty budget (ratio 0) every re-attempt is vetoed,
  // so each chain stops after its first call instead of amplifying the
  // outage.
  ResilientProvisionOptions options;
  options.api_faults = throttling_model(1.0, 31);
  options.backoff.max_attempts = 6;
  std::vector<int> counts(Catalog::ec2_table3().size(), 0);
  counts[0] = 3;

  CloudProvider baseline(29);
  const ProvisionOutcome unbounded =
      baseline.provision_resilient(counts, options);
  EXPECT_FALSE(unbounded.complete);
  EXPECT_EQ(unbounded.api.calls, 18u);  // 3 instances x 6 attempts
  EXPECT_EQ(unbounded.api.retry_budget_vetoes, 0u);

  celia::util::RetryBudget::Policy policy;
  policy.ratio = 0.0;
  celia::util::RetryBudget budget(policy);
  options.retry_budget = &budget;
  CloudProvider bounded(29);
  const ProvisionOutcome vetoed =
      bounded.provision_resilient(counts, options);
  EXPECT_FALSE(vetoed.complete);
  EXPECT_EQ(vetoed.instances.size(), 0u);
  EXPECT_EQ(vetoed.api.calls, 3u);  // one original call per instance
  EXPECT_EQ(vetoed.api.retry_budget_vetoes, 3u);
  EXPECT_EQ(vetoed.shortfall[0], 3);
  EXPECT_EQ(budget.stats().deposits, 3u);
  EXPECT_EQ(budget.stats().withdrawals, 0u);
  EXPECT_EQ(budget.stats().vetoes, 3u);
}

TEST(ProvisionResilient, RateLimiterSpacesCallsDeterministically) {
  ResilientProvisionOptions options;
  TokenBucket bucket(1.0, 0.5);  // one call per 2 simulated seconds
  options.rate_limiter = &bucket;
  std::vector<int> counts(Catalog::ec2_table3().size(), 0);
  counts[0] = 3;
  CloudProvider provider(23);
  const ProvisionOutcome outcome =
      provider.provision_resilient(counts, options);
  EXPECT_TRUE(outcome.complete);
  // First call free (burst token), the next two wait 2 s each.
  EXPECT_DOUBLE_EQ(outcome.api.rate_limited_seconds, 4.0);
  EXPECT_DOUBLE_EQ(outcome.finished_at, 4.0);
  EXPECT_DOUBLE_EQ(outcome.ready_seconds[0], 0.0);
  EXPECT_DOUBLE_EQ(outcome.ready_seconds[1], 2.0);
  EXPECT_DOUBLE_EQ(outcome.ready_seconds[2], 4.0);
}

}  // namespace
