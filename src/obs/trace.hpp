#pragma once
// Structured tracing: RAII spans (wall clock) plus explicit-timestamp
// recording for simulated-time events, exported as chrome://tracing /
// Perfetto JSON ({"traceEvents":[...]}).
//
// Two recording modes share one event store:
//  * Span — RAII, wall-clock. Nesting is implicit: spans on the same
//    thread emit complete ('X') events whose [ts, ts+dur) ranges nest, and
//    chrome://tracing reconstructs the parent/child stacks from that. A
//    per-thread depth counter is kept so snapshots can report nesting
//    without a viewer.
//  * record_complete / record_instant — explicit timestamps (microseconds)
//    and track ids. ClusterExecutor runs in *simulated* time, so its
//    Gantt events pass simulator timestamps and instance ids as tracks,
//    producing a per-node Gantt chart in the trace viewer.
//
// Tracing is OFF by default (spans cost one relaxed load when disabled);
// enable with set_tracing_enabled(true). Events land in per-thread
// buffers (no locks on the hot path; a mutex guards only buffer
// registration) capped at kMaxEventsPerThread — overflow increments the
// celia_obs_trace_dropped_total counter instead of growing without bound.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace celia::obs {

/// One chrome-trace event. phase 'X' = complete (has dur), 'i' = instant.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  std::int64_t ts_us = 0;   // microseconds (wall or simulated)
  std::int64_t dur_us = 0;  // complete events only
  std::uint64_t tid = 0;    // track: real thread or simulated instance id
  int depth = 0;            // span nesting depth at emit time (0 = root)
};

/// Buffer cap per thread; events beyond it are counted as dropped.
inline constexpr std::size_t kMaxEventsPerThread = 1 << 16;

bool tracing_enabled() noexcept;
void set_tracing_enabled(bool enabled) noexcept;

/// Monotonic wall-clock now in microseconds (the Span timebase).
std::int64_t trace_now_us() noexcept;

/// RAII wall-clock span. Emits one complete event (on this thread's track)
/// when destroyed. Cheap no-op while tracing is disabled. Name/category
/// must outlive the span (string literals at every call site).
class Span {
 public:
  Span(std::string_view name, std::string_view category) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string_view name_;
  std::string_view category_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

/// Record a complete ('X') event with an explicit timestamp and track —
/// for simulated-time work (executor task runs, BSP steps).
void record_complete(std::string_view name, std::string_view category,
                     std::int64_t ts_us, std::int64_t dur_us,
                     std::uint64_t tid);

/// Record an instant ('i') event — for point occurrences (redispatch,
/// checkpoint, rollback, node crash).
void record_instant(std::string_view name, std::string_view category,
                    std::int64_t ts_us, std::uint64_t tid);

/// All events recorded so far (every thread's buffer, ts-sorted).
std::vector<TraceEvent> trace_snapshot();

/// Events dropped because a per-thread buffer was full.
std::uint64_t trace_dropped_count() noexcept;

/// Drop all recorded events (buffers stay registered).
void clear_trace();

/// chrome://tracing JSON: {"traceEvents":[{"name":...,"cat":...,
/// "ph":"X"|"i","ts":...,"dur":...,"pid":1,"tid":...},...]}.
/// Load in chrome://tracing or https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& os);
std::string write_chrome_trace();

}  // namespace celia::obs
