#include "core/analysis.hpp"

#include <stdexcept>

namespace celia::core {

namespace {

ScalingPoint min_cost_point(const Celia& celia, const apps::AppParams& params,
                            double deadline_hours, double swept_value,
                            const SweepOptions& options) {
  ScalingPoint point;
  point.value = swept_value;
  const auto best =
      celia.min_cost_configuration(params, deadline_hours, options);
  if (best.has_value()) {
    point.feasible = true;
    point.min_cost = best->cost;
    point.config_index = best->config_index;
    point.seconds = best->seconds;
  }
  return point;
}

}  // namespace

std::vector<ScalingPoint> problem_size_scaling(const Celia& celia,
                                               double fixed_accuracy,
                                               std::span<const double> sizes,
                                               double deadline_hours,
                                               SweepOptions options) {
  std::vector<ScalingPoint> curve;
  curve.reserve(sizes.size());
  for (const double n : sizes)
    curve.push_back(
        min_cost_point(celia, {n, fixed_accuracy}, deadline_hours, n, options));
  return curve;
}

std::vector<ScalingPoint> accuracy_scaling(const Celia& celia,
                                           double fixed_size,
                                           std::span<const double> accuracies,
                                           double deadline_hours,
                                           SweepOptions options) {
  std::vector<ScalingPoint> curve;
  curve.reserve(accuracies.size());
  for (const double a : accuracies)
    curve.push_back(
        min_cost_point(celia, {fixed_size, a}, deadline_hours, a, options));
  return curve;
}

std::vector<ScalingPoint> deadline_tightening(
    const Celia& celia, const apps::AppParams& params,
    std::span<const double> deadlines_hours, SweepOptions options) {
  std::vector<ScalingPoint> curve;
  curve.reserve(deadlines_hours.size());
  for (const double deadline : deadlines_hours)
    curve.push_back(min_cost_point(celia, params, deadline, deadline, options));
  return curve;
}

ParetoSpan pareto_span(std::span<const CostTimePoint> frontier) {
  if (frontier.empty())
    throw std::invalid_argument("pareto_span: empty frontier");
  ParetoSpan span;
  span.min_cost = frontier.front().cost;
  span.max_cost = frontier.front().cost;
  for (const auto& point : frontier) {
    span.min_cost = std::min(span.min_cost, point.cost);
    span.max_cost = std::max(span.max_cost, point.cost);
  }
  span.span_ratio = span.min_cost > 0 ? span.max_cost / span.min_cost : 0.0;
  span.saving_fraction =
      span.max_cost > 0 ? 1.0 - span.min_cost / span.max_cost : 0.0;
  return span;
}

}  // namespace celia::core
