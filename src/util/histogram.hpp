#pragma once
// Fixed-bin histogram with ASCII bar rendering — used by the robustness
// ablations to show error distributions.

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace celia::util {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi); values outside are clamped to
  /// the first/last bin. Throws std::invalid_argument on bad bounds.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Render horizontal bars, one line per bin:
  ///   [ 0.0,  5.0) ################ 16
  void print(std::ostream& out, int max_bar_width = 50) const;
  std::string to_string(int max_bar_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace celia::util
