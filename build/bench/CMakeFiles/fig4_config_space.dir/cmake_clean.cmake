file(REMOVE_RECURSE
  "CMakeFiles/fig4_config_space.dir/fig4_config_space.cpp.o"
  "CMakeFiles/fig4_config_space.dir/fig4_config_space.cpp.o.d"
  "fig4_config_space"
  "fig4_config_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_config_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
