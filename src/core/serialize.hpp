#pragma once
// Model persistence.
//
// A CELIA build is the product of a (conceptually expensive) measurement
// campaign — profile runs on the local server plus timed runs on cloud
// instances. Persisting the built model lets a user characterize once and
// re-plan many times without re-measuring. The format is a line-oriented
// text file ("celia-model 1") designed to be diff-able and hand-auditable.

#include <iosfwd>
#include <string>

#include "core/celia.hpp"

namespace celia::core {

/// Current serialization format version.
inline constexpr int kModelFormatVersion = 1;

/// Write `celia` to `out` in the celia-model text format.
void save_model(const Celia& celia, std::ostream& out);

/// Convenience: serialize to a string.
std::string model_to_string(const Celia& celia);

/// Parse a model previously written by save_model. Throws
/// std::runtime_error with a descriptive message on malformed input,
/// version mismatch, or numeric corruption.
Celia load_model(std::istream& in);

Celia model_from_string(const std::string& text);

}  // namespace celia::core
