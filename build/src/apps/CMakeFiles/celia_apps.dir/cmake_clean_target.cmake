file(REMOVE_RECURSE
  "libcelia_apps.a"
)
