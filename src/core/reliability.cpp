#include "core/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cloud/instance_type.hpp"
#include "parallel/parallel_for.hpp"

namespace celia::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void validate(const ReliabilitySpec& spec) {
  if (spec.mtbf_seconds < 0 || spec.recovery_seconds < 0 ||
      spec.checkpoint_interval_seconds < 0 ||
      spec.checkpoint_write_seconds < 0 || spec.survive_losses < 0)
    throw std::invalid_argument("ReliabilitySpec: negative field");
}

double expected_makespan(double base_seconds, int nodes,
                         const ReliabilitySpec& spec) {
  if (spec.mtbf_seconds <= 0 || nodes <= 0 || base_seconds <= 0)
    return base_seconds;
  // Checkpoint-write overhead applies only when writes actually happen
  // (interval shorter than the run); without checkpoints a failure loses
  // half the run in expectation.
  double with_overhead = base_seconds;
  double interval = base_seconds;
  if (spec.checkpoint_interval_seconds > 0 &&
      spec.checkpoint_interval_seconds < base_seconds) {
    interval = spec.checkpoint_interval_seconds;
    with_overhead = base_seconds * (1.0 + spec.checkpoint_write_seconds /
                                              spec.checkpoint_interval_seconds);
  }
  const double lost_per_failure = 0.5 * interval + spec.recovery_seconds;
  const double fleet_rate = static_cast<double>(nodes) / spec.mtbf_seconds;
  const double drag = fleet_rate * lost_per_failure;
  if (drag >= 1.0) return kInf;  // the fleet re-fails faster than it heals
  return with_overhead / (1.0 - drag);
}

std::optional<ReliablePoint> reliable_min_cost(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    std::span<const double> hourly_costs, double demand,
    double deadline_seconds, const ReliabilitySpec& spec,
    parallel::ThreadPool* pool) {
  Constraints as_constraints;
  as_constraints.deadline_seconds = deadline_seconds;
  validate_query(demand, as_constraints);  // same rejection as sweep()
  validate(spec);
  if (space.num_types() != capacity.num_types() ||
      hourly_costs.size() != capacity.num_types())
    throw std::invalid_argument("reliable_min_cost: width mismatch");

  const std::size_t m = space.num_types();
  std::vector<double> rates(m), hourly(m);
  for (std::size_t i = 0; i < m; ++i) {
    rates[i] = capacity.rate(i);
    hourly[i] = hourly_costs[i];
  }
  // Types by descending rate: the k-loss worst case removes the fastest
  // instances first.
  std::vector<std::size_t> by_rate_desc(m);
  std::iota(by_rate_desc.begin(), by_rate_desc.end(), 0);
  std::sort(by_rate_desc.begin(), by_rate_desc.end(),
            [&](std::size_t a, std::size_t b) { return rates[a] > rates[b]; });
  const int k_loss = spec.survive_losses;

  std::mutex merge_mutex;
  std::optional<ReliablePoint> best;
  const auto better = [](const ReliablePoint& a, const ReliablePoint& b) {
    if (a.expected_cost != b.expected_cost)
      return a.expected_cost < b.expected_cost;
    return a.expected_seconds < b.expected_seconds;
  };

  parallel::ForOptions for_options;
  for_options.pool = pool;
  parallel::parallel_for_blocked(
      0, space.size(),
      [&](parallel::BlockedRange range) {
        if (range.empty()) return;
        // Digit-carrying suffix-sum walk as in risk.cpp: aggregates (U,
        // Cu, node count) advance incrementally; the digit vector stays
        // current for the k-loss check.
        const auto& max_counts = space.max_counts();
        std::vector<int> digits(m);
        space.decode_into(range.begin, digits);
        const double rate0 = rates[0];
        const double hourly0 = hourly[0];
        const std::uint64_t row_radix =
            static_cast<std::uint64_t>(max_counts[0]) + 1;

        std::optional<ReliablePoint> local;
        const auto consider = [&](std::uint64_t index, double u, double cu,
                                  int instances, int count0) {
          if (u <= 0) return;
          const double base_seconds = demand / u;
          const double e_seconds =
              expected_makespan(base_seconds, instances, spec);
          if (!(e_seconds < deadline_seconds)) return;
          if (k_loss > 0) {
            if (instances <= k_loss) return;  // losing k kills the fleet
            double removed = 0.0;
            int left = k_loss;
            for (const std::size_t t : by_rate_desc) {
              const int count = t == 0 ? count0 : digits[t];
              if (count == 0) continue;
              const int take = std::min(count, left);
              removed += take * rates[t];
              left -= take;
              if (left == 0) break;
            }
            const double u_survive = u - removed;
            if (!(u_survive > 0) ||
                !(demand / u_survive < deadline_seconds))
              return;
          }
          ReliablePoint point;
          point.config_index = index;
          point.base_seconds = base_seconds;
          point.base_cost = base_seconds / 3600.0 * cu;
          point.expected_seconds = e_seconds;
          point.expected_cost = e_seconds / 3600.0 * cu;
          point.expected_failures =
              spec.mtbf_seconds > 0
                  ? e_seconds * instances / spec.mtbf_seconds
                  : 0.0;
          if (!local || better(point, *local)) local = point;
        };

        std::vector<double> su(m + 1, 0.0), scu(m + 1, 0.0);
        std::vector<int> si(m + 1, 0);
        for (std::size_t i = m; i-- > 1;) {
          su[i] = su[i + 1] + digits[i] * rates[i];
          scu[i] = scu[i + 1] + digits[i] * hourly[i];
          si[i] = si[i + 1] + digits[i];
        }

        std::uint64_t index = range.begin;
        for (;;) {
          double u = su[1], cu = scu[1];
          int instances = si[1];
          const auto k_begin = static_cast<std::uint64_t>(digits[0]);
          for (std::uint64_t k = 0; k < k_begin; ++k) {
            u += rate0;
            cu += hourly0;
            ++instances;
          }
          const std::uint64_t steps =
              std::min<std::uint64_t>(row_radix - k_begin, range.end - index);
          for (std::uint64_t j = 0; j < steps; ++j) {
            consider(index + j, u, cu, instances,
                     static_cast<int>(k_begin + j));
            u += rate0;
            cu += hourly0;
            ++instances;
          }
          index += steps;
          if (index >= range.end) break;
          digits[0] = 0;
          std::size_t i = 1;
          for (; i < m; ++i) {
            if (digits[i] < max_counts[i]) {
              ++digits[i];
              break;
            }
            digits[i] = 0;
          }
          su[i] = su[i + 1] + digits[i] * rates[i];
          scu[i] = scu[i + 1] + digits[i] * hourly[i];
          si[i] = si[i + 1] + digits[i];
          for (std::size_t t = i; t-- > 1;) {
            su[t] = su[t + 1];
            scu[t] = scu[t + 1];
            si[t] = si[t + 1];
          }
        }

        if (local) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          if (!best || better(*local, *best)) best = local;
        }
      },
      for_options);
  return best;
}

std::optional<ReliablePoint> reliable_min_cost(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    double demand, double deadline_seconds, const ReliabilitySpec& spec,
    parallel::ThreadPool* pool) {
  const std::vector<double> hourly = ec2_hourly_costs();
  return reliable_min_cost(space, capacity, hourly, demand, deadline_seconds,
                           spec, pool);
}

}  // namespace celia::core
