#include "core/query.hpp"

namespace celia::core {

Query Query::make(double demand, const Constraints& constraints,
                  SweepOptions options) {
  validate_query(demand, constraints);
  Query query;
  query.demand_ = apps::DemandVector::scalar(demand);
  query.constraints_ = constraints;
  query.options_ = options;
  return query;
}

Query Query::make(const apps::DemandVector& demand,
                  const Constraints& constraints, SweepOptions options) {
  validate_query(demand, constraints);
  Query query;
  query.demand_ = demand;
  query.constraints_ = constraints;
  query.options_ = options;
  return query;
}

Query Query::make(const apps::DemandVector& demand,
                  const apps::DemandDimensions& schema,
                  const Constraints& constraints, SweepOptions options) {
  validate_query(demand, constraints, &schema);
  Query query;
  query.demand_ = demand;
  query.constraints_ = constraints;
  query.options_ = options;
  return query;
}

Query Query::with_options(SweepOptions options) const {
  Query query = *this;
  query.options_ = options;
  return query;
}

std::string_view query_route_name(QueryRoute route) {
  switch (route) {
    case QueryRoute::kSweep:
      return "sweep";
    case QueryRoute::kIndex:
      return "index";
    case QueryRoute::kSharedIndex:
      return "shared_index";
    case QueryRoute::kSweepFallback:
      return "sweep_fallback";
    case QueryRoute::kDegradedSweep:
      return "degraded_sweep";
    case QueryRoute::kTruncatedSweep:
      return "truncated_sweep";
  }
  return "?";
}

}  // namespace celia::core
