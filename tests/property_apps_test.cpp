// Property-style parameterized sweeps over the elastic applications
// (TEST_P / INSTANTIATE_TEST_SUITE_P): the closed-form/instrumented
// agreement and workload invariants must hold across the whole parameter
// grid of every application, not just hand-picked points.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "apps/galaxy/galaxy_app.hpp"
#include "apps/registry.hpp"
#include "apps/sand/sand_app.hpp"
#include "apps/x264/x264_app.hpp"

namespace {

using celia::apps::AppParams;
using celia::apps::ElasticApp;
using celia::apps::ParallelPattern;

// ---------------------------------------------------------------------------
// Ledger agreement across a small parameter grid, per application.
// ---------------------------------------------------------------------------

struct LedgerCase {
  const char* app;  // mini-model factory key
  double n;
  double a;
};

std::unique_ptr<ElasticApp> make_mini(const std::string& name) {
  if (name == "x264") return celia::apps::make_x264_mini();
  if (name == "galaxy") return celia::apps::make_galaxy();
  return celia::apps::make_sand_mini();
}

class LedgerAgreement : public ::testing::TestWithParam<LedgerCase> {};

TEST_P(LedgerAgreement, InstrumentedEqualsClosedForm) {
  const LedgerCase param = GetParam();
  const auto app = make_mini(param.app);
  celia::hw::PerfCounter counter;
  app->run_instrumented({param.n, param.a}, counter, /*seed=*/123);
  EXPECT_DOUBLE_EQ(static_cast<double>(counter.instructions()),
                   app->exact_demand({param.n, param.a}));
}

TEST_P(LedgerAgreement, LedgerIsSeedIndependent) {
  // Operation counts depend only on the parameters, never on the data.
  const LedgerCase param = GetParam();
  const auto app = make_mini(param.app);
  celia::hw::PerfCounter a, b;
  app->run_instrumented({param.n, param.a}, a, /*seed=*/1);
  app->run_instrumented({param.n, param.a}, b, /*seed=*/999);
  EXPECT_EQ(a.instructions(), b.instructions());
}

INSTANTIATE_TEST_SUITE_P(
    X264Grid, LedgerAgreement,
    ::testing::Values(LedgerCase{"x264", 1, 10}, LedgerCase{"x264", 2, 20},
                      LedgerCase{"x264", 3, 35}, LedgerCase{"x264", 1, 50},
                      LedgerCase{"x264", 4, 15}, LedgerCase{"x264", 2, 45}));

INSTANTIATE_TEST_SUITE_P(
    GalaxyGrid, LedgerAgreement,
    ::testing::Values(LedgerCase{"galaxy", 4, 2}, LedgerCase{"galaxy", 16, 3},
                      LedgerCase{"galaxy", 48, 2}, LedgerCase{"galaxy", 9, 7},
                      LedgerCase{"galaxy", 2, 1}, LedgerCase{"galaxy", 96, 1}));

INSTANTIATE_TEST_SUITE_P(
    SandGrid, LedgerAgreement,
    ::testing::Values(LedgerCase{"sand", 8, 0.01}, LedgerCase{"sand", 24, 0.1},
                      LedgerCase{"sand", 64, 0.32}, LedgerCase{"sand", 5, 1.0},
                      LedgerCase{"sand", 40, 0.64},
                      LedgerCase{"sand", 2, 0.5}));

// ---------------------------------------------------------------------------
// Workload invariants for every app at several parameter points.
// ---------------------------------------------------------------------------

class WorkloadInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, double, double>> {
};

TEST_P(WorkloadInvariants, TotalsAndComponentsAreConsistent) {
  const auto [name, n, a] = GetParam();
  const auto app = make_mini(name);
  const celia::apps::Workload workload = app->make_workload({n, a});

  EXPECT_GT(workload.total_instructions, 0.0);
  EXPECT_DOUBLE_EQ(workload.total_instructions, app->exact_demand({n, a}));

  switch (workload.pattern) {
    case ParallelPattern::kIndependentTasks:
    case ParallelPattern::kMasterWorker: {
      double sum = workload.serial_instructions;
      for (const double task : workload.task_instructions) {
        EXPECT_GT(task, 0.0);
        sum += task;
      }
      EXPECT_NEAR(sum, workload.total_instructions,
                  workload.total_instructions * 1e-12 + 1.0);
      break;
    }
    case ParallelPattern::kBulkSynchronous: {
      EXPECT_GT(workload.steps, 0u);
      EXPECT_NEAR(workload.instructions_per_step *
                      static_cast<double>(workload.steps),
                  workload.total_instructions,
                  workload.total_instructions * 1e-12);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, WorkloadInvariants,
    ::testing::Values(std::make_tuple("x264", 5.0, 20.0),
                      std::make_tuple("x264", 1.0, 10.0),
                      std::make_tuple("x264", 33.0, 50.0),
                      std::make_tuple("galaxy", 64.0, 5.0),
                      std::make_tuple("galaxy", 2.0, 1.0),
                      std::make_tuple("galaxy", 1000.0, 3.0),
                      std::make_tuple("sand", 100.0, 0.32),
                      std::make_tuple("sand", 2.0, 1.0),
                      std::make_tuple("sand", 17.0, 0.05)));

// ---------------------------------------------------------------------------
// Demand monotonicity: more problem or more accuracy never costs less.
// ---------------------------------------------------------------------------

class DemandMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(DemandMonotonicity, DemandIncreasesInN) {
  const auto app = make_mini(GetParam());
  const double a = std::string(GetParam()) == "sand" ? 0.32
                   : std::string(GetParam()) == "x264" ? 20
                                                       : 4;
  double previous = 0.0;
  for (const double n : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double demand = app->exact_demand({n, a});
    EXPECT_GT(demand, previous) << "n=" << n;
    previous = demand;
  }
}

TEST_P(DemandMonotonicity, DemandNonDecreasingInAccuracy) {
  const auto app = make_mini(GetParam());
  const std::string name = GetParam();
  const std::vector<double> accuracies =
      name == "sand" ? std::vector<double>{0.01, 0.1, 0.32, 0.64, 1.0}
                     : std::vector<double>{2, 6, 12, 25, 50};
  double previous = 0.0;
  for (const double a : accuracies) {
    const double demand = app->exact_demand({8, a});
    EXPECT_GE(demand, previous) << "a=" << a;
    previous = demand;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, DemandMonotonicity,
                         ::testing::Values("x264", "galaxy", "sand"));

}  // namespace
