// Tests for human-readable formatting (util/format.hpp).

#include <gtest/gtest.h>

#include "util/format.hpp"

namespace {

using namespace celia::util;

TEST(Format, SiPrefixes) {
  EXPECT_EQ(format_si(0.0), "0.00");
  EXPECT_EQ(format_si(999.0), "999.00");
  EXPECT_EQ(format_si(1000.0), "1.00k");
  EXPECT_EQ(format_si(2.5e6), "2.50M");
  EXPECT_EQ(format_si(3.1e9), "3.10G");
  EXPECT_EQ(format_si(4.2e12), "4.20T");
  EXPECT_EQ(format_si(5.0e15), "5.00P");
  EXPECT_EQ(format_si(6.0e18), "6.00E");
}

TEST(Format, SiRespectsDecimals) {
  EXPECT_EQ(format_si(1234.0, 1), "1.2k");
  EXPECT_EQ(format_si(1234.0, 0), "1k");
}

TEST(Format, SiNegativeValues) {
  EXPECT_EQ(format_si(-2.5e6), "-2.50M");
}

TEST(Format, Instructions) {
  EXPECT_EQ(format_instructions(2.23e15), "2.23P instr");
}

TEST(Format, Rate) {
  EXPECT_EQ(format_rate(2.76e9), "2.76G instr/s");
}

TEST(Format, DurationSubMinute) { EXPECT_EQ(format_duration(12.34), "12.3s"); }

TEST(Format, DurationMinutes) { EXPECT_EQ(format_duration(125), "2m 5s"); }

TEST(Format, DurationHours) {
  EXPECT_EQ(format_duration(3600 * 24 + 60 + 1), "24h 1m 1s");
}

TEST(Format, DurationNegative) { EXPECT_EQ(format_duration(-61), "-1m 1s"); }

TEST(Format, Money) {
  EXPECT_EQ(format_money(126.4), "$126.40");
  EXPECT_EQ(format_money(0.105), "$0.10");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.135), "13.5%");
  EXPECT_EQ(format_percent(0.3, 0), "30%");
}

TEST(Format, Commas) {
  EXPECT_EQ(format_with_commas(0), "0");
  EXPECT_EQ(format_with_commas(999), "999");
  EXPECT_EQ(format_with_commas(1000), "1,000");
  EXPECT_EQ(format_with_commas(10077695), "10,077,695");
}

}  // namespace
