#pragma once
// Factory/registry for the three modeled elastic applications.

#include <memory>
#include <string_view>
#include <vector>

#include "apps/elastic_app.hpp"

namespace celia::apps {

/// Full-scale applications, calibrated to the paper's measurements; these
/// are what the benchmark harnesses use.
std::unique_ptr<ElasticApp> make_x264();
std::unique_ptr<ElasticApp> make_galaxy();
std::unique_ptr<ElasticApp> make_sand();

/// The disaggregated-storage OLTP family (multi-dimensional demand; see
/// apps/oltp/oltp_app.hpp): monolithic baseline, Aurora-style
/// log-shipping, Socrates-style page-server split.
std::unique_ptr<ElasticApp> make_oltp_classic();
std::unique_ptr<ElasticApp> make_oltp_aurora();
std::unique_ptr<ElasticApp> make_oltp_socrates();

/// Scaled-down variants whose instrumented runs finish in milliseconds;
/// used by tests to validate closed forms against real kernel execution.
/// (galaxy needs no mini variant: its instrumented cost is set entirely by
/// the n/s arguments.)
std::unique_ptr<ElasticApp> make_x264_mini();
std::unique_ptr<ElasticApp> make_sand_mini();

/// All three full-scale applications (x264, galaxy, sand — paper order).
std::vector<std::unique_ptr<ElasticApp>> all_apps();

/// The three OLTP architectures (classic, aurora, socrates).
std::vector<std::unique_ptr<ElasticApp>> all_oltp_apps();

/// Lookup by name ("x264", "galaxy", "sand", "oltp"/"oltp-classic",
/// "oltp-aurora", "oltp-socrates"); nullptr when unknown.
std::unique_ptr<ElasticApp> make_app(std::string_view name);

}  // namespace celia::apps
