// Tests for the sand genome-assembly application: ledger/closed-form
// agreement, demand shape (linear in n, logarithmic in t — paper
// Fig. 2(c,f)) and the alignment kernel itself.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/sand/align.hpp"
#include "apps/sand/sand_app.hpp"
#include "apps/sand/sequence.hpp"
#include "fit/model_select.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::apps::sand;
using celia::apps::AppParams;
using celia::hw::PerfCounter;

TEST(SandSequence, DeterministicPerSeed) {
  celia::util::Xoshiro256 a(1), b(1);
  EXPECT_EQ(make_sequence(100, a), make_sequence(100, b));
}

TEST(SandSequence, BasesAreValid) {
  celia::util::Xoshiro256 rng(2);
  for (const auto base : make_sequence(1000, rng)) EXPECT_LT(base, 4);
}

TEST(SandSequence, KmerScanLedgerMatchesClosedForm) {
  celia::util::Xoshiro256 rng(3);
  const Sequence read = make_sequence(123, rng);
  PerfCounter measured;
  kmer_scan(read, measured);
  EXPECT_EQ(measured.instructions(), kmer_scan_ops(123).instructions());
}

TEST(SandAlign, IdenticalReadsScoreHighest) {
  celia::util::Xoshiro256 rng(4);
  const Sequence read = make_sequence(60, rng);
  Sequence other = read;
  other[10] ^= 1;  // one mismatch
  PerfCounter counter;
  const int self_score = banded_align(read, read, 8, counter);
  const int other_score = banded_align(read, other, 8, counter);
  EXPECT_GT(self_score, other_score);
  EXPECT_EQ(self_score, 2 * 60);  // all matches on the main diagonal
}

TEST(SandAlign, ScoreIsNonNegative) {
  celia::util::Xoshiro256 rng(5);
  const Sequence a = make_sequence(50, rng);
  const Sequence b = make_sequence(50, rng);
  PerfCounter counter;
  EXPECT_GE(banded_align(a, b, 4, counter), 0);
}

TEST(SandAlign, LedgerMatchesClosedForm) {
  celia::util::Xoshiro256 rng(6);
  const Sequence a = make_sequence(80, rng);
  const Sequence b = make_sequence(80, rng);
  for (const int band : {1, 4, 16}) {
    PerfCounter measured;
    banded_align(a, b, band, measured);
    EXPECT_EQ(measured.instructions(),
              banded_align_ops(80, band).instructions())
        << "band=" << band;
  }
}

TEST(SandAlign, InvalidBandThrows) {
  celia::util::Xoshiro256 rng(7);
  const Sequence a = make_sequence(10, rng);
  PerfCounter counter;
  EXPECT_THROW(banded_align(a, a, 0, counter), std::invalid_argument);
}

TEST(SandModel, BandGrowsWithThreshold) {
  const SandModel model = SandModel::full();
  EXPECT_LT(model.band(0.01), model.band(0.32));
  EXPECT_LT(model.band(0.32), model.band(1.0));
}

TEST(SandModel, BandClampedAtMinimum) {
  SandModel model = SandModel::full();
  model.band_log_coeff = 100.0;  // would go far negative at small t
  EXPECT_EQ(model.band(1e-9), model.min_band);
}

TEST(SandApp, InstrumentedRunMatchesExactDemand) {
  const SandApp app{SandModel::mini()};
  for (const AppParams params :
       {AppParams{16, 0.32}, AppParams{64, 1.0}, AppParams{33, 0.05}}) {
    PerfCounter counter;
    app.run_instrumented(params, counter);
    EXPECT_DOUBLE_EQ(static_cast<double>(counter.instructions()),
                     app.exact_demand(params));
  }
}

TEST(SandApp, CandidatesClampWhenFewReads) {
  // With n = 2 each read has only one partner, not candidates_per_read.
  const SandApp app{SandModel::mini()};
  PerfCounter counter;
  app.run_instrumented({2, 0.32}, counter);
  EXPECT_DOUBLE_EQ(static_cast<double>(counter.instructions()),
                   app.exact_demand({2, 0.32}));
}

TEST(SandApp, DemandIsLinearInN) {
  const SandApp app{SandModel::mini()};
  const double d100 = app.exact_demand({100, 0.32});
  EXPECT_DOUBLE_EQ(app.exact_demand({200, 0.32}), 2 * d100);
  EXPECT_DOUBLE_EQ(app.exact_demand({700, 0.32}), 7 * d100);
}

TEST(SandApp, DemandShapeDetectedLogarithmicInT) {
  const SandApp app{SandModel::full()};
  std::vector<celia::fit::Sample> samples;
  for (const double t : {0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0})
    samples.push_back({t, app.exact_demand({1e6, t})});
  EXPECT_EQ(celia::fit::detect_shape(samples).shape,
            celia::fit::Shape::kLogarithmic);
}

TEST(SandApp, FullScalePerReadCalibration) {
  // DESIGN.md calibration: ~2.4 M instructions per read at t = 1.
  const SandApp app{SandModel::full()};
  const double per_read = app.exact_demand({1e6, 1.0}) / 1e6;
  EXPECT_GT(per_read, 2.0e6);
  EXPECT_LT(per_read, 2.9e6);
}

TEST(SandApp, WorkloadIsMasterWorkerAndPartitionsAllReads) {
  SandModel model = SandModel::mini();
  const SandApp app{model};
  const auto workload = app.make_workload({100, 0.32});
  EXPECT_EQ(workload.pattern, celia::apps::ParallelPattern::kMasterWorker);
  EXPECT_GT(workload.dispatch_seconds_per_task, 0.0);
  // ceil(100 / 16) = 7 tasks; tasks + the serial master phase sum to the
  // application's total demand.
  EXPECT_EQ(workload.task_instructions.size(), 7u);
  EXPECT_GT(workload.serial_instructions, 0.0);
  double sum = workload.serial_instructions;
  for (const double t : workload.task_instructions) sum += t;
  EXPECT_NEAR(sum, workload.total_instructions, 1.0);
  EXPECT_DOUBLE_EQ(workload.total_instructions,
                   app.exact_demand({100, 0.32}));
}

TEST(SandApp, InvalidParamsThrow) {
  const SandApp app{SandModel::mini()};
  EXPECT_THROW(app.exact_demand({1, 0.5}), std::invalid_argument);
  EXPECT_THROW(app.exact_demand({100, 0.0}), std::invalid_argument);
  EXPECT_THROW(app.exact_demand({100, 1.5}), std::invalid_argument);
}

TEST(SandApp, Metadata) {
  const SandApp app;
  EXPECT_EQ(app.name(), "sand");
  EXPECT_EQ(app.domain(), "bioinformatics");
  EXPECT_EQ(app.workload_class(),
            celia::hw::WorkloadClass::kGenomeAlignment);
}

}  // namespace
