
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/ipc_model.cpp" "src/hw/CMakeFiles/celia_hw.dir/ipc_model.cpp.o" "gcc" "src/hw/CMakeFiles/celia_hw.dir/ipc_model.cpp.o.d"
  "/root/repo/src/hw/local_server.cpp" "src/hw/CMakeFiles/celia_hw.dir/local_server.cpp.o" "gcc" "src/hw/CMakeFiles/celia_hw.dir/local_server.cpp.o.d"
  "/root/repo/src/hw/microarch.cpp" "src/hw/CMakeFiles/celia_hw.dir/microarch.cpp.o" "gcc" "src/hw/CMakeFiles/celia_hw.dir/microarch.cpp.o.d"
  "/root/repo/src/hw/perf_counter.cpp" "src/hw/CMakeFiles/celia_hw.dir/perf_counter.cpp.o" "gcc" "src/hw/CMakeFiles/celia_hw.dir/perf_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/celia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
