#pragma once
// Model persistence.
//
// A CELIA build is the product of a (conceptually expensive) measurement
// campaign — profile runs on the local server plus timed runs on cloud
// instances. Persisting the built model lets a user characterize once and
// re-plan many times without re-measuring. The format is a line-oriented
// text file ("celia-model 3") designed to be diff-able and hand-auditable.
//
// Version 3 serializes the capacity's demand-dimension schema (names plus
// their FNV-1a fingerprint) and the full per-dimension rate matrix, so
// vector capacities (apps/demand.hpp) round-trip. Version 2 embedded the
// catalog the model was characterized against — instance types, per-type
// limits, prices, and the catalog fingerprint — so a loaded model carries
// its own pricing context and the planner can refuse (descriptively) to
// run it against a structurally different catalog. Version 2 and version 1
// files (scalar capacity; v1 also lacks the catalog section) still load as
// 1-D models; v1 is restored against the paper's Table III catalog, which
// is what every v1 writer planned against.

#include <iosfwd>
#include <string>

#include "core/celia.hpp"

namespace celia::core {

/// Current serialization format version (written by save_model).
inline constexpr int kModelFormatVersion = 3;
/// Oldest version load_model still reads.
inline constexpr int kOldestSupportedModelVersion = 1;

/// Write `celia` to `out` in the celia-model text format.
void save_model(const Celia& celia, std::ostream& out);

/// Convenience: serialize to a string.
std::string model_to_string(const Celia& celia);

/// Parse a model previously written by save_model. Throws
/// std::runtime_error with a descriptive message on malformed input,
/// version mismatch, or numeric corruption.
Celia load_model(std::istream& in);

Celia model_from_string(const std::string& text);

}  // namespace celia::core
