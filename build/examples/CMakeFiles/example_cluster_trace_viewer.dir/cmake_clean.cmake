file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_trace_viewer.dir/cluster_trace_viewer.cpp.o"
  "CMakeFiles/example_cluster_trace_viewer.dir/cluster_trace_viewer.cpp.o.d"
  "example_cluster_trace_viewer"
  "example_cluster_trace_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_trace_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
