#include "serve/soak.hpp"

#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "cloud/api_faults.hpp"
#include "cloud/catalog.hpp"
#include "core/planner_engine.hpp"

namespace celia::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a fold of one 64-bit word into the running digest.
void fold(std::uint64_t& digest, std::uint64_t value) {
  digest ^= value;
  digest *= 1099511628211ULL;
}

void fold_stats(std::uint64_t& digest, const ServeStats& s) {
  fold(digest, s.submitted);
  fold(digest, s.admitted);
  fold(digest, s.shed);
  fold(digest, s.shed_queue_full);
  fold(digest, s.shed_slo);
  fold(digest, s.shed_deadline);
  fold(digest, s.shed_shutdown);
  fold(digest, s.shed_stale);
  fold(digest, s.rejected_quota);
  fold(digest, s.coalesced);
  fold(digest, s.failed);
  fold(digest, s.quarantined);
  fold(digest, s.quarantine_entries);
  fold(digest, s.quarantine_recoveries);
  fold(digest, s.worker_lost);
  fold(digest, s.worker_restarts);
  fold(digest, s.plan_retries);
  fold(digest, s.retry_vetoes);
}

void fold_stats(std::uint64_t& digest, const WatchdogStats& s) {
  fold(digest, s.updates_attempted);
  fold(digest, s.updates_applied);
  fold(digest, s.update_failures);
  fold(digest, s.replaces_quarantined);
  fold(digest, s.degraded_entries);
  fold(digest, s.recoveries);
  fold(digest, s.stale_breaches);
}

/// The soak fixture catalog: six Table III types, uniform limit 3 — big
/// enough for real frontier work, small enough for thousands of plans.
std::shared_ptr<const cloud::Catalog> base_catalog() {
  const auto& table3 = cloud::Catalog::ec2_table3();
  return std::make_shared<const cloud::Catalog>(
      "alpha", "chaos-1",
      std::vector<cloud::InstanceType>{table3.types().begin(),
                                       table3.types().begin() + 6},
      std::vector<int>{3, 3, 3, 3, 3, 3});
}

core::ResourceCapacity soak_capacity(const cloud::Catalog& catalog) {
  std::vector<double> per_vcpu(catalog.size());
  for (std::size_t i = 0; i < per_vcpu.size(); ++i)
    per_vcpu[i] = 1.1e9 + 3.7e7 * static_cast<double>(i);
  return core::ResourceCapacity(std::move(per_vcpu), catalog);
}

core::Query soak_query(double demand) {
  core::Constraints constraints;
  constraints.deadline_seconds = 3600.0;
  core::SweepOptions sweep;
  sweep.collect_pareto = false;
  return core::Query::make(demand, constraints, sweep);
}

struct PendingFuture {
  std::future<ServeOutcome> future;
  bool poison = false;
};

struct OutcomeTally {
  ChaosSoakReport& report;
  double heal_time = 0.0;
  std::function<double()> clock;
  std::uint64_t poison_planned_after_heal = 0;

  /// Consume every already-resolved future; keep the rest pending.
  void poll(std::vector<PendingFuture>& pending) {
    std::size_t kept = 0;
    for (PendingFuture& entry : pending) {
      if (entry.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        pending[kept++] = std::move(entry);
        continue;
      }
      record(entry.future.get(), entry.poison);
    }
    pending.resize(kept);
  }

  void record(const ServeOutcome& outcome, bool poison) {
    switch (outcome.status) {
      case ServeStatus::kPlanned:
        ++report.outcomes_planned;
        report.max_served_staleness_us =
            std::max(report.max_served_staleness_us, outcome.staleness_us);
        if (outcome.degrade_reason != DegradeReason::kNone)
          ++report.degraded_answers;
        if (poison && clock() >= heal_time) ++poison_planned_after_heal;
        break;
      case ServeStatus::kFailed:
        ++report.outcomes_failed;
        break;
      case ServeStatus::kOverloaded:
        ++report.outcomes_shed;
        break;
      case ServeStatus::kRejectedQuota:
        ++report.outcomes_quota;
        break;
      case ServeStatus::kQuarantined:
        ++report.outcomes_quarantined;
        break;
      case ServeStatus::kWorkerLost:
        ++report.outcomes_worker_lost;
        break;
    }
  }
};

/// The threaded mini-phase: wedge a worker via the plan hook, let the
/// supervisor detach + respawn it, and prove the replacement serves.
void run_stall_phase(const ChaosSoakOptions& options,
                     ChaosSoakReport& report) {
  auto base = base_catalog();
  core::PlannerEngine engine;
  engine.add_catalog("alpha", base);

  auto sim_time = std::make_shared<double>(0.0);
  std::promise<void> gate;
  std::shared_future<void> wedge_until = gate.get_future().share();

  ServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.queue_capacity = 16;
  service_options.shed_watermark = 16;
  service_options.worker_stall_seconds = 5.0;
  service_options.clock = [sim_time] { return *sim_time; };
  service_options.before_plan_hook = [wedge_until](const PlanRequest& r) {
    if (r.tenant == "wedge") wedge_until.wait();
  };

  bool stall_ok = true;
  {
    PlannerService service(engine, service_options);
    PlanRequest wedge{"wedge", "alpha", soak_capacity(*base),
                      soak_query(3.3e14), {}};
    std::future<ServeOutcome> wedged = service.submit(std::move(wedge));

    // Wait (real time, bounded) until the worker is provably inside the
    // wedged dispatch, then advance simulated time past the stall bound.
    const auto spin_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service.busy_workers() == 0 &&
           std::chrono::steady_clock::now() < spin_deadline)
      std::this_thread::yield();
    stall_ok = service.busy_workers() == 1;

    *sim_time += 10.0;
    report.stall_restarts = service.check_workers();
    if (report.stall_restarts == 1) {
      const ServeOutcome lost = wedged.get();
      stall_ok = stall_ok && lost.status == ServeStatus::kWorkerLost;
      fold(report.digest, static_cast<std::uint64_t>(lost.status));
    } else {
      stall_ok = false;
    }

    // Capacity recovered: the respawned worker answers a normal request.
    PlanRequest normal{"t", "alpha", soak_capacity(*base),
                       soak_query(1.5e13), {}};
    const ServeOutcome answered = service.submit(std::move(normal)).get();
    stall_ok = stall_ok && answered.status == ServeStatus::kPlanned;
    fold(report.digest, static_cast<std::uint64_t>(answered.status));

    // Unwedge the detached thread so stop() can join it.
    gate.set_value();
    service.stop(PlannerService::StopMode::kDrain);
    const ServeStats stats = service.stats();
    report.stall_recovered = stall_ok && stats.worker_restarts == 1 &&
                             stats.worker_lost == 1;
    fold(report.digest, stats.worker_restarts);
    fold(report.digest, stats.worker_lost);
  }
  (void)options;
}

}  // namespace

ChaosSoakReport run_chaos_soak(const ChaosSoakOptions& options) {
  if (options.ticks == 0 || options.feed_period_ticks == 0 ||
      options.drains_per_tick == 0)
    throw std::invalid_argument("run_chaos_soak: degenerate options");

  ChaosSoakReport report;
  report.digest = 14695981039346656037ULL;  // FNV-1a offset basis
  fold(report.digest, options.seed);

  auto base = base_catalog();
  core::PlannerEngine engine;
  engine.add_catalog("alpha", base);

  const double total_seconds = static_cast<double>(options.ticks);
  const double heal_time = options.poison_heal_fraction * total_seconds;
  // Feed deliveries pause around the heal so the poison identity (which
  // embeds the catalog fingerprint) stays stable long enough to be
  // quarantined before the heal and probed after it — the convergence
  // the soak asserts. Staleness keeps growing meanwhile, exercising
  // soft-degraded (stamped, still served) answers.
  const double quiet_start = heal_time - 50.0;
  const double quiet_end = heal_time + 100.0;

  cloud::ApiFaultModel feed_faults;
  feed_faults.seed = options.seed;
  feed_faults.transient_error_probability = options.feed_fault_probability;
  feed_faults.brownouts.push_back(
      {options.brownout_start_fraction * total_seconds,
       options.brownout_end_fraction * total_seconds});
  cloud::validate(feed_faults);

  WatchdogOptions watchdog_options;
  watchdog_options.staleness_budget_seconds =
      options.staleness_budget_seconds;
  watchdog_options.max_staleness_seconds = options.max_staleness_seconds;
  watchdog_options.feed_failure_threshold = 3;
  watchdog_options.breaker.failure_threshold = 3;
  watchdog_options.breaker.open_seconds = 30.0;
  watchdog_options.breaker.cooldown_jitter_fraction = 0.25;
  watchdog_options.breaker.seed = options.seed ^ 0xfeedULL;
  watchdog_options.breaker.state_gauge = "celia_resilience_breaker_state";
  CatalogWatchdog watchdog(engine, watchdog_options);
  watchdog.track("alpha", 0.0);

  auto sim_time = std::make_shared<double>(0.0);
  constexpr double kPoisonDemand = 5.5e14;

  ServiceOptions service_options;
  service_options.num_workers = 0;  // caller-driven: fully deterministic
  service_options.queue_capacity = 64;
  service_options.shed_watermark = 48;
  service_options.coalesce = true;
  service_options.clock = [sim_time] { return *sim_time; };
  service_options.watchdog = &watchdog;
  service_options.quarantine.strike_threshold =
      options.poison_strike_threshold;
  service_options.quarantine.base_seconds = 1.0;
  service_options.quarantine.multiplier = 2.0;
  service_options.quarantine.max_seconds = 60.0;
  service_options.quarantine.jitter_fraction = 0.25;
  service_options.quarantine.seed = options.seed ^ 0x9019ULL;
  service_options.plan_retries = 1;
  service_options.retry_budget.ratio = 0.1;
  service_options.retry_budget.window_seconds = 10.0;
  service_options.before_plan_hook = [sim_time,
                                      heal_time](const PlanRequest& r) {
    if (r.tenant == "poison" && *sim_time < heal_time)
      throw std::runtime_error("chaos: poison query");
  };

  PlannerService service(engine, service_options);
  TenantQuota poison_quota;
  poison_quota.weight = 4.0;  // poison dispatches often: strikes accumulate
  service.set_tenant_quota("poison", poison_quota);
  TenantQuota metered;
  metered.burst = 2.0;
  metered.requests_per_second = 0.2;
  service.set_tenant_quota("metered", metered);

  const core::ResourceCapacity capacity = soak_capacity(*base);
  std::vector<PendingFuture> pending;
  OutcomeTally tally{report, heal_time, service_options.clock, 0};
  std::uint64_t feed_ordinal = 0;

  for (std::size_t tick = 0; tick < options.ticks; ++tick) {
    *sim_time += 1.0;
    const double now = *sim_time;

    // Catalog feed: one delivery per period; the fault model (transient
    // draws + the brownout window) decides whether it lands.
    if (tick > 0 && tick % options.feed_period_ticks == 0 &&
        !(now >= quiet_start && now < quiet_end)) {
      ++report.feed_deliveries;
      ++feed_ordinal;
      if (cloud::in_brownout(feed_faults, now) ||
          cloud::api_transient_error(feed_faults, feed_ordinal)) {
        ++report.feed_faults;
        watchdog.record_feed_failure("alpha", now);
      } else {
        const std::uint64_t draw =
            splitmix64(options.seed ^ (0xC47A106ULL + tick));
        const double multiplier =
            0.85 + 0.3 * static_cast<double>(draw % 1000) / 1000.0;
        watchdog.apply_update(
            "alpha",
            std::make_shared<const cloud::Catalog>(
                base->with_price_multiplier("alpha", "chaos-1", multiplier)),
            now);
      }
    }

    // Offered load: 2x the drain rate, distinct demands in rotation, a
    // poison identity every tick, periodic deadline-carrying and
    // quota-metered submissions.
    for (std::size_t slot = 0; slot < options.submits_per_tick; ++slot) {
      const std::uint64_t draw =
          splitmix64(options.seed ^ (tick * 1315423911ULL + slot));
      if (slot == 0) {
        pending.push_back({service.submit(PlanRequest{
                               "poison", "alpha", capacity,
                               soak_query(kPoisonDemand), {}}),
                           true});
        continue;
      }
      util::DeadlineBudget deadline;
      if (slot % 4 == 3) deadline = util::DeadlineBudget::until(now + 2.0);
      pending.push_back(
          {service.submit(PlanRequest{
               "t" + std::to_string(draw % 3), "alpha", capacity,
               soak_query(1e13 +
                          1e11 * static_cast<double>(
                                     draw % options.demand_values)),
               deadline}),
           false});
    }
    if (tick % 3 == 0)
      pending.push_back({service.submit(PlanRequest{"metered", "alpha",
                                                    capacity,
                                                    soak_query(2.5e13),
                                                    {}}),
                         false});

    for (std::size_t d = 0; d < options.drains_per_tick; ++d)
      if (!service.drain_one()) break;

    tally.poll(pending);
    fold(report.digest, tick);
    fold(report.digest, service.queue_depth());
    fold_stats(report.digest, service.stats());
    fold_stats(report.digest, watchdog.stats());
  }

  service.stop(PlannerService::StopMode::kDrain);
  tally.poll(pending);
  report.unresolved = pending.size();
  report.serve = service.stats();
  report.watchdog = watchdog.stats();
  fold_stats(report.digest, report.serve);
  fold_stats(report.digest, report.watchdog);
  fold(report.digest, report.unresolved);
  fold(report.digest, report.max_served_staleness_us);
  fold(report.digest, tally.poison_planned_after_heal);

  if (options.stall_phase) run_stall_phase(options, report);

  // ---- Soak assertions -------------------------------------------------
  const auto violate = [&report](std::string what) {
    report.violations.push_back(std::move(what));
  };
  if (report.unresolved != 0)
    violate("liveness: " + std::to_string(report.unresolved) +
            " futures never resolved");
  const auto staleness_cap_us = static_cast<std::uint64_t>(
      std::llround(options.max_staleness_seconds * 1e6));
  if (report.max_served_staleness_us > staleness_cap_us)
    violate("bounded staleness: served an answer " +
            std::to_string(report.max_served_staleness_us) +
            "us stale (cap " + std::to_string(staleness_cap_us) + "us)");
  const ServeStats& s = report.serve;
  if (s.admitted + s.shed + s.rejected_quota + s.quarantined != s.submitted)
    violate("serve invariant: terminal buckets do not sum to submitted");
  if (s.shed_queue_full + s.shed_slo + s.shed_deadline + s.shed_shutdown +
          s.shed_stale !=
      s.shed)
    violate("serve invariant: typed shed reasons do not sum to shed");
  if (s.failed + s.worker_lost > s.admitted)
    violate("serve invariant: failed + worker_lost exceed admitted");
  const WatchdogStats& w = report.watchdog;
  if (w.updates_applied + w.update_failures + w.replaces_quarantined !=
      w.updates_attempted)
    violate("watchdog invariant: update outcomes do not sum to attempts");
  if (s.shed_stale == 0)
    violate("brownout never pushed staleness past the hard cap");
  if (s.quarantine_entries == 0)
    violate("poison query was never quarantined");
  if (s.quarantine_recoveries == 0)
    violate("quarantine never converged: no entry recovered");
  if (tally.poison_planned_after_heal == 0)
    violate("healed poison query was never answered");
  if (s.shed_queue_full == 0)
    violate("overload never tripped the watermark");
  if (report.outcomes_planned == 0) violate("nothing was ever planned");
  if (options.stall_phase && !report.stall_recovered)
    violate("worker-stall phase did not detach + recover as expected");

  return report;
}

}  // namespace celia::serve
