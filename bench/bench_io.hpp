#pragma once
// Shared helper for the figure-reproduction benches: optional
// machine-readable output. When the environment variable CELIA_CSV_DIR is
// set to a directory, each bench writes its series there as
// <dir>/<name>.csv alongside the human-readable stdout.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "util/csv.hpp"

namespace celia::benchio {

/// An optional CSV sink: no-op when CELIA_CSV_DIR is unset.
class CsvSink {
 public:
  explicit CsvSink(const std::string& name) {
    const char* dir = std::getenv("CELIA_CSV_DIR");
    if (dir == nullptr || *dir == '\0') return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    file_ = std::make_unique<std::ofstream>(path);
    if (!*file_) {
      std::cerr << "warning: cannot write " << path << "\n";
      file_.reset();
      return;
    }
    path_ = path;
    writer_ = std::make_unique<util::CsvWriter>(*file_);
  }

  bool enabled() const { return writer_ != nullptr; }
  const std::string& path() const { return path_; }

  void header(const std::vector<std::string>& columns) {
    if (writer_) writer_->header(columns);
  }
  void row(const std::vector<std::string>& fields) {
    if (writer_) writer_->row(fields);
  }
  void row_values(const std::vector<double>& fields) {
    if (writer_) writer_->row_values(fields);
  }

  /// Announce the file on stdout (call once at the end).
  void announce() const {
    if (enabled()) std::cout << "[csv written to " << path_ << "]\n";
  }

 private:
  std::unique_ptr<std::ofstream> file_;
  std::unique_ptr<util::CsvWriter> writer_;
  std::string path_;
};

}  // namespace celia::benchio
