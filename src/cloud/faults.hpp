#pragma once
// Seeded, deterministic fault injection for the simulated cloud.
//
// The paper's model (Eqs. 2-6) assumes a fail-never fleet: every
// provisioned node boots instantly and survives to the makespan. Real
// on-demand fleets lose nodes to hardware faults, boot slowly or not at
// all, and include "gray" instances that run but deliver a fraction of
// their nominal rate — the operational risks ExpoCloud-style systems and
// the paper's §II related work (Gong, Marathe) engineer around. This layer
// lets the simulator break things ON PURPOSE, reproducibly:
//
//   * crashes     — per-instance exponential time-to-failure with mean
//                   `mtbf_seconds` (a memoryless renewal process, the
//                   standard HPC failure model);
//   * boot faults — each provisioning attempt fails with probability
//                   `boot_failure_probability`, wasting `boot_timeout`
//                   of wall-clock before the failure is detected;
//   * boot delay  — successful boots become ready after an exponential
//                   delay with mean `boot_delay_seconds`;
//   * gray nodes  — with probability `gray_probability` an instance runs
//                   at `gray_slowdown` of its delivered rate for its whole
//                   life (sustained degradation, not a crash);
//   * message loss— per (instance, step) transient loss of a
//                   synchronization message with probability
//                   `message_loss_probability` (the sender retransmits,
//                   paying one extra latency round).
//
// EVERY draw is a pure function of (fault seed, instance id[, attempt or
// step]): a fault schedule replays bit-identically from its seed, query
// order never matters, and a model with all probabilities zero and
// mtbf_seconds == 0 is inert — it injects nothing and the executor takes
// the exact legacy code path (see ClusterExecutor::execute_with_faults).

#include <cstdint>

#include "cloud/vm.hpp"

namespace celia::cloud {

struct FaultModel {
  /// Mean time between failures of one instance, seconds. 0 = never
  /// crashes (the paper's fail-never assumption).
  double mtbf_seconds = 0.0;
  /// Probability that one provisioning attempt fails outright.
  double boot_failure_probability = 0.0;
  /// Wall-clock burned before a failed boot is detected.
  double boot_timeout_seconds = 90.0;
  /// Mean of the exponential ready-delay of a successful boot. 0 = ready
  /// instantly (legacy behavior).
  double boot_delay_seconds = 0.0;
  /// Probability an instance is gray (degraded for its whole life).
  double gray_probability = 0.0;
  /// Delivered-rate fraction of a gray instance, in (0, 1].
  double gray_slowdown = 0.4;
  /// Per (instance, step) probability of losing one sync message.
  double message_loss_probability = 0.0;

  /// True when the model can inject nothing at all: the executor and the
  /// provider take their exact legacy paths (bit-identical behavior).
  bool inert() const {
    return mtbf_seconds == 0.0 && boot_failure_probability == 0.0 &&
           boot_delay_seconds == 0.0 && gray_probability == 0.0 &&
           message_loss_probability == 0.0;
  }
};

/// Everything the fault model has decided about one instance. Pure
/// function of (model, seed, instance_id); see fault_profile().
struct InstanceFaultProfile {
  /// Uptime before this instance crashes, measured from the moment it
  /// becomes ready; +inf when the model's mtbf_seconds is 0.
  double crash_after_seconds = 0.0;
  /// Ready-delay of a successful boot (exponential, mean boot_delay).
  double boot_seconds = 0.0;
  /// Sustained degradation: 1.0 for healthy, gray_slowdown for gray.
  double slowdown = 1.0;
  bool gray = false;
};

/// The fault schedule of one instance. Deterministic in
/// (model, seed, instance_id): replays bit-identically, independent of
/// query order. Throws std::invalid_argument on a malformed model.
InstanceFaultProfile fault_profile(const FaultModel& model,
                                   std::uint64_t seed,
                                   std::uint64_t instance_id);

/// Whether provisioning attempt `attempt` (0-based) of `instance_id`
/// fails. Deterministic in all arguments.
bool boot_attempt_fails(const FaultModel& model, std::uint64_t seed,
                        std::uint64_t instance_id, int attempt);

/// Whether instance `instance_id` loses its synchronization message at
/// bulk-synchronous step `step`. Deterministic in all arguments.
bool message_lost(const FaultModel& model, std::uint64_t seed,
                  std::uint64_t instance_id, std::uint64_t step);

/// Throws std::invalid_argument when the model's fields are out of range
/// (negative rates/probabilities, probabilities > 1, slowdown outside
/// (0, 1]).
void validate(const FaultModel& model);

}  // namespace celia::cloud
