// Example: exploring the cost-time Pareto frontier of an n-body simulation
// campaign (the galaxy scenario, paper §IV-E).
//
// A researcher wants the highest simulation accuracy (number of steps s)
// that fits a budget, and wants to see what relaxing the deadline buys.
// Demonstrates: the Pareto frontier, epsilon-thinning for human-sized
// summaries, accuracy scaling, and Observation 3 (tightening the deadline
// costs proportionally less than the time gained).

#include <iostream>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/analysis.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  cloud::CloudProvider provider(2017);
  const auto app = apps::make_galaxy();
  const core::Celia celia = core::Celia::build(*app, provider);

  const apps::AppParams params{65536, 8000};
  std::cout << "galaxy(" << params.n << " masses, " << params.a
            << " steps), T' = 24 h, C' = $350\n\n";

  // 1. The full frontier is long; epsilon-thin it to a human-sized menu
  //    (the paper cites Woodruff & Herman's epsilon-nondomination sort).
  const core::SweepResult result = celia.select(params, 24.0, 350.0);
  const auto menu = core::epsilon_nondominated(result.pareto,
                                               /*eps_seconds=*/3600.0,
                                               /*eps_cost=*/5.0);
  std::cout << "Pareto frontier: " << result.pareto.size()
            << " configurations; epsilon-thinned menu (1 h x $5 boxes): "
            << menu.size() << "\n\n";
  util::TablePrinter table({"option", "configuration", "time", "cost"});
  table.set_right_aligned(2);
  table.set_right_aligned(3);
  for (std::size_t i = 0; i < menu.size(); ++i) {
    table.add_row({std::to_string(i + 1),
                   core::to_string(celia.space().decode(menu[i].config_index)),
                   util::format_duration(menu[i].seconds),
                   util::format_money(menu[i].cost)});
  }
  table.print(std::cout);

  // Every remaining query hits the same model, so answer them from the
  // shared frontier index (one build, microseconds per query) instead of
  // re-sweeping 10M configurations each time.
  core::SweepOptions fast;
  fast.index_policy = core::IndexPolicy::Shared();

  // 2. How much accuracy can $100 buy within 24 h? Scan s downward.
  std::cout << "\nmax steps affordable at $100 / 24 h: ";
  double best_s = 0;
  for (double s = 10000; s >= 1000; s -= 500) {
    const auto best = celia.min_cost_configuration({params.n, s}, 24.0, fast);
    if (best && best->cost <= 100.0) {
      best_s = s;
      break;
    }
  }
  std::cout << (best_s > 0 ? util::format_si(best_s, 0) : "none") << "\n";

  // 3. Observation 3: the cost of a tighter deadline.
  const std::vector<double> deadlines = {72, 48, 24, 12, 8};
  const auto curve = core::deadline_tightening(celia, params, deadlines, fast);
  util::TablePrinter obs3({"deadline (h)", "min cost", "cost vs 72 h"});
  obs3.set_right_aligned(1);
  obs3.set_right_aligned(2);
  const double base = curve[0].feasible ? curve[0].min_cost : 0.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    obs3.add_row({util::format_fixed(deadlines[i], 0),
                  curve[i].feasible ? util::format_money(curve[i].min_cost)
                                    : "infeasible",
                  curve[i].feasible && base > 0
                      ? "+" + util::format_percent(curve[i].min_cost / base -
                                                   1.0)
                      : "-"});
  }
  std::cout << "\ndeadline tightening (Observation 3 — cost rises slower "
               "than the deadline shrinks):\n";
  obs3.print(std::cout);
  return 0;
}
