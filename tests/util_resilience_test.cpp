// Tests for util/resilience.hpp: TokenBucket, CircuitBreaker, RetryBudget
// and DeadlineBudget — explicit-clock state machines, so every test drives
// simulated time by hand and asserts exact transition points.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/resilience.hpp"

namespace {

using celia::util::BackoffPolicy;
using celia::util::CircuitBreaker;
using celia::util::DeadlineBudget;
using celia::util::RetryBudget;
using celia::util::TokenBucket;

// ---------------------------------------------------------- TokenBucket --

TEST(TokenBucket, StartsFullAndBurstsToCapacity) {
  TokenBucket bucket(3.0, 1.0);
  EXPECT_DOUBLE_EQ(bucket.available(0.0), 3.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(0.0), 0.0);
  // Bucket empty: the fourth acquisition waits exactly one refill period.
  EXPECT_DOUBLE_EQ(bucket.acquire(0.0), 1.0);
}

TEST(TokenBucket, RefillsContinuouslyAndCapsAtCapacity) {
  TokenBucket bucket(2.0, 2.0);  // 2 tokens, 2 tokens/s
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));
  // After 0.25 s half a token accrued: still not enough.
  EXPECT_FALSE(bucket.try_acquire(0.25));
  EXPECT_TRUE(bucket.try_acquire(0.5));
  // A long idle period refills to capacity, never beyond.
  EXPECT_DOUBLE_EQ(bucket.available(1000.0), 2.0);
}

TEST(TokenBucket, AcquireQueuesBackToBackWaits) {
  TokenBucket bucket(1.0, 0.5);  // one burst token, 2 s per refill
  EXPECT_DOUBLE_EQ(bucket.acquire(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket.acquire(0.0), 2.0);
  // The previous acquisition consumed the token accruing until t=2, so
  // the next one is pushed out another full period.
  EXPECT_DOUBLE_EQ(bucket.acquire(0.0), 4.0);
}

TEST(TokenBucket, RejectsBadArguments) {
  EXPECT_THROW(TokenBucket(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, -1.0), std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(TokenBucket(inf, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, inf), std::invalid_argument);
}

// ------------------------------------------------------- CircuitBreaker --

CircuitBreaker::Policy two_strikes() {
  CircuitBreaker::Policy policy;
  policy.failure_threshold = 2;
  policy.open_seconds = 10.0;
  policy.half_open_probes = 1;
  return policy;
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresOnly) {
  CircuitBreaker breaker(two_strikes());
  ASSERT_TRUE(breaker.allow(0.0));
  breaker.record_failure(0.0);
  ASSERT_TRUE(breaker.allow(1.0));
  breaker.record_success(1.0);  // success resets the streak
  ASSERT_TRUE(breaker.allow(2.0));
  breaker.record_failure(2.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.allow(3.0));
  breaker.record_failure(3.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_DOUBLE_EQ(breaker.reopen_at(), 13.0);
  EXPECT_EQ(breaker.stats().opened, 1u);
}

TEST(CircuitBreaker, OpenRejectsUntilCooldownThenProbes) {
  CircuitBreaker breaker(two_strikes());
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  EXPECT_FALSE(breaker.allow(5.0));
  EXPECT_FALSE(breaker.allow(9.999));
  EXPECT_EQ(breaker.stats().rejected, 2u);

  // Cooldown elapsed: half-open, exactly one probe admitted.
  EXPECT_TRUE(breaker.allow(10.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(10.5));  // second concurrent probe vetoed

  breaker.record_success(11.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().half_opened, 1u);
  EXPECT_EQ(breaker.stats().closed, 1u);
  EXPECT_TRUE(breaker.allow(11.0));
}

TEST(CircuitBreaker, FailedProbeReopensImmediately) {
  CircuitBreaker breaker(two_strikes());
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  ASSERT_TRUE(breaker.allow(10.0));  // probe
  breaker.record_failure(10.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_DOUBLE_EQ(breaker.reopen_at(), 20.0);
  EXPECT_EQ(breaker.stats().opened, 2u);
  // A late failure report of an old request while open is ignored.
  breaker.record_failure(12.0);
  EXPECT_DOUBLE_EQ(breaker.reopen_at(), 20.0);
}

TEST(CircuitBreaker, MultipleProbesMustAllSucceed) {
  CircuitBreaker::Policy policy = two_strikes();
  policy.half_open_probes = 2;
  CircuitBreaker breaker(policy);
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  ASSERT_TRUE(breaker.allow(10.0));
  ASSERT_TRUE(breaker.allow(10.0));
  EXPECT_FALSE(breaker.allow(10.0));  // probe budget spent
  breaker.record_success(11.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.record_success(11.5);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, CooldownJitterIsSeededAndDeterministic) {
  CircuitBreaker::Policy policy = two_strikes();
  policy.cooldown_jitter_fraction = 0.5;
  policy.seed = 42;
  CircuitBreaker a(policy), b(policy);
  for (CircuitBreaker* breaker : {&a, &b}) {
    breaker->record_failure(0.0);
    breaker->record_failure(0.0);
  }
  // Same (seed, episode) => identical jittered cooldown, within bounds.
  EXPECT_DOUBLE_EQ(a.reopen_at(), b.reopen_at());
  EXPECT_GE(a.reopen_at(), 5.0);
  EXPECT_LE(a.reopen_at(), 15.0);

  policy.seed = 43;
  CircuitBreaker c(policy);
  c.record_failure(0.0);
  c.record_failure(0.0);
  EXPECT_NE(a.reopen_at(), c.reopen_at());
}

TEST(CircuitBreaker, RejectsBadPolicies) {
  CircuitBreaker::Policy policy;
  policy.failure_threshold = 0;
  EXPECT_THROW(CircuitBreaker{policy}, std::invalid_argument);
  policy = {};
  policy.open_seconds = -1.0;
  EXPECT_THROW(CircuitBreaker{policy}, std::invalid_argument);
  policy = {};
  policy.half_open_probes = 0;
  EXPECT_THROW(CircuitBreaker{policy}, std::invalid_argument);
  policy = {};
  policy.cooldown_jitter_fraction = 1.5;
  EXPECT_THROW(CircuitBreaker{policy}, std::invalid_argument);
}

TEST(CircuitBreaker, ExportsStateTransitionsToTheNamedGauge) {
  CircuitBreaker::Policy policy = two_strikes();
  policy.state_gauge = "celia_resilience_breaker_state";
  CircuitBreaker breaker(policy);
#ifndef CELIA_OBS_DISABLED
  // 0 = closed, 1 = half-open, 2 = open: the breaker's position is
  // readable from /metrics alone, with no code path to its stats().
  celia::obs::Gauge& gauge =
      celia::obs::gauge("celia_resilience_breaker_state");
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);  // exported closed on construction
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  ASSERT_TRUE(breaker.allow(10.0));
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);
  breaker.record_success(11.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
#else
  // Obs compiled out: the gauge is a no-op but the breaker must still
  // transition normally.
  breaker.record_failure(0.0);
  breaker.record_failure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
#endif
}

// ---------------------------------------------------------- RetryBudget --

TEST(RetryBudget, RatioBoundsRetryAmplification) {
  RetryBudget::Policy policy;
  policy.ratio = 0.5;
  RetryBudget budget(policy);
  // Nothing deposited yet: every retry is vetoed.
  EXPECT_FALSE(budget.try_withdraw(0.0));
  budget.deposit(0.0);  // 0.5 tokens: still below one whole retry
  EXPECT_FALSE(budget.try_withdraw(0.0));
  budget.deposit(0.0);  // 1.0 token
  EXPECT_TRUE(budget.try_withdraw(0.0));
  EXPECT_FALSE(budget.try_withdraw(0.0));
  const RetryBudget::Stats stats = budget.stats();
  EXPECT_EQ(stats.deposits, 2u);
  EXPECT_EQ(stats.withdrawals, 1u);
  EXPECT_EQ(stats.vetoes, 3u);
}

TEST(RetryBudget, DepositsExpireWithTheSlidingWindow) {
  RetryBudget::Policy policy;
  policy.ratio = 1.0;
  policy.window_seconds = 5.0;
  RetryBudget budget(policy);
  budget.deposit(0.0);
  budget.deposit(0.0);
  EXPECT_DOUBLE_EQ(budget.balance(0.0), 2.0);
  // Inside the window the tokens stay live...
  EXPECT_DOUBLE_EQ(budget.balance(4.0), 2.0);
  // ...and vanish once the window slides past the deposit second: stale
  // traffic cannot bankroll a retry storm later.
  EXPECT_DOUBLE_EQ(budget.balance(6.0), 0.0);
  EXPECT_FALSE(budget.try_withdraw(6.0));
  budget.deposit(6.0);
  EXPECT_TRUE(budget.try_withdraw(6.0));
}

TEST(RetryBudget, ReserveFloorKeepsLowTrafficClientsProbing) {
  RetryBudget::Policy policy;
  policy.ratio = 0.0;  // deposits mint nothing: only the reserve pays
  policy.min_retries_per_second = 0.5;
  RetryBudget budget(policy);
  budget.deposit(0.0);  // starts the clock
  EXPECT_FALSE(budget.try_withdraw(1.0));  // reserve at 0.5: not yet
  EXPECT_TRUE(budget.try_withdraw(2.0));   // reserve reached 1.0
  EXPECT_FALSE(budget.try_withdraw(2.0));  // ...and was spent
  // The reserve caps at one window's worth no matter how long it idles.
  EXPECT_DOUBLE_EQ(budget.balance(1000.0),
                   policy.min_retries_per_second * policy.window_seconds);
}

TEST(RetryBudget, RejectsBadPolicies) {
  RetryBudget::Policy policy;
  policy.ratio = -0.1;
  EXPECT_THROW(RetryBudget{policy}, std::invalid_argument);
  policy = {};
  policy.min_retries_per_second = -1.0;
  EXPECT_THROW(RetryBudget{policy}, std::invalid_argument);
  policy = {};
  policy.window_seconds = 0.5;
  EXPECT_THROW(RetryBudget{policy}, std::invalid_argument);
  policy = {};
  policy.ratio = std::numeric_limits<double>::infinity();
  EXPECT_THROW(RetryBudget{policy}, std::invalid_argument);
}

// ------------------------------------------------------- DeadlineBudget --

TEST(DeadlineBudget, DefaultIsUnlimited) {
  DeadlineBudget budget;
  EXPECT_TRUE(budget.is_unlimited());
  EXPECT_FALSE(budget.expired(1e18));
  EXPECT_EQ(budget.remaining(1e18),
            std::numeric_limits<double>::infinity());
  const auto delay = budget.clamp_delay(1e18, 30.0);
  ASSERT_TRUE(delay.has_value());
  EXPECT_DOUBLE_EQ(*delay, 30.0);
}

TEST(DeadlineBudget, RemainingAndExpiry) {
  const DeadlineBudget budget = DeadlineBudget::from_now(100.0, 50.0);
  EXPECT_DOUBLE_EQ(budget.deadline_seconds(), 150.0);
  EXPECT_DOUBLE_EQ(budget.remaining(120.0), 30.0);
  EXPECT_DOUBLE_EQ(budget.remaining(150.0), 0.0);
  EXPECT_DOUBLE_EQ(budget.remaining(200.0), 0.0);
  EXPECT_FALSE(budget.expired(149.9));
  EXPECT_TRUE(budget.expired(150.0));
}

TEST(DeadlineBudget, ClampDelayTruncatesAndExpires) {
  const DeadlineBudget budget = DeadlineBudget::until(10.0);
  const auto fits = budget.clamp_delay(2.0, 5.0);
  ASSERT_TRUE(fits.has_value());
  EXPECT_DOUBLE_EQ(*fits, 5.0);
  const auto truncated = budget.clamp_delay(8.0, 5.0);
  ASSERT_TRUE(truncated.has_value());
  EXPECT_DOUBLE_EQ(*truncated, 2.0);
  EXPECT_FALSE(budget.clamp_delay(10.0, 5.0).has_value());
}

TEST(DeadlineBudget, ChildBudgetsOnlyShrink) {
  const DeadlineBudget outer = DeadlineBudget::until(100.0);
  const DeadlineBudget tight = outer.child(0.0, 40.0);
  EXPECT_DOUBLE_EQ(tight.deadline_seconds(), 40.0);
  // A child asking for more time than the parent has left is clamped to
  // the parent's deadline: nested retries can never overshoot it.
  const DeadlineBudget clamped = outer.child(90.0, 40.0);
  EXPECT_DOUBLE_EQ(clamped.deadline_seconds(), 100.0);
  const DeadlineBudget unlimited_child = DeadlineBudget().child(0.0, 7.0);
  EXPECT_DOUBLE_EQ(unlimited_child.deadline_seconds(), 7.0);
}

TEST(DeadlineBudget, RejectsBadArguments) {
  EXPECT_THROW(DeadlineBudget::until(-1.0), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(DeadlineBudget::until(nan), std::invalid_argument);
  EXPECT_THROW(DeadlineBudget().child(0.0, -1.0), std::invalid_argument);
}

TEST(BackoffPolicyValidate, RejectsNonPositiveMaxAttempts) {
  BackoffPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(celia::util::validate(policy), std::invalid_argument);
  policy = {};
  EXPECT_NO_THROW(celia::util::validate(policy));
}

}  // namespace
