file(REMOVE_RECURSE
  "CMakeFiles/example_galaxy_deadline_tradeoff.dir/galaxy_deadline_tradeoff.cpp.o"
  "CMakeFiles/example_galaxy_deadline_tradeoff.dir/galaxy_deadline_tradeoff.cpp.o.d"
  "example_galaxy_deadline_tradeoff"
  "example_galaxy_deadline_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_galaxy_deadline_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
