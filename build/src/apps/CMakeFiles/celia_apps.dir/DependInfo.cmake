
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/galaxy/galaxy_app.cpp" "src/apps/CMakeFiles/celia_apps.dir/galaxy/galaxy_app.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/galaxy/galaxy_app.cpp.o.d"
  "/root/repo/src/apps/galaxy/nbody.cpp" "src/apps/CMakeFiles/celia_apps.dir/galaxy/nbody.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/galaxy/nbody.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/celia_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sand/align.cpp" "src/apps/CMakeFiles/celia_apps.dir/sand/align.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/sand/align.cpp.o.d"
  "/root/repo/src/apps/sand/sand_app.cpp" "src/apps/CMakeFiles/celia_apps.dir/sand/sand_app.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/sand/sand_app.cpp.o.d"
  "/root/repo/src/apps/sand/sequence.cpp" "src/apps/CMakeFiles/celia_apps.dir/sand/sequence.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/sand/sequence.cpp.o.d"
  "/root/repo/src/apps/x264/encoder.cpp" "src/apps/CMakeFiles/celia_apps.dir/x264/encoder.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/x264/encoder.cpp.o.d"
  "/root/repo/src/apps/x264/x264_app.cpp" "src/apps/CMakeFiles/celia_apps.dir/x264/x264_app.cpp.o" "gcc" "src/apps/CMakeFiles/celia_apps.dir/x264/x264_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/celia_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/celia_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/celia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
