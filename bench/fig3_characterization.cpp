// Reproduces paper Table III (the EC2 catalog) and Figure 3 (cloud
// resource characterization): normalized performance — billions of
// instructions per second per dollar — for each application on each of the
// nine resource types.
//
// Paper reference: c4 types have ~2x and m4 types ~1.5x the normalized
// performance of r3 types, uniformly across types within a category;
// galaxy on c4 is ~26 B instr/s/$.

#include <iostream>

#include "apps/registry.hpp"
#include "cloud/instance_type.hpp"
#include "cloud/provider.hpp"
#include "core/capacity.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  // Table III.
  util::TablePrinter table3({"Type", "vCPUs", "Frequency (GHz)",
                             "Memory (GB)", "Storage (GB)", "Cost ($)"});
  for (std::size_t c = 1; c < 6; ++c) table3.set_right_aligned(c);
  for (const auto& type : cloud::ec2_catalog()) {
    table3.add_row({std::string(type.name), std::to_string(type.vcpus),
                    util::format_fixed(type.frequency_ghz, 1),
                    util::format_fixed(type.memory_gb, type.memory_gb ==
                        static_cast<int>(type.memory_gb) ? 0 : 2),
                    std::string(type.storage),
                    util::format_fixed(type.cost_per_hour, 3)});
  }
  std::cout << "=== Table III: Amazon EC2 Cloud Resource Types ===\n";
  table3.print(std::cout);

  // Figure 3: normalized performance per app per type.
  std::cout << "\n=== Figure 3: Cloud Resource Characterization ===\n"
            << "normalized performance (billion instructions / second / $)\n\n";

  util::TablePrinter fig3({"Type", "x264", "galaxy", "sand"});
  for (std::size_t c = 1; c < 4; ++c) fig3.set_right_aligned(c);

  std::vector<core::ResourceCapacity> capacities;
  for (const auto& app : apps::all_apps()) {
    cloud::CloudProvider provider(2017);
    capacities.push_back(core::characterize_capacity(*app, provider));
  }
  for (std::size_t i = 0; i < cloud::catalog_size(); ++i) {
    fig3.add_row(
        {std::string(cloud::ec2_catalog()[i].name),
         util::format_fixed(capacities[0].normalized_performance(i) / 1e9, 2),
         util::format_fixed(capacities[1].normalized_performance(i) / 1e9, 2),
         util::format_fixed(capacities[2].normalized_performance(i) / 1e9, 2)});
  }
  fig3.print(std::cout);

  // Category ratios (the paper's §IV-C argument).
  std::cout << "\ncategory ratios (normalized performance, averaged over the"
            << " three types of each category):\n";
  const char* app_names[] = {"x264", "galaxy", "sand"};
  for (std::size_t a = 0; a < capacities.size(); ++a) {
    auto mean_cat = [&](std::size_t base) {
      return (capacities[a].normalized_performance(base) +
              capacities[a].normalized_performance(base + 1) +
              capacities[a].normalized_performance(base + 2)) /
             3.0;
    };
    const double c4 = mean_cat(0), m4 = mean_cat(3), r3 = mean_cat(6);
    std::cout << "  " << app_names[a]
              << ": c4/r3 = " << util::format_fixed(c4 / r3, 2)
              << " (paper ~2.0), m4/r3 = " << util::format_fixed(m4 / r3, 2)
              << " (paper ~1.5)\n";
  }
  std::cout << "\ngalaxy on c4.large: "
            << util::format_fixed(
                   capacities[1].normalized_performance(0) / 1e9, 2)
            << " B instr/s/$ (paper: 26.27)\n";
  return 0;
}
