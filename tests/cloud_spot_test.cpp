// Tests for the spot-market substrate (cloud/spot.hpp).

#include <gtest/gtest.h>

#include "cloud/spot.hpp"
#include "hw/ipc_model.hpp"
#include "util/stats.hpp"

namespace {

using namespace celia::cloud;
using celia::hw::WorkloadClass;

const InstanceType& c4large() { return ec2_catalog()[0]; }

constexpr WorkloadClass kWc = WorkloadClass::kGenomeAlignment;

double fleet_rate(int instances) {
  return celia::hw::vcpu_rate(c4large().microarch, kWc) * c4large().vcpus *
         instances;
}

TEST(SpotMarket, PricesArePositiveAndBounded) {
  const SpotMarket market(c4large(), 1);
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const double price = market.price(k);
    EXPECT_GE(price, 0.05 * c4large().cost_per_hour);
    EXPECT_LE(price, 10.0 * c4large().cost_per_hour);
  }
}

TEST(SpotMarket, PathIsDeterministicAndOrderIndependent) {
  const SpotMarket forward(c4large(), 7);
  const SpotMarket backward(c4large(), 7);
  std::vector<double> a, b;
  for (std::uint64_t k = 0; k < 500; ++k) a.push_back(forward.price(k));
  for (std::uint64_t k = 500; k-- > 0;) b.push_back(backward.price(k));
  for (std::uint64_t k = 0; k < 500; ++k)
    EXPECT_DOUBLE_EQ(a[k], b[499 - k]) << k;
}

TEST(SpotMarket, MeanPriceNearTargetFraction) {
  const SpotMarket market(c4large(), 11);
  celia::util::RunningStats stats;
  for (std::uint64_t k = 100; k < 5000; ++k) stats.add(market.price(k));
  const double target = 0.30 * c4large().cost_per_hour;
  // Spikes skew the mean upward; it must sit near (and above) the target
  // but far below on-demand.
  EXPECT_GT(stats.mean(), 0.6 * target);
  EXPECT_LT(stats.mean(), c4large().cost_per_hour);
}

TEST(SpotMarket, SeedsChangePaths) {
  const SpotMarket a(c4large(), 1), b(c4large(), 2);
  int equal = 0;
  for (std::uint64_t k = 0; k < 100; ++k)
    if (a.price(k) == b.price(k)) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(SpotRun, CompletesUnderGenerousBid) {
  const SpotMarket market(c4large(), 3);
  SpotRunPolicy policy;
  policy.bid_per_hour = c4large().cost_per_hour;  // bid = on-demand price
  policy.instances = 2;
  const double work = fleet_rate(2) * 2.0 * 3600.0;  // ~2 h of compute
  const auto report = run_on_spot(market, kWc, work, policy, 72 * 3600.0);
  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.seconds, 1.9 * 3600.0);
  EXPECT_GT(report.cost, 0.0);
}

TEST(SpotRun, CheaperThanOnDemandWhenUneventful) {
  const SpotMarket market(c4large(), 4);
  SpotRunPolicy policy;
  policy.bid_per_hour = c4large().cost_per_hour;
  policy.instances = 1;
  const double hours = 3.0;
  const double work = fleet_rate(1) * hours * 3600.0;
  const auto report = run_on_spot(market, kWc, work, policy, 96 * 3600.0);
  ASSERT_TRUE(report.completed);
  const double on_demand_cost =
      c4large().cost_per_hour * report.seconds / 3600.0;
  EXPECT_LT(report.cost, on_demand_cost);
}

TEST(SpotRun, LowBidCausesEvictionsAndDelay) {
  const SpotMarket market(c4large(), 5);
  const double work = fleet_rate(1) * 6.0 * 3600.0;
  SpotRunPolicy generous;
  generous.bid_per_hour = 2.0 * c4large().cost_per_hour;
  SpotRunPolicy stingy = generous;
  stingy.bid_per_hour = 0.28 * c4large().cost_per_hour;  // near the mean
  const auto fast = run_on_spot(market, kWc, work, generous, 200 * 3600.0);
  const auto slow = run_on_spot(market, kWc, work, stingy, 200 * 3600.0);
  ASSERT_TRUE(fast.completed);
  EXPECT_GT(slow.evictions, fast.evictions);
  EXPECT_GT(slow.seconds, fast.seconds);
}

TEST(SpotRun, CheckpointingBoundsLostWork) {
  // With frequent evictions, checkpointing should lose less work than
  // restart-from-zero.
  const SpotMarket market(c4large(), 6);
  const double work = fleet_rate(1) * 8.0 * 3600.0;
  SpotRunPolicy with_ckpt;
  with_ckpt.bid_per_hour = 0.30 * c4large().cost_per_hour;
  with_ckpt.checkpoint_interval_seconds = 900.0;
  SpotRunPolicy no_ckpt = with_ckpt;
  no_ckpt.checkpoint_interval_seconds = 0.0;
  const auto a = run_on_spot(market, kWc, work, with_ckpt, 500 * 3600.0);
  const auto b = run_on_spot(market, kWc, work, no_ckpt, 500 * 3600.0);
  if (a.evictions > 0 && b.evictions > 0) {
    EXPECT_LT(a.lost_work_instructions, b.lost_work_instructions);
  }
  EXPECT_GT(a.checkpoint_overhead_seconds, 0.0);
  EXPECT_EQ(b.checkpoint_overhead_seconds, 0.0);
}

TEST(SpotRun, HorizonAbandonsHopelessRuns) {
  const SpotMarket market(c4large(), 7);
  SpotRunPolicy policy;
  policy.bid_per_hour = 0.051 * c4large().cost_per_hour;  // ~never runs
  const double work = fleet_rate(1) * 3600.0;
  const auto report = run_on_spot(market, kWc, work, policy, 10 * 3600.0);
  EXPECT_FALSE(report.completed);
  EXPECT_NEAR(report.seconds, 10 * 3600.0, 1.0);
}

TEST(SpotRun, ValidatesArguments) {
  const SpotMarket market(c4large(), 8);
  SpotRunPolicy policy;
  policy.bid_per_hour = 0.1;
  EXPECT_THROW(run_on_spot(market, kWc, 0.0, policy, 3600.0),
               std::invalid_argument);
  EXPECT_THROW(run_on_spot(market, kWc, 1e12, policy, -1.0),
               std::invalid_argument);
  SpotRunPolicy no_bid;
  EXPECT_THROW(run_on_spot(market, kWc, 1e12, no_bid, 3600.0),
               std::invalid_argument);
  SpotRunPolicy no_fleet = policy;
  no_fleet.instances = 0;
  EXPECT_THROW(run_on_spot(market, kWc, 1e12, no_fleet, 3600.0),
               std::invalid_argument);
}

}  // namespace
