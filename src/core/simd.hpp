#pragma once
// Runtime-dispatched SIMD kernels for the configuration sweep.
//
// The sweep's inner loop classifies batches of configurations against the
// deadline/budget predicates (core/sweep_plan.hpp produces the batches).
// Each kernel exists in three variants — portable scalar, SSE2 (the
// x86-64 baseline) and AVX2 — compiled per-target with function target
// attributes in the Google-Highway HWY_ATTR style (one source body, one
// attributed symbol per instruction set, dispatch through a function
// table at runtime). Every operation used — divide, multiply, subtract,
// sqrt, max, compare — is exactly rounded under IEEE-754 and FMA
// contraction is never enabled, so all three variants produce
// BIT-IDENTICAL doubles; the vector width only changes how many elements
// are classified per instruction. tests/core_simd_test.cpp pins that
// equivalence and the hexfloat goldens in core_bit_identity_test.cpp pin
// it transitively for every planner entry point.
//
// Dispatch: the active level starts at min(detected, CELIA_SIMD) where the
// CELIA_SIMD environment variable may name "scalar", "sse2" or "avx2"
// (unknown values are ignored); set_simd_level() overrides it at runtime
// (clamped to the detected level) so tests and benches can force the
// scalar fallback and compare.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace celia::core::simd {

enum class Level : int {
  kScalar = 0,  // portable reference loop
  kSse2 = 1,    // 2 doubles / instruction (x86-64 baseline)
  kAvx2 = 2,    // 4 doubles / instruction
};

/// Best level this CPU supports (kSse2 at minimum on x86-64; kScalar on
/// other architectures).
Level detected_level();

/// The level the sweep kernels currently dispatch to: detected, capped by
/// the CELIA_SIMD environment variable at first use and by the most
/// recent set_level() call.
Level active_level();

/// Force a dispatch level (clamped to detected_level()); returns the level
/// actually installed. Thread-safe; affects subsequent sweeps process-wide.
Level set_level(Level level);

std::string_view level_name(Level level);

/// Parse "scalar" / "sse2" / "avx2"; returns false on unknown names.
bool level_from_name(std::string_view name, Level& out);

/// Scalar-demand classification parameters (see classify kernels).
struct ClassifyParams {
  double demand = 0.0;
  double deadline = 0.0;
  double budget = 0.0;
  double z = 0.0;  // confidence_z (risk kernel only)
};

/// classify: for each i < n compute seconds[i] = demand / u[i] and
/// cost[i] = seconds[i] / 3600.0 * cu[i] — the exact expression (and
/// rounding sequence) of the sweep's scalar inner loop — and set bit i of
/// mask_words (word w covers elements [64w, 64w+64)) iff
///   u[i] > 0 && seconds[i] < deadline && cost[i] < budget.
/// mask_words must hold (n + 63) / 64 words; they are overwritten.
/// Returns the number of set bits.
using ClassifyFn = std::size_t (*)(const double* u, const double* cu,
                                   std::size_t n, const ClassifyParams& params,
                                   double* seconds, double* cost,
                                   std::uint64_t* mask_words);

/// Risk-aware variant: the effective capacity u[i] - z * sqrt(v[i]) (v is
/// the capacity variance lane) replaces u[i] in the predicate above.
using ClassifyRiskFn = std::size_t (*)(const double* u, const double* v,
                                       const double* cu, std::size_t n,
                                       const ClassifyParams& params,
                                       double* seconds, double* cost,
                                       std::uint64_t* mask_words);

/// Multi-dimensional (bottleneck) variant: u_rows holds one capacity lane
/// per demand dimension (row d at u_rows + d * stride). For each element,
/// seconds = max over the listed active dimensions of demand[d] / u_d —
/// the same std::max fold order as the scalar sweep — and the element is
/// feasible iff seconds < deadline && cost < budget.
using ClassifyMultiFn = std::size_t (*)(
    const double* u_rows, std::size_t stride, const std::uint32_t* active,
    std::size_t num_active, const double* demand, const double* cu,
    std::size_t n, double deadline, double budget, double* seconds,
    double* cost, std::uint64_t* mask_words);

struct Kernels {
  ClassifyFn classify = nullptr;
  ClassifyRiskFn classify_risk = nullptr;
  ClassifyMultiFn classify_multi = nullptr;
};

/// Kernel table for a specific level (always valid; levels above
/// detected_level() fall back to the best supported table).
const Kernels& kernels(Level level);

/// Kernel table for active_level() — what the sweep uses.
inline const Kernels& active_kernels() { return kernels(active_level()); }

}  // namespace celia::core::simd
