// Reproduces paper Table IV (Model Validation): predicted vs actual time
// and cost for three runs of each application on the paper's
// configurations, with relative errors.
//
// Paper reference values: max errors 9.5% (x264), 13.1% (galaxy),
// 16.7% (sand); overall "prediction error less than 17%".

#include <iostream>

#include "bench_io.hpp"
#include "cloud/provider.hpp"
#include "core/configuration.hpp"
#include "core/validation.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace celia;

  std::uint64_t seed = 2017;
  if (argc > 1) seed = std::strtoull(argv[1], nullptr, 10);

  cloud::CloudProvider provider(seed);
  const auto rows = core::run_table4_validation(provider);

  util::TablePrinter table({"Application", "Configuration", "T pred (hr)",
                            "T actual (hr)", "C pred ($)", "C actual ($)",
                            "Error (%)"});
  for (std::size_t c = 2; c < 7; ++c) table.set_right_aligned(c);

  benchio::CsvSink csv("table4_validation");
  csv.header({"app", "n", "a", "config", "predicted_hours", "actual_hours",
              "predicted_cost", "actual_cost", "time_error"});

  double max_error = 0.0;
  std::string max_app;
  for (const auto& row : rows) {
    csv.row({row.app, util::format_fixed(row.params.n, 0),
             util::format_fixed(row.params.a, 4),
             core::to_string(row.config),
             util::format_fixed(row.predicted_hours, 4),
             util::format_fixed(row.actual_hours, 4),
             util::format_fixed(row.predicted_cost, 4),
             util::format_fixed(row.actual_cost, 4),
             util::format_fixed(row.time_error, 6)});
    table.add_row({row.app + "(" + util::format_si(row.params.n, 0) + "," +
                       util::format_fixed(row.params.a, row.app == "sand" ? 2 : 0) +
                       ")",
                   core::to_string(row.config),
                   util::format_fixed(row.predicted_hours, 1),
                   util::format_fixed(row.actual_hours, 1),
                   util::format_fixed(row.predicted_cost, 0),
                   util::format_fixed(row.actual_cost, 0),
                   util::format_fixed(row.time_error * 100.0, 1)});
    if (row.time_error > max_error) {
      max_error = row.time_error;
      max_app = row.app;
    }
  }

  std::cout << "=== Table IV: Model Validation (seed " << seed << ") ===\n";
  table.print(std::cout);
  std::cout << "\nmax prediction error: "
            << util::format_percent(max_error) << " (" << max_app << ")"
            << "\npaper reference      : 9.5% / 13.1% / 16.7% max per app;"
            << " all under 17%\n";
  csv.announce();
  return max_error < 0.25 ? 0 : 1;
}
