#pragma once
// Composable control-plane resilience primitives, layered on the shared
// exponential-backoff schedule (util/backoff.hpp).
//
// Everything here is a pure, seedable state machine over an EXPLICIT clock
// (wall or simulated seconds supplied by the caller), never the system
// clock — the same reproducibility contract as cloud/faults.hpp: drive two
// instances with the same call sequence and they transition identically,
// so a chaos schedule replays bit-for-bit from its seed.
//
// THREAD SAFETY: TokenBucket, CircuitBreaker and RetryBudget are safe for
// concurrent callers — every transition happens under an internal mutex, so the
// serving layer can share one bucket per tenant and one breaker per
// backend across its worker pool. Concurrent callers cannot order their
// clock reads, so `now` is clamped internally to be non-decreasing (a
// slightly stale `now` behaves as if the call had happened at the latest
// time the primitive has already seen). Determinism is preserved in the
// single-caller (simulated-clock) regime the chaos tests replay; under
// races the LINEARIZED call order decides, and the invariants below hold
// for every interleaving — in particular a half-open CircuitBreaker
// admits exactly `half_open_probes` probes no matter how many threads
// race allow().
//
//   * TokenBucket — client-side rate limiter in front of a throttling
//     provider API (RequestLimitExceeded): acquire() returns WHEN the call
//     may fire instead of sleeping, so simulated time can jump there.
//   * CircuitBreaker — per-endpoint closed/open/half-open breaker. Repeated
//     failures open it; after a (seed-jittered) cooldown a bounded number
//     of probes test the endpoint; probe success closes it, probe failure
//     re-opens it. The jitter decorrelates many breakers opened by one
//     regional brownout so their probe storms don't synchronize.
//   * DeadlineBudget — one wall/simulated-time budget threaded through
//     nested retry loops: a child operation's budget can only shrink, and
//     clamp_delay() caps every backoff sleep so no retry chain can ever
//     overshoot the outermost caller's deadline.
//   * RetryBudget — Finagle-style retry-amplification bound: each original
//     request deposits `ratio` retry tokens into a sliding window, each
//     retry withdraws one, so sustained retry traffic can never exceed
//     `ratio` times the request rate no matter how aggressive the backoff
//     policy is. A small reserve floor keeps low-traffic clients able to
//     retry at all.

#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/backoff.hpp"

namespace celia::obs {
class Gauge;
}

namespace celia::util {

/// Throws std::invalid_argument on a malformed policy (same checks as
/// backoff_delay plus max_attempts >= 1, which only callers enforce).
void validate(const BackoffPolicy& policy);

/// Token-bucket rate limiter over an explicit clock. `capacity` tokens
/// burst; `refill_per_second` tokens accrue continuously. Safe for
/// concurrent callers: a `now` older than what the bucket has already
/// seen is clamped forward, so racing threads with skewed clock reads
/// cannot mint extra tokens or move time backwards.
class TokenBucket {
 public:
  /// Starts full. Throws std::invalid_argument when capacity < 1 or
  /// refill_per_second <= 0 (or either is non-finite).
  TokenBucket(double capacity, double refill_per_second);

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Earliest time >= now at which one token is available; consumes that
  /// token and returns the acquisition time. Never blocks — the caller
  /// advances its (simulated) clock to the returned value.
  double acquire(double now);

  /// Consume a token iff one is available at `now`.
  bool try_acquire(double now);

  /// Tokens available at `now` (fractional while refilling).
  double available(double now) const;

  double capacity() const { return capacity_; }

 private:
  void refill_locked(double now);

  mutable std::mutex mutex_;
  double capacity_;
  double refill_per_second_;
  double tokens_;
  double last_refill_ = 0.0;
};

/// Per-endpoint circuit breaker: closed / open / half-open with seeded,
/// deterministic probe scheduling.
class CircuitBreaker {
 public:
  struct Policy {
    /// Consecutive failures (while closed) that open the breaker.
    int failure_threshold = 5;
    /// Cooldown before an open breaker admits probes (before jitter).
    double open_seconds = 30.0;
    /// Probes admitted per half-open episode; that many consecutive probe
    /// successes close the breaker, any probe failure re-opens it.
    int half_open_probes = 1;
    /// Uniform +/- jitter fraction on each cooldown, drawn as a pure
    /// function of (seed, times opened) — breakers tripped by the same
    /// outage wake up staggered. 0 disables.
    double cooldown_jitter_fraction = 0.0;
    std::uint64_t seed = 0;
    /// When non-empty, every state transition is mirrored into the obs
    /// gauge of this name (0 = closed, 1 = half-open, 2 = open), so the
    /// breaker's position is readable from /metrics alone. The serving
    /// layer's catalog-feed breaker uses `celia_resilience_breaker_state`.
    std::string state_gauge;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  struct Stats {
    std::uint64_t opened = 0;       // closed/half-open -> open transitions
    std::uint64_t half_opened = 0;  // open -> half-open transitions
    std::uint64_t closed = 0;       // half-open -> closed transitions
    std::uint64_t rejected = 0;     // allow() calls answered false
  };

  /// Default policy (defined out of line: the nested Policy's member
  /// initializers are only usable past the end of this class).
  CircuitBreaker();
  /// Throws std::invalid_argument on a malformed policy.
  explicit CircuitBreaker(Policy policy);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// May the next request fire at `now`? An open breaker whose cooldown
  /// has elapsed transitions to half-open here and starts admitting
  /// probes. Safe for racing callers: the open→half-open transition and
  /// the probe admission are one atomic step, so exactly
  /// `half_open_probes` callers are admitted per half-open episode.
  bool allow(double now);

  /// Report the outcome of a request that allow() admitted.
  void record_success(double now);
  void record_failure(double now);

  State state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }
  /// Snapshot of the transition counters (by value: the breaker keeps
  /// mutating concurrently).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  /// When an open breaker next admits a probe (+inf while closed).
  double reopen_at() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reopen_at_;
  }

 private:
  void open_locked(double now);
  void export_state_locked();

  mutable std::mutex mutex_;
  Policy policy_;
  State state_ = State::kClosed;
  Stats stats_;
  int consecutive_failures_ = 0;
  int probes_admitted_ = 0;
  int probe_successes_ = 0;
  double reopen_at_ = std::numeric_limits<double>::infinity();
  obs::Gauge* state_gauge_ = nullptr;  // nullptr when Policy::state_gauge empty
};

/// Finagle-style retry budget over an explicit clock: each original
/// request deposit()s `ratio` retry tokens that live for `window_seconds`;
/// each retry must try_withdraw() one token first. Sustained retry rate is
/// therefore bounded by ratio * request rate (plus the reserve floor),
/// which is what keeps client retries from amplifying a brownout into a
/// retry storm. Deterministic: no randomness, explicit clock, and `now`
/// is clamped non-decreasing like TokenBucket's.
class RetryBudget {
 public:
  struct Policy {
    /// Retry tokens minted per deposited request (0 disables retries
    /// entirely once the reserve is spent).
    double ratio = 0.2;
    /// Reserve accrual floor so a client with negligible traffic can
    /// still probe: tokens per second, capped at one window's worth.
    double min_retries_per_second = 0.0;
    /// Sliding window (whole seconds) over which deposits stay live.
    double window_seconds = 10.0;
  };

  struct Stats {
    std::uint64_t deposits = 0;
    std::uint64_t withdrawals = 0;  // granted retries
    std::uint64_t vetoes = 0;       // try_withdraw() calls answered false
  };

  RetryBudget();
  /// Throws std::invalid_argument on a malformed policy (negative or
  /// non-finite fields, window < 1s).
  explicit RetryBudget(Policy policy);

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// Record one original (non-retry) request at `now`.
  void deposit(double now);

  /// Permission for ONE retry at `now`; false = the retry must be dropped
  /// (the original failure is surfaced instead of amplified).
  bool try_withdraw(double now);

  /// Tokens currently withdrawable (deposit window balance + reserve).
  double balance(double now) const;

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  void advance_locked(double now);

  mutable std::mutex mutex_;
  Policy policy_;
  // Per-second rings of deposited retry tokens and granted withdrawals.
  // Both expire after window_seconds, so balance = deposits - withdrawals
  // over the same sliding window.
  std::vector<double> deposited_;
  std::vector<double> withdrawn_;
  double deposited_sum_ = 0.0;
  double withdrawn_sum_ = 0.0;
  double reserve_ = 0.0;
  std::int64_t current_second_ = 0;
  double last_now_ = 0.0;
  bool started_ = false;
  Stats stats_;
};

/// One deadline threaded through nested retries. Budgets only ever
/// shrink (child() takes the min), so an inner retry loop can never sleep
/// past the outermost caller's deadline.
class DeadlineBudget {
 public:
  /// Default: unlimited (deadline at +inf) — the legacy no-deadline path.
  DeadlineBudget() = default;

  static DeadlineBudget unlimited() { return DeadlineBudget(); }

  /// Absolute deadline in the caller's clock. Throws std::invalid_argument
  /// on NaN or negative.
  static DeadlineBudget until(double deadline_seconds);

  /// Budget of `budget_seconds` starting at `now`.
  static DeadlineBudget from_now(double now, double budget_seconds) {
    return until(now + budget_seconds);
  }

  bool is_unlimited() const {
    return deadline_ == std::numeric_limits<double>::infinity();
  }

  double deadline_seconds() const { return deadline_; }

  /// Seconds left at `now`, clamped to >= 0.
  double remaining(double now) const {
    return now >= deadline_ ? 0.0 : deadline_ - now;
  }

  bool expired(double now) const { return now >= deadline_; }

  /// A nested operation's budget: at most `budget_seconds` from `now`,
  /// never past this budget's own deadline.
  DeadlineBudget child(double now, double budget_seconds) const;

  /// The proposed backoff delay, truncated so now + delay stays within
  /// the deadline; nullopt when the budget is already expired at `now`
  /// (the retry loop must give up instead of sleeping).
  std::optional<double> clamp_delay(double now, double proposed) const;

 private:
  double deadline_ = std::numeric_limits<double>::infinity();
};

}  // namespace celia::util
