file(REMOVE_RECURSE
  "CMakeFiles/table4_validation.dir/table4_validation.cpp.o"
  "CMakeFiles/table4_validation.dir/table4_validation.cpp.o.d"
  "table4_validation"
  "table4_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
