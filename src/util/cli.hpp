#pragma once
// Tiny declarative command-line parser used by examples and benchmarks.
// Supports --name=value, --name value, and boolean --flag forms.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace celia::util {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Register options. `help` is shown by print_usage().
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv. Returns false (and records an error) on unknown or
  /// malformed options; positional arguments are collected in positionals().
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& error() const { return error_; }

  void print_usage(std::ostream& out) const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positionals_;
  std::string error_;
};

}  // namespace celia::util
