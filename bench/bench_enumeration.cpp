// Microbenchmark M1: configuration-space enumeration throughput (the inner
// loop of Algorithm 1) and its thread scaling over the 10,077,695-point
// EC2 space.

#include <benchmark/benchmark.h>

#include "core/enumerate.hpp"

namespace {

using namespace celia::core;

ResourceCapacity bench_capacity() {
  return ResourceCapacity(std::vector<double>(
      {1.38e9, 1.38e9, 1.38e9, 1.31e9, 1.31e9, 1.31e9, 1.09e9, 1.09e9,
       1.09e9}));
}

void BM_FullSweepFeasibility(benchmark::State& state) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = bench_capacity();
  celia::parallel::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.budget_dollars = 350.0;
  SweepOptions options;
  options.collect_pareto = false;
  options.pool = &pool;
  for (auto _ : state) {
    const SweepResult result =
        sweep(space, capacity, 9e15, constraints, options);
    benchmark::DoNotOptimize(result.feasible);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_FullSweepFeasibility)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FullSweepWithPareto(benchmark::State& state) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = bench_capacity();
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.budget_dollars = 350.0;
  for (auto _ : state) {
    const SweepResult result = sweep(space, capacity, 9e15, constraints);
    benchmark::DoNotOptimize(result.pareto.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_FullSweepWithPareto)->Unit(benchmark::kMillisecond);

void BM_DecodeEncode(benchmark::State& state) {
  const auto space = ConfigurationSpace::ec2_default();
  std::uint64_t index = 12345;
  for (auto _ : state) {
    const Configuration config = space.decode(index % space.size());
    benchmark::DoNotOptimize(space.encode(config));
    index = index * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}
BENCHMARK(BM_DecodeEncode);

}  // namespace

BENCHMARK_MAIN();
