#pragma once
// The x264 elastic application (paper Table II, row 1).
//
// Problem size n = number of 75 MB video clips; accuracy a = compression
// factor f in [1, 51] (the paper profiles f in [10, 50]). Clips are encoded
// by independent processes — no inter-node communication — which is why
// x264 shows the lowest prediction error in the paper's Table IV.

#include "apps/elastic_app.hpp"
#include "apps/x264/encoder.hpp"

namespace celia::apps::x264 {

class X264App final : public ElasticApp {
 public:
  explicit X264App(ClipModel model = ClipModel::full()) : model_(model) {}

  std::string_view name() const override { return "x264"; }
  std::string_view domain() const override { return "video compression"; }
  hw::WorkloadClass workload_class() const override {
    return hw::WorkloadClass::kVideoEncoding;
  }
  std::string_view size_param_name() const override { return "n (clips)"; }
  std::string_view accuracy_param_name() const override {
    return "f (compression factor)";
  }
  ParamRange param_range() const override { return {1, 1u << 20, 1, 51}; }

  double exact_demand(const AppParams& params) const override;
  void run_instrumented(const AppParams& params, hw::PerfCounter& counter,
                        std::uint64_t seed = 42) const override;
  Workload make_workload(const AppParams& params) const override;
  std::vector<AppParams> profile_grid() const override;

  const ClipModel& clip_model() const { return model_; }

 private:
  ClipModel model_;
};

}  // namespace celia::apps::x264
