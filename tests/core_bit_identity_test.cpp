// Bit-identity regression guard for the catalog refactor: with the
// default Table III catalog, every planner number must equal the
// pre-refactor implementation BIT FOR BIT — not approximately. The golden
// values below are hexfloat captures from the seed build (galaxy app,
// CloudProvider seed 2017, full measurement, n=65536, a=8000, T'=24 h,
// C'=$350). If any of these change, the refactor altered arithmetic, not
// just structure.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"
#include "core/frontier_index.hpp"
#include "core/query.hpp"

namespace {

using namespace celia::core;

const Celia& golden_celia() {
  static const Celia instance = [] {
    celia::cloud::CloudProvider provider(2017);
    return Celia::build(*celia::apps::make_galaxy(), provider);
  }();
  return instance;
}

constexpr celia::apps::AppParams kParams{65536, 8000};

TEST(BitIdentity, DemandAndCharacterizedRates) {
  const Celia& celia = golden_celia();
  EXPECT_EQ(celia.predict_demand(kParams), 0x1.fbce5e08p+52);
  constexpr double kRates[] = {
      0x1.469d1f70dd2d7p+30, 0x1.56a29e5834e41p+30, 0x1.47c732a0e6e61p+30,
      0x1.4dabeb608e04ep+30, 0x1.4423e3a7964a4p+30, 0x1.463cd35b3b476p+30,
      0x1.17c19569ba397p+30, 0x1.fe845ee283f68p+29, 0x1.d5f8c7d120f24p+29,
  };
  ASSERT_EQ(celia.capacity().num_types(), std::size(kRates));
  for (std::size_t i = 0; i < std::size(kRates); ++i)
    EXPECT_EQ(celia.capacity().per_vcpu_rate(i), kRates[i]) << i;
}

TEST(BitIdentity, FullSweepSelection) {
  const SweepResult result = golden_celia().select(kParams, 24.0, 350.0);
  EXPECT_EQ(result.total, 10'077'695u);
  EXPECT_EQ(result.feasible, 8'046'568u);
  ASSERT_EQ(result.pareto.size(), 68u);

  EXPECT_EQ(result.min_cost.config_index, 862u);
  EXPECT_EQ(result.min_cost.seconds, 0x1.49bc6553dd56ap+16);
  EXPECT_EQ(result.min_cost.cost, 0x1.7d2b3a98b4c9cp+6);
  EXPECT_EQ(result.min_time.config_index, 10'077'694u);
  EXPECT_EQ(result.min_time.seconds, 0x1.0673d55b12338p+15);
  EXPECT_EQ(result.min_time.cost, 0x1.07ce3959f29e9p+7);

  // Frontier endpoints plus its middle entry pin the whole curve's
  // arithmetic (ascending cost order).
  EXPECT_EQ(result.pareto.front().config_index,
            result.min_cost.config_index);
  EXPECT_EQ(result.pareto.front().cost, result.min_cost.cost);
  EXPECT_EQ(result.pareto[34].config_index, 139'966u);
  EXPECT_EQ(result.pareto[34].seconds, 0x1.606747f747f8cp+15);
  EXPECT_EQ(result.pareto[34].cost, 0x1.b1a2813dd3403p+6);
  EXPECT_EQ(result.pareto.back().config_index,
            result.min_time.config_index);
  EXPECT_EQ(result.pareto.back().seconds, result.min_time.seconds);
}

TEST(BitIdentity, FrontierIndexAgreesWithTheSeed) {
  const Celia& celia = golden_celia();
  const FrontierIndex index =
      FrontierIndex::build(celia.space(), celia.capacity());
  EXPECT_EQ(index.frontier().size(), 101u);

  Constraints constraints;
  constraints.deadline_seconds = 24.0 * 3600.0;
  constraints.budget_dollars = 350.0;
  const SweepResult result =
      index.query(celia.predict_demand(kParams), constraints);
  EXPECT_EQ(result.feasible, 8'046'568u);
  EXPECT_EQ(result.min_cost.config_index, 862u);
  EXPECT_EQ(result.min_cost.seconds, 0x1.49bc6553dd56ap+16);
  EXPECT_EQ(result.min_cost.cost, 0x1.7d2b3a98b4c9cp+6);
}

TEST(BitIdentity, CatalogPathReproducesTheLegacyPath) {
  // The catalog-threaded entry points with Catalog::ec2_table3() must be
  // the SAME computation as the legacy span path, not a near-identical
  // one.
  const Celia& celia = golden_celia();
  Constraints constraints;
  constraints.deadline_seconds = 24.0 * 3600.0;
  constraints.budget_dollars = 350.0;
  const Query query = Query::make(celia.predict_demand(kParams), constraints);
  const SweepResult via_catalog =
      sweep(celia.space(), celia.capacity(),
            celia::cloud::Catalog::ec2_table3(), query);
  const SweepResult via_span = sweep(
      celia.space(), celia.capacity(),
      celia::cloud::Catalog::ec2_table3().hourly_costs(), query);
  EXPECT_EQ(via_catalog.feasible, via_span.feasible);
  EXPECT_EQ(via_catalog.min_cost.config_index,
            via_span.min_cost.config_index);
  EXPECT_EQ(via_catalog.min_cost.seconds, via_span.min_cost.seconds);
  EXPECT_EQ(via_catalog.min_cost.cost, via_span.min_cost.cost);
  ASSERT_EQ(via_catalog.pareto.size(), via_span.pareto.size());
  for (std::size_t i = 0; i < via_catalog.pareto.size(); ++i) {
    EXPECT_EQ(via_catalog.pareto[i].config_index,
              via_span.pareto[i].config_index);
    EXPECT_EQ(via_catalog.pareto[i].seconds, via_span.pareto[i].seconds);
    EXPECT_EQ(via_catalog.pareto[i].cost, via_span.pareto[i].cost);
  }
}

}  // namespace
