#pragma once
// The sand elastic application (paper Table II, row 3).
//
// Problem size n = number of candidate genome sequences; accuracy a = the
// quality threshold t in (0, 1]. A master process creates alignment tasks
// and distributes them to workers over a Work Queue — master-worker
// execution with per-task dispatch latency, which is why sand shows the
// largest prediction error in the paper's Table IV.
//
// Demand is linear in n and logarithmic in t: each read is k-mer scanned
// and aligned against a fixed number of candidate partners with a banded
// Smith-Waterman whose band width grows with ln(t).

#include "apps/elastic_app.hpp"
#include "apps/sand/align.hpp"
#include "apps/sand/sequence.hpp"

namespace celia::apps::sand {

/// Tunable model of the assembler's per-read work. `full()` is calibrated
/// to the paper's sand measurements (~2.4 M instructions/read at t = 1);
/// `mini()` keeps instrumented runs fast in tests.
struct SandModel {
  std::uint64_t read_length = 2000;   // bases per read (long reads)
  int candidates_per_read = 4;        // alignment partners per read
  double band_base = 20.0;            // band(t) = base + coeff * ln(t)
  double band_log_coeff = 3.138;
  int min_band = 4;

  /// Master-side bookkeeping per read (task creation, result merge).
  std::uint64_t master_ops_per_read = 20;
  /// Length of the master's per-read task-index hash chain (see
  /// master_pass below): each step costs 6 instructions and runs
  /// single-threaded on the master, so this sets the serial fraction the
  /// fluid model cannot see (~4 k instructions/read at full scale).
  std::uint64_t master_chain_steps = 667;
  /// Wall-clock the master needs to serialize + dispatch one task.
  double dispatch_seconds_per_task = 1.6;
  /// Reads per Work Queue task.
  std::uint64_t reads_per_task = 4'000'000;

  static SandModel full() { return {}; }
  static SandModel mini() {
    SandModel m;
    m.read_length = 40;
    m.candidates_per_read = 2;
    m.band_base = 6.0;
    m.band_log_coeff = 1.5;
    m.min_band = 2;
    m.reads_per_task = 16;
    m.dispatch_seconds_per_task = 0.01;
    m.master_chain_steps = 8;
    return m;
  }

  /// Alignment band width at quality threshold t.
  int band(double t) const;
};

class SandApp final : public ElasticApp {
 public:
  explicit SandApp(SandModel model = SandModel::full()) : model_(model) {}

  std::string_view name() const override { return "sand"; }
  std::string_view domain() const override { return "bioinformatics"; }
  hw::WorkloadClass workload_class() const override {
    return hw::WorkloadClass::kGenomeAlignment;
  }
  std::string_view size_param_name() const override {
    return "n (sequences)";
  }
  std::string_view accuracy_param_name() const override {
    return "t (quality threshold)";
  }
  ParamRange param_range() const override { return {2, 1e12, 0.01, 1.0}; }

  double exact_demand(const AppParams& params) const override;
  void run_instrumented(const AppParams& params, hw::PerfCounter& counter,
                        std::uint64_t seed = 42) const override;
  Workload make_workload(const AppParams& params) const override;
  std::vector<AppParams> profile_grid() const override;

  const SandModel& model() const { return model_; }

  /// Closed-form per-read operation ledger at threshold t given `n` total
  /// reads (each read aligns against min(candidates, n-1) partners).
  /// Worker-side work only; the master's share is master_ops_per_read().
  hw::PerfCounter per_read_ops(double t, std::uint64_t n) const;

  /// Closed-form ledger of the master's per-read task-index work.
  hw::PerfCounter master_pass_ops() const;

 private:
  SandModel model_;
};

}  // namespace celia::apps::sand
