file(REMOVE_RECURSE
  "libcelia_parallel.a"
)
