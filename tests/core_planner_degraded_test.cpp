// Tests for the PlannerEngine degradation ladder (PlanBudget) and the
// memory-bounded LRU index cache: cached index → build → fresh sweep
// (kDegradedSweep) → truncated sweep (kTruncatedSweep), with the route
// always observable in SweepResult::route and the engine counters exact.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cloud/catalog.hpp"
#include "core/planner_engine.hpp"
#include "obs/metrics.hpp"
#include "util/resilience.hpp"

namespace {

using namespace celia::core;
using celia::cloud::Catalog;
using celia::util::DeadlineBudget;
namespace obs = celia::obs;

/// 6 Table III types with uniform limit 3 — 4^6 - 1 = 4095 configurations
/// (the same small fixture as the PlannerEngine tests).
std::shared_ptr<const Catalog> alpha() {
  static const auto catalog = [] {
    const auto& table3 = Catalog::ec2_table3();
    return std::make_shared<const Catalog>(
        "alpha", "test-1",
        std::vector<celia::cloud::InstanceType>{table3.types().begin(),
                                                table3.types().begin() + 6},
        std::vector<int>{3, 3, 3, 3, 3, 3});
  }();
  return catalog;
}

std::shared_ptr<const Catalog> beta() {
  static const auto catalog = std::make_shared<const Catalog>(
      alpha()->with_price_multiplier("beta", "test-2", 1.4));
  return catalog;
}

const ResourceCapacity& small_capacity() {
  static const ResourceCapacity capacity = [] {
    std::vector<double> per_vcpu(alpha()->size());
    for (std::size_t i = 0; i < per_vcpu.size(); ++i)
      per_vcpu[i] = 1.1e9 + 3.7e7 * static_cast<double>(i);
    return ResourceCapacity(std::move(per_vcpu), *alpha());
  }();
  return capacity;
}

Query small_query(double deadline_hours) {
  Constraints constraints;
  constraints.deadline_seconds = deadline_hours * 3600.0;
  SweepOptions options;
  options.collect_pareto = false;
  return Query::make(1e13, constraints, options);
}

/// Budget with `remaining` seconds left, costed so that an index build
/// takes 10 s and a full sweep 2 s.
PlanBudget budget_with(double remaining) {
  PlanBudget budget;
  budget.deadline = DeadlineBudget::until(remaining);
  budget.index_build_cost_seconds = 10.0;
  budget.sweep_cost_seconds = 2.0;
  return budget;
}

TEST(PlannerDegraded, DefaultBudgetTakesTheLegacyRoute) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  const SweepResult result =
      engine.plan("alpha", small_capacity(), small_query(1.0));
  EXPECT_EQ(result.route, QueryRoute::kIndex);
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  EXPECT_GT(engine.cached_index_bytes(), 0u);
}

TEST(PlannerDegraded, TightBudgetFallsBackToAFreshSweepWithEqualAnswers) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  obs::Counter& degraded =
      obs::counter("celia_planner_engine_degraded_total");
  const auto d0 = degraded.value();

  // 5 s left: not enough to build (10 s), enough to sweep (2 s).
  const Query query = small_query(1.0);
  const SweepResult slow =
      engine.plan("alpha", small_capacity(), query, budget_with(5.0));
  EXPECT_EQ(slow.route, QueryRoute::kDegradedSweep);
  EXPECT_EQ(degraded.value() - d0, 1u);
  EXPECT_EQ(engine.num_cached_indexes(), 0u);  // nothing was cached

  // The degraded answer is EXACTLY the unconstrained answer.
  const SweepResult full = engine.plan("alpha", small_capacity(), query);
  ASSERT_TRUE(full.any_feasible);
  EXPECT_EQ(slow.any_feasible, full.any_feasible);
  EXPECT_EQ(slow.min_cost.config_index, full.min_cost.config_index);
  EXPECT_EQ(slow.min_cost.cost, full.min_cost.cost);
  EXPECT_EQ(slow.min_time.config_index, full.min_time.config_index);
  EXPECT_EQ(slow.feasible, full.feasible);
}

TEST(PlannerDegraded, CachedIndexServesEvenTheTightestBudget) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  (void)engine.plan("alpha", small_capacity(), small_query(1.0));  // build
  obs::Counter& hits = obs::counter("celia_planner_engine_index_hits_total");
  obs::Counter& degraded =
      obs::counter("celia_planner_engine_degraded_total");
  const auto h0 = hits.value(), d0 = degraded.value();

  // An already-expired budget: the cache lookup is free, so the engine
  // still answers from the index rather than degrading.
  const SweepResult result = engine.plan("alpha", small_capacity(),
                                         small_query(0.5), budget_with(0.0));
  EXPECT_EQ(result.route, QueryRoute::kIndex);
  EXPECT_EQ(hits.value() - h0, 1u);
  EXPECT_EQ(degraded.value() - d0, 0u);
}

TEST(PlannerDegraded, ExhaustedBudgetTruncatesTheSpace) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  obs::Counter& degraded =
      obs::counter("celia_planner_engine_degraded_total");
  obs::Counter& truncated =
      obs::counter("celia_planner_engine_truncated_sweeps_total");
  const auto d0 = degraded.value(), t0 = truncated.value();

  // 1 s left: even a full sweep (2 s) no longer fits. Cap the truncated
  // space well below 4095 configurations.
  PlanBudget budget = budget_with(1.0);
  budget.truncated_sweep_configs = 500;
  const Query query = small_query(1.0);
  const SweepResult result =
      engine.plan("alpha", small_capacity(), query, budget);
  EXPECT_EQ(result.route, QueryRoute::kTruncatedSweep);
  EXPECT_EQ(degraded.value() - d0, 1u);
  EXPECT_EQ(truncated.value() - t0, 1u);
  EXPECT_LE(result.total, 500u);

  // The best-effort answer decodes against the FULL space and is a real
  // feasible point there: re-evaluating the remapped configuration via a
  // fresh index-eligible query must agree on cost.
  ASSERT_TRUE(result.any_feasible);
  const ConfigurationSpace space = ConfigurationSpace::for_catalog(*alpha());
  const Configuration counts = space.decode(result.min_cost.config_index);
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_LE(counts[i], alpha()->limit(i));

  const SweepResult full = engine.plan("alpha", small_capacity(), query);
  ASSERT_TRUE(full.any_feasible);
  // A truncated sweep is best-effort: never better than the full answer.
  EXPECT_GE(result.min_cost.cost, full.min_cost.cost);
  EXPECT_GE(result.min_time.seconds, full.min_time.seconds);
}

TEST(PlannerDegraded, RoomyTruncationCapReproducesTheFullAnswer) {
  // When the cap already covers the whole space, the truncated route must
  // return the exact full-space answer (the remap is the identity).
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  PlanBudget budget = budget_with(0.0);
  budget.truncated_sweep_configs = 1u << 20;
  const Query query = small_query(1.0);
  const SweepResult result =
      engine.plan("alpha", small_capacity(), query, budget);
  EXPECT_EQ(result.route, QueryRoute::kTruncatedSweep);

  const SweepResult full = engine.plan("alpha", small_capacity(), query);
  EXPECT_EQ(result.min_cost.config_index, full.min_cost.config_index);
  EXPECT_EQ(result.min_cost.cost, full.min_cost.cost);
  EXPECT_EQ(result.min_time.config_index, full.min_time.config_index);
  EXPECT_EQ(result.feasible, full.feasible);
  EXPECT_EQ(result.total, full.total);
}

TEST(PlannerDegraded, IneligibleQueriesDegradeToTruncatedSweepsToo) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  obs::Counter& sweeps = obs::counter("celia_planner_engine_sweeps_total");
  obs::Counter& degraded =
      obs::counter("celia_planner_engine_degraded_total");
  const auto s0 = sweeps.value(), d0 = degraded.value();

  Constraints risky;
  risky.deadline_seconds = 3600.0;
  risky.confidence_z = 1.645;
  risky.rate_sigma = 0.1;
  const Query query = Query::make(1e13, risky, {});

  // Sweep affordable: the normal ineligible route.
  const SweepResult swept =
      engine.plan("alpha", small_capacity(), query, budget_with(5.0));
  EXPECT_NE(swept.route, QueryRoute::kIndex);
  EXPECT_NE(swept.route, QueryRoute::kTruncatedSweep);
  EXPECT_EQ(sweeps.value() - s0, 1u);
  EXPECT_EQ(degraded.value() - d0, 0u);

  // Sweep unaffordable: the truncated route, even for risk-aware queries.
  const SweepResult rushed =
      engine.plan("alpha", small_capacity(), query, budget_with(1.0));
  EXPECT_EQ(rushed.route, QueryRoute::kTruncatedSweep);
  EXPECT_EQ(degraded.value() - d0, 1u);
}

TEST(PlannerDegraded, CountersStayExactAcrossTheLadder) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  obs::Counter& queries = obs::counter("celia_planner_engine_queries_total");
  obs::Counter& hits = obs::counter("celia_planner_engine_index_hits_total");
  obs::Counter& builds =
      obs::counter("celia_planner_engine_index_builds_total");
  obs::Counter& sweeps = obs::counter("celia_planner_engine_sweeps_total");
  obs::Counter& degraded =
      obs::counter("celia_planner_engine_degraded_total");
  const auto q0 = queries.value(), h0 = hits.value(), b0 = builds.value(),
             s0 = sweeps.value(), d0 = degraded.value();

  (void)engine.plan("alpha", small_capacity(), small_query(1.0),
                    budget_with(5.0));  // degraded sweep
  (void)engine.plan("alpha", small_capacity(), small_query(1.0),
                    budget_with(1.0));  // truncated sweep
  (void)engine.plan("alpha", small_capacity(), small_query(1.0));  // build
  (void)engine.plan("alpha", small_capacity(), small_query(1.0),
                    budget_with(0.0));  // cache hit beats any budget

  EXPECT_EQ(queries.value() - q0, 4u);
  EXPECT_EQ(degraded.value() - d0, 2u);
  EXPECT_EQ(builds.value() - b0, 1u);
  EXPECT_EQ(hits.value() - h0, 1u);
  EXPECT_EQ(sweeps.value() - s0, 0u);
  // The extended invariant: every query takes exactly one route.
  EXPECT_EQ((hits.value() - h0) + (builds.value() - b0) +
                (sweeps.value() - s0) + (degraded.value() - d0),
            queries.value() - q0);
}

TEST(PlannerDegraded, NearZeroBudgetIsDeterministicAndNeverBuilds) {
  // The serving layer hands plan() whatever deadline remains when a
  // request finally dispatches — possibly (near) zero. The engine must
  // answer with a typed, bounded route every time: never an unbounded
  // index build, never an untyped timeout, and bit-identical answers
  // across repeats.
  obs::Counter& builds =
      obs::counter("celia_planner_engine_index_builds_total");
  obs::Counter& truncated =
      obs::counter("celia_planner_engine_truncated_sweeps_total");
  const Query query = small_query(1.0);

  for (const double remaining : {0.0, 1e-12, 1e-9, 1e-3}) {
    PlannerEngine engine;
    engine.add_catalog("alpha", alpha());
    PlanBudget budget = budget_with(remaining);
    budget.truncated_sweep_configs = 256;

    const auto b0 = builds.value(), t0 = truncated.value();
    const SweepResult first =
        engine.plan("alpha", small_capacity(), query, budget);
    EXPECT_EQ(first.route, QueryRoute::kTruncatedSweep) << remaining;
    EXPECT_LE(first.total, 256u);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const SweepResult again =
          engine.plan("alpha", small_capacity(), query, budget);
      EXPECT_EQ(again.route, QueryRoute::kTruncatedSweep);
      EXPECT_EQ(again.min_cost.config_index, first.min_cost.config_index);
      EXPECT_EQ(again.min_cost.cost, first.min_cost.cost);
      EXPECT_EQ(again.min_time.config_index, first.min_time.config_index);
      EXPECT_EQ(again.feasible, first.feasible);
    }
    // The ladder never attempted a build, and every call was typed.
    EXPECT_EQ(builds.value() - b0, 0u);
    EXPECT_EQ(truncated.value() - t0, 4u);
  }
}

TEST(PlannerDegraded, LruEvictionKeepsTheCacheUnderTheByteBound) {
  // First find the real per-index footprint, then bound a second engine
  // just below two of them: caching beta must evict alpha (LRU), and the
  // byte accounting must stay exact.
  std::size_t one_index_bytes = 0;
  {
    PlannerEngine probe;
    probe.add_catalog("alpha", alpha());
    (void)probe.plan("alpha", small_capacity(), small_query(1.0));
    one_index_bytes = probe.cached_index_bytes();
    ASSERT_GT(one_index_bytes, 0u);
  }

  PlannerEngineOptions options;
  options.max_index_cache_bytes = 2 * one_index_bytes - 1;
  PlannerEngine engine(options);
  engine.add_catalog("alpha", alpha());
  engine.add_catalog("beta", beta());
  obs::Counter& evictions =
      obs::counter("celia_planner_engine_index_evictions_total");
  obs::Counter& builds =
      obs::counter("celia_planner_engine_index_builds_total");
  obs::Counter& hits = obs::counter("celia_planner_engine_index_hits_total");
  const auto e0 = evictions.value(), b0 = builds.value(), h0 = hits.value();

  (void)engine.plan("alpha", small_capacity(), small_query(1.0));
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  EXPECT_EQ(evictions.value() - e0, 0u);

  // beta's index pushes the cache over the bound: alpha is evicted.
  (void)engine.plan("beta", small_capacity(), small_query(1.0));
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  EXPECT_EQ(evictions.value() - e0, 1u);
  EXPECT_LE(engine.cached_index_bytes(), options.max_index_cache_bytes);

  // beta is the cached survivor; re-planning alpha rebuilds its index,
  // which in turn evicts beta — recency, not insertion order, decides.
  const auto h_before = hits.value();
  (void)engine.plan("beta", small_capacity(), small_query(0.5));  // hit
  EXPECT_EQ(hits.value() - h_before, 1u);
  (void)engine.plan("alpha", small_capacity(), small_query(1.0));  // rebuild
  EXPECT_EQ(evictions.value() - e0, 2u);
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  // The survivor is alpha: planning it again is a pure cache hit.
  const auto h1 = hits.value();
  (void)engine.plan("alpha", small_capacity(), small_query(2.0));
  EXPECT_EQ(hits.value() - h1, 1u);
  EXPECT_EQ(builds.value() - b0, 3u);  // alpha, beta, alpha-again
  EXPECT_GE(hits.value() - h0, 2u);
}

TEST(PlannerDegraded, SingleOversizedIndexIsNeverSelfEvicted) {
  PlannerEngineOptions options;
  options.max_index_cache_bytes = 1;  // absurdly small
  PlannerEngine engine(options);
  engine.add_catalog("alpha", alpha());
  obs::Counter& hits = obs::counter("celia_planner_engine_index_hits_total");
  (void)engine.plan("alpha", small_capacity(), small_query(1.0));
  // The only cached index exceeds the bound by itself, but evicting it
  // would make the engine useless for its own catalog: it survives.
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  const auto h0 = hits.value();
  (void)engine.plan("alpha", small_capacity(), small_query(0.5));
  EXPECT_EQ(hits.value() - h0, 1u);
}

}  // namespace
