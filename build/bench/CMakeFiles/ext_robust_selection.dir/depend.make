# Empty dependencies file for ext_robust_selection.
# This may be replaced when dependencies are built.
