#pragma once
// Workload descriptions handed from an elastic application to the cluster
// execution simulator. A workload captures the parallel structure the real
// application would exhibit on a cluster; the simulator interprets it to
// produce the "actual" execution time CELIA's predictions are validated
// against (paper Table IV).

#include <cstdint>
#include <string>
#include <vector>

#include "hw/workload_class.hpp"

namespace celia::apps {

/// Parallel execution pattern of an application on a cluster.
enum class ParallelPattern {
  /// Independent tasks, no inter-node communication (x264: one process per
  /// video clip; nodes never talk to each other).
  kIndependentTasks,
  /// Bulk-synchronous: fixed number of steps; in each step the work is
  /// divided across nodes and every node must finish (plus a synchronization
  /// exchange) before the next step starts (galaxy: per-step all-gather of
  /// body positions).
  kBulkSynchronous,
  /// Master-worker: a master dispatches tasks to idle workers over the
  /// network with a fixed per-task dispatch latency (sand on Work Queue).
  kMasterWorker,
};

struct Workload {
  std::string app_name;
  hw::WorkloadClass workload_class = hw::WorkloadClass::kNBody;
  ParallelPattern pattern = ParallelPattern::kIndependentTasks;

  /// Total demand in instructions; always equals the sum over the pattern's
  /// components below.
  double total_instructions = 0.0;

  // --- kIndependentTasks / kMasterWorker ---
  /// Per-task instruction counts.
  std::vector<double> task_instructions;

  // --- kMasterWorker ---
  /// Wall-clock the master spends dispatching one task (serialization +
  /// network round trip); tasks wait for it serially at the master.
  double dispatch_seconds_per_task = 0.0;
  /// Instructions the master must execute single-threaded before any task
  /// can be dispatched (task creation / index construction). Part of the
  /// application's total demand, but NOT parallelizable — the fluid model
  /// (paper Eq. 2) ignores this, which is a deliberate source of
  /// prediction error for master-worker applications (Table IV).
  double serial_instructions = 0.0;

  // --- kBulkSynchronous ---
  std::uint64_t steps = 0;
  /// Instructions per step, divided across nodes proportionally to their
  /// capacity (the decomposition the paper's model assumes).
  double instructions_per_step = 0.0;
  /// Bytes every node must exchange at each step barrier.
  double sync_bytes_per_step = 0.0;
};

}  // namespace celia::apps
