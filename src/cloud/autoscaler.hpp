#pragma once
// Reactive deadline-driven autoscaling baseline.
//
// The paper's related work (§II) contrasts CELIA's ahead-of-time optimal
// configuration selection with reactive autoscaling (Mao et al.): start
// small, watch progress, add or remove instances to meet the deadline.
// This module implements such a controller over the simulated cloud so the
// two approaches can be compared on cost (bench/ext_autoscaling).
//
// The executor uses a fluid approximation of a divisible workload: in each
// control interval the fleet retires work at its aggregate delivered rate;
// between intervals the controller re-estimates the finish time and scales
// up (toward the deadline) or down (when comfortably ahead). Scale-ups pay
// a provisioning delay during which the new instance bills but does no
// work — the classic autoscaling inefficiency CELIA avoids.

#include <cstdint>
#include <vector>

#include "cloud/pricing.hpp"
#include "cloud/provider.hpp"
#include "hw/workload_class.hpp"

namespace celia::cloud {

struct AutoscalerPolicy {
  /// Controller wake-up period.
  double interval_seconds = 300.0;
  /// Instance boot + contextualization time; bills, does not compute.
  double provision_delay_seconds = 120.0;
  /// Scale up while projected finish > deadline x headroom.
  double headroom = 0.95;
  /// Scale down when projected finish < deadline x relax (never below one
  /// instance).
  double relax = 0.60;
  /// Catalog type the controller adds/removes (autoscaling groups are
  /// homogeneous; pick the type by cost-efficiency before starting).
  std::size_t type_index = 0;
  /// Upper bound on fleet size (EC2 default limits).
  int max_instances = 20;
  BillingPolicy billing = BillingPolicy::kContinuous;
};

struct AutoscaleReport {
  double seconds = 0.0;          // makespan
  double cost = 0.0;             // total billed cost
  bool met_deadline = false;
  int peak_instances = 0;
  int scale_ups = 0;
  int scale_downs = 0;
  /// Fleet-size samples, one per control interval (for plotting).
  std::vector<int> fleet_trace;
};

/// Run `total_instructions` of perfectly divisible work of class
/// `workload` under the reactive controller. The provider supplies
/// per-instance speed factors; instances bill from provision to release.
/// Throws std::invalid_argument on non-positive work or bad policy.
AutoscaleReport run_autoscaled(CloudProvider& provider,
                               hw::WorkloadClass workload,
                               double total_instructions,
                               double deadline_seconds,
                               const AutoscalerPolicy& policy = {});

}  // namespace celia::cloud
