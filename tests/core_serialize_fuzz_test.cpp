// Corruption fuzzing of the model load path (core/serialize.hpp): a
// truncated or field-mangled `celia-model 1` stream must throw a
// descriptive exception — never crash, hang, or hand back a partially
// initialized model.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/serialize.hpp"

namespace {

using namespace celia::core;
using celia::cloud::CloudProvider;

const std::string& model_text() {
  static const std::string text = [] {
    CloudProvider provider(2017);
    return model_to_string(
        Celia::build(*celia::apps::make_galaxy(), provider));
  }();
  return text;
}

/// Replace the whole line starting with `key ` by `replacement`.
std::string with_line(const std::string& text, const std::string& key,
                      const std::string& replacement) {
  const std::size_t begin = text.find(key + " ");
  EXPECT_NE(begin, std::string::npos) << key;
  const std::size_t end = text.find('\n', begin);
  return text.substr(0, begin) + replacement + text.substr(end);
}

TEST(SerializeFuzz, EveryMeaningfulTruncationThrows) {
  const std::string& full = model_text();
  // Truncations inside the final token can still parse (a shortened double
  // is a double); everything before it must throw.
  const std::size_t last_token = full.find_last_of(' ') + 1;
  for (std::size_t len = 0; len <= last_token; ++len) {
    EXPECT_THROW(model_from_string(full.substr(0, len)), std::exception)
        << "truncation at byte " << len << " did not throw";
  }
  // Truncations inside the final token must not crash either way.
  for (std::size_t len = last_token + 1; len < full.size(); ++len) {
    try {
      (void)model_from_string(full.substr(0, len));
    } catch (const std::exception&) {
    }
  }
}

TEST(SerializeFuzz, MangledHeaderThrows) {
  EXPECT_THROW(model_from_string(""), std::runtime_error);
  EXPECT_THROW(model_from_string("garbage\n"), std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "celia-model",
                                  "celia-model 4")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "celia-model",
                                  "celia-model 0")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "celia-model",
                                  "celia-model x")),
      std::runtime_error);
}

TEST(SerializeFuzz, MangledCatalogMetaThrows) {
  // Width zero / absurd; missing or non-numeric fingerprint.
  EXPECT_THROW(model_from_string(with_line(model_text(), "catalog.meta",
                                           "catalog.meta 0 1")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "catalog.meta",
                                           "catalog.meta 9999 1")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "catalog.meta",
                                           "catalog.meta 9")),
               std::runtime_error);
  // Claiming fewer types than the section holds desynchronizes the parser
  // at the next catalog.type line.
  EXPECT_THROW(model_from_string(with_line(model_text(), "catalog.meta",
                                           "catalog.meta 2 1")),
               std::runtime_error);
}

TEST(SerializeFuzz, CatalogFingerprintMismatchThrows) {
  // Retail price tampering: the rebuilt catalog no longer reproduces the
  // stored fingerprint, and the error says so.
  std::string text = model_text();
  const std::size_t pos = text.find("\t0.105\t");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "\t0.104\t");
  try {
    (void)model_from_string(text);
    FAIL() << "load of a price-tampered model succeeded";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"),
              std::string::npos)
        << error.what();
  }
}

TEST(SerializeFuzz, MangledCatalogTypeThrows) {
  const std::string& full = model_text();
  const std::size_t begin = full.find("catalog.type\t");
  ASSERT_NE(begin, std::string::npos);
  const std::size_t end = full.find('\n', begin);
  const auto with_type = [&](const std::string& line) {
    return full.substr(0, begin) + line + full.substr(end);
  };
  // Too few fields; unknown category / size / microarch ids; non-numeric
  // and non-finite numerics; negative price and limit.
  EXPECT_THROW(model_from_string(with_type("catalog.type\tc4.large\t0\t0")),
               std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_type(
          "catalog.type\tc4.large\t7\t0\t2\t2.9\t3.75\tEBS\t0.105\t5\t0")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_type(
          "catalog.type\tc4.large\t0\t9\t2\t2.9\t3.75\tEBS\t0.105\t5\t0")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_type(
          "catalog.type\tc4.large\t0\t0\t2\t2.9\t3.75\tEBS\t0.105\t5\t9")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_type(
          "catalog.type\tc4.large\t0\t0\tx\t2.9\t3.75\tEBS\t0.105\t5\t0")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_type(
          "catalog.type\tc4.large\t0\t0\t2\tinf\t3.75\tEBS\t0.105\t5\t0")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_type(
          "catalog.type\tc4.large\t0\t0\t2\t2.9\t3.75\tEBS\t-0.105\t5\t0")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_type(
          "catalog.type\tc4.large\t0\t0\t2\t2.9\t3.75\tEBS\t0.105\t-1\t0")),
      std::runtime_error);
}

TEST(SerializeFuzz, VersionOneBodyWithVersionTwoHeaderThrows) {
  // A v2 header promises a catalog section; a v1 body has none.
  std::string text = model_text();
  std::size_t begin;
  while ((begin = text.find("catalog.")) != std::string::npos)
    text.erase(begin, text.find('\n', begin) + 1 - begin);
  EXPECT_THROW(model_from_string(text), std::runtime_error);
}

TEST(SerializeFuzz, MangledWorkloadAndShapesThrow) {
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "workload", "workload 99")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "workload", "workload")),
      std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.shapes",
                                           "demand.shapes 7 0")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.shapes",
                                           "demand.shapes 0")),
               std::runtime_error);
}

TEST(SerializeFuzz, MangledSpaceThrows) {
  // Absurd width.
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "space", "space 64000 5")),
      std::runtime_error);
  // Negative and overflow-scale max counts.
  EXPECT_THROW(model_from_string(with_line(
                   model_text(), "space",
                   "space 9 5 5 5 5 5 5 5 5 -1")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(
                   model_text(), "space",
                   "space 9 5 5 5 5 5 5 5 5 1000000")),
               std::runtime_error);
}

TEST(SerializeFuzz, MangledCapacityThrows) {
  // "inf" parses as a valid positive double: the finiteness check must
  // catch it.
  EXPECT_THROW(model_from_string(with_line(
                   model_text(), "capacity",
                   "capacity 9 inf 1e9 1e9 1e9 1e9 1e9 1e9 1e9 1e9")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(
                   model_text(), "capacity",
                   "capacity 9 nan 1e9 1e9 1e9 1e9 1e9 1e9 1e9 1e9")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(
                   model_text(), "capacity",
                   "capacity 9 -1e9 1e9 1e9 1e9 1e9 1e9 1e9 1e9 1e9")),
               std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "capacity", "capacity 0")),
      std::runtime_error);
  EXPECT_THROW(
      model_from_string(with_line(model_text(), "capacity", "capacity 9999")),
      std::runtime_error);
}

TEST(SerializeFuzz, MangledFitThrows) {
  // Basis count lies about the payload.
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.n_fit",
                                           "demand.n_fit 17")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.n_fit",
                                           "demand.n_fit 2 0 1 1.0")),
               std::runtime_error);
  // Unknown basis id; non-finite coefficient; non-finite statistics.
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.n_fit",
                                           "demand.n_fit 1 99 1.0 1 1 0")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.n_fit",
                                           "demand.n_fit 1 0 inf 1 1 0")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.n_fit",
                                           "demand.n_fit 1 0 1.0 nan 1 0")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.n_fit",
                                           "demand.n_fit 1 0 1.0 1 1 -2")),
               std::runtime_error);
}

TEST(SerializeFuzz, MangledReferenceThrows) {
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.reference",
                                           "demand.reference 16 20 inf 1")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.reference",
                                           "demand.reference 16 20 -1e15 1")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.reference",
                                           "demand.reference nan 20 1e15 1")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_line(model_text(), "demand.reference",
                                           "demand.reference 16 20 1e15")),
               std::runtime_error);
}

TEST(SerializeFuzz, MissingSectionThrows) {
  // Deleting a whole line makes the next key appear where another was
  // expected; the error names what it wanted.
  const std::string& full = model_text();
  const std::size_t begin = full.find("capacity ");
  const std::size_t end = full.find('\n', begin) + 1;
  const std::string without = full.substr(0, begin) + full.substr(end);
  try {
    (void)model_from_string(without);
    FAIL() << "load of a model missing its capacity line succeeded";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("capacity"), std::string::npos);
  }
}

/// Replace the whole line starting with `key` + TAB by `replacement` (the
/// v3 dimension line is tab-separated).
std::string with_tab_line(const std::string& text, const std::string& key,
                          const std::string& replacement) {
  const std::size_t begin = text.find(key + "\t");
  EXPECT_NE(begin, std::string::npos) << key;
  const std::size_t end = text.find('\n', begin);
  return text.substr(0, begin) + replacement + text.substr(end);
}

TEST(SerializeFuzz, MangledDimensionSectionThrows) {
  const std::string key = "capacity.dimensions";
  // Count zero / absurd; count lying about the name payload; non-numeric
  // fingerprint; a 1-D schema that is not [instructions].
  EXPECT_THROW(model_from_string(with_tab_line(
                   model_text(), key, key + "\t0\t1")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_tab_line(
                   model_text(), key, key + "\t17\t1\tinstructions")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_tab_line(
                   model_text(), key,
                   key + "\t2\t1\tinstructions")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_tab_line(
                   model_text(), key, key + "\tx\t1\tinstructions")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_tab_line(
                   model_text(), key, key + "\t1\tx\tinstructions")),
               std::runtime_error);
  EXPECT_THROW(model_from_string(with_tab_line(
                   model_text(), key, key + "\t1\t1\tio_ops")),
               std::runtime_error);
  // A fingerprint that does not reproduce the stored names.
  EXPECT_THROW(model_from_string(with_tab_line(
                   model_text(), key, key + "\t1\t12345\tinstructions")),
               std::runtime_error);
}

TEST(SerializeFuzz, VersionTwoBodyWithVersionThreeHeaderThrows) {
  // A v3 header promises a dimension section; a v2 body has none.
  std::string text = model_text();
  std::size_t begin;
  while ((begin = text.find("capacity.")) != std::string::npos)
    text.erase(begin, text.find('\n', begin) + 1 - begin);
  EXPECT_THROW(model_from_string(text), std::runtime_error);
}

TEST(SerializeFuzz, IntactModelStillLoads) {
  // The fixture itself must be valid, or the tests above prove nothing.
  EXPECT_NO_THROW(model_from_string(model_text()));
}

}  // namespace
