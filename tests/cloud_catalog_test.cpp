// Tests for the EC2 catalog (paper Table III) and billing policies.

#include <gtest/gtest.h>

#include "cloud/instance_type.hpp"
#include "cloud/pricing.hpp"

namespace {

using namespace celia::cloud;

TEST(Catalog, HasNineTypes) { EXPECT_EQ(catalog_size(), 9u); }

TEST(Catalog, Table3RowsVerbatim) {
  struct Row {
    const char* name;
    int vcpus;
    double ghz;
    double mem;
    double cost;
  };
  const Row rows[] = {
      {"c4.large", 2, 2.9, 3.75, 0.105},  {"c4.xlarge", 4, 2.9, 7.5, 0.209},
      {"c4.2xlarge", 8, 2.9, 15, 0.419},  {"m4.large", 2, 2.3, 8, 0.133},
      {"m4.xlarge", 4, 2.3, 16, 0.266},   {"m4.2xlarge", 8, 2.3, 32, 0.532},
      {"r3.large", 2, 2.5, 15, 0.166},    {"r3.xlarge", 4, 2.5, 30.5, 0.333},
      {"r3.2xlarge", 8, 2.5, 61, 0.664},
  };
  const auto catalog = ec2_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].name, rows[i].name);
    EXPECT_EQ(catalog[i].vcpus, rows[i].vcpus);
    EXPECT_DOUBLE_EQ(catalog[i].frequency_ghz, rows[i].ghz);
    EXPECT_DOUBLE_EQ(catalog[i].memory_gb, rows[i].mem);
    EXPECT_DOUBLE_EQ(catalog[i].cost_per_hour, rows[i].cost);
  }
}

TEST(Catalog, PriceRangeMatchesPaper) {
  // "hourly prices range from $0.105 to $0.664"
  double min = 1e9, max = 0;
  for (const auto& type : ec2_catalog()) {
    min = std::min(min, type.cost_per_hour);
    max = std::max(max, type.cost_per_hour);
  }
  EXPECT_DOUBLE_EQ(min, 0.105);
  EXPECT_DOUBLE_EQ(max, 0.664);
}

TEST(Catalog, CategoriesGroupCorrectly) {
  for (const auto& type : ec2_catalog()) {
    const std::string_view name = type.name;
    if (name.substr(0, 2) == "c4") {
      EXPECT_EQ(type.category, Category::kCompute);
    }
    if (name.substr(0, 2) == "m4") {
      EXPECT_EQ(type.category, Category::kGeneralPurpose);
    }
    if (name.substr(0, 2) == "r3") {
      EXPECT_EQ(type.category, Category::kMemoryOptimized);
    }
  }
}

TEST(Catalog, SizesMatchVcpuCounts) {
  for (const auto& type : ec2_catalog()) {
    switch (type.size) {
      case Size::kLarge:
        EXPECT_EQ(type.vcpus, 2);
        break;
      case Size::kXLarge:
        EXPECT_EQ(type.vcpus, 4);
        break;
      case Size::k2XLarge:
        EXPECT_EQ(type.vcpus, 8);
        break;
    }
  }
}

TEST(Catalog, FindByName) {
  const auto type = find_instance_type("m4.xlarge");
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(type->vcpus, 4);
  EXPECT_FALSE(find_instance_type("t2.micro").has_value());
}

TEST(Catalog, IndexLookup) {
  EXPECT_EQ(catalog_index("c4.large"), 0u);
  EXPECT_EQ(catalog_index("r3.2xlarge"), 8u);
  EXPECT_THROW(catalog_index("nope"), std::out_of_range);
}

TEST(Pricing, ContinuousIsFractional) {
  const auto type = *find_instance_type("c4.large");
  EXPECT_DOUBLE_EQ(instance_cost(type, 1800.0, BillingPolicy::kContinuous),
                   0.105 / 2);
}

TEST(Pricing, PerHourRoundsUp) {
  const auto type = *find_instance_type("c4.large");
  EXPECT_DOUBLE_EQ(instance_cost(type, 3601.0, BillingPolicy::kPerHour),
                   2 * 0.105);
  EXPECT_DOUBLE_EQ(instance_cost(type, 3600.0, BillingPolicy::kPerHour),
                   0.105);
}

TEST(Pricing, PerSecondRoundsUpSeconds) {
  const auto type = *find_instance_type("c4.large");
  EXPECT_DOUBLE_EQ(instance_cost(type, 0.2, BillingPolicy::kPerSecond),
                   0.105 / 3600.0);
}

TEST(Pricing, PoliciesOrdered) {
  // continuous <= per-second <= per-hour for any duration.
  const auto type = *find_instance_type("r3.xlarge");
  for (const double seconds : {1.0, 59.9, 3599.0, 3601.0, 86400.5}) {
    const double c = instance_cost(type, seconds, BillingPolicy::kContinuous);
    const double s = instance_cost(type, seconds, BillingPolicy::kPerSecond);
    const double h = instance_cost(type, seconds, BillingPolicy::kPerHour);
    EXPECT_LE(c, s + 1e-12);
    EXPECT_LE(s, h + 1e-12);
  }
}

TEST(Pricing, NegativeTimeThrows) {
  const auto type = *find_instance_type("c4.large");
  EXPECT_THROW(instance_cost(type, -1.0), std::invalid_argument);
}

TEST(Pricing, ConfigurationHourlyCostSumsTypes) {
  // Paper Eq. 6 on the Fig. 6(a) annotation [5,5,5,3,0,...]:
  // 5 x (0.105 + 0.209 + 0.419) + 3 x 0.133 = 4.064 $/hr.
  std::vector<int> counts = {5, 5, 5, 3, 0, 0, 0, 0, 0};
  EXPECT_NEAR(configuration_hourly_cost(counts), 4.064, 1e-12);
}

TEST(Pricing, ConfigurationCostWrongWidthThrows) {
  EXPECT_THROW(configuration_hourly_cost({1, 2}), std::invalid_argument);
  EXPECT_THROW(configuration_cost({1, 2}, 10.0), std::invalid_argument);
}

TEST(Pricing, NegativeCountThrows) {
  std::vector<int> counts(9, 0);
  counts[0] = -1;
  EXPECT_THROW(configuration_hourly_cost(counts), std::invalid_argument);
}

}  // namespace
