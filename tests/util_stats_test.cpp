// Tests for descriptive statistics (util/stats.hpp).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace celia::util;

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
  EXPECT_EQ(stats.sample_variance(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Xoshiro256 rng(1);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats, empty;
  stats.add(1.0);
  stats.add(3.0);
  const double mean_before = stats.mean();
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_EQ(stats.mean(), mean_before);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean_before);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(values), 3.0);
  EXPECT_NEAR(stddev(values), std::sqrt(2.5), 1e-12);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> values = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(values), 25.0);
}

TEST(Stats, PercentileOfEmptyThrows) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50),
               std::invalid_argument);
}

TEST(Stats, PercentileClampsP) {
  const std::vector<double> values = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(values, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 400), 3.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(1, 0)));
}

TEST(Stats, RSquaredPerfectFitIsOne) {
  const std::vector<double> obs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  const std::vector<double> obs = {1, 2, 3, 4};
  const std::vector<double> pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(obs, pred), 0.0, 1e-12);
}

TEST(Stats, RSquaredSizeMismatchThrows) {
  const std::vector<double> a = {1, 2}, b = {1};
  EXPECT_THROW(r_squared(a, b), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonOfConstantIsZero) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {5, 5, 5, 5};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

}  // namespace
