#include "cloud/instance_type.hpp"

#include <array>
#include <stdexcept>

namespace celia::cloud {

namespace {

using hw::Microarch;

// Paper Table III verbatim (vCPUs, GHz, memory, storage, $/hr).
constexpr std::array<InstanceType, 9> kCatalog = {{
    {"c4.large", Category::kCompute, Size::kLarge, 2, 2.9, 3.75, "EBS",
     0.105, Microarch::kHaswellE5_2666v3},
    {"c4.xlarge", Category::kCompute, Size::kXLarge, 4, 2.9, 7.5, "EBS",
     0.209, Microarch::kHaswellE5_2666v3},
    {"c4.2xlarge", Category::kCompute, Size::k2XLarge, 8, 2.9, 15, "EBS",
     0.419, Microarch::kHaswellE5_2666v3},
    {"m4.large", Category::kGeneralPurpose, Size::kLarge, 2, 2.3, 8, "EBS",
     0.133, Microarch::kHaswellE5_2676v3},
    {"m4.xlarge", Category::kGeneralPurpose, Size::kXLarge, 4, 2.3, 16, "EBS",
     0.266, Microarch::kHaswellE5_2676v3},
    {"m4.2xlarge", Category::kGeneralPurpose, Size::k2XLarge, 8, 2.3, 32,
     "EBS", 0.532, Microarch::kHaswellE5_2676v3},
    {"r3.large", Category::kMemoryOptimized, Size::kLarge, 2, 2.5, 15, "32",
     0.166, Microarch::kSandyBridgeE5_2670},
    {"r3.xlarge", Category::kMemoryOptimized, Size::kXLarge, 4, 2.5, 30.5,
     "80", 0.333, Microarch::kSandyBridgeE5_2670},
    {"r3.2xlarge", Category::kMemoryOptimized, Size::k2XLarge, 8, 2.5, 61,
     "160", 0.664, Microarch::kSandyBridgeE5_2670},
}};

}  // namespace

std::string_view category_name(Category category) {
  switch (category) {
    case Category::kCompute:
      return "c4";
    case Category::kGeneralPurpose:
      return "m4";
    case Category::kMemoryOptimized:
      return "r3";
  }
  return "?";
}

std::string_view size_name(Size size) {
  switch (size) {
    case Size::kLarge:
      return "large";
    case Size::kXLarge:
      return "xlarge";
    case Size::k2XLarge:
      return "2xlarge";
  }
  return "?";
}

std::span<const InstanceType> ec2_catalog() { return kCatalog; }

std::size_t catalog_size() { return kCatalog.size(); }

std::optional<InstanceType> find_instance_type(std::string_view name) {
  for (const auto& type : kCatalog)
    if (type.name == name) return type;
  return std::nullopt;
}

std::size_t catalog_index(std::string_view name) {
  for (std::size_t i = 0; i < kCatalog.size(); ++i)
    if (kCatalog[i].name == name) return i;
  throw std::out_of_range("unknown instance type: " + std::string(name));
}

}  // namespace celia::cloud
