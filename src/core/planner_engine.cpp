#include "core/planner_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace celia::core {

namespace {

struct EngineCounters {
  obs::Counter& queries =
      obs::counter("celia_planner_engine_queries_total",
                   "Queries routed through a PlannerEngine");
  obs::Counter& index_hits = obs::counter(
      "celia_planner_engine_index_hits_total",
      "PlannerEngine queries answered from an already-cached FrontierIndex");
  obs::Counter& index_builds = obs::counter(
      "celia_planner_engine_index_builds_total",
      "PlannerEngine cache misses that built a FrontierIndex");
  obs::Counter& sweeps = obs::counter(
      "celia_planner_engine_sweeps_total",
      "PlannerEngine queries (risk-aware or sampled) that ran a full sweep");
  obs::Counter& degraded = obs::counter(
      "celia_planner_engine_degraded_total",
      "PlannerEngine queries pushed down the degradation ladder by a "
      "PlanBudget (fresh-sweep or truncated-sweep instead of the index)");
  obs::Counter& truncated = obs::counter(
      "celia_planner_engine_truncated_sweeps_total",
      "PlannerEngine queries answered by a best-effort truncated sweep");
  obs::Counter& evictions = obs::counter(
      "celia_planner_engine_index_evictions_total",
      "Cached FrontierIndexes evicted by the LRU memory bound");
  obs::Counter& replaces = obs::counter(
      "celia_planner_engine_catalog_replaces_total",
      "Catalog snapshots replaced under an existing PlannerEngine name");
  obs::Counter& delta_rescale = obs::counter(
      "celia_planner_engine_delta_rescale_total",
      "Catalog replaces classified as price-only: cached staircases "
      "rescaled without a walk (FrontierIndex::repriced)");
  obs::Counter& delta_axis = obs::counter(
      "celia_planner_engine_delta_axis_total",
      "Catalog replaces classified as a single-type limit decrease: cached "
      "indexes filtered along the one affected axis "
      "(FrontierIndex::with_limit)");
  obs::Counter& delta_rebuild = obs::counter(
      "celia_planner_engine_delta_rebuild_total",
      "Catalog replaces classified as structural: cached indexes dropped, "
      "the next query rebuilds from scratch");
};

EngineCounters& engine_counters() {
  static EngineCounters counters;
  return counters;
}

/// Same eligibility rule as IndexPolicy: the FrontierIndex answers only
/// deterministic, unsampled, scalar (1-D) queries.
bool index_eligible(const Query& query) {
  const Constraints& constraints = query.constraints();
  const bool risk_aware =
      constraints.confidence_z > 0 && constraints.rate_sigma > 0;
  return !risk_aware && query.options().sample_stride == 0 &&
         query.num_dimensions() == 1;
}

/// Largest sub-space of `space` with at most `max_configs` configurations,
/// shrunk by repeatedly halving the currently largest per-type limit —
/// the best-effort search space of the kTruncatedSweep route. Low counts
/// survive longest, which preserves the cheap corner of the space where
/// min-cost answers live.
ConfigurationSpace truncate_space(const ConfigurationSpace& space,
                                  std::uint64_t max_configs) {
  std::vector<int> max_counts = space.max_counts();
  const auto size_of = [](const std::vector<int>& counts) {
    std::uint64_t total = 1;
    for (const int max : counts) total *= static_cast<std::uint64_t>(max) + 1;
    return total - 1;
  };
  while (size_of(max_counts) > std::max<std::uint64_t>(max_configs, 1)) {
    const auto largest =
        std::max_element(max_counts.begin(), max_counts.end());
    if (*largest <= 1) break;  // cannot shrink any further
    *largest /= 2;
  }
  return ConfigurationSpace(std::move(max_counts));
}

/// Re-encode a truncated-space result into full-space config indices so
/// callers can decode every point against the catalog's real space.
void remap_result(SweepResult& result, const ConfigurationSpace& truncated,
                  const ConfigurationSpace& full) {
  std::vector<int> digits(truncated.num_types());
  const auto remap = [&](CostTimePoint& point) {
    truncated.decode_into(point.config_index, digits);
    point.config_index = full.encode(digits);
  };
  if (result.any_feasible) {
    remap(result.min_cost);
    remap(result.min_time);
  }
  for (CostTimePoint& point : result.pareto) remap(point);
  for (CostTimePoint& point : result.feasible_points) remap(point);
}

/// Classification of one catalog replace (see add_catalog's doc comment).
struct ReplaceEdit {
  enum class Kind { kRescale, kAxis, kRebuild } kind = Kind::kRebuild;
  std::size_t axis_type = 0;  // kAxis only
  int axis_max = 0;           // kAxis only
};

ReplaceEdit classify_replace(const cloud::Catalog& from,
                             const cloud::Catalog& to) {
  ReplaceEdit edit;
  // Price-only: the price-free identity (types + limits) is unchanged.
  // Covers the trivial replace-with-identical-catalog case too.
  if (from.structure_fingerprint() == to.structure_fingerprint()) {
    edit.kind = ReplaceEdit::Kind::kRescale;
    return edit;
  }
  if (from.size() != to.size()) return edit;
  const std::span<const double> from_prices = from.hourly_costs();
  const std::span<const double> to_prices = to.hourly_costs();
  for (std::size_t i = 0; i < from.size(); ++i)
    if (from_prices[i] != to_prices[i]) return edit;
  // Exactly one limit changed, and it decreased.
  std::size_t changed = from.size();
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (from.limit(i) == to.limit(i)) continue;
    if (changed != from.size()) return edit;  // second differing limit
    changed = i;
  }
  if (changed == from.size() || to.limit(changed) >= from.limit(changed))
    return edit;
  // Same TYPES: re-deriving `from`'s structure at `to`'s limits must land
  // on `to`'s structure fingerprint (the hash covers types + limits).
  if (from.with_limits(to.name(), to.region(), to.limits())
          .structure_fingerprint() != to.structure_fingerprint())
    return edit;
  edit.kind = ReplaceEdit::Kind::kAxis;
  edit.axis_type = changed;
  edit.axis_max = to.limit(changed);
  return edit;
}

}  // namespace

void PlannerEngine::add_catalog(std::string name,
                                std::shared_ptr<const cloud::Catalog> catalog,
                                bool replace) {
  if (name.empty())
    throw std::invalid_argument("PlannerEngine: empty catalog name");
  if (!catalog)
    throw std::invalid_argument("PlannerEngine: null catalog for '" + name +
                                "'");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(
      catalogs_.begin(), catalogs_.end(),
      [&](const auto& entry) { return entry.first == name; });
  if (it == catalogs_.end()) {
    catalogs_.emplace_back(std::move(name), std::move(catalog));
    return;
  }
  if (!replace)
    throw std::invalid_argument("PlannerEngine: catalog '" + name +
                                "' is already registered");

  // ---- Prepare phase (may throw; engine state untouched) ----------------
  //
  // Classification and delta derivation run into locals BEFORE any counter
  // bumps or cache edits, so a throw anywhere in here — including the
  // test-only fault-injection hook — leaves the engine exactly as it was
  // (strong exception safety, pinned by the FrontierDelta failure-
  // injection test).
  const std::shared_ptr<const cloud::Catalog> old_snapshot = it->second;
  const std::uint64_t old_fingerprint = old_snapshot->fingerprint();
  const std::uint64_t new_fingerprint = catalog->fingerprint();

  const ReplaceEdit edit = classify_replace(*old_snapshot, *catalog);

  // Delta-derive indexes for the new snapshot from the old snapshot's
  // cached ones — no configuration walk. An entry whose delta refuses
  // (nullopt) is simply not derived; it gets evicted below and the next
  // query rebuilds.
  std::vector<CachedIndex> derived;
  if (new_fingerprint != old_fingerprint &&
      edit.kind != ReplaceEdit::Kind::kRebuild) {
    for (const CachedIndex& cached : indexes_) {
      if (cached.catalog_fingerprint != old_fingerprint) continue;
      std::optional<FrontierIndex> next =
          edit.kind == ReplaceEdit::Kind::kRescale
              ? cached.index->repriced(*catalog)
              : cached.index->with_limit(edit.axis_type, edit.axis_max,
                                         *catalog);
      if (options_.delta_fault_injection)
        options_.delta_fault_injection(derived.size());
      if (!next) continue;
      auto built = std::make_shared<const FrontierIndex>(std::move(*next));
      const std::size_t bytes = built->memory_bytes();
      derived.push_back({new_fingerprint, std::move(built), bytes, 0});
    }
  }
  // The commit below must not throw, so take the one allocation that
  // could (push_back growth) here.
  indexes_.reserve(indexes_.size() + derived.size());

  // ---- Commit phase (no-throw) ------------------------------------------
  EngineCounters& counters = engine_counters();
  counters.replaces.add(1);
  switch (edit.kind) {
    case ReplaceEdit::Kind::kRescale:
      counters.delta_rescale.add(1);
      break;
    case ReplaceEdit::Kind::kAxis:
      counters.delta_axis.add(1);
      break;
    case ReplaceEdit::Kind::kRebuild:
      counters.delta_rebuild.add(1);
      break;
  }
  it->second = catalog;
  for (CachedIndex& entry : derived) {
    entry.last_used = ++use_tick_;
    cache_bytes_ += entry.bytes;
    indexes_.push_back(std::move(entry));
  }

  // Drop the replaced snapshot's cached indexes, unless another name still
  // serves the same catalog (same full fingerprint = same prices + identity).
  const bool still_referenced = std::any_of(
      catalogs_.begin(), catalogs_.end(), [&](const auto& entry) {
        return entry.second->fingerprint() == old_fingerprint;
      });
  if (!still_referenced) {
    std::erase_if(indexes_, [&](const CachedIndex& cached) {
      if (cached.catalog_fingerprint != old_fingerprint) return false;
      cache_bytes_ -= cached.bytes;
      return true;
    });
  }
  evict_lru_locked();
}

void PlannerEngine::evict_lru_locked() {
  while (options_.max_index_cache_bytes > 0 &&
         cache_bytes_ > options_.max_index_cache_bytes &&
         indexes_.size() > 1) {
    const auto victim = std::min_element(
        indexes_.begin(), indexes_.end(),
        [](const CachedIndex& a, const CachedIndex& b) {
          return a.last_used < b.last_used;
        });
    cache_bytes_ -= victim->bytes;
    indexes_.erase(victim);
    engine_counters().evictions.add(1);
  }
}

std::shared_ptr<const cloud::Catalog> PlannerEngine::catalog_locked(
    std::string_view name) const {
  for (const auto& [key, snapshot] : catalogs_)
    if (key == name) return snapshot;
  throw std::out_of_range("PlannerEngine: unknown catalog '" +
                          std::string(name) + "'");
}

std::shared_ptr<const cloud::Catalog> PlannerEngine::catalog(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return catalog_locked(name);
}

std::vector<std::string> PlannerEngine::catalog_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(catalogs_.size());
  for (const auto& [key, snapshot] : catalogs_) names.push_back(key);
  return names;
}

std::size_t PlannerEngine::num_catalogs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return catalogs_.size();
}

std::size_t PlannerEngine::num_cached_indexes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return indexes_.size();
}

std::size_t PlannerEngine::cached_index_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_bytes_;
}

SweepResult PlannerEngine::plan(std::string_view catalog_name,
                                const ResourceCapacity& capacity,
                                const Query& query, const PlanBudget& budget) {
  std::shared_ptr<const cloud::Catalog> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = catalog_locked(catalog_name);
  }
  const ConfigurationSpace space = ConfigurationSpace::for_catalog(*snapshot);
  return plan_impl(*snapshot, space, capacity, query, budget);
}

SweepResult PlannerEngine::plan(std::string_view catalog_name,
                                const Celia& model, const Query& query,
                                const PlanBudget& budget) {
  std::shared_ptr<const cloud::Catalog> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = catalog_locked(catalog_name);
  }
  return plan_impl(*snapshot, model.space(), model.capacity(), query, budget);
}

SweepResult PlannerEngine::plan_impl(const cloud::Catalog& catalog,
                                     const ConfigurationSpace& space,
                                     const ResourceCapacity& capacity,
                                     const Query& query,
                                     const PlanBudget& budget) {
  if (!capacity.compatible_with(catalog))
    throw std::invalid_argument(
        "PlannerEngine: model capacity was characterized against a "
        "structurally different catalog than '" + catalog.name() +
        "' (types or per-type limits differ)");
  EngineCounters& counters = engine_counters();
  counters.queries.add(1);

  const double remaining = budget.deadline.remaining(budget.now_seconds);

  // Sweeps always run with the stand-alone index machinery disabled: the
  // engine IS the cache here.
  SweepOptions sweep_options = query.options();
  sweep_options.index_policy = IndexPolicy::Never();
  const Query sweep_query =
      Query::make(query.demand(), query.constraints(), sweep_options);

  // Last-resort route: a best-effort sweep over a truncated space, then
  // re-encoded into full-space config indices. Never throws on a tight
  // budget — a degraded answer always comes back.
  const auto truncated_sweep = [&]() {
    counters.degraded.add(1);
    counters.truncated.add(1);
    const ConfigurationSpace truncated =
        truncate_space(space, budget.truncated_sweep_configs);
    SweepResult result = sweep(truncated, capacity, catalog, sweep_query);
    remap_result(result, truncated, space);
    result.route = QueryRoute::kTruncatedSweep;
    return result;
  };

  const bool sweep_fits = remaining >= budget.sweep_cost_seconds;

  if (!index_eligible(query)) {
    // Risk-aware / sampled / multi-dimensional queries need the sweep;
    // run it at the catalog's prices with the index explicitly disabled.
    if (!sweep_fits) return truncated_sweep();
    counters.sweeps.add(1);
    return sweep(space, capacity, catalog, sweep_query);
  }

  const std::uint64_t fingerprint = catalog.fingerprint();
  std::shared_ptr<const FrontierIndex> index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (CachedIndex& cached : indexes_) {
      if (cached.catalog_fingerprint == fingerprint &&
          cached.index->matches(space, capacity, catalog.hourly_costs())) {
        cached.last_used = ++use_tick_;
        index = cached.index;
        break;
      }
    }
  }
  if (index) {
    counters.index_hits.add(1);
  } else {
    // No cached index: walk the degradation ladder. Building is the best
    // long-term answer but also the most expensive step — under a tight
    // budget fall back to a fresh sweep, then to a truncated one.
    if (remaining < budget.index_build_cost_seconds) {
      if (!sweep_fits) return truncated_sweep();
      counters.degraded.add(1);
      SweepResult result = sweep(space, capacity, catalog, sweep_query);
      result.route = QueryRoute::kDegradedSweep;
      return result;
    }
    // Build outside the lock; concurrent builders of the same (catalog,
    // model) pair may race, in which case the first insertion wins — but
    // every build is counted (hits + builds + sweeps + degraded ==
    // queries).
    counters.index_builds.add(1);
    FrontierIndex::BuildOptions build_options;
    build_options.pool = query.options().pool;
    auto built = std::make_shared<const FrontierIndex>(
        FrontierIndex::build(space, capacity, catalog, build_options));
    std::lock_guard<std::mutex> lock(mutex_);
    for (CachedIndex& cached : indexes_) {
      if (cached.catalog_fingerprint == fingerprint &&
          cached.index->matches(space, capacity, catalog.hourly_costs())) {
        cached.last_used = ++use_tick_;
        index = cached.index;
        break;
      }
    }
    if (!index) {
      const std::size_t bytes = built->memory_bytes();
      indexes_.push_back({fingerprint, built, bytes, ++use_tick_});
      cache_bytes_ += bytes;
      index = std::move(built);
      // LRU eviction keeps the cache under the byte bound. The entry just
      // inserted is the most recently used, so it survives even when it
      // alone exceeds the bound (an engine must always be able to serve
      // its newest catalog).
      evict_lru_locked();
    }
  }

  SweepResult result = index->query(query);
  result.route = QueryRoute::kIndex;
  return result;
}

}  // namespace celia::core
