#pragma once
// The cloud resource catalog — the paper's Table III: nine Amazon EC2
// on-demand instance types from the Oregon region (2017 pricing), three
// categories (compute-intensive c4, general-purpose m4, memory-optimized
// r3) x three sizes (large, xlarge, 2xlarge).

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "hw/microarch.hpp"

namespace celia::cloud {

enum class Category { kCompute, kGeneralPurpose, kMemoryOptimized };
enum class Size { kLarge, kXLarge, k2XLarge };

std::string_view category_name(Category category);
std::string_view size_name(Size size);

struct InstanceType {
  std::string_view name;          // e.g. "c4.large"
  Category category;
  Size size;
  int vcpus;                      // hyper-threads exposed to the guest
  double frequency_ghz;           // per Table III
  double memory_gb;
  std::string_view storage;       // "EBS" or local SSD GB
  double cost_per_hour;           // USD, on-demand
  hw::Microarch microarch;        // host processor
};

/// The nine types of Table III, in the paper's row order (c4.large ..
/// r3.2xlarge). Configuration tuples index into this order.
std::span<const InstanceType> ec2_catalog();

/// Number of catalog entries (M in the paper's notation) — 9.
std::size_t catalog_size();

/// Maximum instances per type the paper allows in a configuration — 5.
inline constexpr int kMaxInstancesPerType = 5;

/// Lookup by name ("c4.large" ...); nullopt when unknown.
std::optional<InstanceType> find_instance_type(std::string_view name);

/// Index of a type in the catalog; throws std::out_of_range when unknown.
std::size_t catalog_index(std::string_view name);

}  // namespace celia::cloud
