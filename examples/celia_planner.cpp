// Example: a general-purpose CELIA command-line planner — the tool a
// downstream user would actually run. Wraps the full pipeline (profiling,
// characterization, exhaustive selection, Pareto filtering) behind flags.
//
// Usage:
//   example_celia_planner --app=galaxy --n=65536 --a=8000
//       --deadline=24 --budget=350 [--mode=per-category] [--seed=2017]
//       [--catalog=prices.csv] [--save-model=m.celia | --load-model=m.celia]
//       [--epsilon-hours=1 --epsilon-dollars=5] [--top=10] [--verbose]
//       [--api-faults=seed=7,throttle=0.2,transient=0.1]
//   example_celia_planner --app=oltp-aurora --n=1e9 --a=0.2 --dimensions
//       (vector demand: per-frontier-point bottleneck attribution)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "cloud/api_faults.hpp"
#include "cloud/catalog_io.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"
#include "core/frontier_index.hpp"
#include "core/query.hpp"
#include "core/recommend.hpp"
#include "core/serialize.hpp"
#include "obs/metrics.hpp"
#include "serve/planner_service.hpp"
#include "serve/soak.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/logging.hpp"
#include "util/resilience.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// --serve --chaos: the deterministic self-healing soak (serve/soak.hpp)
/// as a demo — catalog price churn with feed faults and a brownout, a
/// poison query that quarantines and recovers, 2x overload, and a wedged
/// worker that is detached and respawned. Seed from CELIA_CHAOS_SEED or
/// --seed; the same seed replays the whole failure timeline
/// bit-identically (the README's degraded-serving quickstart).
int run_chaos_demo(const celia::util::CliParser& cli) {
  using namespace celia;

  serve::ChaosSoakOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (const char* env = std::getenv("CELIA_CHAOS_SEED");
      env != nullptr && *env != '\0')
    options.seed = std::strtoull(env, nullptr, 10);

  std::cout << "chaos soak: seed " << options.seed << ", " << options.ticks
            << " simulated ticks (feed churn + faults + brownout, poison "
               "query, 2x overload, worker stall)\n\n";
  const serve::ChaosSoakReport report = serve::run_chaos_soak(options);

  util::TablePrinter table({"self-healing metric", "value"});
  table.set_right_aligned(1);
  const auto row = [&table](const char* name, std::uint64_t value) {
    table.add_row({name, util::format_with_commas(value)});
  };
  row("submitted", report.serve.submitted);
  row("answered (kPlanned)", report.outcomes_planned);
  row("  degraded-but-answered", report.degraded_answers);
  row("  max served staleness (us)", report.max_served_staleness_us);
  row("shed: feed past hard staleness cap", report.serve.shed_stale);
  row("shed: queue watermark (overload)", report.serve.shed_queue_full);
  row("quarantine: entries", report.serve.quarantine_entries);
  row("quarantine: fast-fail rejections", report.serve.quarantined);
  row("quarantine: recoveries", report.serve.quarantine_recoveries);
  row("plan retries granted / vetoed",
      report.serve.plan_retries);
  row("  retry-budget vetoes", report.serve.retry_vetoes);
  row("worker restarts",
      report.serve.worker_restarts + report.stall_restarts);
  row("feed deliveries applied", report.feed_deliveries);
  row("feed faults", report.feed_faults);
  row("watchdog degraded entries", report.watchdog.degraded_entries);
  row("watchdog recoveries", report.watchdog.recoveries);
  table.print(std::cout);
  std::cout << "replay digest: " << report.digest
            << " (same seed => same digest, bit for bit)\n";

  for (const std::string& violation : report.violations)
    std::cerr << "SOAK VIOLATION: " << violation << "\n";
  if (report.violations.empty())
    std::cout << "self-healing contract held: live, staleness-bounded, "
                 "quarantine converged, worker respawned\n";
  return report.violations.empty() ? 0 : 1;
}

/// --serve: synthetic open-loop load against a PlannerService fronting
/// the model's catalog (the "Serving quickstart" in README.md). Two
/// tenants — interactive (weight 2, tight per-request deadlines) and
/// batch (weight 1) — submit a rotating mix of index-eligible and
/// risk-aware queries at a fixed aggregate rate.
int run_serve_demo(const celia::core::Celia& celia,
                   std::shared_ptr<const celia::cloud::Catalog> catalog,
                   const celia::apps::AppParams& params,
                   const celia::util::CliParser& cli) {
  using namespace celia;

  const double seconds = cli.get_double("serve-seconds");
  const double rate = cli.get_double("serve-rate");
  const auto workers = static_cast<std::size_t>(cli.get_int("serve-workers"));
  const double slo_ms = cli.get_double("serve-slo-ms");
  if (seconds <= 0 || rate <= 0 || workers < 1 || slo_ms <= 0) {
    std::cerr << "--serve needs positive --serve-seconds, --serve-rate, "
                 "--serve-workers and --serve-slo-ms\n";
    return 1;
  }

  core::PlannerEngine engine;
  engine.add_catalog("live", std::move(catalog));

  // One explicit clock shared by the service and the load generator, so
  // per-request deadlines line up with admission decisions.
  const auto epoch = std::chrono::steady_clock::now();
  const auto clock = [epoch] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };

  const double base_demand = celia.predict_demand(params);
  core::Constraints plain;
  plain.deadline_seconds = 24 * 3600.0;
  core::SweepOptions no_pareto;
  no_pareto.collect_pareto = false;

  // Warm the demand-invariant frontier index once, timed: the measured
  // build cost doubles as the service's PlanBudget estimate, so queries
  // whose remaining deadline cannot afford a rebuild or a full sweep are
  // routed down the degradation ladder instead of monopolizing a worker.
  util::Stopwatch warm;
  (void)engine.plan("live", celia.capacity(),
                    core::Query::make(base_demand, plain, no_pareto));
  const double full_work_seconds = warm.elapsed_ms() / 1e3;
  std::cout << "index warmed in "
            << util::format_fixed(full_work_seconds * 1e3, 0)
            << " ms (PlanBudget cost estimate)\n";

  serve::ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = 256;
  options.shed_watermark = 16;
  options.latency_slo_seconds = slo_ms / 1e3;
  options.slo_probe_stride = 32;
  options.index_build_cost_seconds = full_work_seconds;
  options.sweep_cost_seconds = full_work_seconds;
  options.truncated_sweep_configs = 32768;
  options.clock = clock;
  serve::PlannerService service(engine, options);
  serve::TenantQuota interactive;
  interactive.weight = 2.0;
  service.set_tenant_quota("interactive", interactive);
  service.set_tenant_quota("batch", serve::TenantQuota{});

  std::cout << "serving: " << workers << " workers, open loop at "
            << util::format_fixed(rate, 0) << " req/s for "
            << util::format_fixed(seconds, 1) << " s, p99 SLO "
            << util::format_fixed(slo_ms, 1) << " ms\n";

  const double load_start = clock();
  const int total = static_cast<int>(seconds * rate);
  std::vector<std::future<serve::ServeOutcome>> futures;
  futures.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    const double due = load_start + static_cast<double>(i) / rate;
    while (clock() < due)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    core::Constraints constraints = plain;
    if (i % 8 == 0) {  // every eighth query is risk-aware (index-ineligible)
      constraints.confidence_z = 1.645;
      constraints.rate_sigma = 0.1;
    }
    // Interactive requests carry a tight deadline; batch a loose one.
    // Both are absolute times in the shared service clock.
    serve::PlanRequest request{
        i % 2 == 0 ? "interactive" : "batch", "live", celia.capacity(),
        core::Query::make(base_demand * (1.0 + 0.01 * (i % 64)), constraints,
                          no_pareto),
        util::DeadlineBudget::from_now(
            clock(), i % 2 == 0 ? 10 * slo_ms / 1e3 : 2.0)};
    futures.push_back(service.submit(std::move(request)));
  }

  std::uint64_t planned = 0, degraded = 0;
  std::vector<double> latencies;
  for (auto& future : futures) {
    const serve::ServeOutcome outcome = future.get();
    if (outcome.status != serve::ServeStatus::kPlanned) continue;
    ++planned;
    latencies.push_back(outcome.total_seconds * 1e3);
    degraded += outcome.result.route == core::QueryRoute::kDegradedSweep ||
                outcome.result.route == core::QueryRoute::kTruncatedSweep;
  }
  const double elapsed = clock() - load_start;
  service.stop();

  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&latencies](double q) {
    if (latencies.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1));
    return latencies[rank];
  };
  const serve::ServeStats stats = service.stats();
  util::TablePrinter table({"outcome", "count"});
  table.set_right_aligned(1);
  const auto row = [&table](const char* name, std::uint64_t count) {
    table.add_row({name, util::format_with_commas(count)});
  };
  row("submitted", stats.submitted);
  row("admitted (answered)", stats.admitted);
  row("  coalesced joins", stats.coalesced);
  row("  degraded-but-on-time", degraded);
  row("shed: queue watermark", stats.shed_queue_full);
  row("shed: latency SLO", stats.shed_slo);
  row("shed: deadline expired", stats.shed_deadline);
  row("rejected: tenant quota", stats.rejected_quota);
  table.print(std::cout);
  std::cout << "throughput   : "
            << util::format_fixed(static_cast<double>(planned) / elapsed, 0)
            << " planned/s\n"
            << "latency      : p50 " << util::format_fixed(pct(0.50), 2)
            << " ms, p99 " << util::format_fixed(pct(0.99), 2) << " ms\n";
  // The serving invariant, checked live: every submission landed in
  // exactly one terminal bucket.
  if (stats.admitted + stats.shed + stats.rejected_quota != stats.submitted) {
    std::cerr << "serving counter invariant VIOLATED\n";
    return 1;
  }
  if (cli.has("metrics")) {
    std::cout << "\n--- obs metrics ---\n";
    obs::dump_metrics(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace celia;

  util::CliParser cli("celia_planner",
                      "find cost-time Pareto-optimal cloud configurations "
                      "for an elastic application");
  cli.add_option("app",
                 "application: x264 | galaxy | sand | oltp | oltp-aurora | "
                 "oltp-socrates", "galaxy");
  cli.add_option("n", "problem size", "65536");
  cli.add_option("a",
                 "accuracy parameter (f / s / t; read fraction r for the "
                 "oltp family)", "8000");
  cli.add_option("deadline", "time deadline in hours", "24");
  cli.add_option("budget", "cost budget in dollars", "350");
  cli.add_option("mode",
                 "characterization: full | per-category | spec", "full");
  cli.add_option("seed", "cloud noise seed", "2017");
  cli.add_option("catalog",
                 "plan against a catalog loaded from this CSV or JSON file "
                 "instead of the built-in EC2 Table III", "");
  cli.add_option("epsilon-hours", "epsilon box height for frontier thinning "
                 "(0 = exact frontier)", "0");
  cli.add_option("epsilon-dollars", "epsilon box width", "5");
  cli.add_option("top", "max frontier rows to print", "20");
  cli.add_option("pick",
                 "recommend one frontier point: cheapest | fastest | "
                 "balanced | knee | none",
                 "knee");
  cli.add_option("save-model", "write the built model to this file", "");
  cli.add_option("load-model",
                 "skip measurement and load a model saved earlier", "");
  cli.add_option("api-faults",
                 "provision the recommended configuration against a faulty "
                 "control plane, e.g. seed=7,throttle=0.2,transient=0.1", "");
  cli.add_flag("index",
               "answer the query from a precomputed frontier index instead "
               "of a full sweep");
  cli.add_flag("dimensions",
               "attribute each frontier point to its binding bottleneck "
               "dimension (vector-demand apps plan over instructions, IO, "
               "network and memory at once)");
  cli.add_flag("serve",
               "run the planner as a service under synthetic open-loop load "
               "(admission control, coalescing, per-tenant fairness)");
  cli.add_flag("chaos",
               "with --serve: run the deterministic self-healing chaos soak "
               "(feed churn + faults, poison-query quarantine, worker "
               "stall/respawn, 2x overload) and report the recovery "
               "counters");
  cli.add_option("serve-seconds", "serving demo duration", "2");
  cli.add_option("serve-rate", "aggregate submission rate, req/s", "500");
  cli.add_option("serve-workers", "planner worker threads", "2");
  cli.add_option("serve-slo-ms", "p99 latency SLO in milliseconds", "50");
  cli.add_flag("metrics",
               "dump the obs metrics registry (Prometheus text format) "
               "after planning");
  cli.add_flag("verbose", "log model-building details");
  if (!cli.parse(argc, argv)) {
    std::cerr << "error: " << cli.error() << "\n\n";
    cli.print_usage(std::cerr);
    return 1;
  }
  if (cli.has("verbose")) util::Logger::set_level(util::LogLevel::kInfo);

  if (cli.has("chaos")) {
    if (!cli.has("serve")) {
      std::cerr << "--chaos is a serving demo; pass --serve --chaos\n";
      return 1;
    }
    // The soak builds its own engine/catalog/feed — no model needed.
    return run_chaos_demo(cli);
  }

  const auto app = apps::make_app(cli.get("app"));
  if (!app) {
    std::cerr << "unknown application '" << cli.get("app")
              << "' (expected x264, galaxy, sand or one of the oltp "
                 "family)\n";
    return 1;
  }
  core::CharacterizationMode mode = core::CharacterizationMode::kFullMeasurement;
  if (cli.get("mode") == "per-category")
    mode = core::CharacterizationMode::kPerCategory;
  else if (cli.get("mode") == "spec")
    mode = core::CharacterizationMode::kSpecFrequency;
  else if (cli.get("mode") != "full") {
    std::cerr << "unknown mode '" << cli.get("mode") << "'\n";
    return 1;
  }

  const apps::AppParams params{cli.get_double("n"), cli.get_double("a")};
  const double deadline = cli.get_double("deadline");
  const double budget = cli.get_double("budget");

  std::shared_ptr<const cloud::Catalog> catalog =
      cloud::Catalog::ec2_table3_ptr();
  if (const std::string path = cli.get("catalog"); !path.empty()) {
    try {
      catalog = std::make_shared<const cloud::Catalog>(
          cloud::load_catalog_file(path));
    } catch (const std::runtime_error& error) {
      std::cerr << error.what() << "\n";
      return 1;
    }
    std::cout << "catalog: " << catalog->name() << " (" << catalog->region()
              << "), " << catalog->size() << " instance types\n";
  }

  cloud::CloudProvider provider(
      static_cast<std::uint64_t>(cli.get_int("seed")), catalog);
  util::Stopwatch watch;
  const core::Celia celia = [&] {
    if (const std::string path = cli.get("load-model"); !path.empty()) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open model file " << path << "\n";
        std::exit(1);
      }
      CELIA_LOG_INFO << "loading model from " << path;
      core::Celia loaded = core::load_model(in);
      if (loaded.app_name() != app->name()) {
        std::cerr << "model file is for '" << loaded.app_name()
                  << "', not '" << app->name() << "'\n";
        std::exit(1);
      }
      return loaded;
    }
    CELIA_LOG_INFO << "building models ("
                   << core::characterization_mode_name(mode) << ")";
    core::Celia built = core::Celia::build(*app, provider, mode);
    if (app->demand_dimensions().size() == 1) return built;
    // Vector-demand app: lift the capacity to the app's full schema. The
    // measured instruction campaign stays dimension 0; IO/network/memory
    // rows come from the catalog's published attributes (DESIGN.md §11).
    core::ResourceCapacity vector_capacity =
        core::characterize_vector_capacity(*app, provider, mode);
    return core::Celia(std::string(built.app_name()), built.workload(),
                       built.demand_model(), std::move(vector_capacity),
                       built.space(), built.catalog_ptr());
  }();
  CELIA_LOG_INFO << "model ready after "
                 << util::format_fixed(watch.elapsed_ms(), 1) << " ms";
  if (!cli.get("catalog").empty() &&
      celia.catalog().fingerprint() != catalog->fingerprint()) {
    std::cerr << "model was built against catalog '"
              << celia.catalog().name() << "', not '" << catalog->name()
              << "' — rebuild it or drop --catalog\n";
    return 1;
  }
  if (const std::string path = cli.get("save-model"); !path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write model file " << path << "\n";
      return 1;
    }
    core::save_model(celia, out);
    std::cout << "model saved to " << path << "\n";
  }

  // Dimension count of the model we plan with: 1 for the paper's scalar
  // pipeline, >1 when the app declares a vector demand schema (or a v3
  // vector model was loaded).
  const std::size_t dims = celia.capacity().num_dimensions();

  if (cli.has("serve")) {
    if (dims > 1) {
      std::cerr << "--serve drives the scalar planning path; pick a 1-D "
                   "app (x264, galaxy, sand)\n";
      return 1;
    }
    return run_serve_demo(celia, catalog, params, cli);
  }

  // The demand the sweep answers for: the fitted scalar model in 1-D
  // (the paper's pipeline), the app's closed-form vector otherwise.
  const apps::DemandVector demand_vector =
      dims > 1 ? app->demand_vector(params)
               : apps::DemandVector::scalar(celia.predict_demand(params));

  std::cout << "CELIA plan for " << app->name() << "(n=" << params.n
            << ", " << app->accuracy_param_name() << "=" << params.a
            << ")\n"
            << "  demand model : " << fit::shape_name(
                   celia.demand_model().n_shape()) << " in n, "
            << fit::shape_name(celia.demand_model().a_shape())
            << " in accuracy (grid R^2 = "
            << util::format_fixed(celia.demand_model().grid_r2(), 4) << ")\n"
            << "  demand       : "
            << util::format_instructions(demand_vector[0]) << "\n";
  if (dims > 1) {
    std::cout << "  demand vector: ";
    for (std::size_t d = 1; d < dims; ++d)
      std::cout << (d > 1 ? ", " : "")
                << celia.capacity().dimensions().name(d) << " "
                << demand_vector[d];
    std::cout << "\n";
  }
  std::cout << "  constraints  : T' = " << deadline << " h, C' = "
            << util::format_money(budget) << "\n\n";

  core::SweepOptions sweep_options;
  std::shared_ptr<const core::FrontierIndex> index;
  if (cli.has("index") && dims > 1) {
    std::cout << "frontier index: unavailable for vector demand (the "
                 "staircase is only demand-invariant in 1-D); sweeping\n";
  } else if (cli.has("index")) {
    watch.reset();
    index = core::shared_frontier_index(celia.space(), celia.capacity(),
                                        celia.catalog());
    std::cout << "frontier index: " << index->frontier().size()
              << " staircase entries over "
              << util::format_with_commas(index->attainable_configurations())
              << " attainable configurations ("
              << index->memory_bytes() / 1024 << " KiB), built in "
              << util::format_fixed(watch.elapsed_ms(), 0) << " ms\n";
    sweep_options.index_policy = core::IndexPolicy::Prefer(index.get());
  }

  watch.reset();
  const core::SweepResult result = [&] {
    if (dims == 1)
      return celia.select(params, deadline, budget, sweep_options);
    core::Constraints constraints;
    constraints.deadline_seconds = deadline * 3600.0;
    constraints.budget_dollars = budget;
    return core::sweep(celia.space(), celia.capacity(), celia.catalog(),
                       core::Query::make(demand_vector, constraints,
                                         sweep_options));
  }();
  std::cout << "route: " << core::query_route_name(result.route) << "\n";
  if (index) {
    std::cout << "answered from the index in "
              << util::format_fixed(watch.elapsed_ms() * 1000.0, 1)
              << " us; ";
  } else {
    std::cout << "swept " << util::format_with_commas(result.total)
              << " configurations in "
              << util::format_fixed(watch.elapsed_ms(), 0) << " ms; ";
  }
  std::cout << util::format_with_commas(result.feasible) << " feasible, "
            << result.pareto.size() << " Pareto-optimal\n\n";
  if (!result.any_feasible) {
    std::cout << "no feasible configuration — relax the deadline or "
                 "budget.\n";
    return 2;
  }

  std::vector<core::CostTimePoint> frontier = result.pareto;
  const double eps_hours = cli.get_double("epsilon-hours");
  if (eps_hours > 0) {
    frontier = core::epsilon_nondominated(
        frontier, eps_hours * 3600.0, cli.get_double("epsilon-dollars"));
    std::cout << "epsilon-thinned frontier: " << frontier.size()
              << " representatives\n";
  }

  // --dimensions: attribute every printed point (and the pick) to the
  // dimension whose D_d / U_{j,d} achieves the completion-time max.
  const bool report_dimensions = cli.has("dimensions");
  const auto dimensional = [&](std::uint64_t config_index) {
    return core::predict_vector(demand_vector,
                                celia.space().decode(config_index),
                                celia.capacity(), celia.catalog());
  };

  std::vector<std::string> headers{"Configuration", "time", "cost"};
  if (report_dimensions) headers.push_back("bottleneck");
  util::TablePrinter table(std::move(headers));
  table.set_right_aligned(1);
  table.set_right_aligned(2);
  const auto top = static_cast<std::size_t>(cli.get_int("top"));
  for (std::size_t i = 0; i < frontier.size() && i < top; ++i) {
    std::vector<std::string> row{
        core::to_string(celia.space().decode(frontier[i].config_index)),
        util::format_duration(frontier[i].seconds),
        util::format_money(frontier[i].cost)};
    if (report_dimensions)
      row.push_back(
          dimensional(frontier[i].config_index).binding_dimension_name);
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (frontier.size() > top)
    std::cout << "(" << frontier.size() - top << " more rows; --top to "
              << "print them)\n";

  // One-point recommendation off the exact frontier.
  const std::string pick_name = cli.get("pick");
  if (pick_name != "none") {
    core::PickStrategy strategy;
    if (pick_name == "cheapest") strategy = core::PickStrategy::kCheapest;
    else if (pick_name == "fastest") strategy = core::PickStrategy::kFastest;
    else if (pick_name == "balanced")
      strategy = core::PickStrategy::kBalanced;
    else if (pick_name == "knee") strategy = core::PickStrategy::kKnee;
    else {
      std::cerr << "unknown --pick strategy '" << pick_name << "'\n";
      return 1;
    }
    const core::CostTimePoint pick =
        core::pick_from_frontier(result.pareto, strategy);
    std::cout << "\nrecommended (" << pick_name << "): "
              << core::to_string(celia.space().decode(pick.config_index))
              << "  " << util::format_duration(pick.seconds) << "  "
              << util::format_money(pick.cost) << "\n";
    if (report_dimensions) {
      const core::DimensionalPrediction prediction =
          dimensional(pick.config_index);
      std::cout << "per-dimension completion time of the pick:\n";
      for (std::size_t d = 0; d < dims; ++d)
        std::cout << "  " << celia.capacity().dimensions().name(d) << " : "
                  << util::format_duration(
                         prediction.per_dimension_seconds[d])
                  << (d == prediction.binding_dimension ? "  <- binding"
                                                        : "")
                  << "\n";
    }
  }
  // Degraded-mode demo: replay provisioning of the min-cost pick against
  // a seeded control-plane fault schedule and report what was actually
  // obtained (see DESIGN.md §8, "Control plane vs data plane").
  if (const std::string spec = cli.get("api-faults"); !spec.empty()) {
    cloud::ResilientProvisionOptions options;
    std::size_t start = 0;
    while (start < spec.size()) {
      std::size_t end = spec.find(',', start);
      if (end == std::string::npos) end = spec.size();
      const std::string field = spec.substr(start, end - start);
      start = end + 1;
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        std::cerr << "bad --api-faults field '" << field
                  << "' (expected key=value)\n";
        return 1;
      }
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "seed")
        options.api_faults.seed = std::strtoull(value.c_str(), nullptr, 10);
      else if (key == "throttle")
        options.api_faults.throttle_probability = std::atof(value.c_str());
      else if (key == "transient")
        options.api_faults.transient_error_probability =
            std::atof(value.c_str());
      else {
        std::cerr << "unknown --api-faults key '" << key
                  << "' (seed, throttle, transient)\n";
        return 1;
      }
    }
    try {
      cloud::validate(options.api_faults, catalog.get());
    } catch (const std::invalid_argument& error) {
      std::cerr << error.what() << "\n";
      return 1;
    }
    const std::vector<int> counts =
        celia.space().decode(result.min_cost.config_index);
    const cloud::ProvisionOutcome outcome =
        provider.provision_resilient(counts, options);
    std::cout << "\n--- control-plane replay (min-cost pick) ---\n"
              << "api calls    : " << outcome.api.calls << " ("
              << outcome.api.throttled << " throttled, "
              << outcome.api.transient_errors << " transient)\n"
              << "backoff      : "
              << util::format_fixed(outcome.api.backoff_seconds, 1)
              << " s simulated\n"
              << "fleet ready  : " << (outcome.complete ? "complete" :
                                       "INCOMPLETE") << " at t+"
              << util::format_fixed(outcome.finished_at, 1) << " s\n";
    for (const cloud::ApiError& error : outcome.errors)
      std::cout << "  [" << util::format_fixed(error.at_seconds, 1) << " s] "
                << cloud::api_error_name(error.kind) << ": "
                << error.message << "\n";
  }
  if (cli.has("metrics")) {
    std::cout << "\n--- obs metrics ---\n";
    obs::dump_metrics(std::cout);
  }
  return 0;
}
