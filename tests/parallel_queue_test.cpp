// Tests for the MPMC bounded queue (parallel/concurrent_queue.hpp).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "parallel/concurrent_queue.hpp"

namespace {

using celia::parallel::ConcurrentQueue;

TEST(ConcurrentQueue, FifoOrderSingleThread) {
  ConcurrentQueue<int> queue;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(queue.push(i));
  for (int i = 0; i < 10; ++i) {
    auto value = queue.try_pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(ConcurrentQueue, TryPushRespectsCapacity) {
  ConcurrentQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  queue.try_pop();
  EXPECT_TRUE(queue.try_push(3));
}

TEST(ConcurrentQueue, SizeTracksContents) {
  ConcurrentQueue<int> queue;
  EXPECT_EQ(queue.size(), 0u);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.size(), 2u);
  queue.try_pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ConcurrentQueue, CloseRejectsPushes) {
  ConcurrentQueue<int> queue;
  queue.push(1);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(2));
  EXPECT_FALSE(queue.try_push(2));
}

TEST(ConcurrentQueue, CloseDrainsThenReturnsNullopt) {
  ConcurrentQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ConcurrentQueue, PopBlocksUntilPush) {
  ConcurrentQueue<int> queue;
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(99);
  });
  const auto value = queue.pop();
  producer.join();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 99);
}

TEST(ConcurrentQueue, CloseWakesBlockedConsumers) {
  ConcurrentQueue<int> queue;
  std::thread consumer([&queue] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
}

TEST(ConcurrentQueue, BoundedPushBlocksUntilSpace) {
  ConcurrentQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(2);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop(), 2);
}

TEST(ConcurrentQueue, CloseAndDrainReportsExactlyThePendingItems) {
  ConcurrentQueue<int> queue;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.push(i));
  (void)queue.try_pop();  // 0 already consumed
  const std::vector<int> pending = queue.close_and_drain();
  EXPECT_EQ(pending, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.size(), 0u);
  // Abortive close leaves nothing behind: pops report definite shutdown,
  // pushes fail.
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.push(99));
}

TEST(ConcurrentQueue, CloseAndDrainWakesBlockedConsumersWithNullopt) {
  ConcurrentQueue<int> queue;
  std::thread consumer([&queue] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(queue.close_and_drain().empty());
  consumer.join();
}

TEST(ConcurrentQueue, CloseAndDrainWakesBlockedProducers) {
  ConcurrentQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(queue.push(2));  // blocked full, then woken by close
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  const std::vector<int> pending = queue.close_and_drain();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(pending, (std::vector<int>{1}));
}

TEST(ConcurrentQueue, MpmcStressDeliversEveryItemOnce) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2500;
  ConcurrentQueue<int> queue(64);
  std::mutex seen_mutex;
  std::multiset<int> seen;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i)
        queue.push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto value = queue.pop()) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        seen.insert(*value);
      }
    });
  }
  for (auto& t : threads) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v)
    EXPECT_EQ(seen.count(v), 1u) << "value " << v;
}

}  // namespace
