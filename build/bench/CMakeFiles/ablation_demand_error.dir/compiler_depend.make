# Empty compiler generated dependencies file for ablation_demand_error.
# This may be replaced when dependencies are built.
