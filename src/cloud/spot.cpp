#include "cloud/spot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hw/ipc_model.hpp"
#include "util/rng.hpp"

namespace celia::cloud {

SpotMarket::SpotMarket(const InstanceType& type, std::uint64_t seed,
                       SpotMarketModel model)
    : type_(type), model_(model) {
  if (model_.tick_seconds <= 0)
    throw std::invalid_argument("SpotMarket: non-positive tick");
  util::SplitMix64 sm(seed ^ (type.cost_per_hour * 1e6 > 0
                                  ? static_cast<std::uint64_t>(
                                        type.cost_per_hour * 1e6)
                                  : 1));
  rng_state_[0] = sm.next();
  rng_state_[1] = sm.next();
  path_.push_back(model_.mean_fraction * type_.cost_per_hour);
}

void SpotMarket::extend(std::uint64_t tick) const {
  util::Xoshiro256 rng(rng_state_[0] ^ (rng_state_[1] * (path_.size() + 1)));
  const double mean = model_.mean_fraction * type_.cost_per_hour;
  while (path_.size() <= tick) {
    // Re-seed a small generator per step from the memoized state so the
    // path is identical regardless of the query order.
    util::Xoshiro256 step_rng(rng_state_[0] + 0x9e3779b97f4a7c15ULL *
                                                  path_.size());
    const double previous = path_.back();
    double next = previous + model_.reversion * (mean - previous);
    next *= std::exp(model_.volatility * step_rng.normal());
    if (step_rng.next_double() < model_.spike_probability)
      next *= model_.spike_multiplier;
    // Spot never exceeds 10x on-demand nor drops below 5% of it.
    next = std::clamp(next, 0.05 * type_.cost_per_hour,
                      10.0 * type_.cost_per_hour);
    path_.push_back(next);
  }
  (void)rng;
}

double SpotMarket::price(std::uint64_t tick) const {
  if (tick >= path_.size()) extend(tick);
  return path_[tick];
}

SpotRunReport run_on_spot(const SpotMarket& market,
                          hw::WorkloadClass workload,
                          double total_instructions,
                          const SpotRunPolicy& policy,
                          double horizon_seconds) {
  if (total_instructions <= 0)
    throw std::invalid_argument("run_on_spot: non-positive work");
  if (policy.instances < 1)
    throw std::invalid_argument("run_on_spot: need at least one instance");
  if (policy.bid_per_hour <= 0)
    throw std::invalid_argument("run_on_spot: non-positive bid");
  if (horizon_seconds <= 0)
    throw std::invalid_argument("run_on_spot: non-positive horizon");

  const InstanceType& type = market.type();
  const double fleet_rate =
      hw::vcpu_rate(type.microarch, workload) * type.vcpus *
      policy.instances;
  const double tick = market.tick_seconds();

  SpotRunReport report;
  double done = 0.0;            // completed work
  double checkpointed = 0.0;    // work safe on stable storage
  double since_checkpoint_time = 0.0;
  double resume_at = 0.0;       // compute blocked until this time
  bool was_running = false;

  double now = 0.0;
  while (done < total_instructions && now < horizon_seconds) {
    const auto k = static_cast<std::uint64_t>(now / tick);
    const double tick_end = (static_cast<double>(k) + 1.0) * tick;
    const double slice = std::min(tick_end, horizon_seconds) - now;
    const double price = market.price(k);

    if (price > policy.bid_per_hour) {
      // Evicted (or staying evicted): lose uncheckpointed work once per
      // eviction event.
      if (was_running) {
        ++report.evictions;
        report.lost_work_instructions += done - checkpointed;
        done = checkpointed;
        was_running = false;
      }
      resume_at = 0.0;  // re-arm the restart delay for the next run phase
      now += slice;
      continue;
    }

    // Price is under the bid: (re)start after the restart delay.
    if (!was_running) {
      if (resume_at == 0.0) resume_at = now + policy.restart_delay_seconds;
      if (now < resume_at) {
        // Waiting to boot: spot instances bill from launch.
        const double wait = std::min(slice, resume_at - now);
        report.cost +=
            price * policy.instances * wait / 3600.0;
        now += wait;
        if (now < resume_at) continue;
      }
      was_running = true;
      since_checkpoint_time = 0.0;
    }

    // Compute through the remainder of this tick, pausing to checkpoint.
    double t = now;
    const double compute_end = std::min(tick_end, horizon_seconds);
    while (t < compute_end && done < total_instructions) {
      double dt = compute_end - t;
      if (policy.checkpoint_interval_seconds > 0) {
        const double until_ckpt =
            policy.checkpoint_interval_seconds - since_checkpoint_time;
        if (until_ckpt <= 0) {
          // Stall for the checkpoint write; work becomes durable.
          const double stall =
              std::min(policy.checkpoint_cost_seconds, compute_end - t);
          report.cost += price * policy.instances * stall / 3600.0;
          report.checkpoint_overhead_seconds += stall;
          t += stall;
          if (stall >= policy.checkpoint_cost_seconds) {
            checkpointed = done;
            since_checkpoint_time = 0.0;
          }
          continue;
        }
        dt = std::min(dt, until_ckpt);
      }
      const double work = fleet_rate * dt;
      if (done + work >= total_instructions) {
        const double need = (total_instructions - done) / fleet_rate;
        report.cost += price * policy.instances * need / 3600.0;
        done = total_instructions;
        t += need;
        break;
      }
      done += work;
      report.cost += price * policy.instances * dt / 3600.0;
      since_checkpoint_time += dt;
      t += dt;
    }
    now = t;
    if (t < compute_end && done < total_instructions) now = compute_end;
  }

  report.seconds = now;
  report.completed = done >= total_instructions;
  if (!report.completed && done > checkpointed) {
    // Horizon give-up: work since the last checkpoint was billed but never
    // made durable — account it as lost, like an eviction, so billed work
    // always equals checkpointed + lost.
    report.lost_work_instructions += done - checkpointed;
  }
  return report;
}

ReplicatedRunReport run_replicated(const SpotMarket& market,
                                   hw::WorkloadClass workload,
                                   double total_instructions,
                                   const SpotRunPolicy& spot_policy,
                                   int on_demand_instances,
                                   double horizon_seconds) {
  if (on_demand_instances < 1)
    throw std::invalid_argument(
        "run_replicated: need at least one on-demand instance");

  const InstanceType& type = market.type();
  const double od_rate = hw::vcpu_rate(type.microarch, workload) *
                         type.vcpus * on_demand_instances;
  const double od_finish = total_instructions / od_rate;

  // The spot replica races the on-demand replica to the SAME finish line.
  const SpotRunReport spot = run_on_spot(
      market, workload, total_instructions, spot_policy,
      std::min(horizon_seconds, od_finish));

  ReplicatedRunReport report;
  if (spot.completed && spot.seconds < od_finish) {
    report.spot_won = true;
    report.seconds = spot.seconds;
    report.completed = true;
  } else {
    report.spot_won = false;
    report.seconds = std::min(od_finish, horizon_seconds);
    report.completed = od_finish <= horizon_seconds;
  }
  report.spot_evictions = spot.evictions;
  // Both replicas bill until the winner finishes: the spot report already
  // stops accruing at min(horizon, od_finish) >= report.seconds for the
  // spot-won case; for the on-demand-won case it accrued exactly to
  // od_finish (capped by the horizon) — either way `spot.cost` covers the
  // spot side up to completion.
  report.cost = spot.cost + on_demand_instances * type.cost_per_hour *
                                report.seconds / 3600.0;
  return report;
}

}  // namespace celia::cloud
