#pragma once
// Spot-instance market simulation with checkpoint/restart execution.
//
// The paper restricts CELIA to on-demand resources and notes (§II) that
// spot instances risk abrupt termination: Marathe et al. pick checkpoint
// strategies from historical spot prices; Gong et al. replicate on
// on-demand nodes to protect the deadline. This extension builds the
// substrate those comparisons need:
//
//   * SpotMarket — a seeded mean-reverting price process per instance
//     type (prices hover around a fraction of on-demand, with lognormal
//     shocks), sampled on a fixed tick;
//   * run_on_spot — execute a divisible workload on one spot fleet with a
//     bid price: when the market price exceeds the bid the fleet is
//     terminated, losing all work since the last checkpoint, and resumes
//     (after a restart delay) once the price falls below the bid again.
//     Billing follows the market price per tick while running.
//
// bench/ext_spot_analysis compares the resulting cost/deadline-risk
// trade-off against CELIA's on-demand optimum.

#include <cstdint>
#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/provider.hpp"
#include "hw/workload_class.hpp"

namespace celia::cloud {

struct SpotMarketModel {
  /// Long-run mean spot price as a fraction of on-demand (EC2 ~0.25-0.4).
  double mean_fraction = 0.30;
  /// Mean-reversion strength per tick (0..1).
  double reversion = 0.10;
  /// Lognormal shock sigma per tick.
  double volatility = 0.12;
  /// Occasional demand spike: probability per tick of a multiplicative
  /// jump (drives evictions even for generous bids).
  double spike_probability = 0.01;
  double spike_multiplier = 4.0;
  /// Price-tick length.
  double tick_seconds = 300.0;
};

/// Seeded spot-price path for one instance type.
class SpotMarket {
 public:
  SpotMarket(const InstanceType& type, std::uint64_t seed,
             SpotMarketModel model = {});

  /// Price in $/hr during tick k (k = 0 is [0, tick_seconds)).
  /// Paths are generated lazily and memoized; price(k) is deterministic
  /// for a given (type, seed, model).
  double price(std::uint64_t tick) const;

  double tick_seconds() const { return model_.tick_seconds; }
  const InstanceType& type() const { return type_; }
  const SpotMarketModel& model() const { return model_; }

 private:
  void extend(std::uint64_t tick) const;

  InstanceType type_;
  SpotMarketModel model_;
  mutable std::vector<double> path_;
  mutable std::uint64_t rng_state_[2];
};

struct SpotRunPolicy {
  /// Bid in $/hr per instance; evicted while market price > bid.
  double bid_per_hour = 0.0;
  /// Checkpoint period; on eviction, work since the last checkpoint is
  /// lost. 0 disables checkpointing (an eviction restarts from zero).
  double checkpoint_interval_seconds = 1800.0;
  /// Wall-clock overhead of writing one checkpoint (fleet stalls).
  double checkpoint_cost_seconds = 30.0;
  /// Delay between the price falling below the bid and compute resuming.
  double restart_delay_seconds = 120.0;
  /// Fleet size (homogeneous spot fleet of the market's type).
  int instances = 1;
};

struct SpotRunReport {
  double seconds = 0.0;       // wall-clock to completion (or give-up)
  double cost = 0.0;          // integral of market price while running
  bool completed = false;     // false if the run hit the horizon
  int evictions = 0;
  /// Billed-but-not-durable work: recomputed after evictions, plus the
  /// uncheckpointed tail abandoned when the run gives up at the horizon.
  double lost_work_instructions = 0.0;
  double checkpoint_overhead_seconds = 0.0;
};

/// Execute `total_instructions` of divisible work of class `workload` on a
/// spot fleet, with a horizon after which the run is abandoned.
/// Throws std::invalid_argument on bad arguments.
SpotRunReport run_on_spot(const SpotMarket& market,
                          hw::WorkloadClass workload,
                          double total_instructions,
                          const SpotRunPolicy& policy,
                          double horizon_seconds);

/// Replicated execution in the style of Gong et al. (paper §II): the same
/// work runs simultaneously on a spot fleet AND on a small on-demand
/// fleet; the job finishes when EITHER replica finishes, and both bill
/// until that moment. The on-demand replica guarantees the deadline that
/// spot alone cannot; the spot replica usually wins and caps the cost.
struct ReplicatedRunReport {
  double seconds = 0.0;
  double cost = 0.0;          // spot + on-demand, both until completion
  bool completed = false;
  bool spot_won = false;      // which replica finished first
  int spot_evictions = 0;
};

ReplicatedRunReport run_replicated(const SpotMarket& market,
                                   hw::WorkloadClass workload,
                                   double total_instructions,
                                   const SpotRunPolicy& spot_policy,
                                   int on_demand_instances,
                                   double horizon_seconds);

}  // namespace celia::cloud
