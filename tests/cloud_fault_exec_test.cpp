// Tests for failable provisioning (CloudProvider::provision_with_faults)
// and the failure-aware executor (ClusterExecutor::execute_with_faults):
// zero-fault bit-identity with the legacy paths, deterministic replay of
// fault schedules, task re-dispatch, checkpoint/restart, replacements and
// speculative execution.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cloud/cluster_exec.hpp"
#include "cloud/provider.hpp"

namespace {

using namespace celia::cloud;
using celia::apps::ParallelPattern;
using celia::apps::Workload;
using celia::hw::WorkloadClass;

std::vector<int> single(const std::string& name, int count = 1) {
  std::vector<int> counts(9, 0);
  counts[catalog_index(name)] = count;
  return counts;
}

Workload independent_tasks(std::vector<double> tasks) {
  Workload workload;
  workload.app_name = "test";
  workload.workload_class = WorkloadClass::kVideoEncoding;
  workload.pattern = ParallelPattern::kIndependentTasks;
  workload.total_instructions =
      std::accumulate(tasks.begin(), tasks.end(), 0.0);
  workload.task_instructions = std::move(tasks);
  return workload;
}

Workload master_worker(std::vector<double> tasks, double serial,
                       double dispatch) {
  Workload workload = independent_tasks(std::move(tasks));
  workload.pattern = ParallelPattern::kMasterWorker;
  workload.serial_instructions = serial;
  workload.total_instructions += serial;
  workload.dispatch_seconds_per_task = dispatch;
  return workload;
}

Workload bulk_synchronous(std::uint64_t steps, double per_step,
                          double sync_bytes) {
  Workload workload;
  workload.app_name = "test";
  workload.workload_class = WorkloadClass::kNBody;
  workload.pattern = ParallelPattern::kBulkSynchronous;
  workload.steps = steps;
  workload.instructions_per_step = per_step;
  workload.sync_bytes_per_step = sync_bytes;
  workload.total_instructions = steps * per_step;
  return workload;
}

void expect_reports_equal(const ExecutionReport& a, const ExecutionReport& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.faults.node_failures, b.faults.node_failures);
  EXPECT_EQ(a.faults.tasks_redispatched, b.faults.tasks_redispatched);
  EXPECT_EQ(a.faults.speculative_launches, b.faults.speculative_launches);
  EXPECT_EQ(a.faults.checkpoints_written, b.faults.checkpoints_written);
  EXPECT_EQ(a.faults.restarts, b.faults.restarts);
  EXPECT_EQ(a.faults.replacements, b.faults.replacements);
  EXPECT_EQ(a.faults.sync_retransmits, b.faults.sync_retransmits);
  EXPECT_EQ(a.faults.recomputed_instructions, b.faults.recomputed_instructions);
  EXPECT_EQ(a.faults.replacement_wait_seconds,
            b.faults.replacement_wait_seconds);
}

// ---------------------------------------------------------------------------
// Failable provisioning.

TEST(FaultProvisioning, InertModelMatchesLegacyProvisionBitwise) {
  const auto counts = single("c4.xlarge", 3);
  CloudProvider legacy(77), faulty(77);
  const auto instances = legacy.provision(counts);
  const auto result = faulty.provision_with_faults(counts, FaultModel{});
  ASSERT_EQ(result.instances.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(result.instances[i].instance_id, instances[i].instance_id);
    EXPECT_EQ(result.instances[i].type_index, instances[i].type_index);
    EXPECT_EQ(result.instances[i].speed_factor, instances[i].speed_factor);
    EXPECT_EQ(result.ready_seconds[i], 0.0);
  }
  EXPECT_EQ(result.report.requested, 3);
  EXPECT_EQ(result.report.provisioned, 3);
  EXPECT_EQ(result.report.boot_failures, 0);
  EXPECT_EQ(result.report.retries, 0);
  EXPECT_EQ(result.report.ready_seconds, 0.0);
  EXPECT_EQ(result.report.wasted_boot_seconds, 0.0);
}

TEST(FaultProvisioning, BootFailuresAreRetriedAndAccounted) {
  FaultModel model;
  model.boot_failure_probability = 0.4;
  model.boot_timeout_seconds = 60.0;
  const auto counts = single("c4.large", 5);

  CloudProvider provider(123);
  const auto result = provider.provision_with_faults(counts, model);
  EXPECT_EQ(result.report.provisioned, 5);
  EXPECT_EQ(result.instances.size(), 5u);
  // Every failed boot triggered exactly one backoff-delayed retry.
  EXPECT_EQ(result.report.retries, result.report.boot_failures);
  EXPECT_DOUBLE_EQ(result.report.wasted_boot_seconds,
                   60.0 * result.report.boot_failures);
  // Pick a seed-independent truth: with p=0.4 over >= 5 attempts, at
  // least one failure is overwhelmingly likely for seed 123 — if this
  // fires the seed can be adjusted, the schedule is deterministic.
  EXPECT_GT(result.report.boot_failures, 0);
  // ready_seconds is the slowest node's chain.
  double slowest = 0.0;
  for (const double r : result.ready_seconds) slowest = std::max(slowest, r);
  EXPECT_DOUBLE_EQ(result.report.ready_seconds, slowest);

  // Bit-identical replay from an identically-seeded provider.
  CloudProvider replay(123);
  const auto again = replay.provision_with_faults(counts, model);
  EXPECT_EQ(again.report.boot_failures, result.report.boot_failures);
  EXPECT_EQ(again.report.ready_seconds, result.report.ready_seconds);
  for (std::size_t i = 0; i < result.instances.size(); ++i) {
    EXPECT_EQ(again.instances[i].instance_id,
              result.instances[i].instance_id);
    EXPECT_EQ(again.instances[i].speed_factor,
              result.instances[i].speed_factor);
    EXPECT_EQ(again.ready_seconds[i], result.ready_seconds[i]);
  }
}

TEST(FaultProvisioning, CertainBootFailureExhaustsRetriesAndThrows) {
  FaultModel model;
  model.boot_failure_probability = 1.0;
  CloudProvider provider(1);
  EXPECT_THROW(provider.provision_with_faults(single("c4.large"), model),
               ProvisioningError);
}

TEST(FaultProvisioning, GraySlowdownFoldsIntoSpeedFactor) {
  FaultModel model;
  model.gray_probability = 1.0;
  model.gray_slowdown = 0.5;
  const auto counts = single("m4.large", 2);
  CloudProvider legacy(9), faulty(9);
  const auto instances = legacy.provision(counts);
  const auto result = faulty.provision_with_faults(counts, model);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.instances[i].speed_factor,
                     instances[i].speed_factor * 0.5);
  }
}

TEST(FaultProvisioning, BootDelayMakesNodesReadyLater) {
  FaultModel model;
  model.boot_delay_seconds = 120.0;
  CloudProvider provider(4);
  const auto result =
      provider.provision_with_faults(single("c4.large", 3), model);
  for (const double ready : result.ready_seconds) EXPECT_GT(ready, 0.0);
}

TEST(FaultProvisioning, ReplacementContinuesInstanceIds) {
  CloudProvider provider(5);
  const auto fleet =
      provider.provision_with_faults(single("c4.large", 2), FaultModel{});
  const auto replacement =
      provider.provision_replacement(catalog_index("r3.xlarge"), FaultModel{});
  ASSERT_EQ(replacement.instances.size(), 1u);
  EXPECT_EQ(replacement.instances[0].type_index, catalog_index("r3.xlarge"));
  EXPECT_GT(replacement.instances[0].instance_id,
            fleet.instances.back().instance_id);
}

// ---------------------------------------------------------------------------
// Zero-fault bit-identity: the determinism property the planner relies on.

TEST(FaultExec, InertModelIsBitIdenticalToLegacyExecutorAllPatterns) {
  const std::vector<int> counts = [] {
    auto c = single("c4.large", 2);
    c[catalog_index("m4.xlarge")] = 1;
    return c;
  }();
  const std::vector<Workload> workloads = {
      independent_tasks({1e11, 2e11, 5e10, 1.5e11, 8e10, 1e11}),
      master_worker({1e11, 2e11, 5e10, 1.5e11}, 5e10, 0.030),
      bulk_synchronous(40, 2e10, 1e6),
  };
  const ClusterExecutor executor;
  for (const auto& workload : workloads) {
    CloudProvider legacy(2017), faulty(2017);
    const auto instances = legacy.provision(counts);
    const auto fleet = faulty.provision_with_faults(counts, FaultModel{});

    const auto baseline = executor.execute(workload, instances, counts);
    const auto under_faults =
        executor.execute_with_faults(workload, faulty, fleet, counts);
    expect_reports_equal(baseline, under_faults);
    EXPECT_EQ(under_faults.faults.node_failures, 0u);
    EXPECT_EQ(under_faults.faults.recomputed_instructions, 0.0);
  }
}

TEST(FaultExec, SameSeedReplaysIdenticalScheduleTwice) {
  FaultModel model;
  model.mtbf_seconds = 400.0;
  model.gray_probability = 0.2;
  model.gray_slowdown = 0.5;
  model.boot_delay_seconds = 15.0;
  model.message_loss_probability = 0.05;

  const auto counts = single("c4.large", 3);
  const std::vector<Workload> workloads = {
      independent_tasks(std::vector<double>(24, 1e11)),
      bulk_synchronous(60, 3e10, 1e6),
  };
  const ClusterExecutor executor;
  for (const auto& workload : workloads) {
    FaultExecutionOptions options;
    options.faults = model;
    options.checkpoint.interval_seconds = 120.0;
    options.checkpoint.write_cost_seconds = 5.0;

    CloudProvider first(31), second(31);
    const auto fleet_a = first.provision_with_faults(counts, model);
    const auto fleet_b = second.provision_with_faults(counts, model);
    const auto a =
        executor.execute_with_faults(workload, first, fleet_a, counts, options);
    const auto b = executor.execute_with_faults(workload, second, fleet_b,
                                                counts, options);
    expect_reports_equal(a, b);
  }
}

// ---------------------------------------------------------------------------
// Task-farm failure semantics.

TEST(FaultExec, TaskFarmSurvivesCrashesViaRedispatchAndReplacement) {
  const auto counts = single("c4.large", 2);
  const Workload workload = independent_tasks(std::vector<double>(16, 1e11));
  const ClusterExecutor executor;

  // Baseline run to size the MTBF against the actual makespan.
  CloudProvider baseline_provider(8);
  const auto baseline = executor.execute(
      workload, baseline_provider.provision(counts), counts);

  FaultModel model;
  model.mtbf_seconds = baseline.seconds / 4.0;  // several crashes expected
  FaultExecutionOptions options;
  options.faults = model;

  CloudProvider provider(8);
  const auto fleet = provider.provision_with_faults(counts, model);
  const auto report =
      executor.execute_with_faults(workload, provider, fleet, counts, options);

  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.faults.node_failures, 0u);
  EXPECT_EQ(report.faults.replacements, report.faults.node_failures);
  EXPECT_GT(report.faults.tasks_redispatched, 0u);
  EXPECT_GT(report.faults.recomputed_instructions, 0.0);
  // Crashes + re-execution can only slow the farm down.
  EXPECT_GT(report.seconds, baseline.seconds);
  EXPECT_GT(report.cost, 0.0);
}

TEST(FaultExec, FleetExtinctionWithoutReplacementsReportsIncomplete) {
  const auto counts = single("c4.large", 2);
  const Workload workload = independent_tasks(std::vector<double>(16, 1e12));
  const ClusterExecutor executor;

  CloudProvider baseline_provider(8);
  const auto baseline = executor.execute(
      workload, baseline_provider.provision(counts), counts);

  FaultModel model;
  model.mtbf_seconds = baseline.seconds / 50.0;  // every node dies early
  FaultExecutionOptions options;
  options.faults = model;
  options.provision_replacements = false;

  CloudProvider provider(8);
  const auto fleet = provider.provision_with_faults(counts, model);
  const auto report =
      executor.execute_with_faults(workload, provider, fleet, counts, options);

  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.faults.node_failures, 2u);
  EXPECT_EQ(report.faults.replacements, 0u);
  // The run ends at the last death, having billed only actual lifetimes.
  EXPECT_LT(report.seconds, baseline.seconds);
  EXPECT_LT(report.cost, baseline.cost);
}

TEST(FaultExec, SpeculationRelaunchesStragglersAndHelps) {
  // Two c4.large nodes, one gray (4x slowdown). Find a provider seed whose
  // first two instance draws disagree on grayness — the schedule is then
  // pinned and deterministic.
  FaultModel model;
  model.gray_probability = 0.5;
  model.gray_slowdown = 0.25;
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 200; ++candidate) {
    if (fault_profile(model, candidate, 0).gray !=
        fault_profile(model, candidate, 1).gray) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u);

  const auto counts = single("c4.large", 2);  // 4 slots
  const Workload workload = independent_tasks(std::vector<double>(4, 2e11));
  const ClusterExecutor executor;

  const auto run = [&](bool speculate) {
    CloudProvider provider(seed);
    const auto fleet = provider.provision_with_faults(counts, model);
    FaultExecutionOptions options;
    options.faults = model;
    options.speculative_execution = speculate;
    return executor.execute_with_faults(workload, provider, fleet, counts,
                                        options);
  };
  const auto without = run(false);
  const auto with = run(true);

  EXPECT_TRUE(with.completed);
  EXPECT_GT(with.faults.speculative_launches, 0u);
  // The healthy node's idle slots re-run the gray node's tasks 4x faster.
  EXPECT_LT(with.seconds, without.seconds);
}

// ---------------------------------------------------------------------------
// Bulk-synchronous checkpoint/restart.

TEST(FaultExec, BulkSynchronousCheckpointsAndRestarts) {
  const auto counts = single("m4.large", 3);
  const Workload workload = bulk_synchronous(80, 3e10, 1e6);
  const ClusterExecutor executor;

  CloudProvider baseline_provider(21);
  const auto baseline = executor.execute(
      workload, baseline_provider.provision(counts), counts);

  FaultModel model;
  model.mtbf_seconds = baseline.seconds / 2.0;
  FaultExecutionOptions options;
  options.faults = model;
  options.checkpoint.interval_seconds = baseline.seconds / 10.0;
  options.checkpoint.write_cost_seconds = baseline.seconds / 400.0;

  CloudProvider provider(21);
  const auto fleet = provider.provision_with_faults(counts, model);
  const auto report =
      executor.execute_with_faults(workload, provider, fleet, counts, options);

  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.faults.node_failures, 0u);
  EXPECT_EQ(report.faults.replacements, report.faults.node_failures);
  EXPECT_GT(report.faults.checkpoints_written, 0u);
  // A rollback re-runs at most one checkpoint interval's worth of steps.
  EXPECT_EQ(report.faults.restarts > 0,
            report.faults.recomputed_instructions > 0.0);
  EXPECT_GT(report.seconds, baseline.seconds);
}

TEST(FaultExec, BulkSynchronousMessageLossAddsRetransmits) {
  const auto counts = single("m4.large", 3);
  const Workload workload = bulk_synchronous(200, 1e10, 1e7);
  const ClusterExecutor executor;

  FaultModel model;
  model.message_loss_probability = 0.1;
  FaultExecutionOptions options;
  options.faults = model;

  CloudProvider lossy_provider(3), clean_provider(3);
  const auto lossy_fleet = lossy_provider.provision_with_faults(counts, model);
  const auto clean_fleet =
      clean_provider.provision_with_faults(counts, FaultModel{});
  const auto lossy = executor.execute_with_faults(workload, lossy_provider,
                                                  lossy_fleet, counts, options);
  const auto clean = executor.execute_with_faults(workload, clean_provider,
                                                  clean_fleet, counts);

  EXPECT_TRUE(lossy.completed);
  EXPECT_GT(lossy.faults.sync_retransmits, 0u);
  EXPECT_EQ(lossy.faults.node_failures, 0u);
  // ~0.1 losses per node-step over 3 nodes x 200 steps ~ 60 retransmits.
  EXPECT_NEAR(static_cast<double>(lossy.faults.sync_retransmits), 60.0, 30.0);
  EXPECT_GT(lossy.seconds, clean.seconds);
}

TEST(FaultExec, ExecuteWithFaultsValidatesItsOptions) {
  const auto counts = single("c4.large");
  CloudProvider provider(1);
  const auto fleet = provider.provision_with_faults(counts, FaultModel{});
  const ClusterExecutor executor;
  const Workload workload = independent_tasks({1e11});

  FaultExecutionOptions bad_faults;
  bad_faults.faults.gray_probability = 2.0;
  EXPECT_THROW(executor.execute_with_faults(workload, provider, fleet, counts,
                                            bad_faults),
               std::invalid_argument);
  FaultExecutionOptions bad_checkpoint;
  bad_checkpoint.checkpoint.interval_seconds = -1.0;
  EXPECT_THROW(executor.execute_with_faults(workload, provider, fleet, counts,
                                            bad_checkpoint),
               std::invalid_argument);
}

}  // namespace
