#include "apps/x264/encoder.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace celia::apps::x264 {

namespace {

/// DCT-II coefficient matrix, computed once.
struct DctTable {
  double c[8][8];
  DctTable() {
    for (int k = 0; k < 8; ++k) {
      const double scale = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int i = 0; i < 8; ++i) {
        c[k][i] = scale * std::cos((2 * i + 1) * k * std::numbers::pi / 16.0);
      }
    }
  }
};

const DctTable& dct_table() {
  static const DctTable table;
  return table;
}

/// JPEG-style luminance quantization steps (flattened zigzag-less layout).
constexpr int kQuantStep[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

/// Zigzag scan order for an 8x8 block.
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace

Block make_block(util::Xoshiro256& rng) {
  Block block;
  for (auto& pixel : block) pixel = rng.uniform(0.0, 255.0);
  return block;
}

void dct8(const double* input, double* output, hw::PerfCounter& counter) {
  const auto& table = dct_table();
  for (int k = 0; k < 8; ++k) {
    double sum = 0.0;
    for (int i = 0; i < 8; ++i) sum += table.c[k][i] * input[i];
    output[k] = sum;
  }
  // Ledger: 8 outputs x (8 multiplies, 8 adds incl. the accumulator init),
  // 8 input loads + 8 output stores.
  counter.add(hw::OpClass::kFloatMul, 64);
  counter.add(hw::OpClass::kFloatAdd, 64);
  counter.add(hw::OpClass::kLoadStore, 16);
}

int motion_search(const Block& block, const Block& reference,
                  hw::PerfCounter& counter) {
  // Evaluate kMotionCandidates cyclic shifts of the reference block (the
  // stand-in for a +/- pixel search window) by sum of absolute
  // differences.
  int best = 0;
  double best_sad = std::numeric_limits<double>::infinity();
  for (int candidate = 0; candidate < kMotionCandidates; ++candidate) {
    double sad = 0.0;
    const int shift = candidate * 4;
    for (int i = 0; i < 64; ++i) {
      sad += std::abs(block[i] - reference[(i + shift) % 64]);
    }
    if (sad < best_sad) {
      best_sad = sad;
      best = candidate;
    }
  }
  // Ledger per candidate: 64 loads of the shifted reference (the source
  // block stays in registers), 128 FP adds (difference + accumulate),
  // 1 compare-branch for the running minimum.
  counter.add(hw::OpClass::kLoadStore,
              64ull * kMotionCandidates);
  counter.add(hw::OpClass::kFloatAdd, 128ull * kMotionCandidates);
  counter.add(hw::OpClass::kBranch, kMotionCandidates);
  return best;
}

double encode_block(const Block& block, const Block& reference, int f,
                    hw::PerfCounter& counter) {
  if (f < 1) throw std::invalid_argument("encode_block: f must be >= 1");

  // Motion search against the previous frame's co-located block; the
  // residual against the winning prediction is what gets transformed.
  const int mv = motion_search(block, reference, counter);
  const int shift = mv * 4;

  // Load the source block and form the residual.
  double work[64];
  for (int i = 0; i < 64; ++i)
    work[i] = block[i] - reference[(i + shift) % 64];
  counter.add(hw::OpClass::kLoadStore, 64);
  counter.add(hw::OpClass::kFloatAdd, 64);

  // 2-D DCT: 8 row passes then 8 column passes.
  double rows[64];
  for (int r = 0; r < 8; ++r) dct8(&work[r * 8], &rows[r * 8], counter);
  double coeffs[64];
  for (int c = 0; c < 8; ++c) {
    double column[8], transformed[8];
    for (int r = 0; r < 8; ++r) column[r] = rows[r * 8 + c];
    dct8(column, transformed, counter);
    for (int r = 0; r < 8; ++r) coeffs[r * 8 + c] = transformed[r];
  }

  // Quantization with a dead-zone test.
  double quantized[64];
  for (int i = 0; i < 64; ++i) {
    const double q = coeffs[i] / kQuantStep[i];
    quantized[i] = std::abs(q) < 0.5 ? 0.0 : q;
  }
  counter.add(hw::OpClass::kFloatMul, 64);   // divide-by-step as multiply
  counter.add(hw::OpClass::kLoadStore, 64);
  counter.add(hw::OpClass::kBranch, 64);     // dead-zone comparisons

  // Zigzag + run-length entropy pass.
  int run = 0;
  double checksum = 0.0;
  for (int i = 0; i < 64; ++i) {
    const double v = quantized[kZigzag[i]];
    if (v == 0.0) {
      ++run;
    } else {
      checksum += v + run;
      run = 0;
    }
  }
  counter.add(hw::OpClass::kIntArith, 64);
  counter.add(hw::OpClass::kLoadStore, 64);
  counter.add(hw::OpClass::kBranch, 64);

  // Rate-distortion refinement: an f x f candidate grid (trellis-like
  // search); effort grows quadratically with the compression factor.
  for (int p = 0; p < f; ++p) {
    for (int q = 0; q < f; ++q) {
      const int idx = (p * 8 + q) % 64;
      const double lambda = 0.85 * p + 0.15;
      const double rate = quantized[idx] * lambda;
      const double dist = (coeffs[idx] - rate) * (coeffs[idx] - rate);
      const double cost1 = dist + lambda * rate;
      const double cost2 = dist * 1.0625 + lambda;
      if (cost2 < cost1) checksum += cost2 - cost1;
    }
  }
  // Ledger per (p,q): 6 multiplies, 6 adds/subs, 3 loads, 3 branches.
  const auto grid = static_cast<std::uint64_t>(f) * f;
  counter.add(hw::OpClass::kFloatMul, 6 * grid);
  counter.add(hw::OpClass::kFloatAdd, 6 * grid);
  counter.add(hw::OpClass::kLoadStore, 3 * grid);
  counter.add(hw::OpClass::kBranch, 3 * grid);

  return checksum;
}

double encode_clip(const ClipModel& model, int f, std::uint64_t seed,
                   hw::PerfCounter& counter) {
  util::Xoshiro256 rng(seed);
  double checksum = 0.0;
  // Frame 0 predicts from mid-gray; later frames from the previous frame.
  Block gray;
  gray.fill(128.0);
  std::vector<Block> previous(model.blocks_per_frame(), gray);
  std::vector<Block> current(model.blocks_per_frame());
  for (int frame = 0; frame < model.frames; ++frame) {
    for (int b = 0; b < model.blocks_per_frame(); ++b) {
      current[b] = make_block(rng);
      checksum += encode_block(current[b], previous[b], f, counter);
    }
    std::swap(previous, current);
    counter.add(hw::OpClass::kOther, kPerFrameOverheadOps);
  }
  counter.add(hw::OpClass::kOther, kPerClipOverheadOps);
  return checksum;
}

hw::PerfCounter block_ops(int f) {
  hw::PerfCounter ops;
  const auto grid = static_cast<std::uint64_t>(f) * f;
  constexpr std::uint64_t kMe = kMotionCandidates;
  // Motion search + residual + 16 dct8 calls (8 row + 8 column passes) +
  // quantization + entropy + refinement.
  ops.add(hw::OpClass::kFloatMul, 16 * 64 + 64 + 6 * grid);
  ops.add(hw::OpClass::kFloatAdd, 128 * kMe + 64 + 16 * 64 + 6 * grid);
  ops.add(hw::OpClass::kLoadStore,
          64 * kMe + 64 + 16 * 16 + 64 + 64 + 3 * grid);
  ops.add(hw::OpClass::kBranch, kMe + 64 + 64 + 3 * grid);
  ops.add(hw::OpClass::kIntArith, 64);
  return ops;
}

hw::PerfCounter clip_ops(const ClipModel& model, int f) {
  hw::PerfCounter per_block = block_ops(f);
  hw::PerfCounter ops;
  const std::uint64_t blocks = model.blocks_per_clip();
  for (int i = 0; i < hw::kNumOpClasses; ++i) {
    const auto op = static_cast<hw::OpClass>(i);
    ops.add(op, per_block.ops(op) * blocks);
  }
  ops.add(hw::OpClass::kOther,
          kPerFrameOverheadOps * static_cast<std::uint64_t>(model.frames) +
              kPerClipOverheadOps);
  return ops;
}

}  // namespace celia::apps::x264
