file(REMOVE_RECURSE
  "CMakeFiles/ext_autoscaling.dir/ext_autoscaling.cpp.o"
  "CMakeFiles/ext_autoscaling.dir/ext_autoscaling.cpp.o.d"
  "ext_autoscaling"
  "ext_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
