#include "cloud/provider.hpp"

#include <stdexcept>

namespace celia::cloud {

CloudProvider::CloudProvider(std::uint64_t seed) : seed_(seed) {}

std::vector<Instance> CloudProvider::provision(
    const std::vector<int>& node_counts) {
  const auto catalog = ec2_catalog();
  if (node_counts.size() != catalog.size())
    throw std::invalid_argument(
        "provision: counts must match catalog size");

  std::vector<Instance> instances;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (node_counts[i] < 0 || node_counts[i] > kMaxInstancesPerType)
      throw std::invalid_argument(
          "provision: node count outside [0, " +
          std::to_string(kMaxInstancesPerType) + "] for " +
          std::string(catalog[i].name));
    for (int k = 0; k < node_counts[i]; ++k) {
      Instance instance;
      instance.type_index = i;
      instance.instance_id = next_instance_id_++;
      instance.speed_factor =
          instance_speed_factor(seed_, instance.instance_id);
      instances.push_back(instance);
    }
  }
  if (instances.empty())
    throw std::invalid_argument("provision: empty configuration");
  return instances;
}

double CloudProvider::run_benchmark(std::size_t type_index,
                                    double instructions,
                                    hw::WorkloadClass workload) {
  if (type_index >= catalog_size())
    throw std::out_of_range("run_benchmark: bad type index");
  if (instructions <= 0)
    throw std::invalid_argument("run_benchmark: non-positive demand");

  Instance instance;
  instance.type_index = type_index;
  instance.instance_id = next_instance_id_++;
  instance.speed_factor = instance_speed_factor(seed_, instance.instance_id);
  return instructions / instance.actual_rate(workload);
}

}  // namespace celia::cloud
