// Ablation A2: CELIA's exhaustive sweep vs heuristic configuration search.
//
// The paper's Algorithm 1 explores the entire space, "guaranteeing to find
// all optimal configurations". This ablation quantifies the trade-off: how
// close (and how much cheaper in evaluations) are random sampling, greedy
// construction, and hill climbing?

#include <iostream>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/baselines.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  cloud::CloudProvider provider(2017);
  const core::Celia celia =
      core::Celia::build(*apps::make_galaxy(), provider);
  const auto& space = celia.space();
  const auto& capacity = celia.capacity();

  std::cout << "=== Ablation A2: Exhaustive Search vs Heuristics ===\n"
            << "task: min-cost configuration for galaxy(65536, 8000),"
            << " T' = 24h, C' = $350\n\n";

  core::Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.budget_dollars = 350.0;
  const double demand = celia.predict_demand({65536, 8000});

  struct Entry {
    std::string name;
    core::SearchOutcome outcome;
    double seconds;
  };
  std::vector<Entry> entries;

  util::Stopwatch watch;
  entries.push_back({"exhaustive (CELIA)",
                     core::exhaustive_search(space, capacity, demand,
                                             constraints),
                     watch.elapsed_seconds()});
  watch.reset();
  entries.push_back({"greedy cost",
                     core::greedy_cost_search(space, capacity, demand,
                                              constraints),
                     watch.elapsed_seconds()});
  watch.reset();
  entries.push_back({"random (10k samples)",
                     core::random_search(space, capacity, demand, constraints,
                                         10000, 1),
                     watch.elapsed_seconds()});
  watch.reset();
  entries.push_back({"random (100k samples)",
                     core::random_search(space, capacity, demand, constraints,
                                         100000, 2),
                     watch.elapsed_seconds()});
  watch.reset();
  entries.push_back({"hill climb (5 restarts)",
                     core::hill_climb_search(space, capacity, demand,
                                             constraints, 5, 3),
                     watch.elapsed_seconds()});

  const double optimal = entries[0].outcome.best.cost;
  util::TablePrinter table({"Searcher", "found", "cost ($)",
                            "optimality gap", "evaluations", "time (ms)"});
  for (std::size_t c = 2; c < 6; ++c) table.set_right_aligned(c);
  for (const auto& entry : entries) {
    table.add_row(
        {entry.name, entry.outcome.found ? "yes" : "no",
         entry.outcome.found ? util::format_fixed(entry.outcome.best.cost, 2)
                             : "-",
         entry.outcome.found
             ? util::format_percent(entry.outcome.best.cost / optimal - 1.0)
             : "-",
         util::format_with_commas(entry.outcome.evaluations),
         util::format_fixed(entry.seconds * 1e3, 1)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the exhaustive sweep is cheap enough (parallel, "
            << "incremental-odometer\nevaluation) that its optimality "
            << "guarantee costs little; heuristics need\norders of magnitude "
            << "fewer evaluations but can miss the optimum.\n";
  return 0;
}
