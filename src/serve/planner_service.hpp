#pragma once
// serve::PlannerService — planner-as-a-service: the overload-safe
// concurrent serving front-end over core::PlannerEngine.
//
// The engine answers one well-behaved caller; production traffic is many
// tenants hammering the planner concurrently under latency SLOs. The
// service puts four production mechanisms (the Envoy overload-manager
// playbook, on the server side this time) between submit() and the
// engine:
//
//   1. ADMISSION CONTROL with watermark load shedding. A bounded
//      submission queue feeds the worker pool; when queue depth reaches
//      the shed watermark, or the rolling p99 of served requests (a
//      tumbling-window LatencySloProbe) breaches the configured SLO, new
//      requests are REJECTED FAST with a typed kOverloaded outcome
//      instead of queueing into a latency death spiral. Rejection costs
//      one mutex acquisition — no planning work, no unbounded buffering.
//
//   2. PER-TENANT FAIRNESS. Each tenant owns a util::TokenBucket quota
//      (burst + sustained rate; exhaustion is the typed kRejectedQuota
//      outcome) and a weighted lane in the WeightedFairQueue, drained by
//      deficit round-robin — a hot tenant saturates its own share and
//      its own quota, never another tenant's latency.
//
//   3. IN-FLIGHT COALESCING. Identical requests — same (catalog
//      fingerprint, characterized capacity, demand, constraints,
//      result-shaping options) — share ONE computation and one cached
//      index build: the first becomes the leader, later arrivals attach
//      as waiters (typed in the outcome as coalesced) until the leader's
//      computation resolves, and every waiter receives the same answer.
//      N identical concurrent requests therefore cost one index build,
//      not N (counter-exact: celia_serve_coalesced_total).
//
//   4. DEADLINE PROPAGATION. Every request carries an absolute
//      util::DeadlineBudget in the service clock. A request whose
//      deadline expires while queued is shed (typed, never a silent
//      timeout); one dispatched near its deadline hands the REMAINING
//      budget to PlannerEngine::plan's degradation ladder, so the caller
//      gets a truncated-but-on-time answer (route kDegradedSweep /
//      kTruncatedSweep) instead of nothing. A coalesced batch plans
//      under the tightest deadline among the waiters present at
//      dispatch.
//
// SELF-HEALING (the robustness layer over the four mechanisms above):
//
//   5. STALENESS-BOUNDED DEGRADED SERVING. With a CatalogWatchdog wired
//      (ServiceOptions::watchdog), every answered request is stamped with
//      the serving catalog's staleness_us and DegradeReason; a catalog
//      past the watchdog's HARD staleness cap is shed typed
//      (kStaleCatalog) instead of silently serving arbitrarily old
//      plans. See serve/health.hpp for the feed-side state machine.
//
//   6. POISON-QUERY QUARANTINE. A query identity (CoalesceKey) whose
//      plan crashes, exhausts the PlanBudget ladder (lands on
//      kTruncatedSweep), or exceeds the hard wall-clock bound
//      `QuarantinePolicy::strike_threshold` consecutive times gets a
//      negative-cache entry: further submissions fast-fail typed
//      (kQuarantined) until a seeded-backoff expiry admits a probe.
//      Probe success clears the entry (a recovery); probe failure
//      re-quarantines with a longer backoff. One pathological request
//      can no longer serially burn every worker.
//
//   7. WORKER STALL SELF-HEALING. Worker dispatch start times are
//      heartbeats; check_workers() (the supervisor step — call it
//      periodically) detaches any worker stuck in one dispatch longer
//      than worker_stall_seconds, fails the stuck request's waiters with
//      typed kWorkerLost, and respawns a replacement thread so capacity
//      recovers. The detached thread finds its waiters already taken and
//      exits at the next generation check instead of resolving anything.
//
//   8. RETRY BUDGET. plan_retries > 0 re-attempts a throwing plan, but
//      every retry must withdraw from a Finagle-style util::RetryBudget
//      (deposits accrue per dispatched request), so a failing engine is
//      retried at a bounded ratio instead of amplifying the failure.
//
// Every submitted request reaches EXACTLY ONE of four terminal buckets
// — admitted (answered on its merits: kPlanned, kFailed when the engine
// threw, or kWorkerLost when the supervisor detached its worker), shed
// (kOverloaded, any reason), rejected_quota, or quarantined — so
//     admitted + shed + rejected_quota + quarantined == submitted
// holds whenever the service is quiesced (stats() documents this; the
// serving tests pin it), with
//     shed == shed_queue_full + shed_slo + shed_deadline
//             + shed_shutdown + shed_stale
// and failed + worker_lost <= admitted. There is no silent path.
//
// CLOCK: all admission, SLO, deadline, staleness, quarantine and stall
// decisions read ServiceOptions::clock (default: process-steady wall
// clock). Tests and the chaos harness install a simulated clock, making
// every one of those behaviors fully deterministic.
//
// Observability (naming per DESIGN.md §9): celia_serve_submitted_total,
// _admitted_total, _shed_total (+ per-reason _shed_queue_full/_slo/
// _deadline/_shutdown/_stale_total), _rejected_quota_total,
// _coalesced_total, _failed_total, _quarantine_rejections_total,
// _quarantine_entries_total, _quarantine_recoveries_total,
// _worker_lost_total, _worker_restarts_total, _plan_retries_total,
// _retry_vetoes_total, the celia_serve_queue_depth and
// celia_serve_quarantine_active gauges, and the
// celia_serve_latency_seconds / celia_serve_queue_wait_seconds
// histograms.

#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/capacity.hpp"
#include "core/planner_engine.hpp"
#include "core/query.hpp"
#include "serve/fair_queue.hpp"
#include "serve/health.hpp"
#include "serve/slo.hpp"
#include "util/backoff.hpp"
#include "util/resilience.hpp"

namespace celia::serve {

/// Why an kOverloaded request was turned away.
enum class ShedReason {
  kNone,
  kQueueFull,        // submission: depth at/above the shed watermark
  kLatencySlo,       // submission: rolling p99 breached the latency SLO
  kDeadlineExpired,  // dispatch: the deadline passed while queued
  kShutdown,         // the service stopped before the request was served
  kStaleCatalog,     // dispatch: catalog past the watchdog's hard cap
};

std::string_view shed_reason_name(ShedReason reason);

enum class ServeStatus {
  kPlanned,        // result holds the engine's answer (route says how)
  kOverloaded,     // typed load-shed; shed_reason says why
  kRejectedQuota,  // the tenant's token bucket had no token
  kFailed,         // the engine rejected the request; error says why
  kQuarantined,    // the query identity is negative-cached as poison
  kWorkerLost,     // the dispatching worker stalled and was detached
};

std::string_view serve_status_name(ServeStatus status);

/// One planning request as a tenant submits it.
struct PlanRequest {
  std::string tenant = "default";
  std::string catalog;  // PlannerEngine catalog name
  core::ResourceCapacity capacity;
  core::Query query;
  /// Absolute deadline in the service clock. Default: unlimited.
  util::DeadlineBudget deadline;
};

/// The typed terminal answer for one request. Never default-meaningful:
/// `result` is only valid when status == kPlanned (and even then
/// result.route reports whether the degradation ladder truncated it).
struct ServeOutcome {
  ServeStatus status = ServeStatus::kOverloaded;
  ShedReason shed_reason = ShedReason::kNone;
  core::SweepResult result;  // valid iff status == kPlanned
  bool coalesced = false;    // answered by another request's computation
  double queue_seconds = 0.0;  // admission -> dispatch
  double total_seconds = 0.0;  // admission -> resolution
  std::string error;           // kFailed / kQuarantined / kWorkerLost only
  /// Age of the serving catalog's last successful feed update at
  /// dispatch, in microseconds. 0 when no watchdog is wired.
  std::uint64_t staleness_us = 0;
  /// kNone for a healthy feed; otherwise why this answer is degraded.
  DegradeReason degrade_reason = DegradeReason::kNone;
};

/// Per-tenant admission policy.
struct TenantQuota {
  double burst = 1024.0;              // TokenBucket capacity
  double requests_per_second = 1e9;   // sustained refill (default: ample)
  double weight = 1.0;                // WeightedFairQueue share (>= 1)
};

struct ServiceOptions {
  /// Dedicated worker threads planning dequeued requests. 0 = caller-
  /// driven mode: nothing dequeues until drain_one() (deterministic
  /// tests drive admission and dispatch separately).
  std::size_t num_workers = 2;
  /// Hard bound on queued requests across all tenant lanes.
  std::size_t queue_capacity = 1024;
  /// Shed new work once queue depth reaches this (Envoy-style high
  /// watermark; must be <= queue_capacity, 0 = use queue_capacity).
  std::size_t shed_watermark = 768;
  /// p99 objective for served requests; the rolling probe breaching it
  /// sheds new work. Infinity disables SLO shedding.
  double latency_slo_seconds = std::numeric_limits<double>::infinity();
  /// Completions per SLO-probe window (tumbling).
  std::size_t slo_probe_stride = 64;
  /// Share one computation among identical in-flight requests.
  bool coalesce = true;
  /// Applied to tenants that never got set_tenant_quota().
  TenantQuota default_quota;
  /// PlanBudget cost estimates handed to the engine's degradation ladder
  /// (how long an index build / a full sweep is expected to take, in
  /// service-clock seconds). 0 keeps the legacy always-fits behavior.
  double index_build_cost_seconds = 0.0;
  double sweep_cost_seconds = 0.0;
  /// Size ceiling of the last-resort truncated sweep.
  std::uint64_t truncated_sweep_configs = 65536;
  /// Service clock in seconds. Default: process-steady wall clock.
  std::function<double()> clock;

  /// Borrowed catalog-feed watchdog (must outlive the service). When
  /// wired, dispatch stamps staleness_us / degrade_reason on every
  /// answer and sheds typed (kStaleCatalog) past the hard staleness cap.
  CatalogWatchdog* watchdog = nullptr;

  /// Poison-query quarantine. strike_threshold == 0 disables the whole
  /// mechanism (legacy behavior).
  struct QuarantinePolicy {
    /// Consecutive strikes (crash / ladder-exhausted / over the
    /// wall-clock bound) that quarantine the query identity.
    int strike_threshold = 0;
    /// Hard per-plan wall-clock bound; a slower plan is a strike even
    /// when it succeeds. Infinity = only crashes/ladder exhaustion count.
    double hard_wall_clock_seconds =
        std::numeric_limits<double>::infinity();
    /// Seeded-backoff expiry of a quarantine entry: episode n sleeps
    /// roughly base * multiplier^(n-1), capped and jittered, before the
    /// next probe is admitted.
    double base_seconds = 1.0;
    double multiplier = 2.0;
    double max_seconds = 60.0;
    double jitter_fraction = 0.25;
    std::uint64_t seed = 0;
  } quarantine;

  /// Supervisor bound: a worker stuck in ONE dispatch longer than this
  /// (service clock) is detached by check_workers(). Infinity disables.
  double worker_stall_seconds = std::numeric_limits<double>::infinity();

  /// Client-side re-attempts of a plan whose engine call threw, each
  /// gated by the retry budget below. 0 = legacy single attempt.
  int plan_retries = 0;
  /// Budget bounding those retries (deposits accrue per dispatched
  /// request, each retry withdraws one token).
  util::RetryBudget::Policy retry_budget;

  /// TEST/CHAOS SEAM: runs on the dispatching thread immediately before
  /// every engine plan attempt, outside all service locks. A throw is
  /// treated exactly like the engine throwing (typed kFailed + a
  /// quarantine strike); blocking here is how the chaos harness wedges a
  /// worker. Production callers leave this empty.
  std::function<void(const PlanRequest&)> before_plan_hook;
};

/// Monotonic counters, snapshot by value. When the service is quiesced
/// (stopped, or caller-driven with nothing queued and nothing mid-
/// dispatch): submitted == admitted + shed + rejected_quota + quarantined,
/// with shed == shed_queue_full + shed_slo + shed_deadline + shed_shutdown
/// + shed_stale and failed + worker_lost <= admitted (a kFailed or
/// kWorkerLost answer is still an answer).
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_slo = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t shed_stale = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t failed = 0;
  std::uint64_t quarantined = 0;            // submissions fast-failed
  std::uint64_t quarantine_entries = 0;     // quarantine episodes begun
  std::uint64_t quarantine_recoveries = 0;  // entries cleared by a success
  std::uint64_t worker_lost = 0;            // waiters failed by the supervisor
  std::uint64_t worker_restarts = 0;        // workers detached + respawned
  std::uint64_t plan_retries = 0;           // budget-granted plan re-attempts
  std::uint64_t retry_vetoes = 0;           // retries the budget refused
};

class PlannerService {
 public:
  /// `engine` must outlive the service; its catalogs are the serveable
  /// universe. Throws std::invalid_argument on inconsistent options
  /// (shed_watermark > queue_capacity, zero capacity, bad quota).
  explicit PlannerService(core::PlannerEngine& engine,
                          ServiceOptions options = {});

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  /// stop(kDrain): every already-admitted request still gets its answer.
  ~PlannerService();

  /// Admit or reject `request`. Always returns a future that WILL be
  /// satisfied with a typed ServeOutcome — rejections resolve it before
  /// submit() returns; admitted requests resolve it at dispatch.
  std::future<ServeOutcome> submit(PlanRequest request);

  /// Configure `tenant`'s quota and fair-share weight (idempotent;
  /// replaces the token bucket, so unused burst is reset).
  void set_tenant_quota(const std::string& tenant, const TenantQuota& quota);

  enum class StopMode {
    kDrain,  // serve everything already queued, then stop
    kAbort,  // resolve everything queued as shed (kShutdown), then stop
  };

  /// Idempotent. After stop() every new submit() is shed with kShutdown.
  ///
  /// END-TO-END SHUTDOWN CONTRACT (not just the queue's): every future
  /// submit() ever returned is satisfied by the time stop() returns.
  /// kAbort drains the queue via WeightedFairQueue::close_and_drain() and
  /// resolves every still-queued waiter with the typed kShutdown shed;
  /// kDrain serves the backlog first (inline when caller-driven). Either
  /// way worker threads — including supervisor-detached ones — are
  /// joined before returning, so destroying the service concurrently
  /// with in-flight work is safe (the TSan destructor-race test pins
  /// this). A mid-plan request resolves with its computed answer, never
  /// hangs.
  void stop(StopMode mode = StopMode::kDrain);

  /// Caller-driven dispatch (num_workers == 0 mode, also usable while
  /// workers run): dequeue and serve one entry on THIS thread. Returns
  /// false when the queue is empty.
  bool drain_one();

  /// Supervisor step: detach every worker stuck in one dispatch longer
  /// than worker_stall_seconds, fail its waiters with typed kWorkerLost,
  /// and respawn a replacement. Call periodically (the chaos harness
  /// calls it per tick; a production embedding would call it from a
  /// timer). Returns the number of workers restarted. No-op while the
  /// bound is infinite, no worker is stalled, or the service stopped.
  std::size_t check_workers();

  /// Workers currently inside a dispatch (stall-injection tests use this
  /// to wait until a worker is provably wedged before advancing time).
  std::size_t busy_workers() const;

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t num_workers() const;
  ServeStats stats() const;
  /// Last sealed SLO-probe window (p50/p99 of recently served requests).
  obs::LatencyQuantiles latency_window() const { return probe_.window(); }

 private:
  /// Coalescing identity: requests with equal keys are answered by one
  /// computation. Deliberately EXCLUDES the deadline (a batch plans
  /// under its tightest member's deadline) and the tenant (both tenants
  /// paid quota; the answer is tenant-independent).
  struct CoalesceKey {
    std::uint64_t catalog_fingerprint = 0;
    std::uint64_t capacity_structure = 0;
    std::vector<double> per_vcpu_rates;
    // Full demand vector (one element for scalar queries): two requests
    // with the same instruction count but different IO/network/memory
    // mixes must NOT be answered by one computation.
    std::vector<double> demand;
    double deadline_seconds = 0.0;
    double budget_dollars = 0.0;
    double confidence_z = 0.0;
    double rate_sigma = 0.0;
    std::uint64_t sample_stride = 0;
    bool collect_pareto = true;

    bool operator==(const CoalesceKey& other) const = default;
  };

  struct CoalesceKeyHash {
    std::size_t operator()(const CoalesceKey& key) const noexcept;
  };

  struct Waiter {
    std::promise<ServeOutcome> promise;
    util::DeadlineBudget deadline;
    double submitted_at = 0.0;
    bool coalesced = false;
  };

  /// One queue entry: the leader's request plus every coalesced waiter.
  /// Waiters are guarded by the service mutex; an entry stays joinable
  /// (present in inflight_) from admission until its terminal
  /// resolution, so late arrivals share even a mid-flight computation.
  struct InFlight {
    // core::Query is not default-constructible, so neither is this.
    explicit InFlight(PlanRequest r) : request(std::move(r)) {}

    PlanRequest request;
    CoalesceKey key;
    bool coalescible = false;
    bool keyed = false;  // key computed (coalescing and/or quarantine on)
    std::vector<Waiter> waiters;
  };

  /// Negative-cache entry of one poisonous query identity.
  struct PoisonEntry {
    int strikes = 0;             // consecutive strikes while not quarantined
    int episodes = 0;            // quarantine episodes so far (backoff rung)
    double until = 0.0;          // quarantine expiry (service clock)
    bool quarantined = false;
  };

  /// One worker thread's supervision slot. `generation` fences detached
  /// threads: a worker whose slot moved on finds the mismatch and exits
  /// instead of touching service state meant for its replacement.
  struct WorkerSlot {
    std::uint64_t generation = 0;
    bool busy = false;
    double busy_since = 0.0;               // dispatch-start heartbeat
    std::shared_ptr<InFlight> current;     // entry being dispatched
    std::thread thread;
  };

  double now() const { return options_.clock(); }
  bool quarantine_enabled() const {
    return options_.quarantine.strike_threshold > 0;
  }
  util::TokenBucket& tenant_bucket_locked(const std::string& tenant);
  void dispatch(const std::shared_ptr<InFlight>& entry);
  void worker_loop(WorkerSlot* slot, std::uint64_t generation);
  /// Erase `entry` from inflight_ iff it is still the entry registered
  /// under its key (the supervisor may have replaced it). mutex_ held.
  void unregister_inflight_locked(const std::shared_ptr<InFlight>& entry);
  /// Record one dispatch outcome against the poison cache. mutex_ held.
  void note_dispatch_outcome_locked(const std::shared_ptr<InFlight>& entry,
                                    bool strike, double end);
  static void resolve(Waiter& waiter, ServeOutcome outcome, double total);

  core::PlannerEngine& engine_;
  ServiceOptions options_;

  mutable std::mutex mutex_;  // tenants, inflight_, poison_, stats_,
                              // stopped_, worker slots
  std::unordered_map<std::string, std::unique_ptr<util::TokenBucket>>
      buckets_;
  std::unordered_map<std::string, TenantQuota> quotas_;
  std::unordered_map<CoalesceKey, std::shared_ptr<InFlight>, CoalesceKeyHash>
      inflight_;
  std::unordered_map<CoalesceKey, PoisonEntry, CoalesceKeyHash> poison_;
  std::size_t quarantine_active_ = 0;  // poison_ entries with quarantined set
  ServeStats stats_;
  bool stopped_ = false;

  WeightedFairQueue<std::shared_ptr<InFlight>> queue_;
  LatencySloProbe probe_;
  util::RetryBudget retry_budget_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> retired_;  // detached workers, joined at stop()
};

}  // namespace celia::serve
