#pragma once
// Human-readable formatting of the quantities this project reports:
// instruction counts, instruction rates, durations, and money.

#include <cstdint>
#include <string>

namespace celia::util {

/// 1234567890123 -> "1.23 Tinstr"; engineering-prefixed instruction count.
std::string format_instructions(double instructions);

/// 2.76e9 -> "2.76 Ginstr/s".
std::string format_rate(double instructions_per_second);

/// Seconds -> "1h 23m 45s" (or "12.3s" below a minute).
std::string format_duration(double seconds);

/// Dollars with two decimals and $ sign: "$126.40".
std::string format_money(double dollars);

/// Fixed-decimal formatting: format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Value with engineering SI prefix: 2.5e6 -> "2.50M".
std::string format_si(double value, int decimals = 2);

/// Percentage: 0.135 -> "13.5%".
std::string format_percent(double fraction, int decimals = 1);

/// Thousands separators: 10077695 -> "10,077,695".
std::string format_with_commas(std::uint64_t value);

}  // namespace celia::util
