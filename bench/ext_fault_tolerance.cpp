// Extension E5: fault-injection stress test of the fail-never optimum.
//
// Algorithm 1's min-cost pick sits at the deadline edge by construction:
// the cheapest feasible configuration is the slowest one that still fits.
// Under a nonzero per-node MTBF that edge is exactly where one crash —
// rollback to the last checkpoint plus a replacement boot — pushes the run
// over. This bench sweeps fault rates x provider seeds: for each rate it
// plans twice (fail-never sweep vs the failure-aware reliable_min_cost),
// replays BOTH picks through the fault-injected executor, and reports the
// deadline-miss rate and the realized-cost regret of having planned as if
// nodes never die. Every number is a pure function of the printed seeds.

#include <iostream>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "cloud/cluster_exec.hpp"
#include "cloud/provider.hpp"
#include "core/reliability.hpp"
#include "hw/ipc_model.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace celia;

constexpr hw::WorkloadClass kWc = hw::WorkloadClass::kNBody;
constexpr double kDeadline = 7200.0;  // 2 h
/// Both plans target 93% of the deadline: the same engineering margin for
/// what neither planner prices — a BSP step paces at the SLOWEST
/// instance's lognormal speed draw, plus checkpoint writes, sync rounds
/// and boot delay. The shared residual shows up in the MTBF=never row,
/// identically for both plans; the deltas above it are crash-driven.
constexpr double kPlanDeadline = 0.93 * kDeadline;
constexpr std::uint64_t kSteps = 100;
constexpr std::uint64_t kSeedBase = 1000;
constexpr int kSeeds = 40;

apps::Workload make_workload(double demand) {
  apps::Workload workload;
  workload.app_name = "ext_fault_tolerance";
  workload.workload_class = kWc;
  workload.pattern = apps::ParallelPattern::kBulkSynchronous;
  workload.steps = kSteps;
  workload.instructions_per_step = demand / kSteps;
  workload.sync_bytes_per_step = 1e6;
  workload.total_instructions = demand;
  return workload;
}

core::ResourceCapacity nominal_capacity() {
  std::vector<double> per_vcpu;
  per_vcpu.reserve(cloud::catalog_size());
  for (const auto& type : cloud::ec2_catalog())
    per_vcpu.push_back(hw::vcpu_rate(type.microarch, kWc));
  return core::ResourceCapacity(std::move(per_vcpu),
                               cloud::Catalog::ec2_table3());
}

struct SimOutcome {
  int misses = 0;
  double mean_seconds = 0.0;
  double mean_cost = 0.0;
  std::uint64_t failures = 0;
};

SimOutcome simulate(const core::ConfigurationSpace& space,
                    std::uint64_t config_index, const apps::Workload& workload,
                    const cloud::FaultModel& model,
                    const cloud::FaultExecutionOptions& options) {
  const core::Configuration config = space.decode(config_index);
  const cloud::ClusterExecutor executor;
  SimOutcome outcome;
  for (int s = 0; s < kSeeds; ++s) {
    cloud::CloudProvider provider(kSeedBase + s);
    const auto fleet = provider.provision_with_faults(config, model);
    const auto report =
        executor.execute_with_faults(workload, provider, fleet, config,
                                     options);
    if (!report.completed || report.seconds > kDeadline) ++outcome.misses;
    outcome.mean_seconds += report.seconds / kSeeds;
    outcome.mean_cost += report.cost / kSeeds;
    outcome.failures += report.faults.node_failures;
  }
  return outcome;
}

}  // namespace

int main() {
  const double demand = 2e14;
  const auto capacity = nominal_capacity();
  const core::ConfigurationSpace space(std::vector<int>(9, 3));
  const apps::Workload workload = make_workload(demand);

  std::cout << "=== Extension E5: failure-aware planning vs the fail-never "
               "optimum ===\n"
            << "bulk-synchronous run, demand "
            << util::format_instructions(demand) << ", deadline "
            << util::format_duration(kDeadline) << ", space "
            << space.size() << " configurations\n"
            << "fault channel: exponential crashes + 15 s mean boot delay; "
            << kSeeds << " seeds from " << kSeedBase << " per rate\n\n";

  static benchio::CsvSink sink("ext_fault_tolerance");
  sink.header({"mtbf_hours", "plan", "config", "planned_cost",
               "planned_hours", "miss_rate", "mean_cost", "mean_hours",
               "node_failures"});

  util::TablePrinter table({"MTBF", "plan", "config", "planned $",
                            "planned T", "miss rate", "realized $",
                            "realized T", "crashes"});
  for (std::size_t c : {3u, 4u, 5u, 6u, 7u, 8u}) table.set_right_aligned(c);

  bool aware_always_safer = true;
  std::string regret_lines;
  for (const double mtbf : {0.0, 4e5, 2e5, 1e5}) {
    core::ReliabilitySpec spec;
    spec.mtbf_seconds = mtbf;
    spec.recovery_seconds = 60.0;
    spec.checkpoint_interval_seconds = 600.0;
    spec.checkpoint_write_seconds = 10.0;

    const auto fail_never = core::reliable_min_cost(
        space, capacity, demand, kPlanDeadline, core::ReliabilitySpec{});
    const auto aware =
        core::reliable_min_cost(space, capacity, demand, kPlanDeadline, spec);
    if (!fail_never || !aware) {
      std::cout << "MTBF " << mtbf << ": no feasible configuration\n";
      continue;
    }

    cloud::FaultModel model;
    model.mtbf_seconds = mtbf;
    model.boot_delay_seconds = 15.0;
    cloud::FaultExecutionOptions options;
    options.faults = model;
    options.checkpoint.interval_seconds = spec.checkpoint_interval_seconds;
    options.checkpoint.write_cost_seconds = spec.checkpoint_write_seconds;

    const std::string mtbf_label =
        mtbf == 0.0 ? "never" : util::format_duration(mtbf);
    const auto report_plan = [&](const char* name,
                                 const core::ReliablePoint& pick) {
      const auto outcome =
          simulate(space, pick.config_index, workload, model, options);
      const double miss_rate = static_cast<double>(outcome.misses) / kSeeds;
      table.add_row({mtbf_label, name,
                     core::to_string(space.decode(pick.config_index)),
                     util::format_money(pick.base_cost),
                     util::format_duration(pick.expected_seconds),
                     util::format_percent(miss_rate),
                     util::format_money(outcome.mean_cost),
                     util::format_duration(outcome.mean_seconds),
                     std::to_string(outcome.failures)});
      sink.row({util::format_fixed(mtbf / 3600.0, 2), name,
                core::to_string(space.decode(pick.config_index)),
                util::format_fixed(pick.base_cost, 4),
                util::format_fixed(pick.expected_seconds / 3600.0, 4),
                util::format_fixed(miss_rate, 4),
                util::format_fixed(outcome.mean_cost, 4),
                util::format_fixed(outcome.mean_seconds / 3600.0, 4),
                std::to_string(outcome.failures)});
      return outcome;
    };
    const auto never_run = report_plan("fail-never", *fail_never);
    const auto aware_run = report_plan("failure-aware", *aware);
    if (mtbf > 0.0) {
      if (aware_run.misses >= never_run.misses) aware_always_safer = false;
      regret_lines +=
          "  MTBF " + mtbf_label + ": miss rate " +
          util::format_percent(static_cast<double>(never_run.misses) /
                               kSeeds) +
          " -> " +
          util::format_percent(static_cast<double>(aware_run.misses) /
                               kSeeds) +
          ", fail-never realized-cost regret " +
          util::format_money(never_run.mean_cost - aware_run.mean_cost) +
          " (" +
          util::format_percent(never_run.mean_cost / aware_run.mean_cost -
                               1.0) +
          ")\n";
    }
  }

  table.print(std::cout);
  std::cout << "\nThe fail-never optimum prices zero crashes, so its pick "
               "hugs the deadline;\nthe failure-aware planner pays for "
               "slack up front and converts deadline\nmisses into a bounded "
               "cost premium. Regret of planning fail-never:\n"
            << regret_lines << "\n"
            << "failure-aware missed strictly less often at every nonzero "
               "rate: "
            << (aware_always_safer ? "yes" : "NO") << "\n";
  if (sink.enabled()) std::cout << "csv: " << sink.path() << "\n";
  return aware_always_safer ? 0 : 1;
}
