// Chaos soak of the self-healing serving stack (serve/soak.hpp): 5000
// simulated ticks of catalog price churn with feed faults and a
// brownout, a poison query, sustained 2x overload, and the threaded
// worker-stall phase — run twice per seed. The soak must be LIVE (every
// future resolves), STALENESS-BOUNDED (no answer older than the hard
// cap), CONVERGENT (the quarantine clears after the poison heals), and
// BIT-IDENTICAL across the two runs (the digest folds every per-tick
// counter snapshot). CI rotates seeds via CELIA_CHAOS_SEED, matching the
// ChaosSchedule suite's idiom.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "serve/soak.hpp"

namespace {

using namespace celia::serve;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("CELIA_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 20260805;
}

TEST(ServeChaosSoak, FiveThousandTicksSelfHealAndReplayBitIdentically) {
  ChaosSoakOptions options;
  options.seed = chaos_seed();
  SCOPED_TRACE("CELIA_CHAOS_SEED=" + std::to_string(options.seed));
  ASSERT_GE(options.ticks, 5000u);

  const ChaosSoakReport first = run_chaos_soak(options);
  for (const std::string& violation : first.violations)
    ADD_FAILURE() << "soak violation (run 1): " << violation;

  // The individual contracts, asserted explicitly for a readable diff.
  EXPECT_EQ(first.unresolved, 0u);
  EXPECT_LE(first.max_served_staleness_us,
            static_cast<std::uint64_t>(options.max_staleness_seconds * 1e6));
  EXPECT_GT(first.serve.shed_stale, 0u);          // brownout bit
  EXPECT_GT(first.serve.quarantine_entries, 0u);  // poison quarantined
  EXPECT_GT(first.serve.quarantine_recoveries, 0u);  // ...and converged
  EXPECT_GT(first.serve.shed_queue_full, 0u);     // overload bit
  EXPECT_GT(first.degraded_answers, 0u);  // soft-stale answers stamped
  EXPECT_EQ(first.stall_restarts, 1u);
  EXPECT_TRUE(first.stall_recovered);
  EXPECT_EQ(first.serve.admitted + first.serve.shed +
                first.serve.rejected_quota + first.serve.quarantined,
            first.serve.submitted);
  EXPECT_EQ(first.watchdog.updates_applied + first.watchdog.update_failures +
                first.watchdog.replaces_quarantined,
            first.watchdog.updates_attempted);

  // Bit-identical replay: same options, same digest — the entire fault
  // timeline and every counter transition replays exactly.
  const ChaosSoakReport second = run_chaos_soak(options);
  for (const std::string& violation : second.violations)
    ADD_FAILURE() << "soak violation (run 2): " << violation;
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.serve.submitted, second.serve.submitted);
  EXPECT_EQ(first.serve.shed, second.serve.shed);
  EXPECT_EQ(first.serve.quarantine_entries, second.serve.quarantine_entries);
  EXPECT_EQ(first.outcomes_planned, second.outcomes_planned);
  EXPECT_EQ(first.max_served_staleness_us, second.max_served_staleness_us);
}

TEST(ServeChaosSoak, DifferentSeedsProduceDifferentTimelines) {
  // A cheap sanity check that the seed actually reaches the draws: a
  // short soak (no stall phase, fewer ticks) under two seeds must not
  // collide on the digest.
  ChaosSoakOptions options;
  options.ticks = 1200;
  options.stall_phase = false;
  options.seed = chaos_seed();
  const ChaosSoakReport a = run_chaos_soak(options);
  options.seed = chaos_seed() + 1;
  const ChaosSoakReport b = run_chaos_soak(options);
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
