#include "apps/demand.hpp"

#include <stdexcept>

namespace celia::apps {

namespace {

std::uint64_t fnv1a(const std::vector<std::string>& names) {
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  for (const std::string& name : names) {
    for (const char c : name) mix(static_cast<unsigned char>(c));
    mix(0x1f);  // unit separator: ("ab","c") != ("a","bc")
  }
  return hash;
}

}  // namespace

const DemandDimensions& DemandDimensions::scalar() {
  static const DemandDimensions instance(
      std::vector<std::string>{std::string(kDimInstructions)});
  return instance;
}

const DemandDimensions& DemandDimensions::oltp() {
  static const DemandDimensions instance(std::vector<std::string>{
      std::string(kDimInstructions), std::string(kDimIoOps),
      std::string(kDimNetBytes), std::string(kDimMemBytes)});
  return instance;
}

DemandDimensions::DemandDimensions(std::vector<std::string> names)
    : names_(std::move(names)) {
  if (names_.empty())
    throw std::invalid_argument("DemandDimensions: need at least one dimension");
  if (names_.size() > 16)
    throw std::invalid_argument("DemandDimensions: more than 16 dimensions");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].empty())
      throw std::invalid_argument("DemandDimensions: empty dimension name");
    for (std::size_t j = 0; j < i; ++j)
      if (names_[i] == names_[j])
        throw std::invalid_argument("DemandDimensions: duplicate dimension '" +
                                    names_[i] + "'");
  }
  fingerprint_ = fnv1a(names_);
}

std::optional<std::size_t> DemandDimensions::index_of(
    std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  return std::nullopt;
}

std::string DemandDimensions::describe() const {
  std::string out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i];
  }
  return out;
}

}  // namespace celia::apps
