#pragma once
// Cross-region planning (extension E4).
//
// For each modeled region: stage the input data in (one-time egress fee +
// transfer time out of the remaining deadline), then run CELIA's min-cost
// selection against the region's OWN catalog prices — a full sweep at the
// regional tariff, not a post-hoc multiplier on the home-region optimum.
// Capacity is identical across regions (same instance types, so the
// region catalogs share the home catalog's structure fingerprint); prices
// may differ arbitrarily per type, so the optimal configuration itself can
// shift between regions and the planner finds that shift.

#include <optional>
#include <span>
#include <vector>

#include "cloud/region.hpp"
#include "core/celia.hpp"

namespace celia::core {

struct RegionPlan {
  std::size_t region_index = 0;
  bool feasible = false;
  std::uint64_t config_index = 0;
  double compute_seconds = 0.0;
  double staging_seconds = 0.0;   // data transfer before compute starts
  double compute_cost = 0.0;      // at the region's prices
  double transfer_cost = 0.0;     // egress fee for the input data
  double total_cost() const { return compute_cost + transfer_cost; }
  double total_seconds() const { return compute_seconds + staging_seconds; }
};

/// Evaluate every region for running `params` within `deadline_hours`,
/// where the job's input data (`input_gb` gigabytes) currently lives in
/// cloud::kHomeRegion. Returns one plan per region, in catalog order.
std::vector<RegionPlan> plan_across_regions(const Celia& celia,
                                            const apps::AppParams& params,
                                            double deadline_hours,
                                            double input_gb);

/// As above over an explicit region list (index 0 = where the data
/// lives). Every region's catalog must be structurally compatible with
/// the model's capacity (same types and limits; prices free) — the sweep
/// throws std::invalid_argument otherwise.
std::vector<RegionPlan> plan_across_regions(const Celia& celia,
                                            const apps::AppParams& params,
                                            double deadline_hours,
                                            double input_gb,
                                            std::span<const cloud::Region> regions);

/// The cheapest feasible plan across regions; nullopt if none qualifies.
std::optional<RegionPlan> best_region_plan(const Celia& celia,
                                           const apps::AppParams& params,
                                           double deadline_hours,
                                           double input_gb);

}  // namespace celia::core
