#include "cloud/pricing.hpp"

#include <cmath>
#include <stdexcept>

namespace celia::cloud {

std::string_view billing_policy_name(BillingPolicy policy) {
  switch (policy) {
    case BillingPolicy::kContinuous:
      return "continuous";
    case BillingPolicy::kPerSecond:
      return "per-second";
    case BillingPolicy::kPerHour:
      return "per-hour";
  }
  return "?";
}

double instance_cost(const InstanceType& type, double seconds,
                     BillingPolicy policy) {
  if (seconds < 0) throw std::invalid_argument("instance_cost: negative time");
  double billed_hours = seconds / 3600.0;
  switch (policy) {
    case BillingPolicy::kContinuous:
      break;
    case BillingPolicy::kPerSecond:
      billed_hours = std::ceil(seconds) / 3600.0;
      break;
    case BillingPolicy::kPerHour:
      billed_hours = std::ceil(seconds / 3600.0);
      break;
  }
  return billed_hours * type.cost_per_hour;
}

double configuration_hourly_cost(const std::vector<int>& node_counts,
                                 const Catalog& catalog) {
  if (node_counts.size() != catalog.size())
    throw std::invalid_argument(
        "configuration_hourly_cost: counts must match catalog size");
  double hourly = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (node_counts[i] < 0)
      throw std::invalid_argument(
          "configuration_hourly_cost: negative node count");
    hourly += node_counts[i] * catalog.type(i).cost_per_hour;
  }
  return hourly;
}

double configuration_hourly_cost(const std::vector<int>& node_counts) {
  return configuration_hourly_cost(node_counts, Catalog::ec2_table3());
}

double configuration_cost(const std::vector<int>& node_counts, double seconds,
                          const Catalog& catalog, BillingPolicy policy) {
  if (node_counts.size() != catalog.size())
    throw std::invalid_argument(
        "configuration_cost: counts must match catalog size");
  double total = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    total += node_counts[i] * instance_cost(catalog.type(i), seconds, policy);
  }
  return total;
}

double configuration_cost(const std::vector<int>& node_counts, double seconds,
                          BillingPolicy policy) {
  return configuration_cost(node_counts, seconds, Catalog::ec2_table3(),
                            policy);
}

}  // namespace celia::cloud
