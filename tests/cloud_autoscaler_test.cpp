// Tests for the reactive autoscaling baseline (cloud/autoscaler.hpp).

#include <gtest/gtest.h>

#include "cloud/autoscaler.hpp"
#include "hw/ipc_model.hpp"

namespace {

using namespace celia::cloud;
using celia::hw::WorkloadClass;

constexpr WorkloadClass kWc = WorkloadClass::kNBody;

double one_instance_rate(std::size_t type_index) {
  const auto& type = ec2_catalog()[type_index];
  return celia::hw::vcpu_rate(type.microarch, kWc) * type.vcpus;
}

TEST(Autoscaler, TrivialWorkFinishesOnOneInstance) {
  CloudProvider provider(1);
  AutoscalerPolicy policy;
  policy.type_index = 0;
  const double work = one_instance_rate(0) * 100.0;  // ~100 s of work
  const auto report = run_autoscaled(provider, kWc, work, 24 * 3600.0,
                                     policy);
  EXPECT_TRUE(report.met_deadline);
  EXPECT_EQ(report.peak_instances, 1);
  EXPECT_EQ(report.scale_ups, 0);
  EXPECT_GT(report.cost, 0.0);
}

TEST(Autoscaler, ScalesUpWhenBehindSchedule) {
  CloudProvider provider(2);
  AutoscalerPolicy policy;
  policy.type_index = 0;
  policy.max_instances = 10;
  // ~20 single-instance-hours of work against a 4-hour deadline.
  const double work = one_instance_rate(0) * 20.0 * 3600.0;
  const auto report =
      run_autoscaled(provider, kWc, work, 4 * 3600.0, policy);
  EXPECT_TRUE(report.met_deadline);
  EXPECT_GT(report.scale_ups, 3);
  EXPECT_GT(report.peak_instances, 4);
}

TEST(Autoscaler, ScalesDownWhenComfortablyAhead) {
  CloudProvider provider(3);
  AutoscalerPolicy policy;
  policy.type_index = 0;
  policy.max_instances = 10;
  policy.relax = 0.85;  // eager to shed capacity once ahead
  // Behind at first (forces growth); once the second instance is online
  // the projected finish drops well under relax x deadline and the
  // controller sheds it again.
  const double work = one_instance_rate(0) * 10.0 * 3600.0;
  const auto report =
      run_autoscaled(provider, kWc, work, 8 * 3600.0, policy);
  EXPECT_TRUE(report.met_deadline);
  EXPECT_GT(report.scale_downs, 0);
}

TEST(Autoscaler, CapsAtMaxInstances) {
  CloudProvider provider(4);
  AutoscalerPolicy policy;
  policy.type_index = 0;
  policy.max_instances = 3;
  const double work = one_instance_rate(0) * 50.0 * 3600.0;
  const auto report =
      run_autoscaled(provider, kWc, work, 2 * 3600.0, policy);
  EXPECT_LE(report.peak_instances, 3);
  EXPECT_FALSE(report.met_deadline);  // impossible under the cap
}

TEST(Autoscaler, ProvisionDelayCostsMoney) {
  // Same work, same policy, but a long boot delay must cost strictly more
  // (instances bill while booting).
  const double work = one_instance_rate(0) * 10.0 * 3600.0;
  AutoscalerPolicy fast;
  fast.provision_delay_seconds = 0.0;
  AutoscalerPolicy slow = fast;
  slow.provision_delay_seconds = 900.0;
  CloudProvider pa(5), pb(5);
  const auto a = run_autoscaled(pa, kWc, work, 4 * 3600.0, fast);
  const auto b = run_autoscaled(pb, kWc, work, 4 * 3600.0, slow);
  EXPECT_GT(b.cost, a.cost);
}

TEST(Autoscaler, FleetTraceIsRecorded) {
  CloudProvider provider(6);
  AutoscalerPolicy policy;
  const double work = one_instance_rate(0) * 5.0 * 3600.0;
  const auto report =
      run_autoscaled(provider, kWc, work, 3 * 3600.0, policy);
  EXPECT_FALSE(report.fleet_trace.empty());
  for (const int fleet : report.fleet_trace) EXPECT_GE(fleet, 1);
}

TEST(Autoscaler, ValidatesArguments) {
  CloudProvider provider(7);
  EXPECT_THROW(run_autoscaled(provider, kWc, 0.0, 3600.0),
               std::invalid_argument);
  EXPECT_THROW(run_autoscaled(provider, kWc, 1e12, -1.0),
               std::invalid_argument);
  AutoscalerPolicy bad;
  bad.interval_seconds = 0;
  EXPECT_THROW(run_autoscaled(provider, kWc, 1e12, 3600.0, bad),
               std::invalid_argument);
  AutoscalerPolicy bad_type;
  bad_type.type_index = 99;
  EXPECT_THROW(run_autoscaled(provider, kWc, 1e12, 3600.0, bad_type),
               std::out_of_range);
}

TEST(Autoscaler, DeterministicPerSeed) {
  const double work = one_instance_rate(0) * 8.0 * 3600.0;
  CloudProvider pa(8), pb(8);
  const auto a = run_autoscaled(pa, kWc, work, 4 * 3600.0);
  const auto b = run_autoscaled(pb, kWc, work, 4 * 3600.0);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.fleet_trace, b.fleet_trace);
}

}  // namespace
