
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_galaxy_parallel_test.cpp" "tests/CMakeFiles/celia_tests.dir/apps_galaxy_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/apps_galaxy_parallel_test.cpp.o.d"
  "/root/repo/tests/apps_galaxy_test.cpp" "tests/CMakeFiles/celia_tests.dir/apps_galaxy_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/apps_galaxy_test.cpp.o.d"
  "/root/repo/tests/apps_registry_test.cpp" "tests/CMakeFiles/celia_tests.dir/apps_registry_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/apps_registry_test.cpp.o.d"
  "/root/repo/tests/apps_sand_test.cpp" "tests/CMakeFiles/celia_tests.dir/apps_sand_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/apps_sand_test.cpp.o.d"
  "/root/repo/tests/apps_x264_test.cpp" "tests/CMakeFiles/celia_tests.dir/apps_x264_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/apps_x264_test.cpp.o.d"
  "/root/repo/tests/cloud_autoscaler_test.cpp" "tests/CMakeFiles/celia_tests.dir/cloud_autoscaler_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/cloud_autoscaler_test.cpp.o.d"
  "/root/repo/tests/cloud_catalog_test.cpp" "tests/CMakeFiles/celia_tests.dir/cloud_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/cloud_catalog_test.cpp.o.d"
  "/root/repo/tests/cloud_cluster_exec_test.cpp" "tests/CMakeFiles/celia_tests.dir/cloud_cluster_exec_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/cloud_cluster_exec_test.cpp.o.d"
  "/root/repo/tests/cloud_gantt_test.cpp" "tests/CMakeFiles/celia_tests.dir/cloud_gantt_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/cloud_gantt_test.cpp.o.d"
  "/root/repo/tests/cloud_provider_test.cpp" "tests/CMakeFiles/celia_tests.dir/cloud_provider_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/cloud_provider_test.cpp.o.d"
  "/root/repo/tests/cloud_replication_test.cpp" "tests/CMakeFiles/celia_tests.dir/cloud_replication_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/cloud_replication_test.cpp.o.d"
  "/root/repo/tests/cloud_spot_test.cpp" "tests/CMakeFiles/celia_tests.dir/cloud_spot_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/cloud_spot_test.cpp.o.d"
  "/root/repo/tests/core_analysis_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_analysis_test.cpp.o.d"
  "/root/repo/tests/core_baselines_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_baselines_test.cpp.o.d"
  "/root/repo/tests/core_capacity_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_capacity_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_capacity_test.cpp.o.d"
  "/root/repo/tests/core_celia_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_celia_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_celia_test.cpp.o.d"
  "/root/repo/tests/core_configuration_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_configuration_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_configuration_test.cpp.o.d"
  "/root/repo/tests/core_enumerate_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_enumerate_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_enumerate_test.cpp.o.d"
  "/root/repo/tests/core_pareto_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_pareto_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_pareto_test.cpp.o.d"
  "/root/repo/tests/core_recommend_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_recommend_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_recommend_test.cpp.o.d"
  "/root/repo/tests/core_region_planner_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_region_planner_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_region_planner_test.cpp.o.d"
  "/root/repo/tests/core_risk_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_risk_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_risk_test.cpp.o.d"
  "/root/repo/tests/core_robust_selection_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_robust_selection_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_robust_selection_test.cpp.o.d"
  "/root/repo/tests/core_serialize_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_serialize_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_serialize_test.cpp.o.d"
  "/root/repo/tests/core_time_cost_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_time_cost_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_time_cost_test.cpp.o.d"
  "/root/repo/tests/core_validation_test.cpp" "tests/CMakeFiles/celia_tests.dir/core_validation_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/core_validation_test.cpp.o.d"
  "/root/repo/tests/fit_demand_fit_test.cpp" "tests/CMakeFiles/celia_tests.dir/fit_demand_fit_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/fit_demand_fit_test.cpp.o.d"
  "/root/repo/tests/fit_least_squares_test.cpp" "tests/CMakeFiles/celia_tests.dir/fit_least_squares_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/fit_least_squares_test.cpp.o.d"
  "/root/repo/tests/fit_model_select_test.cpp" "tests/CMakeFiles/celia_tests.dir/fit_model_select_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/fit_model_select_test.cpp.o.d"
  "/root/repo/tests/hw_test.cpp" "tests/CMakeFiles/celia_tests.dir/hw_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/hw_test.cpp.o.d"
  "/root/repo/tests/integration_observations_test.cpp" "tests/CMakeFiles/celia_tests.dir/integration_observations_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/integration_observations_test.cpp.o.d"
  "/root/repo/tests/parallel_for_test.cpp" "tests/CMakeFiles/celia_tests.dir/parallel_for_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/parallel_for_test.cpp.o.d"
  "/root/repo/tests/parallel_queue_test.cpp" "tests/CMakeFiles/celia_tests.dir/parallel_queue_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/parallel_queue_test.cpp.o.d"
  "/root/repo/tests/parallel_thread_pool_test.cpp" "tests/CMakeFiles/celia_tests.dir/parallel_thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/parallel_thread_pool_test.cpp.o.d"
  "/root/repo/tests/property_apps_test.cpp" "tests/CMakeFiles/celia_tests.dir/property_apps_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/property_apps_test.cpp.o.d"
  "/root/repo/tests/property_cloud_test.cpp" "tests/CMakeFiles/celia_tests.dir/property_cloud_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/property_cloud_test.cpp.o.d"
  "/root/repo/tests/property_cluster_exec_test.cpp" "tests/CMakeFiles/celia_tests.dir/property_cluster_exec_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/property_cluster_exec_test.cpp.o.d"
  "/root/repo/tests/property_core_test.cpp" "tests/CMakeFiles/celia_tests.dir/property_core_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/property_core_test.cpp.o.d"
  "/root/repo/tests/sim_simulator_test.cpp" "tests/CMakeFiles/celia_tests.dir/sim_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/sim_simulator_test.cpp.o.d"
  "/root/repo/tests/util_cli_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_cli_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_cli_test.cpp.o.d"
  "/root/repo/tests/util_csv_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_csv_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_csv_test.cpp.o.d"
  "/root/repo/tests/util_format_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_format_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_format_test.cpp.o.d"
  "/root/repo/tests/util_histogram_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_histogram_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_histogram_test.cpp.o.d"
  "/root/repo/tests/util_logging_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_logging_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_logging_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/celia_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/celia_tests.dir/util_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/celia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/celia_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/celia_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/fit/CMakeFiles/celia_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/celia_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/celia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/celia_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/celia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
