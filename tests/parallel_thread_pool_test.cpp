// Tests for the worker pool (parallel/thread_pool.hpp).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace {

using celia::parallel::ThreadPool;

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 7; });
  EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPool, ForwardsArguments) {
  ThreadPool pool(2);
  auto future = pool.submit([](int a, int b) { return a * b; }, 6, 7);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultSizeUsesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ExplicitThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, TasksActuallyRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++in_flight;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --in_flight;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(ThreadPool, WaitIdleBlocksUntilQueueDrains) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&done] { ++done; });
  }  // destructor joins
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, DefaultPoolIsSingleton) {
  EXPECT_EQ(&celia::parallel::default_pool(),
            &celia::parallel::default_pool());
}

TEST(ThreadPool, MoveOnlyResultType) {
  ThreadPool pool(1);
  auto future =
      pool.submit([] { return std::make_unique<int>(99); });
  EXPECT_EQ(*future.get(), 99);
}

}  // namespace
