#include "apps/galaxy/nbody.hpp"

#include <cmath>
#include <numbers>

#include "parallel/parallel_for.hpp"

namespace celia::apps::galaxy {

void Bodies::resize(std::size_t n) {
  x.resize(n);
  y.resize(n);
  z.resize(n);
  vx.resize(n);
  vy.resize(n);
  vz.resize(n);
  ax.assign(n, 0.0);
  ay.assign(n, 0.0);
  az.assign(n, 0.0);
  mass.resize(n);
}

Bodies make_plummer(std::size_t n, util::Xoshiro256& rng) {
  Bodies bodies;
  bodies.resize(n);
  const double total_mass = 1.0;
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the Plummer cumulative mass profile.
    const double u = rng.uniform(1e-6, 1.0 - 1e-6);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    // Isotropic direction.
    const double cos_theta = rng.uniform(-1.0, 1.0);
    const double sin_theta = std::sqrt(1.0 - cos_theta * cos_theta);
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    bodies.x[i] = r * sin_theta * std::cos(phi);
    bodies.y[i] = r * sin_theta * std::sin(phi);
    bodies.z[i] = r * cos_theta;
    // Velocity magnitude by von Neumann rejection from the Plummer
    // distribution function g(q) = q^2 (1 - q^2)^3.5.
    double q, g;
    do {
      q = rng.uniform(0.0, 1.0);
      g = rng.uniform(0.0, 0.1);
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double escape = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    const double v = q * escape;
    const double vcos = rng.uniform(-1.0, 1.0);
    const double vsin = std::sqrt(1.0 - vcos * vcos);
    const double vphi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    bodies.vx[i] = v * vsin * std::cos(vphi);
    bodies.vy[i] = v * vsin * std::sin(vphi);
    bodies.vz[i] = v * vcos;
    bodies.mass[i] = m;
  }
  return bodies;
}

namespace {

/// Compute the acceleration of body i from all other bodies and record the
/// per-row operation ledger: 3 subs + 3 r2 adds + 3 accumulates = 9 FP
/// adds; 3 + 2 + 1 + 3 = 9 FP muls; one sqrt, one divide; 4 loads
/// (position + mass of j); one loop branch; calibrated code overhead.
void force_row(Bodies& bodies, std::size_t i, hw::PerfCounter& counter) {
  const std::size_t n = bodies.size();
  constexpr double eps2 = kSoftening * kSoftening;
  double axi = 0.0, ayi = 0.0, azi = 0.0;
  const double xi = bodies.x[i], yi = bodies.y[i], zi = bodies.z[i];
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    const double dx = bodies.x[j] - xi;
    const double dy = bodies.y[j] - yi;
    const double dz = bodies.z[j] - zi;
    const double r2 = dx * dx + dy * dy + dz * dz + eps2;
    const double inv_r = 1.0 / std::sqrt(r2);
    const double inv_r3 = inv_r * inv_r * inv_r;
    const double s = bodies.mass[j] * inv_r3;
    axi += s * dx;
    ayi += s * dy;
    azi += s * dz;
  }
  bodies.ax[i] = axi;
  bodies.ay[i] = ayi;
  bodies.az[i] = azi;
  const std::uint64_t pairs = n - 1;
  counter.add(hw::OpClass::kFloatAdd, 9 * pairs);
  counter.add(hw::OpClass::kFloatMul, 9 * pairs);
  counter.add(hw::OpClass::kFloatDiv, pairs);
  counter.add(hw::OpClass::kFloatSqrt, pairs);
  counter.add(hw::OpClass::kLoadStore, 4 * pairs);
  counter.add(hw::OpClass::kBranch, pairs);
  counter.add(hw::OpClass::kOther, kPerPairOverheadOps * pairs);
}

/// Kick-drift update shared by the serial and parallel steps.
void integrate_bodies(Bodies& bodies, hw::PerfCounter& counter) {
  const std::size_t n = bodies.size();
  for (std::size_t i = 0; i < n; ++i) {
    bodies.vx[i] += bodies.ax[i] * kTimeStep;
    bodies.vy[i] += bodies.ay[i] * kTimeStep;
    bodies.vz[i] += bodies.az[i] * kTimeStep;
    bodies.x[i] += bodies.vx[i] * kTimeStep;
    bodies.y[i] += bodies.vy[i] * kTimeStep;
    bodies.z[i] += bodies.vz[i] * kTimeStep;
  }
  // Per-body ledger: kick (3 mul + 3 add) + drift (3 mul + 3 add),
  // 9 loads/stores, loop overhead.
  counter.add(hw::OpClass::kFloatMul, 6 * n);
  counter.add(hw::OpClass::kFloatAdd, 6 * n);
  counter.add(hw::OpClass::kLoadStore, 9 * n);
  counter.add(hw::OpClass::kOther, kPerBodyOverheadOps * n);
}

}  // namespace

void compute_forces(Bodies& bodies, hw::PerfCounter& counter) {
  for (std::size_t i = 0; i < bodies.size(); ++i)
    force_row(bodies, i, counter);
}

void compute_forces_parallel(Bodies& bodies, hw::PerfCounter& counter,
                             parallel::ThreadPool* pool) {
  parallel::ThreadPool& workers =
      pool ? *pool : parallel::default_pool();
  // One private counter per worker-range; rows write disjoint ax/ay/az
  // slots and only read positions, so no synchronization is needed in the
  // force loop itself.
  const auto ranges =
      parallel::split_range(0, bodies.size(), workers.num_threads());
  std::vector<hw::PerfCounter> partials(ranges.size());
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    futures.push_back(workers.submit([&bodies, &partials, range = ranges[r],
                                      r] {
      for (std::uint64_t i = range.begin; i < range.end; ++i)
        force_row(bodies, static_cast<std::size_t>(i), partials[r]);
    }));
  }
  for (auto& future : futures) future.get();
  for (const auto& partial : partials) counter.merge(partial);
}

void leapfrog_step(Bodies& bodies, hw::PerfCounter& counter) {
  compute_forces(bodies, counter);
  integrate_bodies(bodies, counter);
}

void leapfrog_step_parallel(Bodies& bodies, hw::PerfCounter& counter,
                            parallel::ThreadPool* pool) {
  compute_forces_parallel(bodies, counter, pool);
  integrate_bodies(bodies, counter);
}

void simulate(Bodies& bodies, std::uint64_t steps, hw::PerfCounter& counter) {
  for (std::uint64_t s = 0; s < steps; ++s) leapfrog_step(bodies, counter);
}

void simulate_parallel(Bodies& bodies, std::uint64_t steps,
                       hw::PerfCounter& counter,
                       parallel::ThreadPool* pool) {
  for (std::uint64_t s = 0; s < steps; ++s)
    leapfrog_step_parallel(bodies, counter, pool);
}

hw::PerfCounter step_ops(std::uint64_t n) {
  hw::PerfCounter ops;
  const std::uint64_t pairs = n * (n - 1);
  ops.add(hw::OpClass::kFloatAdd, 9 * pairs + 6 * n);
  ops.add(hw::OpClass::kFloatMul, 9 * pairs + 6 * n);
  ops.add(hw::OpClass::kFloatDiv, pairs);
  ops.add(hw::OpClass::kFloatSqrt, pairs);
  ops.add(hw::OpClass::kLoadStore, 4 * pairs + 9 * n);
  ops.add(hw::OpClass::kBranch, pairs);
  ops.add(hw::OpClass::kOther,
          kPerPairOverheadOps * pairs + kPerBodyOverheadOps * n);
  return ops;
}

double total_energy(const Bodies& bodies) {
  const std::size_t n = bodies.size();
  constexpr double eps2 = kSoftening * kSoftening;
  double kinetic = 0.0, potential = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v2 = bodies.vx[i] * bodies.vx[i] +
                      bodies.vy[i] * bodies.vy[i] +
                      bodies.vz[i] * bodies.vz[i];
    kinetic += 0.5 * bodies.mass[i] * v2;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = bodies.x[j] - bodies.x[i];
      const double dy = bodies.y[j] - bodies.y[i];
      const double dz = bodies.z[j] - bodies.z[i];
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz + eps2);
      potential -= bodies.mass[i] * bodies.mass[j] / r;
    }
  }
  return kinetic + potential;
}

}  // namespace celia::apps::galaxy
