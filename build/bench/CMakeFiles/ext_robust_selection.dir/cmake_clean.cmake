file(REMOVE_RECURSE
  "CMakeFiles/ext_robust_selection.dir/ext_robust_selection.cpp.o"
  "CMakeFiles/ext_robust_selection.dir/ext_robust_selection.cpp.o.d"
  "ext_robust_selection"
  "ext_robust_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_robust_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
