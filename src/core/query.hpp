#pragma once
// core::Query — the validated planner query value type.
//
// Every planner entry point — sweep(), FrontierIndex::query(),
// recommend(), Celia::select()/min_cost_configuration() — routes through
// one of these. Construction via Query::make() runs validate_query()
// exactly once; downstream code trusts a Query and never re-validates, so
// a query is checked once no matter how many layers it passes through
// (and a malformed one is rejected at the API boundary, with the same
// std::invalid_argument regardless of entry point).
//
// The bundled SweepOptions carry the execution knobs (pool, sampling,
// Pareto collection) and the IndexPolicy deciding whether the
// demand-invariant FrontierIndex may answer; the route actually taken is
// reported in SweepResult::route.

#include "core/enumerate.hpp"

namespace celia::core {

class Query {
 public:
  /// Validate (throws std::invalid_argument — see validate_query) and
  /// bundle a planner query.
  static Query make(double demand, const Constraints& constraints,
                    SweepOptions options = {});

  double demand() const noexcept { return demand_; }
  const Constraints& constraints() const noexcept { return constraints_; }
  const SweepOptions& options() const noexcept { return options_; }

  /// Copy with different options (constraints/demand stay validated).
  Query with_options(SweepOptions options) const;

 private:
  Query() = default;

  double demand_ = 0.0;
  Constraints constraints_;
  SweepOptions options_;
};

}  // namespace celia::core
