#pragma once
// The local measurement server.
//
// The paper cannot read hardware counters inside EC2 VMs, so all instruction
// counts come from `perf` runs on a local Intel Xeon E5-2630 v4 machine that
// shares the ISA/micro-architecture family with the cloud nodes. This class
// models that machine: it "executes" an instrumented run (the kernels report
// exact operation counts) and derives the wall-clock time the run would take
// locally, which characterization code can use for sanity checks.

#include <cstdint>

#include "hw/ipc_model.hpp"
#include "hw/microarch.hpp"
#include "hw/perf_counter.hpp"
#include "hw/workload_class.hpp"

namespace celia::hw {

class LocalServer {
 public:
  /// Defaults to the paper's measurement host (Xeon E5-2630 v4, 10C/20T).
  explicit LocalServer(Microarch microarch = Microarch::kBroadwellE5_2630v4)
      : model_(processor(microarch)) {}

  const ProcessorModel& model() const { return model_; }

  /// Total hardware threads (vCPU equivalents) of the box.
  int hardware_threads() const {
    return model_.physical_cores * model_.threads_per_core;
  }

  /// Aggregate instruction rate (instr/s) with all threads busy.
  double aggregate_rate(WorkloadClass workload) const {
    return vcpu_rate(model_.microarch, workload) * hardware_threads();
  }

  /// Wall-clock seconds a perfectly parallel run of `instructions` would
  /// take on this server using `threads` threads (capped at the hardware).
  double runtime_seconds(std::uint64_t instructions, WorkloadClass workload,
                         int threads) const;

 private:
  ProcessorModel model_;
};

}  // namespace celia::hw
