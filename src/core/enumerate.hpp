#pragma once
// Parallel exhaustive sweep of the configuration space — the paper's
// Algorithm 1 (Resource Configuration Selection) at scale.
//
// The sweep walks all S configurations (10,077,695 for the default EC2
// space) with an incremental mixed-radix odometer, updating U_j and C_j,u
// by the per-type deltas instead of recomputing the dot products, and
// partitions the index range across a thread pool. Per-thread partial
// results (feasible count, running min-cost/min-time points, local Pareto
// buffers, sampled scatter points) are merged at the end — the classic
// map-reduce shape of an HPC parameter sweep.

#include <cstdint>
#include <limits>
#include <vector>

#include "core/capacity.hpp"
#include "core/configuration.hpp"
#include "core/pareto.hpp"
#include "parallel/thread_pool.hpp"

namespace celia::core {

/// Deadline/budget constraints (paper: T < T' and C < C', strict).
///
/// Setting `confidence_z` > 0 enables RISK-AWARE selection (an extension
/// beyond the paper's deterministic Eq. 2): each instance's delivered rate
/// is treated as W_i (1 + eps) with eps ~ (0, rate_sigma^2) independent per
/// instance, so a configuration's capacity has standard deviation
/// sqrt(sum_i m_i (W_i rate_sigma)^2). Feasibility and cost are then
/// evaluated at the pessimistic capacity U - z * sigma_U: z = 1.645 keeps
/// the deadline with ~95 % one-sided confidence under the normal
/// approximation.
struct Constraints {
  double deadline_seconds = std::numeric_limits<double>::infinity();
  double budget_dollars = std::numeric_limits<double>::infinity();
  double confidence_z = 0.0;  // 0 = the paper's deterministic model
  double rate_sigma = 0.0;    // relative per-instance rate spread
};

struct SweepOptions {
  /// Collect every `sample_stride`-th feasible point into
  /// SweepResult::feasible_points (for scatter plots). 0 disables.
  std::uint64_t sample_stride = 0;
  /// Compute the exact Pareto frontier of all feasible points.
  bool collect_pareto = true;
  /// Pool to run on; nullptr = parallel::default_pool().
  parallel::ThreadPool* pool = nullptr;
};

struct SweepResult {
  std::uint64_t total = 0;      // configurations evaluated (== space size)
  std::uint64_t feasible = 0;   // satisfying both constraints
  bool any_feasible = false;
  CostTimePoint min_cost;       // cheapest feasible (ties: faster wins)
  CostTimePoint min_time;       // fastest feasible (ties: cheaper wins)
  std::vector<CostTimePoint> pareto;           // ascending cost
  std::vector<CostTimePoint> feasible_points;  // sampled scatter
};

/// Evaluate every configuration against `demand` (instructions) and the
/// constraints; Algorithm 1 plus the Pareto filter of §III-D.
SweepResult sweep(const ConfigurationSpace& space,
                  const ResourceCapacity& capacity, double demand,
                  const Constraints& constraints, SweepOptions options = {});

/// Streaming variant: `visit(index, capacity_U, hourly_cost)` is called for
/// every configuration from worker threads (must be thread-safe). Useful
/// for custom reductions.
void for_each_configuration(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    const std::function<void(std::uint64_t, double, double)>& visit,
    parallel::ThreadPool* pool = nullptr);

}  // namespace celia::core
