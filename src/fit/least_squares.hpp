#pragma once
// Ordinary least squares over arbitrary basis functions, solved via the
// normal equations with Gaussian elimination (partial pivoting). Problem
// sizes here are tiny (tens of samples, <= 4 coefficients), so the normal
// equations are numerically adequate; inputs are mean-scaled internally to
// keep the Gram matrix well conditioned.

#include <span>
#include <vector>

#include "fit/basis.hpp"

namespace celia::fit {

struct Sample {
  double x;
  double y;
};

struct FitResult {
  std::vector<Basis> bases;      // the model form
  std::vector<double> coeffs;    // one per basis
  double r2 = 0.0;               // coefficient of determination
  double adjusted_r2 = 0.0;      // penalized for model size
  double rmse = 0.0;             // root mean squared residual

  /// Evaluate the fitted model at x.
  double predict(double x) const;
};

/// Fit y ~= sum_k c_k phi_k(x). Requires samples.size() >= bases.size().
/// Throws std::invalid_argument on underdetermined input and
/// std::runtime_error if the Gram matrix is singular.
FitResult fit_least_squares(std::span<const Sample> samples,
                            std::vector<Basis> bases);

/// Solve the dense linear system A x = b in place (partial pivoting).
/// A is row-major n x n. Throws std::runtime_error when singular.
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b);

}  // namespace celia::fit
