// End-to-end integration tests: the paper's three headline observations
// (§IV-E) must hold in the reproduced system.

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/analysis.hpp"
#include "core/celia.hpp"

namespace {

using namespace celia::core;
using celia::apps::AppParams;
using celia::cloud::CloudProvider;

const Celia& galaxy_celia() {
  static const Celia instance = [] {
    CloudProvider provider(2017);
    return Celia::build(*celia::apps::make_galaxy(), provider);
  }();
  return instance;
}

const Celia& sand_celia() {
  static const Celia instance = [] {
    CloudProvider provider(2017);
    return Celia::build(*celia::apps::make_sand(), provider);
  }();
  return instance;
}

// --- Observation 1: a Pareto frontier of multiple configurations exists;
// picking a cheap frontier point instead of an expensive one saves cost. ---

TEST(Observation1, GalaxyFrontierHasMultiplePointsAndCostSpan) {
  const SweepResult result =
      galaxy_celia().select({65536, 8000}, 24.0, 350.0);
  EXPECT_GT(result.pareto.size(), 5u);  // paper: 23
  const ParetoSpan span = pareto_span(result.pareto);
  // Paper: highest frontier cost ~1.3x the lowest for galaxy.
  EXPECT_GT(span.span_ratio, 1.1);
  EXPECT_LT(span.span_ratio, 1.8);
}

TEST(Observation1, SandFrontierHasMultiplePointsAndCostSpan) {
  const SweepResult result =
      sand_celia().select({8192e6, 0.32}, 24.0, 350.0);
  EXPECT_GT(result.pareto.size(), 5u);  // paper: 58
  const ParetoSpan span = pareto_span(result.pareto);
  EXPECT_GT(span.span_ratio, 1.05);  // paper: ~1.2x for sand
  EXPECT_LT(span.span_ratio, 1.8);
}

TEST(Observation1, RelaxingDeadlineReducesCostAlongFrontier) {
  const SweepResult result =
      galaxy_celia().select({65536, 8000}, 24.0, 350.0);
  ASSERT_GT(result.pareto.size(), 1u);
  // Frontier sorted by ascending cost => descending time: the cheapest
  // point is the slowest. Cost can be traded for time.
  EXPECT_GT(result.pareto.front().seconds, result.pareto.back().seconds);
  EXPECT_LT(result.pareto.front().cost, result.pareto.back().cost);
}

TEST(Observation1, FeasibleSetIsMillionsOfConfigurations) {
  const SweepResult galaxy =
      galaxy_celia().select({65536, 8000}, 24.0, 350.0);
  EXPECT_GT(galaxy.feasible, 1'000'000u);  // paper: ~5.8 M
  const SweepResult sand = sand_celia().select({8192e6, 0.32}, 24.0, 350.0);
  EXPECT_GT(sand.feasible, 500'000u);  // paper: ~2 M
}

// --- Observation 2: cost grows faster than resource demand once the
// configuration spills into a less cost-efficient resource category. ---

TEST(Observation2, GalaxyCostGradientIncreasesAtCategorySpill) {
  const std::vector<double> steps = {1000, 2000, 3000, 4000,
                                     5000, 6000, 7000, 8000};
  const auto curve = accuracy_scaling(galaxy_celia(), 65536, steps, 24.0);
  ASSERT_EQ(curve.size(), steps.size());
  for (const auto& point : curve) ASSERT_TRUE(point.feasible);

  // Demand is linear in s, so with a single category the cost-per-step
  // gradient would be constant. Compare the average gradient in the first
  // half (c4 only) against the last segment (c4 exhausted, spilled to m4).
  const double early_gradient =
      (curve[2].min_cost - curve[0].min_cost) / 2000.0;
  const double late_gradient =
      (curve[7].min_cost - curve[5].min_cost) / 2000.0;
  EXPECT_GT(late_gradient, early_gradient * 1.05);
}

TEST(Observation2, SpillConfigurationsUseNewCategory) {
  // Along the galaxy 24h curve, small s uses only c4 nodes; s = 8000
  // needs m4 nodes too (the paper's Fig. 6(a) annotations).
  const auto& celia = galaxy_celia();
  const auto small = celia.min_cost_configuration({65536, 2000}, 24.0);
  const auto large = celia.min_cost_configuration({65536, 8000}, 24.0);
  ASSERT_TRUE(small && large);
  const Configuration c_small = celia.space().decode(small->config_index);
  const Configuration c_large = celia.space().decode(large->config_index);
  // Small problem: no m4/r3 nodes.
  for (std::size_t i = 3; i < 9; ++i) EXPECT_EQ(c_small[i], 0) << i;
  // Large problem: c4 saturated, m4 in use.
  EXPECT_EQ(c_large[0], 5);
  EXPECT_EQ(c_large[1], 5);
  EXPECT_EQ(c_large[2], 5);
  EXPECT_GT(c_large[3] + c_large[4] + c_large[5], 0);
}

// --- Observation 3: the relative cost increase is smaller than the
// relative deadline reduction. ---

TEST(Observation3, GalaxyDeadlineTightening) {
  const std::vector<double> deadlines = {72.0, 48.0, 24.0, 12.0};
  const auto curve =
      deadline_tightening(galaxy_celia(), {262144, 1000}, deadlines);
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    if (!curve[i].feasible || !curve[i + 1].feasible) continue;
    const double deadline_reduction =
        1.0 - deadlines[i + 1] / deadlines[i];
    const double cost_increase =
        curve[i + 1].min_cost / curve[i].min_cost - 1.0;
    EXPECT_LT(cost_increase, deadline_reduction)
        << deadlines[i] << "h -> " << deadlines[i + 1] << "h";
  }
}

TEST(Observation3, SandDeadlineTightening) {
  const std::vector<double> deadlines = {48.0, 24.0};
  const auto curve =
      deadline_tightening(sand_celia(), {8192e6, 0.32}, deadlines);
  ASSERT_TRUE(curve[0].feasible && curve[1].feasible);
  const double cost_increase = curve[1].min_cost / curve[0].min_cost - 1.0;
  // Paper: tightening 48h -> 24h costs ~25% more; definitely < 50%.
  EXPECT_GT(cost_increase, 0.0);
  EXPECT_LT(cost_increase, 0.5);
}

// --- Fixed-time scaling shapes (Figs. 5/6): cost follows demand shape. ---

TEST(FixedTimeScaling, GalaxyCostGrowsSuperlinearlyInN) {
  const std::vector<double> sizes = {32768, 65536, 131072};
  const auto curve = problem_size_scaling(galaxy_celia(), 1000, sizes, 72.0);
  ASSERT_TRUE(curve[0].feasible && curve[1].feasible && curve[2].feasible);
  // Quadratic demand: doubling n should ~4x the cost.
  const double ratio1 = curve[1].min_cost / curve[0].min_cost;
  const double ratio2 = curve[2].min_cost / curve[1].min_cost;
  EXPECT_GT(ratio1, 2.5);
  EXPECT_GT(ratio2, 2.5);
}

TEST(FixedTimeScaling, SandCostGrowsLinearlyInN) {
  const std::vector<double> sizes = {1024e6, 2048e6, 4096e6};
  const auto curve = problem_size_scaling(sand_celia(), 0.32, sizes, 72.0);
  ASSERT_TRUE(curve[0].feasible && curve[1].feasible && curve[2].feasible);
  EXPECT_NEAR(curve[1].min_cost / curve[0].min_cost, 2.0, 0.3);
  EXPECT_NEAR(curve[2].min_cost / curve[1].min_cost, 2.0, 0.3);
}

TEST(FixedTimeScaling, SandAccuracyIsCheapAtTheTop) {
  // Paper: improving sand accuracy 1.6x (0.64 -> 1.0) costs only ~20% more.
  const auto& celia = sand_celia();
  const auto low = celia.min_cost_configuration({1024e6, 0.64}, 24.0);
  const auto high = celia.min_cost_configuration({1024e6, 1.0}, 24.0);
  ASSERT_TRUE(low && high);
  const double increase = high->cost / low->cost - 1.0;
  EXPECT_GT(increase, 0.0);
  EXPECT_LT(increase, 0.35);
}

TEST(FixedTimeScaling, InfeasibleSizesReportedAsSuch) {
  // A deadline no configuration can meet (galaxy n=262144, s=1000 in 1h).
  const std::vector<double> sizes = {262144};
  const auto curve = problem_size_scaling(galaxy_celia(), 1000, sizes, 1.0);
  EXPECT_FALSE(curve[0].feasible);
}

}  // namespace
