#include "cloud/autoscaler.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace celia::cloud {

namespace {

/// One leased instance with its own billing clock.
struct Lease {
  Instance instance;
  double provisioned_at = 0.0;   // starts billing
  double compute_from = 0.0;     // starts contributing (after boot delay)
  double released_at = -1.0;     // < 0 while active
};

double lease_cost(const Lease& lease, double now, BillingPolicy billing) {
  const double end = lease.released_at >= 0 ? lease.released_at : now;
  return instance_cost(lease.instance.type(), end - lease.provisioned_at,
                       billing);
}

}  // namespace

AutoscaleReport run_autoscaled(CloudProvider& provider,
                               hw::WorkloadClass workload,
                               double total_instructions,
                               double deadline_seconds,
                               const AutoscalerPolicy& policy) {
  if (total_instructions <= 0)
    throw std::invalid_argument("run_autoscaled: non-positive work");
  if (deadline_seconds <= 0)
    throw std::invalid_argument("run_autoscaled: non-positive deadline");
  if (policy.interval_seconds <= 0 || policy.max_instances < 1)
    throw std::invalid_argument("run_autoscaled: bad policy");
  if (policy.type_index >= provider.catalog().size())
    throw std::out_of_range("run_autoscaled: bad type index");

  // Provision one instance of the chosen type via the provider so its
  // speed factor comes from the same noise stream as everything else.
  std::vector<int> one(provider.catalog().size(), 0);
  one[policy.type_index] = 1;

  std::vector<Lease> leases;
  auto add_instance = [&](double now) {
    Lease lease;
    lease.instance = provider.provision(one)[0];
    lease.provisioned_at = now;
    lease.compute_from = now + policy.provision_delay_seconds;
    leases.push_back(lease);
  };

  AutoscaleReport report;
  double remaining = total_instructions;
  double now = 0.0;
  add_instance(now);
  report.peak_instances = 1;

  const double hard_stop = 100.0 * deadline_seconds;  // runaway guard
  while (remaining > 0 && now < hard_stop) {
    const double slice_end = now + policy.interval_seconds;

    // Advance the fluid model over this interval, honoring per-instance
    // boot delays (an instance contributes only after compute_from).
    double step_now = now;
    while (step_now < slice_end && remaining > 0) {
      // The next boot-completion inside this interval splits the slice.
      double next_edge = slice_end;
      double rate = 0.0;
      for (const Lease& lease : leases) {
        if (lease.released_at >= 0) continue;
        if (lease.compute_from <= step_now) {
          rate += lease.instance.actual_rate(workload);
        } else {
          next_edge = std::min(next_edge, lease.compute_from);
        }
      }
      const double dt = next_edge - step_now;
      if (rate > 0) {
        const double work = rate * dt;
        if (work >= remaining) {
          step_now += remaining / rate;
          remaining = 0;
          break;
        }
        remaining -= work;
      }
      step_now = next_edge;
    }
    now = remaining > 0 ? slice_end : step_now;
    if (remaining <= 0) break;

    // Controller decision.
    double active_rate = 0.0;
    int active = 0;
    for (const Lease& lease : leases) {
      if (lease.released_at < 0) {
        active_rate += lease.instance.actual_rate(workload);
        ++active;
      }
    }
    const double projected =
        active_rate > 0 ? now + remaining / active_rate : hard_stop;
    if (projected > deadline_seconds * policy.headroom &&
        active < policy.max_instances) {
      add_instance(now);
      ++report.scale_ups;
      static obs::Counter& scale_ups = obs::counter(
          "celia_autoscaler_scale_ups_total",
          "Instances added by the deadline-tracking autoscaler");
      scale_ups.add(1);
    } else if (projected < deadline_seconds * policy.relax && active > 1) {
      // Release the most recently added active instance.
      for (auto it = leases.rbegin(); it != leases.rend(); ++it) {
        if (it->released_at < 0) {
          it->released_at = now;
          ++report.scale_downs;
          static obs::Counter& scale_downs = obs::counter(
              "celia_autoscaler_scale_downs_total",
              "Instances released by the deadline-tracking autoscaler");
          scale_downs.add(1);
          break;
        }
      }
    }
    int now_active = 0;
    for (const Lease& lease : leases)
      if (lease.released_at < 0) ++now_active;
    report.peak_instances = std::max(report.peak_instances, now_active);
    report.fleet_trace.push_back(now_active);
  }

  // Release everything and settle the bill.
  report.seconds = now;
  for (Lease& lease : leases) {
    if (lease.released_at < 0) lease.released_at = now;
    report.cost += lease_cost(lease, now, policy.billing);
  }
  report.met_deadline = remaining <= 0 && now <= deadline_seconds;
  return report;
}

}  // namespace celia::cloud
