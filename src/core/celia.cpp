#include "core/celia.hpp"

#include <stdexcept>
#include <utility>

#include "core/query.hpp"

namespace celia::core {

Celia Celia::build(const apps::ElasticApp& app, cloud::CloudProvider& provider,
                   CharacterizationMode mode) {
  // Demand model: profile-grid runs on the local server, instruction counts
  // read from its performance counters (exact in our substrate).
  std::vector<fit::ProfilePoint> profile;
  for (const apps::AppParams& params : app.profile_grid()) {
    profile.push_back({params.n, params.a, app.exact_demand(params)});
  }
  fit::SeparableDemandModel demand = fit::SeparableDemandModel::fit(profile);

  // Capacity: timed scale-down runs on cloud instances, against the
  // provider's own catalog snapshot.
  ResourceCapacity capacity = characterize_capacity(app, provider, mode);

  return Celia(std::string(app.name()), app.workload_class(),
               std::move(demand), std::move(capacity),
               ConfigurationSpace::for_catalog(provider.catalog()),
               provider.catalog_ptr());
}

Celia::Celia(std::string app_name, hw::WorkloadClass workload,
             fit::SeparableDemandModel demand, ResourceCapacity capacity,
             ConfigurationSpace space)
    : Celia(std::move(app_name), workload, std::move(demand),
            std::move(capacity), std::move(space),
            cloud::Catalog::ec2_table3_ptr()) {}

Celia::Celia(std::string app_name, hw::WorkloadClass workload,
             fit::SeparableDemandModel demand, ResourceCapacity capacity,
             ConfigurationSpace space,
             std::shared_ptr<const cloud::Catalog> catalog)
    : app_name_(std::move(app_name)),
      workload_(workload),
      demand_(std::move(demand)),
      capacity_(std::move(capacity)),
      space_(std::move(space)),
      catalog_(std::move(catalog)) {
  if (!catalog_) throw std::invalid_argument("Celia: null catalog");
  if (space_.num_types() != catalog_->size())
    throw std::invalid_argument(
        "Celia: configuration space width disagrees with catalog '" +
        catalog_->name() + "'");
  if (!capacity_.compatible_with(*catalog_))
    throw std::invalid_argument(
        "Celia: capacity was characterized against a structurally different "
        "catalog than '" + catalog_->name() + "'");
  const auto hourly = catalog_->hourly_costs();
  hourly_costs_.assign(hourly.begin(), hourly.end());
}

Prediction Celia::predict(const apps::AppParams& params,
                          const Configuration& config) const {
  return core::predict(predict_demand(params), config, capacity_, *catalog_);
}

SweepResult Celia::select(const apps::AppParams& params, double deadline_hours,
                          double budget_dollars, SweepOptions options) const {
  Constraints constraints;
  constraints.deadline_seconds = deadline_hours * 3600.0;
  constraints.budget_dollars = budget_dollars;
  return sweep(space_, capacity_, *catalog_,
               Query::make(predict_demand(params), constraints, options));
}

std::optional<CostTimePoint> Celia::min_cost_configuration(
    const apps::AppParams& params, double deadline_hours,
    SweepOptions options) const {
  options.collect_pareto = false;
  Constraints constraints;
  constraints.deadline_seconds = deadline_hours * 3600.0;
  const SweepResult result =
      sweep(space_, capacity_, *catalog_,
            Query::make(predict_demand(params), constraints, options));
  if (!result.any_feasible) return std::nullopt;
  return result.min_cost;
}

}  // namespace celia::core
