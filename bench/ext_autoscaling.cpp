// Extension E1: CELIA's ahead-of-time optimal configuration vs reactive
// autoscaling (the approach of Mao et al., paper §II, which CELIA is
// "complementary to").
//
// Task: run galaxy(65536, s) within a deadline. CELIA picks the min-cost
// static configuration by exhaustive search; the autoscaler starts with
// one instance of the most cost-efficient type and reacts every 5 minutes.
// The autoscaler pays for what CELIA avoids: boot delays, trial-and-error
// fleet sizes, and end-of-run overcapacity.

#include <iostream>

#include "apps/registry.hpp"
#include "cloud/autoscaler.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  cloud::CloudProvider provider(2017);
  const auto app = apps::make_galaxy();
  const core::Celia celia = core::Celia::build(*app, provider);

  std::cout << "=== Extension E1: CELIA (static optimal) vs Reactive "
               "Autoscaling ===\n"
            << "workload: galaxy(65536, s), varying accuracy s and "
               "deadline\n\n";

  util::TablePrinter table({"s", "deadline (h)", "CELIA cost",
                            "CELIA config", "autoscaler cost", "peak fleet",
                            "met deadline", "overhead"});
  for (std::size_t c : {2u, 4u, 7u}) table.set_right_aligned(c);

  for (const double s : {2000.0, 4000.0, 8000.0}) {
    for (const double deadline_hours : {24.0, 48.0}) {
      const apps::AppParams params{65536, s};
      const auto best = celia.min_cost_configuration(params, deadline_hours);
      const double demand = celia.predict_demand(params);

      cloud::AutoscalerPolicy policy;
      // The autoscaler also gets to pick the most cost-efficient type.
      std::size_t best_type = 0;
      for (std::size_t i = 0; i < cloud::catalog_size(); ++i) {
        if (celia.capacity().normalized_performance(i) >
            celia.capacity().normalized_performance(best_type))
          best_type = i;
      }
      policy.type_index = best_type;
      policy.max_instances = 30;
      cloud::CloudProvider scaler_provider(2017 + static_cast<int>(s));
      const auto scaled = cloud::run_autoscaled(
          scaler_provider, app->workload_class(), demand,
          deadline_hours * 3600.0, policy);

      const double overhead =
          best ? scaled.cost / best->cost - 1.0 : 0.0;
      table.add_row(
          {util::format_si(s, 0), util::format_fixed(deadline_hours, 0),
           best ? util::format_money(best->cost) : "infeasible",
           best ? core::to_string(celia.space().decode(best->config_index))
                : "-",
           util::format_money(scaled.cost),
           std::to_string(scaled.peak_instances),
           scaled.met_deadline ? "yes" : "no",
           best ? (overhead >= 0 ? "+" : "") + util::format_percent(overhead)
                : "-"});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nreading: on perfectly divisible work a reactive controller "
         "converges to a\ncompetitive fleet (its instances even enjoy turbo "
         "headroom), but it cannot\npromise the deadline before starting, "
         "needs a homogeneous scaling group,\nand pays boot/overshoot "
         "overhead at tight deadlines — CELIA's exhaustive\nstatic plan "
         "gives the same cost WITH an a-priori feasibility guarantee\nand "
         "heterogeneous (category-spilling) configurations. The approaches\n"
         "are complementary, as the paper argues (§II).\n";
  return 0;
}
