file(REMOVE_RECURSE
  "CMakeFiles/celia_parallel.dir/parallel_for.cpp.o"
  "CMakeFiles/celia_parallel.dir/parallel_for.cpp.o.d"
  "CMakeFiles/celia_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/celia_parallel.dir/thread_pool.cpp.o.d"
  "libcelia_parallel.a"
  "libcelia_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celia_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
