#pragma once
// Discrete-event simulation engine.
//
// The cluster execution simulator (src/cloud/cluster_exec) runs workloads on
// modeled cloud configurations by scheduling events (task completions,
// synchronization barriers, master dispatches) on a time-ordered queue.
// Events at the same timestamp fire in insertion order (stable FIFO
// tie-break), which makes every simulation deterministic.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

namespace celia::sim {

/// Simulated time in seconds.
using SimTime = double;

class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. 0 before the first event fires.
  SimTime now() const { return now_; }

  /// Schedule `handler` to fire at absolute time `when` (>= now()).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(SimTime when, Handler handler);

  /// Schedule `handler` to fire `delay` seconds from now.
  std::uint64_t schedule_after(SimTime delay, Handler handler);

  /// Cancel a pending event. Returns false if it already fired or is unknown.
  bool cancel(std::uint64_t id);

  /// Run until the event queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Run until the queue is empty or the next event lies beyond `deadline`;
  /// later events remain pending and now() stops at the last fired event.
  std::uint64_t run_until(SimTime deadline);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_by_id_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t sequence;  // insertion order; breaks timestamp ties
    std::uint64_t id;
    Handler handler;
    bool cancelled = false;
  };
  struct EventOrder {
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->sequence > b->sequence;
    }
  };

  std::priority_queue<std::shared_ptr<Event>,
                      std::vector<std::shared_ptr<Event>>, EventOrder>
      queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Event>> pending_by_id_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace celia::sim
