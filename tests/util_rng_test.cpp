// Tests for the deterministic PRNG substrate (util/rng.hpp).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using celia::util::SplitMix64;
using celia::util::Xoshiro256;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, IsDeterministicPerSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SeedsProduceDistinctStreams) {
  Xoshiro256 a(1), b(1000000007);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, NextDoubleIsInHalfOpenUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, UniformRespectsBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 12.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 12.25);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  celia::util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
}

TEST(Xoshiro256, BoundedStaysBelowBound) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Xoshiro256, BoundedCoversAllResidues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(19);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(10)];
  for (const int count : counts) {
    EXPECT_GT(count, kDraws / 10 - 600);
    EXPECT_LT(count, kDraws / 10 + 600);
  }
}

TEST(Xoshiro256, NormalHasUnitMoments) {
  Xoshiro256 rng(23);
  celia::util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Xoshiro256, NormalWithParamsShiftsAndScales) {
  Xoshiro256 rng(29);
  celia::util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a(31);
  Xoshiro256 b(31);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
