#pragma once
// ASCII Gantt rendering of cluster execution traces — one row per compute
// slot (vCPU), time flowing left to right. Lets a user see where a
// configuration's time actually goes: ramp-up staggering, master dispatch
// serialization, and the end-of-run tail that makes indivisible workloads
// slower than the fluid model predicts.

#include <ostream>
#include <string>
#include <vector>

#include "cloud/cluster_exec.hpp"

namespace celia::cloud {

struct GanttOptions {
  int width = 72;          // columns used for the time axis
  int max_rows = 48;       // slots beyond this are summarized
  bool label_tasks = true; // paint task-index digits instead of '#'
};

/// Render `report.trace` (requires ExecutionOptions::record_trace).
/// Returns the number of slot rows printed. Throws std::invalid_argument
/// when the report carries no trace.
std::size_t render_gantt(const ExecutionReport& report, std::ostream& out,
                         GanttOptions options = {});

/// Convenience: render to a string.
std::string gantt_to_string(const ExecutionReport& report,
                            GanttOptions options = {});

}  // namespace celia::cloud
