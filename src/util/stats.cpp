#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace celia::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(sample_variance()); }

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.stddev();
}

double percentile(std::span<const double> values, double p) {
  if (values.empty())
    throw std::invalid_argument("percentile of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double relative_error(double predicted, double actual) {
  if (actual == 0.0) return predicted == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::abs(predicted - actual) / std::abs(actual);
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  if (observed.size() != predicted.size() || observed.empty())
    throw std::invalid_argument("r_squared: size mismatch or empty");
  const double obs_mean = mean(observed);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double d = observed[i] - obs_mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::domain_error("normal_quantile: p must be in (0, 1)");
  // Acklam's inverse-normal approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("pearson: size mismatch or too few samples");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace celia::util
