file(REMOVE_RECURSE
  "CMakeFiles/ablation_noise_seeds.dir/ablation_noise_seeds.cpp.o"
  "CMakeFiles/ablation_noise_seeds.dir/ablation_noise_seeds.cpp.o.d"
  "ablation_noise_seeds"
  "ablation_noise_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noise_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
