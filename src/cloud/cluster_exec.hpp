#pragma once
// Discrete-event cluster execution simulator.
//
// Executes an application workload on a set of provisioned instances and
// reports the "actual" wall-clock time and cost — the measurements CELIA's
// predictions are validated against (paper Table IV). The simulator models
// exactly the effects the paper blames for prediction error:
//   * per-instance delivered performance differs from nominal (vm.hpp);
//   * galaxy pays a per-step synchronization exchange (bulk-synchronous
//     stragglers: every step runs at the pace of the slowest node);
//   * sand's master dispatches Work Queue tasks serially with a fixed
//     per-task latency;
//   * independent tasks are indivisible, so makespan exceeds the fluid
//     model's D/U when the task count is small.

#include <cstdint>
#include <vector>

#include "apps/workload.hpp"
#include "cloud/checkpoint.hpp"
#include "cloud/faults.hpp"
#include "cloud/pricing.hpp"
#include "cloud/provider.hpp"
#include "cloud/vm.hpp"
#include "util/backoff.hpp"

namespace celia::cloud {

struct ExecutionOptions {
  BillingPolicy billing = BillingPolicy::kContinuous;
  /// Record per-slot busy intervals (task-farm patterns only). Costs
  /// O(#tasks) memory; off by default.
  bool record_trace = false;
};

/// One task occupancy interval of one compute slot (vCPU).
struct TraceSegment {
  std::size_t slot = 0;        // global vCPU index across the fleet
  std::size_t task = 0;        // workload task index
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

/// What the failure-aware execution paths observed. All-zero on the
/// legacy fail-never paths and under an inert fault model.
struct FaultStats {
  std::uint64_t node_failures = 0;       // instances lost mid-run
  std::uint64_t tasks_redispatched = 0;  // task-farm tasks re-enqueued
  std::uint64_t speculative_launches = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t restarts = 0;            // BSP rollbacks to a checkpoint
  std::uint64_t replacements = 0;        // nodes provisioned mid-run
  std::uint64_t sync_retransmits = 0;    // lost-then-resent sync messages
  double recomputed_instructions = 0.0;  // work lost to failures, re-run
  double replacement_wait_seconds = 0.0; // BSP stalls waiting for boots
};

struct ExecutionReport {
  double seconds = 0.0;       // wall-clock makespan
  double cost = 0.0;          // under the billing policy
  std::uint64_t events = 0;   // discrete events fired (0 for analytic paths)
  std::size_t nodes = 0;
  double busy_fraction = 0.0; // mean compute-slot utilization
  std::size_t slots = 0;      // total vCPUs in the fleet
  /// False when the whole fleet died with work remaining and replacements
  /// were disabled; `seconds` then reports the time of the last death.
  bool completed = true;
  FaultStats faults;
  /// Populated when ExecutionOptions::record_trace is set (task farms).
  std::vector<TraceSegment> trace;
};

/// Options of the failure-aware execution path.
struct FaultExecutionOptions {
  ExecutionOptions base;       // billing + trace, as for execute()
  FaultModel faults;           // fault channels active during the run
  /// BSP runs checkpoint on this policy and roll back to the last durable
  /// checkpoint after a crash. Ignored by task farms (tasks are the unit
  /// of recovery there).
  CheckpointPolicy checkpoint;
  /// Retry schedule for mid-run replacement provisioning.
  util::BackoffPolicy backoff;
  /// Replace dead nodes mid-run (task farms refill the slot pool; BSP
  /// stalls until the replacement is ready, then repartitions).
  bool provision_replacements = true;
  /// Task farms only: when all tasks are dispatched and slots sit idle,
  /// launch a second copy of the running task predicted to finish last
  /// (classic straggler mitigation); first copy to finish wins.
  bool speculative_execution = false;
};

class ClusterExecutor {
 public:
  explicit ClusterExecutor(NetworkModel network = {}) : network_(network) {}

  /// Run `workload` on `instances` (from CloudProvider::provision);
  /// `node_counts` is the same configuration in catalog order, used for
  /// billing. Throws std::invalid_argument on an empty workload or fleet.
  ExecutionReport execute(const apps::Workload& workload,
                          const std::vector<Instance>& instances,
                          const std::vector<int>& node_counts,
                          ExecutionOptions options = {}) const;

  /// Failure-aware execution of `fleet` (from provision_with_faults) under
  /// the options' fault model: task farms re-dispatch tasks from dead
  /// workers (and optionally speculate on stragglers); bulk-synchronous
  /// runs checkpoint/restart and stall for mid-run replacements, which are
  /// provisioned from `provider` with boot delay and backoff. Billing is
  /// per instance over its actual lifetime (ready -> death or makespan).
  /// The fault schedule is a pure function of (provider.seed(), instance
  /// ids): re-running with an identically-seeded provider replays it
  /// bit-identically. With an INERT fault model this takes the exact
  /// legacy execute() path (bit-identical report, zero FaultStats).
  ExecutionReport execute_with_faults(const apps::Workload& workload,
                                      CloudProvider& provider,
                                      const ProvisionResult& fleet,
                                      const std::vector<int>& node_counts,
                                      FaultExecutionOptions options = {}) const;

 private:
  ExecutionReport run_task_farm(const apps::Workload& workload,
                                const std::vector<Instance>& instances,
                                double dispatch_seconds,
                                bool record_trace) const;
  ExecutionReport run_bulk_synchronous(
      const apps::Workload& workload,
      const std::vector<Instance>& instances) const;

  ExecutionReport run_task_farm_with_faults(
      const apps::Workload& workload, CloudProvider& provider,
      const ProvisionResult& fleet, double dispatch_seconds,
      const FaultExecutionOptions& options) const;
  ExecutionReport run_bulk_synchronous_with_faults(
      const apps::Workload& workload, CloudProvider& provider,
      const ProvisionResult& fleet,
      const FaultExecutionOptions& options) const;

  NetworkModel network_;
};

}  // namespace celia::cloud
