#include "core/time_cost.hpp"

#include <limits>
#include <stdexcept>

#include "cloud/catalog.hpp"

namespace celia::core {

double configuration_capacity(std::span<const int> config,
                              const ResourceCapacity& capacity) {
  if (config.size() != capacity.num_types())
    throw std::invalid_argument("configuration_capacity: width mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < config.size(); ++i)
    total += config[i] * capacity.rate(i);
  return total;
}

double configuration_hourly_cost(std::span<const int> config,
                                 const cloud::Catalog& catalog) {
  if (config.size() != catalog.size())
    throw std::invalid_argument("configuration_hourly_cost: width mismatch");
  const std::span<const double> hourly = catalog.hourly_costs();
  double total = 0.0;
  for (std::size_t i = 0; i < config.size(); ++i)
    total += config[i] * hourly[i];
  return total;
}

double configuration_hourly_cost(std::span<const int> config) {
  return configuration_hourly_cost(config, cloud::Catalog::ec2_table3());
}

Prediction predict(double demand, std::span<const int> config,
                   const ResourceCapacity& capacity,
                   const cloud::Catalog& catalog) {
  if (demand <= 0) throw std::invalid_argument("predict: non-positive demand");
  const double u = configuration_capacity(config, capacity);
  Prediction prediction;
  if (u <= 0) {
    prediction.seconds = std::numeric_limits<double>::infinity();
    prediction.cost = std::numeric_limits<double>::infinity();
    return prediction;
  }
  prediction.seconds = demand / u;
  prediction.cost = prediction.seconds / 3600.0 *
                    configuration_hourly_cost(config, catalog);
  return prediction;
}

Prediction predict(double demand, std::span<const int> config,
                   const ResourceCapacity& capacity) {
  return predict(demand, config, capacity, cloud::Catalog::ec2_table3());
}

}  // namespace celia::core
