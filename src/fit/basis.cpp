#include "fit/basis.hpp"

#include <cmath>
#include <stdexcept>

namespace celia::fit {

double eval_basis(Basis basis, double x) {
  switch (basis) {
    case Basis::kConstant:
      return 1.0;
    case Basis::kLinear:
      return x;
    case Basis::kQuadratic:
      return x * x;
    case Basis::kCubic:
      return x * x * x;
    case Basis::kLog:
      if (x <= 0) throw std::domain_error("eval_basis: log of x <= 0");
      return std::log(x);
    case Basis::kXLogX:
      if (x <= 0) throw std::domain_error("eval_basis: x log x of x <= 0");
      return x * std::log(x);
    case Basis::kSqrt:
      if (x < 0) throw std::domain_error("eval_basis: sqrt of x < 0");
      return std::sqrt(x);
  }
  throw std::invalid_argument("eval_basis: unknown basis");
}

std::string_view basis_name(Basis basis) {
  switch (basis) {
    case Basis::kConstant:
      return "1";
    case Basis::kLinear:
      return "x";
    case Basis::kQuadratic:
      return "x^2";
    case Basis::kCubic:
      return "x^3";
    case Basis::kLog:
      return "ln(x)";
    case Basis::kXLogX:
      return "x ln(x)";
    case Basis::kSqrt:
      return "sqrt(x)";
  }
  return "?";
}

std::vector<Basis> linear_form() { return {Basis::kConstant, Basis::kLinear}; }

std::vector<Basis> quadratic_form() {
  return {Basis::kConstant, Basis::kLinear, Basis::kQuadratic};
}

std::vector<Basis> cubic_form() {
  return {Basis::kConstant, Basis::kLinear, Basis::kQuadratic, Basis::kCubic};
}

std::vector<Basis> log_form() { return {Basis::kConstant, Basis::kLog}; }

std::vector<Basis> xlogx_form() {
  return {Basis::kConstant, Basis::kLinear, Basis::kXLogX};
}

}  // namespace celia::fit
