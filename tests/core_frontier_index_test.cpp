// Property tests for the demand-invariant FrontierIndex
// (core/frontier_index.hpp): every deterministic query must reproduce
// sweep()'s answer exactly — same feasible count, same min-cost/min-time
// configurations with bit-identical doubles, same Pareto frontier.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cloud/instance_type.hpp"
#include "core/enumerate.hpp"
#include "core/frontier_index.hpp"
#include "core/recommend.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::core;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct RandomModel {
  ConfigurationSpace space;
  ResourceCapacity capacity;
  std::vector<double> hourly;
};

/// A random small model: 9-wide space (ResourceCapacity is always
/// catalog-wide), random per-vcpu rates and hourly prices.
RandomModel random_model(celia::util::Xoshiro256& rng) {
  std::vector<int> max_counts(celia::cloud::catalog_size());
  bool any = false;
  for (auto& count : max_counts) {
    count = static_cast<int>(rng.bounded(4));  // 0..3 => space size <= 4^9
    any = any || count > 0;
  }
  if (!any) max_counts[rng.bounded(max_counts.size())] = 2;

  std::vector<double> per_vcpu(celia::cloud::catalog_size());
  for (auto& rate : per_vcpu) rate = rng.uniform(1e8, 2e9);

  std::vector<double> hourly(celia::cloud::catalog_size());
  for (auto& price : hourly) price = rng.uniform(0.05, 1.0);

  return {ConfigurationSpace(max_counts),
          ResourceCapacity(per_vcpu, celia::cloud::Catalog::ec2_table3()),
          std::move(hourly)};
}

void expect_same_result(const SweepResult& expected, const SweepResult& got,
                        const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(expected.total, got.total);
  EXPECT_EQ(expected.feasible, got.feasible);
  EXPECT_EQ(expected.any_feasible, got.any_feasible);
  if (expected.any_feasible && got.any_feasible) {
    EXPECT_EQ(expected.min_cost.config_index, got.min_cost.config_index);
    EXPECT_EQ(expected.min_cost.seconds, got.min_cost.seconds);
    EXPECT_EQ(expected.min_cost.cost, got.min_cost.cost);
    EXPECT_EQ(expected.min_time.config_index, got.min_time.config_index);
    EXPECT_EQ(expected.min_time.seconds, got.min_time.seconds);
    EXPECT_EQ(expected.min_time.cost, got.min_time.cost);
  }
  // CostTimePoint's operator== compares all three fields exactly.
  EXPECT_EQ(expected.pareto, got.pareto);
}

TEST(FrontierIndex, MatchesSweepOnRandomModelsAndQueries) {
  celia::util::Xoshiro256 rng(20170805);
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(trial);
    const RandomModel model = random_model(rng);
    const FrontierIndex index =
        FrontierIndex::build(model.space, model.capacity, model.hourly);
    EXPECT_EQ(index.total_configurations(), model.space.size());

    for (int q = 0; q < 10; ++q) {
      const double demand = std::pow(10.0, rng.uniform(10.0, 16.0));
      Constraints constraints;
      switch (rng.bounded(4)) {
        case 0:  // both finite, often tight
          constraints.deadline_seconds =
              demand / rng.uniform(1e9, 5e10);
          constraints.budget_dollars = rng.uniform(0.01, 50.0);
          break;
        case 1:  // deadline only
          constraints.deadline_seconds = demand / rng.uniform(1e9, 5e10);
          break;
        case 2:  // budget only
          constraints.budget_dollars = rng.uniform(0.01, 50.0);
          break;
        case 3:  // unconstrained
          break;
      }

      const SweepResult expected = sweep(model.space, model.capacity,
                                         model.hourly, demand, constraints);
      const SweepResult got = index.query(demand, constraints);
      expect_same_result(expected, got, "query");

      SweepOptions options;
      options.index_policy = IndexPolicy::Prefer(&index);
      const SweepResult via_sweep = sweep(model.space, model.capacity,
                                          model.hourly, demand, constraints,
                                          options);
      EXPECT_EQ(via_sweep.route, QueryRoute::kIndex);
      expect_same_result(expected, via_sweep, "sweep with IndexPolicy::Prefer");
    }
  }
}

TEST(FrontierIndex, EmptyFeasibleSet) {
  celia::util::Xoshiro256 rng(42);
  const RandomModel model = random_model(rng);
  const FrontierIndex index =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  Constraints constraints;
  constraints.deadline_seconds = 1e-9;  // nothing is this fast
  const SweepResult got = index.query(1e15, constraints);
  EXPECT_FALSE(got.any_feasible);
  EXPECT_EQ(got.feasible, 0u);
  EXPECT_TRUE(got.pareto.empty());

  constraints = {};
  constraints.budget_dollars = 0.0;  // strict bound: nothing is free
  const SweepResult broke = index.query(1e15, constraints);
  EXPECT_FALSE(broke.any_feasible);
  EXPECT_EQ(broke.feasible, 0u);
}

TEST(FrontierIndex, InfiniteConstraintsCountEveryAttainableConfig) {
  celia::util::Xoshiro256 rng(7);
  const RandomModel model = random_model(rng);
  const FrontierIndex index =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  const SweepResult expected =
      sweep(model.space, model.capacity, model.hourly, 1e14, Constraints{});
  const SweepResult got = index.query(1e14, Constraints{});
  expect_same_result(expected, got, "unconstrained");
  // Rates are strictly positive, so every configuration is attainable.
  EXPECT_EQ(got.feasible, model.space.size());
  EXPECT_EQ(index.attainable_configurations(), model.space.size());
}

TEST(FrontierIndex, SingleTypeSpace) {
  std::vector<int> max_counts(celia::cloud::catalog_size(), 0);
  max_counts[0] = 5;
  const ConfigurationSpace space(max_counts);
  const ResourceCapacity capacity(
      std::vector<double>(celia::cloud::catalog_size(), 1e9),
      celia::cloud::Catalog::ec2_table3());
  const std::vector<double> hourly = ec2_hourly_costs();
  const FrontierIndex index = FrontierIndex::build(space, capacity, hourly);
  EXPECT_EQ(index.total_configurations(), 5u);

  Constraints constraints;
  constraints.deadline_seconds = 3600.0;
  constraints.budget_dollars = 100.0;
  for (const double demand : {1e9, 1e12, 1e13, 1e14}) {
    const SweepResult expected =
        sweep(space, capacity, hourly, demand, constraints);
    expect_same_result(expected, index.query(demand, constraints), "1-type");
  }
}

TEST(FrontierIndex, BuildIsDeterministic) {
  celia::util::Xoshiro256 rng(99);
  const RandomModel model = random_model(rng);
  const FrontierIndex a =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  const FrontierIndex b =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  ASSERT_EQ(a.frontier().size(), b.frontier().size());
  for (std::size_t i = 0; i < a.frontier().size(); ++i) {
    EXPECT_EQ(a.frontier()[i].u, b.frontier()[i].u);
    EXPECT_EQ(a.frontier()[i].cu, b.frontier()[i].cu);
    EXPECT_EQ(a.frontier()[i].config_index, b.frontier()[i].config_index);
  }
}

TEST(FrontierIndex, StaircaseIsSortedAndAttainable) {
  celia::util::Xoshiro256 rng(5);
  const RandomModel model = random_model(rng);
  const FrontierIndex index =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  const auto frontier = index.frontier();
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].u, 0.0);
    EXPECT_LT(frontier[i].config_index, model.space.size());
    if (i > 0) {
      EXPECT_LE(frontier[i - 1].u, frontier[i].u);
      // Slopes ascend modulo the dominance margin (near-ties are kept).
      EXPECT_LE(frontier[i - 1].cu / frontier[i - 1].u,
                (frontier[i].cu / frontier[i].u) * (1.0 + 1e-13));
    }
  }
  EXPECT_GT(index.memory_bytes(), 0u);
  EXPECT_GE(index.grid_resolution(), 8u);
}

TEST(FrontierIndex, QueryValidation) {
  celia::util::Xoshiro256 rng(3);
  const RandomModel model = random_model(rng);
  const FrontierIndex index =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  EXPECT_THROW(index.query(0.0, Constraints{}), std::invalid_argument);
  EXPECT_THROW(index.query(-1.0, Constraints{}), std::invalid_argument);
  Constraints risky;
  risky.confidence_z = 1.645;
  risky.rate_sigma = 0.05;
  EXPECT_THROW(index.query(1e12, risky), std::invalid_argument);
}

TEST(FrontierIndex, SweepRejectsMismatchedIndex) {
  celia::util::Xoshiro256 rng(11);
  const RandomModel a = random_model(rng);
  const RandomModel b = random_model(rng);
  const FrontierIndex index = FrontierIndex::build(a.space, a.capacity,
                                                   a.hourly);
  SweepOptions options;
  options.index_policy = IndexPolicy::Prefer(&index);
  EXPECT_THROW(sweep(b.space, b.capacity, b.hourly, 1e12, Constraints{},
                     options),
               std::invalid_argument);
}

TEST(FrontierIndex, RiskAwareConstraintsFallBackToSweep) {
  celia::util::Xoshiro256 rng(13);
  const RandomModel model = random_model(rng);
  const FrontierIndex index =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  Constraints risky;
  risky.deadline_seconds = 3600.0;
  risky.confidence_z = 1.645;
  risky.rate_sigma = 0.05;
  const SweepResult expected =
      sweep(model.space, model.capacity, model.hourly, 1e13, risky);
  SweepOptions options;
  // Must be ignored: risk-aware needs the sweep — and the fallback is
  // visible in the result's route.
  options.index_policy = IndexPolicy::Prefer(&index);
  const SweepResult got =
      sweep(model.space, model.capacity, model.hourly, 1e13, risky, options);
  EXPECT_EQ(got.route, QueryRoute::kSweepFallback);
  expect_same_result(expected, got, "risk-aware fallback");
}

TEST(FrontierIndex, SharedCacheReturnsSameInstance) {
  celia::util::Xoshiro256 rng(17);
  const RandomModel model = random_model(rng);
  const auto first =
      shared_frontier_index(model.space, model.capacity, model.hourly);
  const auto second =
      shared_frontier_index(model.space, model.capacity, model.hourly);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first.get(), second.get());

  SweepOptions options;
  options.index_policy = IndexPolicy::Shared();
  Constraints constraints;
  constraints.deadline_seconds = 3600.0;
  const SweepResult expected =
      sweep(model.space, model.capacity, model.hourly, 1e13, constraints);
  const SweepResult got = sweep(model.space, model.capacity, model.hourly,
                                1e13, constraints, options);
  EXPECT_EQ(got.route, QueryRoute::kSharedIndex);
  expect_same_result(expected, got, "IndexPolicy::Shared");
}

TEST(FrontierIndex, RecommendMatchesSweepPlusPick) {
  celia::util::Xoshiro256 rng(19);
  const RandomModel model = random_model(rng);
  Constraints constraints;
  constraints.deadline_seconds = 7200.0;
  constraints.budget_dollars = 25.0;
  const double demand = 5e12;
  const SweepResult expected =
      sweep(model.space, model.capacity, model.hourly, demand, constraints);
  const auto pick = recommend(model.space, model.capacity, model.hourly,
                              demand, constraints, PickStrategy::kCheapest);
  ASSERT_EQ(pick.has_value(), expected.any_feasible);
  if (pick) {
    const CostTimePoint direct =
        pick_from_frontier(expected.pareto, PickStrategy::kCheapest);
    EXPECT_EQ(pick->config_index, direct.config_index);
    EXPECT_EQ(pick->cost, direct.cost);
    EXPECT_EQ(pick->seconds, direct.seconds);
  }

  Constraints impossible;
  impossible.deadline_seconds = 1e-9;
  EXPECT_FALSE(recommend(model.space, model.capacity, model.hourly, demand,
                         impossible, PickStrategy::kKnee)
                   .has_value());
}

TEST(FrontierIndex, ExplicitGridResolutionStillExact) {
  celia::util::Xoshiro256 rng(23);
  const RandomModel model = random_model(rng);
  for (const std::size_t grid : {1u, 2u, 7u, 64u}) {
    FrontierIndex::BuildOptions options;
    options.grid = grid;
    const FrontierIndex index = FrontierIndex::build(
        model.space, model.capacity, model.hourly, options);
    EXPECT_EQ(index.grid_resolution(), grid);
    Constraints constraints;
    constraints.deadline_seconds = 1800.0;
    constraints.budget_dollars = 10.0;
    const SweepResult expected = sweep(model.space, model.capacity,
                                       model.hourly, 3e12, constraints);
    expect_same_result(expected, index.query(3e12, constraints), "grid");
  }
}

TEST(FrontierIndex, BuildValidatesWidths) {
  celia::util::Xoshiro256 rng(29);
  const RandomModel model = random_model(rng);
  const std::vector<double> short_hourly(model.space.num_types() - 1, 0.1);
  EXPECT_THROW(
      FrontierIndex::build(model.space, model.capacity, short_hourly),
      std::invalid_argument);
}

}  // namespace
