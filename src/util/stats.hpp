#pragma once
// Descriptive statistics over numeric samples — used by the noise model
// calibration, validation-error reporting and benchmark summaries.

#include <cstddef>
#include <span>
#include <vector>

namespace celia::util {

/// Streaming accumulator using Welford's algorithm — numerically stable
/// mean/variance in one pass, O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance (divides by n).
  double variance() const;
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `values`; 0 for an empty span.
double mean(std::span<const double> values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> values, double p);

double median(std::span<const double> values);

/// Relative error |predicted - actual| / |actual| (paper Table IV metric).
double relative_error(double predicted, double actual);

/// Coefficient of determination of predictions vs observations.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

/// Pearson correlation coefficient.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Standard normal CDF Phi(z).
double normal_cdf(double z);

/// Standard normal quantile Phi^{-1}(p), p in (0, 1) — Acklam's rational
/// approximation (|error| < 1.2e-9). Throws std::domain_error outside (0,1).
double normal_quantile(double p);

}  // namespace celia::util
