file(REMOVE_RECURSE
  "CMakeFiles/fig2_demand.dir/fig2_demand.cpp.o"
  "CMakeFiles/fig2_demand.dir/fig2_demand.cpp.o.d"
  "fig2_demand"
  "fig2_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
