// Exactness tests for the histogram-backed quantile helpers
// (obs::quantile_from_buckets and friends): the serving layer's SLO probe
// trusts these numbers, so they are pinned against hand-computed values.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"

namespace {

namespace obs = celia::obs;

// bounds {1, 2, 4}: buckets (-inf,1], (1,2], (2,4], (4,inf).
constexpr std::array<double, 3> kBounds = {1.0, 2.0, 4.0};

TEST(ObsPercentile, InterpolatesExactlyWithinABucket) {
  // 2 samples in (-inf,1], 2 in (1,2].
  const std::array<std::uint64_t, 4> counts = {2, 2, 0, 0};
  // rank q*4 counted from 1: p25 = rank 1 = halfway into bucket 0.
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.25), 0.5);
  // p50 = rank 2 = the top of bucket 0.
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.50), 1.0);
  // p75 = rank 3 = halfway into bucket 1: 1 + 0.5 * (2 - 1).
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.75), 1.5);
  // p99 = rank 3.96: 1 + (3.96 - 2) / 2 * (2 - 1).
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.99), 1.98);
  // q = 1 lands exactly on the last observation's bucket top.
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 1.0), 2.0);
  // q = 0 is the lower edge of the first populated bucket.
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.0), 0.0);
}

TEST(ObsPercentile, SkipsEmptyBucketsAndUsesTheLowerEdge) {
  // All mass in (2,4]: every quantile interpolates inside that bucket.
  const std::array<std::uint64_t, 4> counts = {0, 0, 4, 0};
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.50),
                   2.0 + 0.5 * (4.0 - 2.0));
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 1.0), 4.0);
}

TEST(ObsPercentile, OverflowBucketClampsToTheLastBound) {
  const std::array<std::uint64_t, 4> counts = {0, 0, 0, 3};
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.50), 4.0);
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.99), 4.0);
}

TEST(ObsPercentile, EmptyHistogramIsZero) {
  const std::array<std::uint64_t, 4> counts = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(kBounds, counts, 0.99), 0.0);
}

TEST(ObsPercentile, RejectsMalformedInput) {
  const std::array<std::uint64_t, 3> short_counts = {1, 1, 1};
  EXPECT_THROW(obs::quantile_from_buckets(kBounds, short_counts, 0.5),
               std::invalid_argument);
  const std::array<std::uint64_t, 4> counts = {1, 1, 1, 1};
  EXPECT_THROW(obs::quantile_from_buckets(kBounds, counts, -0.1),
               std::invalid_argument);
  EXPECT_THROW(obs::quantile_from_buckets(kBounds, counts, 1.1),
               std::invalid_argument);
}

TEST(ObsPercentile, LiveHistogramQuantilesMatchTheRawHelper) {
  obs::Histogram& hist = obs::histogram(
      "celia_test_percentile_seconds",
      std::span<const double>(kBounds.data(), kBounds.size()));
  hist.reset();
  hist.record(0.5);
  hist.record(0.9);
  hist.record(1.5);
  hist.record(1.6);
  const obs::LatencyQuantiles window = obs::latency_quantiles(hist);
  EXPECT_EQ(window.count, 4u);
  EXPECT_DOUBLE_EQ(window.p50, 1.0);
  EXPECT_DOUBLE_EQ(window.p99, 1.98);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(hist, 0.75), 1.5);
}

TEST(ObsPercentile, SinceSnapshotDiffsOutTheEarlierWindow) {
  obs::Histogram& hist = obs::histogram(
      "celia_test_percentile_since_seconds",
      std::span<const double>(kBounds.data(), kBounds.size()));
  hist.reset();
  hist.record(0.5);  // the old window: one fast sample
  const std::vector<std::uint64_t> snapshot = hist.bucket_counts();

  hist.record(3.0);
  hist.record(3.5);
  const obs::LatencyQuantiles fresh =
      obs::latency_quantiles_since(hist, snapshot);
  // Only the two (2,4] samples count: p50 = 2 + 0.5 * 2 = 3.
  EXPECT_EQ(fresh.count, 2u);
  EXPECT_DOUBLE_EQ(fresh.p50, 3.0);

  const std::vector<std::uint64_t> wrong_shape(2, 0);
  EXPECT_THROW(obs::latency_quantiles_since(hist, wrong_shape),
               std::invalid_argument);
}

}  // namespace
