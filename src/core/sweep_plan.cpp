#include "core/sweep_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace celia::core {

namespace {

bool all_zero(std::span<const double> values) {
  return std::all_of(values.begin(), values.end(),
                     [](double v) { return v == 0.0; });
}

}  // namespace

SweepPlan::SweepPlan(const ConfigurationSpace& space,
                     std::span<const double> rates,
                     std::span<const double> hourly,
                     std::span<const double> var_terms, bool track_instances)
    : space_(&space),
      num_types_(space.num_types()),
      dims_(1),
      track_instances_(track_instances) {
  if (rates.size() != num_types_ || hourly.size() != num_types_) {
    throw std::invalid_argument(
        "SweepPlan: rates/hourly width must match the configuration space");
  }
  if (!var_terms.empty() && var_terms.size() != num_types_) {
    throw std::invalid_argument(
        "SweepPlan: var_terms width must match the configuration space");
  }
  rates_.assign(rates.begin(), rates.end());
  hourly_.assign(hourly.begin(), hourly.end());
  has_var_ = !var_terms.empty() && !all_zero(var_terms);
  if (has_var_) var_terms_.assign(var_terms.begin(), var_terms.end());
}

SweepPlan::SweepPlan(const ConfigurationSpace& space,
                     std::span<const std::vector<double>> rate_rows,
                     std::span<const double> hourly, bool track_instances)
    : space_(&space),
      num_types_(space.num_types()),
      dims_(rate_rows.size()),
      track_instances_(track_instances) {
  if (dims_ == 0) {
    throw std::invalid_argument("SweepPlan: at least one rate row required");
  }
  if (hourly.size() != num_types_) {
    throw std::invalid_argument(
        "SweepPlan: hourly width must match the configuration space");
  }
  rates_.reserve(dims_ * num_types_);
  for (const auto& row : rate_rows) {
    if (row.size() != num_types_) {
      throw std::invalid_argument(
          "SweepPlan: every rate row must match the configuration space");
    }
    rates_.insert(rates_.end(), row.begin(), row.end());
  }
  hourly_.assign(hourly.begin(), hourly.end());
}

double SweepPlan::fold_tail(std::span<const int> digits,
                            std::span<const double> weights) {
  double acc = 0.0;
  for (std::size_t i = digits.size(); i-- > 1;) {
    acc = acc + digits[i] * weights[i];
  }
  return acc;
}

double SweepPlan::fold_value(std::span<const int> digits,
                             std::span<const double> weights) {
  double acc = fold_tail(digits, weights);
  const double w0 = weights[0];
  for (int k = 0; k < digits[0]; ++k) acc += w0;
  return acc;
}

}  // namespace celia::core
