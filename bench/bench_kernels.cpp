// Microbenchmark M3: throughput of the elastic-application kernels (the
// instrumented compute the whole measurement methodology rests on).

#include <benchmark/benchmark.h>

#include "bench_io.hpp"

#include "apps/galaxy/nbody.hpp"
#include "apps/sand/align.hpp"
#include "apps/sand/sequence.hpp"
#include "apps/x264/encoder.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia;

void BM_X264EncodeBlock(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  const apps::x264::Block block = apps::x264::make_block(rng);
  const apps::x264::Block reference = apps::x264::make_block(rng);
  const int f = static_cast<int>(state.range(0));
  hw::PerfCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::x264::encode_block(block, reference, f, counter));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_X264EncodeBlock)->Arg(10)->Arg(30)->Arg(50);

void BM_X264MotionSearch(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  const apps::x264::Block block = apps::x264::make_block(rng);
  const apps::x264::Block reference = apps::x264::make_block(rng);
  hw::PerfCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apps::x264::motion_search(block, reference, counter));
  }
  state.SetItemsProcessed(state.iterations() *
                          apps::x264::kMotionCandidates * 64);
}
BENCHMARK(BM_X264MotionSearch);

void BM_GalaxyForceStep(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  apps::galaxy::Bodies bodies =
      apps::galaxy::make_plummer(static_cast<std::size_t>(state.range(0)),
                                 rng);
  hw::PerfCounter counter;
  for (auto _ : state) {
    apps::galaxy::leapfrog_step(bodies, counter);
    benchmark::DoNotOptimize(bodies.ax[0]);
  }
  const auto n = static_cast<std::int64_t>(state.range(0));
  state.SetItemsProcessed(state.iterations() * n * (n - 1));
}
BENCHMARK(BM_GalaxyForceStep)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_SandBandedAlign(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const apps::sand::Sequence a = apps::sand::make_sequence(2000, rng);
  const apps::sand::Sequence b = apps::sand::make_sequence(2000, rng);
  const int band = static_cast<int>(state.range(0));
  hw::PerfCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::sand::banded_align(a, b, band, counter));
  }
  state.SetItemsProcessed(state.iterations() * 2000 * band);
}
BENCHMARK(BM_SandBandedAlign)->Arg(6)->Arg(12)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

void BM_SandKmerScan(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  const apps::sand::Sequence read = apps::sand::make_sequence(2000, rng);
  hw::PerfCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::sand::kmer_scan(read, counter));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SandKmerScan);

}  // namespace

CELIA_BENCHMARK_MAIN("kernels");
