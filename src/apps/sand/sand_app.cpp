#include "apps/sand/sand_app.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace celia::apps::sand {

namespace {

std::uint64_t checked_n(const AppParams& params) {
  const auto n = static_cast<std::int64_t>(std::llround(params.n));
  if (n < 2) throw std::invalid_argument("sand: need at least two sequences");
  return static_cast<std::uint64_t>(n);
}

double checked_t(const AppParams& params) {
  if (params.a <= 0.0 || params.a > 1.0)
    throw std::invalid_argument("sand: threshold t must be in (0, 1]");
  return params.a;
}

}  // namespace

int SandModel::band(double t) const {
  const auto width = static_cast<int>(
      std::llround(band_base + band_log_coeff * std::log(t)));
  return std::max(min_band, width);
}

namespace {

/// The master's per-read task-index construction: a SplitMix64-style hash
/// chain over the read id. Real work (the chain cannot be folded away) with
/// a fixed ledger: 2 integer multiplies + 4 integer ops per step.
std::uint64_t master_pass(std::uint64_t read_id, std::uint64_t steps,
                          hw::PerfCounter& counter) {
  std::uint64_t h = read_id + 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t k = 0; k < steps; ++k) {
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  }
  counter.add(hw::OpClass::kIntMul, 2 * steps);
  counter.add(hw::OpClass::kIntArith, 4 * steps);
  return h;
}

}  // namespace

hw::PerfCounter SandApp::master_pass_ops() const {
  hw::PerfCounter ops;
  ops.add(hw::OpClass::kIntMul, 2 * model_.master_chain_steps);
  ops.add(hw::OpClass::kIntArith, 4 * model_.master_chain_steps);
  return ops;
}

hw::PerfCounter SandApp::per_read_ops(double t, std::uint64_t n) const {
  const auto candidates = static_cast<std::uint64_t>(
      std::min<std::uint64_t>(model_.candidates_per_read, n - 1));
  const auto band = static_cast<std::uint64_t>(model_.band(t));

  hw::PerfCounter ops = kmer_scan_ops(model_.read_length);
  const hw::PerfCounter align = banded_align_ops(model_.read_length, band);
  for (int i = 0; i < hw::kNumOpClasses; ++i) {
    const auto op = static_cast<hw::OpClass>(i);
    ops.add(op, align.ops(op) * candidates);
  }
  ops.add(hw::OpClass::kOther, model_.master_ops_per_read);
  return ops;
}

double SandApp::exact_demand(const AppParams& params) const {
  const std::uint64_t n = checked_n(params);
  const double t = checked_t(params);
  return static_cast<double>(n) *
         static_cast<double>(per_read_ops(t, n).instructions() +
                             master_pass_ops().instructions());
}

void SandApp::run_instrumented(const AppParams& params,
                               hw::PerfCounter& counter,
                               std::uint64_t seed) const {
  const std::uint64_t n = checked_n(params);
  const double t = checked_t(params);
  const int band = model_.band(t);
  const auto candidates =
      std::min<std::uint64_t>(model_.candidates_per_read, n - 1);

  util::Xoshiro256 rng(seed);
  std::vector<Sequence> reads;
  reads.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    reads.push_back(make_sequence(model_.read_length, rng));

  // Unsigned so the deliberate wraparound of this optimisation barrier is
  // defined behaviour; the value is never read.
  volatile std::uint64_t sink = 0;
  // Master pass: build the task index (serial in the cluster run).
  for (std::uint64_t i = 0; i < n; ++i) {
    sink = sink + master_pass(i, model_.master_chain_steps, counter);
  }
  // Worker passes: k-mer scan + candidate alignments.
  for (std::uint64_t i = 0; i < n; ++i) {
    sink = sink + kmer_scan(reads[i], counter);
    // Deterministic candidate selection: the next `candidates` reads in a
    // ring (real SAND picks them via the k-mer index; the count per read
    // is the quantity that matters for demand).
    for (std::uint64_t c = 1; c <= candidates; ++c) {
      const std::uint64_t j = (i + c) % n;
      sink = sink + static_cast<std::uint64_t>(
                        banded_align(reads[i], reads[j], band, counter));
    }
    counter.add(hw::OpClass::kOther, model_.master_ops_per_read);
  }
}

Workload SandApp::make_workload(const AppParams& params) const {
  const std::uint64_t n = checked_n(params);
  const double t = checked_t(params);
  const double per_read =
      static_cast<double>(per_read_ops(t, n).instructions());

  const std::uint64_t reads_per_task = std::max<std::uint64_t>(
      1, std::min(model_.reads_per_task, n));
  const std::uint64_t tasks = (n + reads_per_task - 1) / reads_per_task;

  Workload workload;
  workload.app_name = std::string(name());
  workload.workload_class = workload_class();
  workload.pattern = ParallelPattern::kMasterWorker;
  workload.dispatch_seconds_per_task = model_.dispatch_seconds_per_task;
  workload.serial_instructions =
      static_cast<double>(master_pass_ops().instructions()) *
      static_cast<double>(n);
  workload.task_instructions.reserve(tasks);
  std::uint64_t remaining = n;
  for (std::uint64_t task = 0; task < tasks; ++task) {
    const std::uint64_t reads = std::min(reads_per_task, remaining);
    workload.task_instructions.push_back(per_read *
                                         static_cast<double>(reads));
    remaining -= reads;
  }
  workload.total_instructions =
      per_read * static_cast<double>(n) + workload.serial_instructions;
  return workload;
}

std::vector<AppParams> SandApp::profile_grid() const {
  // Paper §IV-A: n in [1M, 64M] sequences, t in [0.01, 1].
  std::vector<AppParams> grid;
  for (const double n : {1e6, 2e6, 4e6, 8e6, 16e6, 32e6, 64e6})
    for (const double t : {0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0})
      grid.push_back({n, t});
  return grid;
}

}  // namespace celia::apps::sand
