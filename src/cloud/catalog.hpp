#pragma once
// cloud::Catalog — the resource catalog as an immutable, fingerprinted
// VALUE.
//
// The paper fixes one catalog forever: Table III's nine EC2 Oregon types
// with m_i,max = 5. A production planner must search over arbitrary
// provider price lists (different types, per-type instance limits,
// per-region prices), and serve many of them concurrently — so the
// catalog is a value that is constructed, copied, loaded from a file
// (cloud/catalog_io.hpp), snapshotted by core::PlannerEngine, and
// threaded explicitly through every planning layer.
//
// Two fingerprints identify a catalog:
//
//   * structure_fingerprint() covers the price-FREE identity: the ordered
//     instance types (name, category, size, vCPUs, frequency, memory,
//     storage, microarch) and the per-type instance limits. A
//     ResourceCapacity characterized against a catalog pins this value;
//     planning it against a structurally different catalog throws. Two
//     catalogs that differ only in prices (e.g. per-region repricings of
//     the same types) share a structure fingerprint, so one measurement
//     campaign serves every region.
//
//   * fingerprint() additionally covers prices and the (name, region)
//     identity. The shared FrontierIndex cache and PlannerEngine key on
//     it, so two distinct catalogs can never alias one cached staircase.
//
// Catalog::ec2_table3() is the paper's Table III (uniform limit 5) and
// reproduces the historical global-catalog behavior bit-identically.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/instance_type.hpp"

namespace celia::cloud {

class Catalog {
 public:
  /// `limits[i]` = m_i,max for type i; an empty vector applies
  /// kDefaultInstanceLimit to every type. Throws std::invalid_argument on
  /// empty/duplicate/invalid types, non-positive prices, negative limits,
  /// or a limits/types length mismatch.
  Catalog(std::string name, std::string region,
          std::vector<InstanceType> types, std::vector<int> limits = {});

  /// The paper's Table III: nine EC2 us-west-2 (Oregon) on-demand types,
  /// uniform per-type limit of kDefaultInstanceLimit (= 5). Immutable and
  /// process-wide; every legacy entry point that used the old global
  /// catalog resolves to this value.
  static const Catalog& ec2_table3();
  /// Shared handle to ec2_table3() for owners that keep catalogs alive
  /// (CloudProvider, Celia, PlannerEngine snapshots).
  static std::shared_ptr<const Catalog> ec2_table3_ptr();

  const std::string& name() const { return name_; }
  const std::string& region() const { return region_; }

  std::size_t size() const { return types_.size(); }
  std::span<const InstanceType> types() const { return types_; }
  const InstanceType& type(std::size_t index) const {
    return types_.at(index);
  }

  /// Per-type instance limits (m_i,max), aligned with types().
  const std::vector<int>& limits() const { return limits_; }
  int limit(std::size_t index) const { return limits_.at(index); }

  /// Per-hour price of one instance of each type, aligned with types().
  std::span<const double> hourly_costs() const { return hourly_; }

  /// Lookup by type name; nullopt when unknown.
  std::optional<std::size_t> find(std::string_view type_name) const;
  /// Index of a type; throws std::out_of_range when unknown.
  std::size_t index_of(std::string_view type_name) const;

  /// Price-free identity: types + limits (see the header comment).
  std::uint64_t structure_fingerprint() const {
    return structure_fingerprint_;
  }
  /// Full identity: structure + prices + (name, region).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Same types and limits, new identity and prices — how per-region
  /// catalogs with per-type (non-uniform) price differences are made.
  /// `hourly_costs` must have one positive finite entry per type.
  Catalog repriced(std::string name, std::string region,
                   std::vector<double> hourly_costs) const;

  /// Convenience repricing: every price scaled by `multiplier` (> 0).
  Catalog with_price_multiplier(std::string name, std::string region,
                                double multiplier) const;

  /// Same types and prices, new per-type limits — how the provisioning
  /// orchestrator derives the SHRUNKEN catalog it re-plans against when a
  /// type hits InsufficientCapacity. Limits cover the structure, so the
  /// structure_fingerprint changes and stale index caches can never serve
  /// the shrunken space. `limits` needs one non-negative entry per type.
  Catalog with_limits(std::string name, std::string region,
                      std::vector<int> limits) const;

 private:
  std::string name_;
  std::string region_;
  std::vector<InstanceType> types_;
  std::vector<int> limits_;
  std::vector<double> hourly_;
  std::uint64_t structure_fingerprint_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace celia::cloud
