// Tests for separable two-parameter demand fitting (fit/demand_fit.hpp).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fit/demand_fit.hpp"

namespace {

using namespace celia::fit;

std::vector<ProfilePoint> make_grid(const std::vector<double>& ns,
                                    const std::vector<double>& as,
                                    double (*demand)(double, double)) {
  std::vector<ProfilePoint> grid;
  for (const double n : ns)
    for (const double a : as) grid.push_back({n, a, demand(n, a)});
  return grid;
}

TEST(SeparableDemand, RecoversLinearTimesQuadratic) {
  // x264-like: D = n x (50 + 0.4 a^2).
  const auto grid = make_grid(
      {2, 4, 8, 16, 32}, {10, 20, 30, 40, 50},
      [](double n, double a) { return n * (50.0 + 0.4 * a * a); });
  const auto model = SeparableDemandModel::fit(grid);
  EXPECT_EQ(model.n_shape(), Shape::kLinear);
  EXPECT_EQ(model.a_shape(), Shape::kQuadratic);
  EXPECT_GT(model.grid_r2(), 1.0 - 1e-9);
  EXPECT_NEAR(model.predict(64, 25), 64 * (50.0 + 0.4 * 625), 1e-6 * 64 * 300);
}

TEST(SeparableDemand, RecoversQuadraticTimesLinear) {
  // galaxy-like: D = 260 n^2 a.
  const auto grid =
      make_grid({8192, 16384, 32768, 65536}, {1000, 2000, 4000, 8000},
                [](double n, double a) { return 260.0 * n * n * a; });
  const auto model = SeparableDemandModel::fit(grid);
  EXPECT_EQ(model.n_shape(), Shape::kQuadratic);
  EXPECT_EQ(model.a_shape(), Shape::kLinear);
  const double expected = 260.0 * 131072.0 * 131072.0 * 5000.0;
  EXPECT_NEAR(model.predict(131072, 5000), expected, expected * 1e-6);
}

TEST(SeparableDemand, RecoversLinearTimesLog) {
  // sand-like: D = n x (3e6 + 4e5 ln a).
  const auto grid = make_grid(
      {1e6, 2e6, 4e6, 8e6}, {0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0},
      [](double n, double a) { return n * (3e6 + 4e5 * std::log(a)); });
  const auto model = SeparableDemandModel::fit(grid);
  EXPECT_EQ(model.n_shape(), Shape::kLinear);
  EXPECT_EQ(model.a_shape(), Shape::kLogarithmic);
  EXPECT_GT(model.grid_r2(), 1.0 - 1e-9);
}

TEST(SeparableDemand, InterpolatesInsideGrid) {
  const auto grid = make_grid(
      {2, 4, 8, 16, 32}, {10, 20, 30, 40, 50},
      [](double n, double a) { return n * (10.0 + a); });
  const auto model = SeparableDemandModel::fit(grid);
  EXPECT_NEAR(model.predict(10, 25), 10 * 35.0, 0.5);
}

TEST(SeparableDemand, PredictionClampedAtZero) {
  const auto grid = make_grid(
      {2, 4, 8, 16, 32}, {10, 20, 30, 40, 50},
      [](double n, double a) { return n * (10.0 + a); });
  const auto model = SeparableDemandModel::fit(grid);
  // Far below the fitted range the linear extrapolation could go negative;
  // the prediction must clamp.
  EXPECT_GE(model.predict(0.0001, 10), 0.0);
}

TEST(SeparableDemand, ReferencesAreGridValues) {
  const auto grid = make_grid(
      {2, 4, 8, 16, 32}, {10, 20, 30, 40, 50},
      [](double n, double a) { return n * a; });
  const auto model = SeparableDemandModel::fit(grid);
  EXPECT_TRUE(model.reference_n() == 2 || model.reference_n() == 4 ||
              model.reference_n() == 8 || model.reference_n() == 16 ||
              model.reference_n() == 32);
  EXPECT_GE(model.reference_a(), 10);
  EXPECT_LE(model.reference_a(), 50);
}

TEST(SeparableDemand, TooFewPointsThrows) {
  std::vector<ProfilePoint> grid = {{1, 1, 1}, {2, 1, 2}, {1, 2, 2}};
  EXPECT_THROW(SeparableDemandModel::fit(grid), std::invalid_argument);
}

TEST(SeparableDemand, MissingSliceThrows) {
  // 8 points but no (n, a) grid structure: only 2 distinct n at any a.
  std::vector<ProfilePoint> grid;
  for (int i = 0; i < 8; ++i)
    grid.push_back({static_cast<double>(i % 2 + 1),
                    static_cast<double>(i + 1), 10.0});
  EXPECT_THROW(SeparableDemandModel::fit(grid), std::invalid_argument);
}

}  // namespace
