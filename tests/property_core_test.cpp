// Property-style parameterized sweeps over CELIA's core machinery:
// configuration-space roundtrips across space shapes, Pareto-filter
// invariants across random seeds, and sweep-vs-brute-force equivalence
// across constraint settings.

#include <gtest/gtest.h>

#include <vector>

#include "cloud/pricing.hpp"
#include "core/enumerate.hpp"
#include "core/pareto.hpp"
#include "core/time_cost.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::core;

// ---------------------------------------------------------------------------
// Encode/decode roundtrip over differently-shaped spaces.
// ---------------------------------------------------------------------------

class SpaceRoundTrip
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(SpaceRoundTrip, EveryIndexRoundTrips) {
  const ConfigurationSpace space(GetParam());
  ASSERT_LE(space.size(), 100000u) << "keep property spaces small";
  for (std::uint64_t index = 0; index < space.size(); ++index) {
    EXPECT_EQ(space.encode(space.decode(index)), index);
  }
}

TEST_P(SpaceRoundTrip, SizeMatchesClosedForm) {
  const ConfigurationSpace space(GetParam());
  std::uint64_t expected = 1;
  for (const int max : GetParam()) expected *= max + 1;
  EXPECT_EQ(space.size(), expected - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpaceRoundTrip,
    ::testing::Values(std::vector<int>{5}, std::vector<int>{1, 1, 1, 1},
                      std::vector<int>{3, 0, 2},  // a type with zero allowed
                      std::vector<int>{9, 9, 9},
                      std::vector<int>{2, 3, 4, 5},
                      std::vector<int>{1, 2, 1, 2, 1, 2, 1, 2, 1}));

// ---------------------------------------------------------------------------
// Pareto-filter invariants over random point clouds.
// ---------------------------------------------------------------------------

class ParetoProperties : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<CostTimePoint> cloud_points(std::uint64_t seed, std::size_t n) {
  celia::util::Xoshiro256 rng(seed);
  std::vector<CostTimePoint> points;
  for (std::uint64_t i = 0; i < n; ++i)
    points.push_back({i, rng.uniform(1, 100), rng.uniform(1, 100)});
  return points;
}

TEST_P(ParetoProperties, FrontierPointsAreMutuallyNondominated) {
  const auto frontier = pareto_filter(cloud_points(GetParam(), 500));
  for (const auto& a : frontier)
    for (const auto& b : frontier)
      if (a.config_index != b.config_index) {
        EXPECT_FALSE(dominates(a, b));
      }
}

TEST_P(ParetoProperties, EveryInputPointIsDominatedByOrOnFrontier) {
  const auto points = cloud_points(GetParam(), 500);
  const auto frontier = pareto_filter(points);
  for (const auto& p : points) {
    bool covered = false;
    for (const auto& f : frontier) {
      if (f.config_index == p.config_index || dominates(f, p) ||
          (f.seconds == p.seconds && f.cost == p.cost)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

TEST_P(ParetoProperties, EpsilonFrontierIsNoLargerThanExact) {
  const auto points = cloud_points(GetParam(), 500);
  const auto exact = pareto_filter(points);
  const auto eps = epsilon_nondominated(points, 10.0, 10.0);
  EXPECT_LE(eps.size(), exact.size());
}

TEST_P(ParetoProperties, FilterIsPermutationInvariant) {
  auto points = cloud_points(GetParam(), 300);
  const auto frontier1 = pareto_filter(points);
  celia::util::Xoshiro256 rng(GetParam() + 1);
  for (std::size_t i = points.size(); i > 1; --i)
    std::swap(points[i - 1], points[rng.bounded(i)]);
  const auto frontier2 = pareto_filter(points);
  ASSERT_EQ(frontier1.size(), frontier2.size());
  for (std::size_t i = 0; i < frontier1.size(); ++i)
    EXPECT_EQ(frontier1[i].config_index, frontier2[i].config_index);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

// ---------------------------------------------------------------------------
// Sweep equals brute force across constraint settings.
// ---------------------------------------------------------------------------

struct ConstraintCase {
  double demand;
  double deadline_hours;
  double budget;
};

class SweepEquivalence : public ::testing::TestWithParam<ConstraintCase> {};

TEST_P(SweepEquivalence, FeasibleSetMatchesBruteForce) {
  const ConstraintCase param = GetParam();
  const ConfigurationSpace space(std::vector<int>(9, 1));
  const ResourceCapacity capacity(
      std::vector<double>(
          {1.4e9, 1.4e9, 1.4e9, 1.3e9, 1.3e9, 1.3e9, 1.1e9, 1.1e9, 1.1e9}),
      celia::cloud::Catalog::ec2_table3());
  Constraints constraints;
  constraints.deadline_seconds = param.deadline_hours * 3600.0;
  constraints.budget_dollars = param.budget;

  std::uint64_t expected_feasible = 0;
  std::vector<CostTimePoint> feasible;
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const Prediction p = predict(param.demand, space.decode(i), capacity);
    if (p.seconds < constraints.deadline_seconds &&
        p.cost < constraints.budget_dollars) {
      ++expected_feasible;
      feasible.push_back({i, p.seconds, p.cost});
    }
  }
  const auto expected_pareto = pareto_filter(feasible);

  const SweepResult result =
      sweep(space, capacity, param.demand, constraints);
  EXPECT_EQ(result.feasible, expected_feasible);
  ASSERT_EQ(result.pareto.size(), expected_pareto.size());
  for (std::size_t i = 0; i < expected_pareto.size(); ++i)
    EXPECT_EQ(result.pareto[i].config_index,
              expected_pareto[i].config_index);
}

INSTANTIATE_TEST_SUITE_P(
    Constraintses, SweepEquivalence,
    ::testing::Values(ConstraintCase{1e15, 24, 1e9},   // only deadline
                      ConstraintCase{1e15, 1e9, 15},   // only budget
                      ConstraintCase{1e15, 12, 14},    // both bind
                      ConstraintCase{1e12, 1e9, 1e9},  // nothing binds
                      ConstraintCase{1e18, 24, 350},   // nothing feasible
                      ConstraintCase{5e14, 4, 20}));

// ---------------------------------------------------------------------------
// Billing-policy ordering across durations (continuous <= s <= h).
// ---------------------------------------------------------------------------

class BillingOrdering : public ::testing::TestWithParam<double> {};

TEST_P(BillingOrdering, PoliciesNeverInvert) {
  const std::vector<int> counts = {1, 0, 2, 0, 1, 0, 0, 0, 1};
  const double seconds = GetParam();
  const double continuous = celia::cloud::configuration_cost(
      counts, seconds, celia::cloud::BillingPolicy::kContinuous);
  const double per_second = celia::cloud::configuration_cost(
      counts, seconds, celia::cloud::BillingPolicy::kPerSecond);
  const double per_hour = celia::cloud::configuration_cost(
      counts, seconds, celia::cloud::BillingPolicy::kPerHour);
  EXPECT_LE(continuous, per_second + 1e-12);
  EXPECT_LE(per_second, per_hour + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Durations, BillingOrdering,
                         ::testing::Values(0.5, 59.0, 61.0, 3599.0, 3600.0,
                                           3601.0, 7200.5, 86400.0,
                                           90000.25));

}  // namespace
