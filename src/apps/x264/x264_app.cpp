#include "apps/x264/x264_app.hpp"

#include <cmath>
#include <stdexcept>

namespace celia::apps::x264 {

namespace {

int checked_f(const AppParams& params) {
  const int f = static_cast<int>(std::llround(params.a));
  if (f < 1 || f > 51)
    throw std::invalid_argument("x264: compression factor out of [1, 51]");
  return f;
}

std::uint64_t checked_n(const AppParams& params) {
  const auto n = static_cast<std::int64_t>(std::llround(params.n));
  if (n < 1) throw std::invalid_argument("x264: need at least one clip");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

double X264App::exact_demand(const AppParams& params) const {
  const std::uint64_t n = checked_n(params);
  const int f = checked_f(params);
  return static_cast<double>(n) *
         static_cast<double>(clip_ops(model_, f).instructions());
}

void X264App::run_instrumented(const AppParams& params,
                               hw::PerfCounter& counter,
                               std::uint64_t seed) const {
  const std::uint64_t n = checked_n(params);
  const int f = checked_f(params);
  volatile double sink = 0.0;
  for (std::uint64_t clip = 0; clip < n; ++clip) {
    sink = sink + encode_clip(model_, f, seed + clip, counter);
  }
}

Workload X264App::make_workload(const AppParams& params) const {
  const std::uint64_t n = checked_n(params);
  const int f = checked_f(params);
  const double per_clip =
      static_cast<double>(clip_ops(model_, f).instructions());

  Workload workload;
  workload.app_name = std::string(name());
  workload.workload_class = workload_class();
  workload.pattern = ParallelPattern::kIndependentTasks;
  workload.task_instructions.assign(n, per_clip);
  workload.total_instructions = per_clip * static_cast<double>(n);
  return workload;
}

std::vector<AppParams> X264App::profile_grid() const {
  // Paper §IV-A: n in [2, 32], f in [10, 50].
  std::vector<AppParams> grid;
  for (const double n : {2, 4, 8, 16, 32})
    for (const double f : {10, 20, 30, 40, 50}) grid.push_back({n, f});
  return grid;
}

}  // namespace celia::apps::x264
