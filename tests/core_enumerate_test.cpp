// Tests for the parallel exhaustive sweep (core/enumerate.hpp) — checked
// against a brute-force evaluation on reduced spaces and for determinism
// on the full 10 M space.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "core/enumerate.hpp"
#include "core/time_cost.hpp"

namespace {

using namespace celia::core;

ResourceCapacity test_capacity() {
  // Distinct, realistic per-vCPU rates so ties are rare.
  std::vector<double> per_vcpu = {1.4e9, 1.4e9, 1.4e9, 1.3e9, 1.3e9,
                                  1.3e9, 1.1e9, 1.1e9, 1.1e9};
  return ResourceCapacity(per_vcpu, celia::cloud::Catalog::ec2_table3());
}

TEST(Sweep, VisitsEveryConfigurationOnce) {
  const ConfigurationSpace space(std::vector<int>(9, 1));  // 511 configs
  const auto capacity = test_capacity();
  std::atomic<std::uint64_t> visits{0};
  for_each_configuration(space, capacity,
                         [&](std::uint64_t, double, double) { ++visits; });
  EXPECT_EQ(visits.load(), space.size());
}

TEST(Sweep, StreamedCapacityAndCostMatchDirectComputation) {
  const ConfigurationSpace space(std::vector<int>(9, 2));
  const auto capacity = test_capacity();
  std::atomic<int> failures{0};
  for_each_configuration(
      space, capacity, [&](std::uint64_t index, double u, double cu) {
        const Configuration config = space.decode(index);
        const double expected_u = configuration_capacity(config, capacity);
        const double expected_cu = configuration_hourly_cost(config);
        if (std::abs(u - expected_u) > 1e-3 ||
            std::abs(cu - expected_cu) > 1e-9)
          ++failures;
      });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Sweep, FeasibleCountMatchesBruteForce) {
  const ConfigurationSpace space(std::vector<int>(9, 1));
  const auto capacity = test_capacity();
  const double demand = 1e15;
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.budget_dollars = 12.0;

  std::uint64_t expected = 0;
  CostTimePoint best_cost{0, 0, 1e18};
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const Configuration config = space.decode(i);
    const Prediction p = predict(demand, config, capacity);
    if (p.seconds < constraints.deadline_seconds &&
        p.cost < constraints.budget_dollars) {
      ++expected;
      if (p.cost < best_cost.cost) best_cost = {i, p.seconds, p.cost};
    }
  }

  const SweepResult result = sweep(space, capacity, demand, constraints);
  EXPECT_EQ(result.feasible, expected);
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(result.min_cost.config_index, best_cost.config_index);
  EXPECT_NEAR(result.min_cost.cost, best_cost.cost, 1e-12);
}

TEST(Sweep, ParetoMatchesBruteForceOnReducedSpace) {
  const ConfigurationSpace space(std::vector<int>(9, 1));
  const auto capacity = test_capacity();
  const double demand = 5e14;
  Constraints constraints;
  constraints.deadline_seconds = 12 * 3600.0;
  constraints.budget_dollars = 3.0;

  std::vector<CostTimePoint> feasible;
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const Prediction p = predict(demand, space.decode(i), capacity);
    if (p.seconds < constraints.deadline_seconds &&
        p.cost < constraints.budget_dollars)
      feasible.push_back({i, p.seconds, p.cost});
  }
  const auto expected = pareto_filter(feasible);

  const SweepResult result = sweep(space, capacity, demand, constraints);
  ASSERT_EQ(result.pareto.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.pareto[i].config_index, expected[i].config_index);
  }
}

TEST(Sweep, UnconstrainedFindsEverythingFeasible) {
  const ConfigurationSpace space(std::vector<int>(9, 2));
  const auto capacity = test_capacity();
  const SweepResult result = sweep(space, capacity, 1e12, Constraints{});
  EXPECT_EQ(result.feasible, space.size());
  EXPECT_TRUE(result.any_feasible);
}

TEST(Sweep, ImpossibleDeadlineFindsNothing) {
  const ConfigurationSpace space(std::vector<int>(9, 2));
  const auto capacity = test_capacity();
  Constraints constraints;
  constraints.deadline_seconds = 1e-6;
  const SweepResult result = sweep(space, capacity, 1e18, constraints);
  EXPECT_EQ(result.feasible, 0u);
  EXPECT_FALSE(result.any_feasible);
  EXPECT_TRUE(result.pareto.empty());
}

TEST(Sweep, MinTimePointIsFullFleet) {
  const ConfigurationSpace space(std::vector<int>(9, 2));
  const auto capacity = test_capacity();
  const SweepResult result = sweep(space, capacity, 1e15, Constraints{});
  // The fastest configuration is everything maxed out.
  const Configuration fastest = space.decode(result.min_time.config_index);
  for (const int count : fastest) EXPECT_EQ(count, 2);
}

TEST(Sweep, SampledScatterRespectsStride) {
  const ConfigurationSpace space(std::vector<int>(9, 2));
  const auto capacity = test_capacity();
  SweepOptions options;
  options.sample_stride = 100;
  options.collect_pareto = false;
  const SweepResult result =
      sweep(space, capacity, 1e12, Constraints{}, options);
  EXPECT_NEAR(static_cast<double>(result.feasible_points.size()),
              static_cast<double>(result.feasible) / 100.0,
              static_cast<double>(result.feasible) / 100.0 * 0.2 + 20);
}

TEST(Sweep, DeterministicAcrossRuns) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = test_capacity();
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.budget_dollars = 350.0;
  const double demand = 9e15;
  const SweepResult a = sweep(space, capacity, demand, constraints);
  const SweepResult b = sweep(space, capacity, demand, constraints);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.min_cost.config_index, b.min_cost.config_index);
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (std::size_t i = 0; i < a.pareto.size(); ++i)
    EXPECT_EQ(a.pareto[i].config_index, b.pareto[i].config_index);
}

TEST(Sweep, ParetoPointsAreFeasibleAndMutuallyNondominated) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = test_capacity();
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.budget_dollars = 350.0;
  const SweepResult result = sweep(space, capacity, 9e15, constraints);
  ASSERT_FALSE(result.pareto.empty());
  for (const auto& p : result.pareto) {
    EXPECT_LT(p.seconds, constraints.deadline_seconds);
    EXPECT_LT(p.cost, constraints.budget_dollars);
  }
  for (std::size_t i = 0; i < result.pareto.size(); ++i)
    for (std::size_t j = 0; j < result.pareto.size(); ++j)
      if (i != j) {
        EXPECT_FALSE(dominates(result.pareto[i], result.pareto[j]));
      }
}

TEST(Sweep, InvalidInputsThrow) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = test_capacity();
  EXPECT_THROW(sweep(space, capacity, 0.0, Constraints{}),
               std::invalid_argument);
}

TEST(Sweep, ExplicitPoolIsUsed) {
  celia::parallel::ThreadPool pool(2);
  const ConfigurationSpace space(std::vector<int>(9, 1));
  const auto capacity = test_capacity();
  SweepOptions options;
  options.pool = &pool;
  const SweepResult result =
      sweep(space, capacity, 1e12, Constraints{}, options);
  EXPECT_EQ(result.feasible, space.size());
}

}  // namespace
