#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace celia::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
}

void Histogram::add(double value) {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / span *
                                         static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (const double value : values) add(value);
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

void Histogram::print(std::ostream& out, int max_bar_width) const {
  max_bar_width = std::max(1, max_bar_width);
  std::size_t peak = 1;
  for (const auto count : counts_) peak = std::max(peak, count);
  char label[64];
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    std::snprintf(label, sizeof(label), "[%7.3f, %7.3f)", bin_low(bin),
                  bin_high(bin));
    const auto width = static_cast<int>(
        static_cast<double>(counts_[bin]) / static_cast<double>(peak) *
        max_bar_width);
    out << "  " << label << ' ' << std::string(width, '#') << ' '
        << counts_[bin] << '\n';
  }
}

std::string Histogram::to_string(int max_bar_width) const {
  std::ostringstream oss;
  print(oss, max_bar_width);
  return oss.str();
}

}  // namespace celia::util
