#pragma once
// CELIA — the top-level facade (paper Fig. 1).
//
// Given an elastic application and a cloud provider, `Celia::build()`
// performs the measurement campaign (scale-down profiling for the demand
// model; timed cloud runs for resource capacities) and returns an object
// that answers the paper's questions:
//   * predict(params, config)           — time & cost on one configuration;
//   * select(params, deadline, budget)  — Algorithm 1 + Pareto filter over
//                                         the full configuration space;
//   * min_cost_configuration(...)       — cheapest feasible configuration.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "apps/elastic_app.hpp"
#include "cloud/catalog.hpp"
#include "cloud/provider.hpp"
#include "core/capacity.hpp"
#include "core/configuration.hpp"
#include "core/enumerate.hpp"
#include "core/time_cost.hpp"
#include "fit/demand_fit.hpp"

namespace celia::core {

class Celia {
 public:
  /// Run the full measurement-driven build: fit the demand model from the
  /// application's profile grid (local `perf` runs) and characterize every
  /// resource type's capacity (timed cloud runs).
  static Celia build(
      const apps::ElasticApp& app, cloud::CloudProvider& provider,
      CharacterizationMode mode = CharacterizationMode::kFullMeasurement);

  /// Assemble from already-known models (for tests and what-if studies),
  /// planning against the paper's Table III catalog.
  Celia(std::string app_name, hw::WorkloadClass workload,
        fit::SeparableDemandModel demand, ResourceCapacity capacity,
        ConfigurationSpace space);

  /// Assemble against an explicit catalog snapshot. Throws
  /// std::invalid_argument when `capacity` was characterized against a
  /// structurally different catalog, or when the space width disagrees
  /// with the catalog.
  Celia(std::string app_name, hw::WorkloadClass workload,
        fit::SeparableDemandModel demand, ResourceCapacity capacity,
        ConfigurationSpace space, std::shared_ptr<const cloud::Catalog> catalog);

  const std::string& app_name() const { return app_name_; }
  hw::WorkloadClass workload() const { return workload_; }
  const fit::SeparableDemandModel& demand_model() const { return demand_; }
  const ResourceCapacity& capacity() const { return capacity_; }
  const ConfigurationSpace& space() const { return space_; }
  /// The catalog this model plans against (Table III by default).
  const cloud::Catalog& catalog() const { return *catalog_; }
  std::shared_ptr<const cloud::Catalog> catalog_ptr() const {
    return catalog_;
  }

  /// Fitted demand D(n, a) in instructions.
  double predict_demand(const apps::AppParams& params) const {
    return demand_.predict(params.n, params.a);
  }

  /// Time/cost prediction for one configuration (Eq. 2-6).
  Prediction predict(const apps::AppParams& params,
                     const Configuration& config) const;

  /// Algorithm 1 + Pareto filter over the entire configuration space.
  /// Deadline in hours, budget in dollars (both strict upper bounds).
  SweepResult select(const apps::AppParams& params, double deadline_hours,
                     double budget_dollars, SweepOptions options = {}) const;

  /// Cheapest feasible configuration within the deadline (unbounded
  /// budget); nullopt when no configuration meets the deadline. The
  /// options give full sweep control — e.g. set `index_policy =
  /// IndexPolicy::Shared()` to answer repeated deadline ladders from the
  /// shared FrontierIndex, or `pool` to pick the thread pool.
  /// collect_pareto is forced off.
  std::optional<CostTimePoint> min_cost_configuration(
      const apps::AppParams& params, double deadline_hours,
      SweepOptions options = {}) const;

  /// Per-hour price of one instance of each type, indexed like the space.
  std::span<const double> hourly_costs() const { return hourly_costs_; }

 private:
  std::string app_name_;
  hw::WorkloadClass workload_;
  fit::SeparableDemandModel demand_;
  ResourceCapacity capacity_;
  ConfigurationSpace space_;
  std::shared_ptr<const cloud::Catalog> catalog_;
  std::vector<double> hourly_costs_;
};

}  // namespace celia::core
