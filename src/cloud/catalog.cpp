#include "cloud/catalog.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "hw/microarch.hpp"

namespace celia::cloud {

namespace {

/// FNV-1a 64 over explicitly serialized fields. Doubles hash their bit
/// patterns, so fingerprints are exact (no rounding ambiguity) and stable
/// across processes.
class Fingerprinter {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  std::uint64_t value() const { return hash_; }
  void seed(std::uint64_t v) { hash_ = v; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

std::uint64_t structure_hash(std::span<const InstanceType> types,
                             std::span<const int> limits) {
  Fingerprinter fp;
  fp.str("celia-catalog-structure");
  fp.u64(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    const InstanceType& t = types[i];
    fp.str(t.name);
    fp.u64(static_cast<std::uint64_t>(t.category));
    fp.u64(static_cast<std::uint64_t>(t.size));
    fp.u64(static_cast<std::uint64_t>(t.vcpus));
    fp.f64(t.frequency_ghz);
    fp.f64(t.memory_gb);
    fp.str(t.storage);
    fp.u64(static_cast<std::uint64_t>(t.microarch));
    fp.u64(static_cast<std::uint64_t>(limits[i]));
  }
  return fp.value();
}

std::uint64_t full_hash(std::uint64_t structure, std::string_view name,
                        std::string_view region,
                        std::span<const InstanceType> types) {
  Fingerprinter fp;
  fp.seed(structure);
  fp.str("celia-catalog-identity");
  fp.str(name);
  fp.str(region);
  for (const InstanceType& t : types) fp.f64(t.cost_per_hour);
  return fp.value();
}

}  // namespace

Catalog::Catalog(std::string name, std::string region,
                 std::vector<InstanceType> types, std::vector<int> limits)
    : name_(std::move(name)),
      region_(std::move(region)),
      types_(std::move(types)),
      limits_(std::move(limits)) {
  if (types_.empty())
    throw std::invalid_argument("Catalog: no instance types");
  if (limits_.empty()) limits_.assign(types_.size(), kDefaultInstanceLimit);
  if (limits_.size() != types_.size())
    throw std::invalid_argument(
        "Catalog: need one instance limit per type (or none for the "
        "default of " +
        std::to_string(kDefaultInstanceLimit) + ")");
  for (std::size_t i = 0; i < types_.size(); ++i) {
    const InstanceType& t = types_[i];
    if (t.name.empty())
      throw std::invalid_argument("Catalog: type " + std::to_string(i) +
                                  " has an empty name");
    for (std::size_t j = 0; j < i; ++j)
      if (types_[j].name == t.name)
        throw std::invalid_argument("Catalog: duplicate type name '" +
                                    t.name + "'");
    if (t.vcpus < 1)
      throw std::invalid_argument("Catalog: " + t.name + ": vcpus < 1");
    if (!std::isfinite(t.frequency_ghz) || t.frequency_ghz <= 0)
      throw std::invalid_argument("Catalog: " + t.name +
                                  ": frequency must be finite and positive");
    if (!std::isfinite(t.memory_gb) || t.memory_gb <= 0)
      throw std::invalid_argument("Catalog: " + t.name +
                                  ": memory must be finite and positive");
    if (!std::isfinite(t.cost_per_hour) || t.cost_per_hour <= 0)
      throw std::invalid_argument("Catalog: " + t.name +
                                  ": price must be finite and positive");
    if (limits_[i] < 0)
      throw std::invalid_argument("Catalog: " + t.name +
                                  ": negative instance limit");
  }
  hourly_.reserve(types_.size());
  for (const InstanceType& t : types_) hourly_.push_back(t.cost_per_hour);
  structure_fingerprint_ = structure_hash(types_, limits_);
  fingerprint_ = full_hash(structure_fingerprint_, name_, region_, types_);
}

const Catalog& Catalog::ec2_table3() { return *ec2_table3_ptr(); }

std::shared_ptr<const Catalog> Catalog::ec2_table3_ptr() {
  using hw::Microarch;
  // Paper Table III verbatim (vCPUs, GHz, memory, storage, $/hr).
  static const std::shared_ptr<const Catalog> table3 =
      std::make_shared<const Catalog>(
          "ec2-table3", "us-west-2",
          std::vector<InstanceType>{
              {"c4.large", Category::kCompute, Size::kLarge, 2, 2.9, 3.75,
               "EBS", 0.105, Microarch::kHaswellE5_2666v3},
              {"c4.xlarge", Category::kCompute, Size::kXLarge, 4, 2.9, 7.5,
               "EBS", 0.209, Microarch::kHaswellE5_2666v3},
              {"c4.2xlarge", Category::kCompute, Size::k2XLarge, 8, 2.9, 15,
               "EBS", 0.419, Microarch::kHaswellE5_2666v3},
              {"m4.large", Category::kGeneralPurpose, Size::kLarge, 2, 2.3,
               8, "EBS", 0.133, Microarch::kHaswellE5_2676v3},
              {"m4.xlarge", Category::kGeneralPurpose, Size::kXLarge, 4, 2.3,
               16, "EBS", 0.266, Microarch::kHaswellE5_2676v3},
              {"m4.2xlarge", Category::kGeneralPurpose, Size::k2XLarge, 8,
               2.3, 32, "EBS", 0.532, Microarch::kHaswellE5_2676v3},
              {"r3.large", Category::kMemoryOptimized, Size::kLarge, 2, 2.5,
               15, "32", 0.166, Microarch::kSandyBridgeE5_2670},
              {"r3.xlarge", Category::kMemoryOptimized, Size::kXLarge, 4,
               2.5, 30.5, "80", 0.333, Microarch::kSandyBridgeE5_2670},
              {"r3.2xlarge", Category::kMemoryOptimized, Size::k2XLarge, 8,
               2.5, 61, "160", 0.664, Microarch::kSandyBridgeE5_2670},
          });
  return table3;
}

std::optional<std::size_t> Catalog::find(std::string_view type_name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == type_name) return i;
  return std::nullopt;
}

std::size_t Catalog::index_of(std::string_view type_name) const {
  if (const auto index = find(type_name)) return *index;
  throw std::out_of_range("Catalog '" + name_ + "': unknown instance type: " +
                          std::string(type_name));
}

Catalog Catalog::repriced(std::string name, std::string region,
                          std::vector<double> hourly_costs) const {
  if (hourly_costs.size() != types_.size())
    throw std::invalid_argument(
        "Catalog::repriced: need one price per type");
  std::vector<InstanceType> types = types_;
  for (std::size_t i = 0; i < types.size(); ++i)
    types[i].cost_per_hour = hourly_costs[i];
  return Catalog(std::move(name), std::move(region), std::move(types),
                 limits_);
}

Catalog Catalog::with_price_multiplier(std::string name, std::string region,
                                       double multiplier) const {
  if (!std::isfinite(multiplier) || multiplier <= 0)
    throw std::invalid_argument(
        "Catalog::with_price_multiplier: multiplier must be finite and "
        "positive");
  std::vector<double> hourly(hourly_.begin(), hourly_.end());
  for (double& price : hourly) price *= multiplier;
  return repriced(std::move(name), std::move(region), std::move(hourly));
}

Catalog Catalog::with_limits(std::string name, std::string region,
                             std::vector<int> limits) const {
  if (limits.size() != types_.size())
    throw std::invalid_argument("Catalog::with_limits: need one limit per type");
  return Catalog(std::move(name), std::move(region), types_,
                 std::move(limits));
}

}  // namespace celia::cloud
