#pragma once
// core::Query — the validated planner query value type.
//
// Every planner entry point — sweep(), FrontierIndex::query(),
// recommend(), Celia::select()/min_cost_configuration() — routes through
// one of these. Construction via Query::make() runs validate_query()
// exactly once; downstream code trusts a Query and never re-validates, so
// a query is checked once no matter how many layers it passes through
// (and a malformed one is rejected at the API boundary, with the same
// std::invalid_argument regardless of entry point).
//
// The bundled SweepOptions carry the execution knobs (pool, sampling,
// Pareto collection) and the IndexPolicy deciding whether the
// demand-invariant FrontierIndex may answer; the route actually taken is
// reported in SweepResult::route.

#include "core/enumerate.hpp"

namespace celia::core {

class Query {
 public:
  /// Validate (throws std::invalid_argument — see validate_query) and
  /// bundle a scalar (1-D) planner query.
  static Query make(double demand, const Constraints& constraints,
                    SweepOptions options = {});

  /// Vector form: per-dimension demand, to be evaluated against a
  /// ResourceCapacity of the same width (sweep throws on a mismatch).
  /// Validation (see the validate_query overload) requires dimension 0 —
  /// instructions — positive, the rest non-negative; a 1-D vector query is
  /// bit-identical to the scalar form with the same value.
  static Query make(const apps::DemandVector& demand,
                    const Constraints& constraints, SweepOptions options = {});

  /// Vector form with the demand's DIMENSION SCHEMA attached: the vector's
  /// width must match `schema`, and every rejection — width mismatch, a
  /// bad component, risk-aware multi-dimensional selection — names the
  /// offending dimension names (schema.describe()) instead of bare
  /// indices, so a caller juggling several schemas can see WHICH one was
  /// mis-queried.
  static Query make(const apps::DemandVector& demand,
                    const apps::DemandDimensions& schema,
                    const Constraints& constraints, SweepOptions options = {});

  /// Scalar view: dimension 0 (instructions) — the full demand for 1-D
  /// queries, which is every query the legacy entry points produce.
  double demand() const noexcept { return demand_.values[0]; }
  const apps::DemandVector& demand_vector() const noexcept { return demand_; }
  std::size_t num_dimensions() const noexcept { return demand_.size(); }
  const Constraints& constraints() const noexcept { return constraints_; }
  const SweepOptions& options() const noexcept { return options_; }

  /// Copy with different options (constraints/demand stay validated).
  Query with_options(SweepOptions options) const;

 private:
  Query() = default;

  apps::DemandVector demand_;
  Constraints constraints_;
  SweepOptions options_;
};

}  // namespace celia::core
