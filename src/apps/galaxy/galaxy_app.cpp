#include "apps/galaxy/galaxy_app.hpp"

#include <cmath>
#include <stdexcept>

namespace celia::apps::galaxy {

namespace {

std::uint64_t checked_n(const AppParams& params) {
  const auto n = static_cast<std::int64_t>(std::llround(params.n));
  if (n < 2) throw std::invalid_argument("galaxy: need at least two masses");
  return static_cast<std::uint64_t>(n);
}

std::uint64_t checked_s(const AppParams& params) {
  const auto s = static_cast<std::int64_t>(std::llround(params.a));
  if (s < 1) throw std::invalid_argument("galaxy: need at least one step");
  return static_cast<std::uint64_t>(s);
}

}  // namespace

double GalaxyApp::exact_demand(const AppParams& params) const {
  const std::uint64_t n = checked_n(params);
  const std::uint64_t s = checked_s(params);
  return static_cast<double>(s) *
         static_cast<double>(step_ops(n).instructions());
}

void GalaxyApp::run_instrumented(const AppParams& params,
                                 hw::PerfCounter& counter,
                                 std::uint64_t seed) const {
  const std::uint64_t n = checked_n(params);
  const std::uint64_t s = checked_s(params);
  util::Xoshiro256 rng(seed);
  Bodies bodies = make_plummer(n, rng);
  simulate(bodies, s, counter);
}

Workload GalaxyApp::make_workload(const AppParams& params) const {
  const std::uint64_t n = checked_n(params);
  const std::uint64_t s = checked_s(params);

  Workload workload;
  workload.app_name = std::string(name());
  workload.workload_class = workload_class();
  workload.pattern = ParallelPattern::kBulkSynchronous;
  workload.steps = s;
  workload.instructions_per_step =
      static_cast<double>(step_ops(n).instructions());
  // All-gather of 3 doubles per body at every step barrier.
  workload.sync_bytes_per_step = 24.0 * static_cast<double>(n);
  workload.total_instructions =
      workload.instructions_per_step * static_cast<double>(s);
  return workload;
}

std::vector<AppParams> GalaxyApp::profile_grid() const {
  // Paper §IV-A: n in [8192, 65536] masses, s in [1000, 8000] steps.
  std::vector<AppParams> grid;
  for (const double n : {8192, 16384, 32768, 65536})
    for (const double s : {1000, 2000, 3000, 4000, 6000, 8000})
      grid.push_back({n, s});
  return grid;
}

}  // namespace celia::apps::galaxy
