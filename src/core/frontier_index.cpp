#include "core/frontier_index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "core/query.hpp"
#include "core/sweep_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "util/stopwatch.hpp"

namespace celia::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Strip containing x: fences[0] = 0 and fences.back() = +inf, so every
/// positive x lands in [0, fences.size() - 2].
std::size_t strip_of(const std::vector<double>& fences, double x) {
  const auto it = std::upper_bound(fences.begin(), fences.end(), x);
  const auto raw = static_cast<std::size_t>(it - fences.begin());
  return std::min(raw - 1, fences.size() - 2);
}

/// Quantile fences from a sorted-on-demand sample; interior fences are
/// sample quantiles, capped by the 0 / +inf sentinels.
std::vector<double> make_fences(std::vector<double> sample, std::size_t grid) {
  std::sort(sample.begin(), sample.end());
  std::vector<double> fences(grid + 1, 0.0);
  fences[grid] = kInf;
  if (!sample.empty()) {
    for (std::size_t k = 1; k < grid; ++k)
      fences[k] = sample[(k * sample.size()) / grid];
  }
  return fences;
}

/// Safety margin for slope dominance. Integer multiples of one instance
/// mix have real-equal slopes that round to doubles a few ulps apart, and
/// the rounded per-query cost chain (two divisions + one multiplication
/// each side) adds a few ulps more — rounded costs can order either way
/// within ~8 ulps of slope. An entry is dropped only when its slope
/// exceeds the best by MORE than this margin: then its rounded cost is
/// provably larger for every demand, so sweep() can never prefer it.
constexpr double kSlopeMargin = 1e-14;

// --- Delta-maintenance envelopes (DESIGN.md §13) ---------------------------
//
// kWideKappa: a point joins the wide candidate set W when its slope is
// within this factor of the staircase envelope at its u-strip's UPPER
// fence. The reprice closure needs every from-scratch survivor at any
// in-band price to satisfy slope <= B * (1 + eps)^2 * (1 + kSlopeMargin)
// * envelope ~= 1.101 * envelope with B = kRepriceBand. 1.15 keeps a
// ~4.5% safety factor over the closure bound while holding |W| to ~1M
// points on the 10M-configuration EC2 space — near-best mixes cluster a
// few percent above the envelope there, so every extra percent of kappa
// admits hundreds of thousands of points (1.25 blows the candidate cap
// and would disable deltas on exactly the space they matter for).
constexpr double kWideKappa = 1.15;
/// Maximum allowed spread max_i(rho_i) / min_i(rho_i) of the per-type
/// price ratios rho_i = new_i / anchor_i for repriced() to engage.
constexpr double kRepriceBand = 1.10;
/// Relative slack absorbing fold/rounding differences whenever a bound
/// derived from anchor-price slopes certifies something about new-price
/// costs (reprice counting, with_limit screening). Orders of magnitude
/// larger than the few-ulp error it covers, orders smaller than the
/// kWideKappa / kRepriceBand headroom it spends.
constexpr double kRetestSlack = 1e-9;
/// Caps keeping the delta structures bounded: a store whose candidate set
/// (or with_limit screen) exceeds these is declared not delta-capable and
/// the caller falls back to a full rebuild.
constexpr std::size_t kMaxCandidates = std::size_t{1} << 22;
constexpr std::size_t kMaxScreened = std::size_t{1} << 22;

/// The (max U, min slope) non-dominated staircase, returned ascending in U
/// with (near-)non-decreasing slope. Near-ties within kSlopeMargin are all
/// kept so rounded-cost comparisons resolve exactly as sweep()'s.
std::vector<FrontierIndex::Entry> staircase_filter(
    std::vector<FrontierIndex::Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const FrontierIndex::Entry& a, const FrontierIndex::Entry& b) {
              if (a.u != b.u) return a.u > b.u;
              if (a.cu != b.cu) return a.cu < b.cu;
              return a.config_index < b.config_index;
            });
  std::vector<FrontierIndex::Entry> kept;
  double best_slope = kInf;
  for (const auto& entry : entries) {
    const double slope = entry.cu / entry.u;
    if (slope <= best_slope * (1.0 + kSlopeMargin)) {
      // Skip exact (u, cu) duplicates; pareto_filter would drop them too.
      if (!kept.empty() && kept.back().u == entry.u &&
          kept.back().cu == entry.cu)
        continue;
      kept.push_back(entry);
      best_slope = std::min(best_slope, slope);
    }
  }
  std::reverse(kept.begin(), kept.end());
  return kept;
}

/// Suffix minimum of the staircase slopes: sm[k] = min slope over
/// frontier[k..); sm[frontier.size()] = +inf. Because staircase_filter's
/// running best only ever tightens on KEPT entries, this equals the exact
/// suffix-min over the FULL point set the staircase was filtered from.
std::vector<double> slope_suffix_min(
    std::span<const FrontierIndex::Entry> frontier) {
  std::vector<double> sm(frontier.size() + 1, kInf);
  for (std::size_t k = frontier.size(); k-- > 0;)
    sm[k] = std::min(frontier[k].cu / frontier[k].u, sm[k + 1]);
  return sm;
}

/// First staircase entry with u >= x (frontier ascends in u).
std::size_t frontier_at_or_above(
    std::span<const FrontierIndex::Entry> frontier, double x) {
  return static_cast<std::size_t>(
      std::lower_bound(frontier.begin(), frontier.end(), x,
                       [](const FrontierIndex::Entry& e, double v) {
                         return e.u < v;
                       }) -
      frontier.begin());
}

/// First staircase entry with u > x.
std::size_t frontier_above(std::span<const FrontierIndex::Entry> frontier,
                           double x) {
  return static_cast<std::size_t>(
      std::upper_bound(frontier.begin(), frontier.end(), x,
                       [](double v, const FrontierIndex::Entry& e) {
                         return v < e.u;
                       }) -
      frontier.begin());
}

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t double_bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

}  // namespace

// --- GridStore -------------------------------------------------------------
//
// Everything the index holds besides the staircase and the model identity:
// the counting grid, the structure-of-arrays point store and the wide
// candidate set. Immutable once built and shared (shared_ptr) between an
// anchor index and every repriced() derivative — a price tick must not
// copy the multi-hundred-MB point store to produce a fresh index.
//
// Point layout: pu_u/pu_cu/pu_idx are parallel lanes holding every U > 0
// configuration grouped by u-strip (u_offsets delimits strips); ps_pos
// holds, grouped by s-strip (s_offsets), each point's POSITION in the pu
// lanes — an index-based second grouping instead of a second copy.
struct FrontierIndex::GridStore {
  std::size_t grid = 0;
  std::vector<double> u_fences;             // grid + 1, [0, ..., +inf]
  std::vector<double> s_fences;             // grid + 1, [0, ..., +inf]
  std::vector<std::uint64_t> u_offsets;     // grid + 1
  std::vector<std::uint64_t> s_offsets;     // grid + 1
  std::vector<std::uint64_t> matrix;        // (grid+1)^2, suffix-U/prefix-s
  std::vector<double> pu_u;                 // SoA point lanes by u-strip
  std::vector<double> pu_cu;                //   (cu at the ANCHOR prices)
  std::vector<std::uint64_t> pu_idx;        //   configuration index
  std::vector<std::uint32_t> ps_pos;        // s-strip grouping: pu positions
  std::vector<Entry> candidates;            // wide staircase candidate set W
  std::vector<double> anchor_hourly;        // prices pu_cu was folded with
  bool delta_capable = false;

  std::size_t bytes() const;
  void rebuild_s_grouping();
  void recount_matrix();
  void select_candidates(std::span<const Entry> frontier);
};

std::size_t FrontierIndex::GridStore::bytes() const {
  return (u_fences.capacity() + s_fences.capacity() + pu_u.capacity() +
          pu_cu.capacity() + anchor_hourly.capacity()) *
             sizeof(double) +
         (u_offsets.capacity() + s_offsets.capacity() + matrix.capacity() +
          pu_idx.capacity()) *
             sizeof(std::uint64_t) +
         ps_pos.capacity() * sizeof(std::uint32_t) +
         candidates.capacity() * sizeof(Entry);
}

/// Recompute s_offsets + ps_pos from the pu lanes (serial; delta paths
/// only — the build fills the grouping during its scatter pass).
void FrontierIndex::GridStore::rebuild_s_grouping() {
  const std::size_t count = pu_u.size();
  std::vector<std::uint64_t> hist(grid, 0);
  for (std::size_t pos = 0; pos < count; ++pos)
    ++hist[strip_of(s_fences, pu_cu[pos] / pu_u[pos])];
  s_offsets.assign(grid + 1, 0);
  for (std::size_t j = 0; j < grid; ++j)
    s_offsets[j + 1] = s_offsets[j] + hist[j];
  ps_pos.resize(count);
  std::vector<std::uint64_t> cursor(s_offsets.begin(), s_offsets.end() - 1);
  for (std::size_t pos = 0; pos < count; ++pos) {
    const std::size_t j = strip_of(s_fences, pu_cu[pos] / pu_u[pos]);
    ps_pos[cursor[j]++] = static_cast<std::uint32_t>(pos);
  }
}

/// Recompute the (suffix-in-U, prefix-in-s) count matrix from the pu
/// lanes (serial; delta paths only).
void FrontierIndex::GridStore::recount_matrix() {
  std::vector<std::uint64_t> hist2d(grid * grid, 0);
  for (std::size_t i = 0; i < grid; ++i) {
    std::uint64_t* row = hist2d.data() + i * grid;
    for (std::uint64_t p = u_offsets[i]; p < u_offsets[i + 1]; ++p)
      ++row[strip_of(s_fences, pu_cu[p] / pu_u[p])];
  }
  const std::size_t width = grid + 1;
  matrix.assign(width * width, 0);
  for (std::size_t i = grid; i-- > 0;) {
    std::uint64_t run = 0;
    for (std::size_t j = 1; j <= grid; ++j) {
      run += hist2d[i * grid + (j - 1)];
      matrix[i * width + j] = matrix[(i + 1) * width + j] + run;
    }
  }
}

/// Fill the wide candidate set W: every point whose slope is within
/// kWideKappa of the staircase envelope evaluated at its u-strip's UPPER
/// fence (the envelope is non-decreasing in u, so the strip-level value
/// upper-bounds the per-point one and W only grows). Sets delta_capable.
void FrontierIndex::GridStore::select_candidates(
    std::span<const Entry> frontier) {
  candidates.clear();
  delta_capable = false;
  const std::vector<double> sm = slope_suffix_min(frontier);
  for (std::size_t i = 0; i < grid; ++i) {
    const double env = sm[frontier_at_or_above(frontier, u_fences[i + 1])];
    for (std::uint64_t p = u_offsets[i]; p < u_offsets[i + 1]; ++p) {
      // env = +inf (top strip / empty suffix) admits everything: x <= inf.
      if (pu_cu[p] <= kWideKappa * env * pu_u[p]) {
        if (candidates.size() >= kMaxCandidates) {
          candidates.clear();
          candidates.shrink_to_fit();
          return;
        }
        candidates.push_back({pu_u[p], pu_cu[p], pu_idx[p]});
      }
    }
  }
  delta_capable = true;
}

// --- Build -----------------------------------------------------------------

FrontierIndex FrontierIndex::build(const ConfigurationSpace& space,
                                   const ResourceCapacity& capacity,
                                   std::span<const double> hourly_costs,
                                   const BuildOptions& options) {
  detail::validate_model_widths(space, capacity, hourly_costs,
                                "FrontierIndex");
  // The staircase is demand-invariant only for scalar demand: with
  // several dimensions the frontier depends on the demand mix's
  // direction, so no single index can answer every vector query.
  if (!capacity.is_scalar())
    throw std::invalid_argument(
        "FrontierIndex: cannot index the multi-dimensional capacity schema "
        "[" + capacity.dimensions().describe() + "] (" +
        std::to_string(capacity.num_dimensions()) +
        " dimensions) — the staircase is demand-invariant only in 1-D; "
        "vector queries take the sweep route");

  static obs::Counter& builds = obs::counter(
      "celia_frontier_builds_total", "FrontierIndex builds executed");
  static obs::Histogram& build_seconds = obs::histogram(
      "celia_frontier_build_seconds", {},
      "Wall time of one FrontierIndex build (all three passes)");
  builds.add(1);
  util::Stopwatch build_timer;
  obs::Span build_span("frontier_build", "planner");

  FrontierIndex index;
  index.max_counts_ = space.max_counts();
  for (std::size_t i = 0; i < capacity.num_types(); ++i)
    index.rates_.push_back(capacity.rate(i));
  index.hourly_.assign(hourly_costs.begin(), hourly_costs.end());
  index.total_ = space.size();

  const std::vector<double>& rates = index.rates_;
  const std::vector<double>& hourly = index.hourly_;
  const std::vector<double> zero_var(rates.size(), 0.0);
  parallel::ThreadPool& pool =
      options.pool ? *options.pool : parallel::default_pool();

  const std::uint64_t n = space.size();
  std::size_t grid = options.grid;
  if (grid == 0) {
    grid = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    grid = std::clamp<std::size_t>(grid, 8, 2048);
  }
  index.grid_ = grid;

  auto store = std::make_shared<GridStore>();
  store->grid = grid;
  store->anchor_hourly = index.hourly_;

  // Fences from a deterministic stride sample. Fence values only steer the
  // partition (any value is correct); quantiles keep the strips balanced.
  {
    const std::uint64_t target = std::min<std::uint64_t>(n, 65536);
    const std::uint64_t stride = std::max<std::uint64_t>(1, n / target);
    std::vector<double> u_sample, s_sample;
    std::vector<int> digits(space.num_types());
    for (std::uint64_t i = 0; i < n; i += stride) {
      space.decode_into(i, digits);
      double u = 0.0, cu = 0.0;
      for (std::size_t t = 0; t < digits.size(); ++t) {
        u += digits[t] * rates[t];
        cu += digits[t] * hourly[t];
      }
      if (u > 0) {
        u_sample.push_back(u);
        s_sample.push_back(cu / u);
      }
    }
    store->u_fences = make_fences(std::move(u_sample), grid);
    store->s_fences = make_fences(std::move(s_sample), grid);
  }

  // Pass A: per-block strip histograms + staircase candidates.
  const auto blocks = parallel::split_range(0, n, pool.num_threads());
  struct BlockStats {
    std::vector<std::uint64_t> hist_u, hist_s;
    std::vector<Entry> frontier;
  };
  std::vector<BlockStats> stats(blocks.size());
  {
    std::vector<std::future<void>> futures;
    futures.reserve(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      futures.push_back(pool.submit([&, b] {
        BlockStats& local = stats[b];
        local.hist_u.assign(grid, 0);
        local.hist_s.assign(grid, 0);
        std::size_t prune = 1 << 15;
        detail::walk_range(
            space, rates, hourly, zero_var, blocks[b],
            [&](std::uint64_t idx, double u, double cu, double /*v*/) {
              if (u <= 0) return;
              ++local.hist_u[strip_of(store->u_fences, u)];
              ++local.hist_s[strip_of(store->s_fences, cu / u)];
              local.frontier.push_back({u, cu, idx});
              if (local.frontier.size() >= prune) {
                local.frontier = staircase_filter(std::move(local.frontier));
                prune = std::max<std::size_t>(1 << 15,
                                              2 * local.frontier.size());
              }
            });
      }));
    }
    for (auto& f : futures) f.get();
  }

  // Strip offsets plus per-(block, strip) scatter cursors: deterministic
  // destinations, so pass B needs no atomics.
  store->u_offsets.assign(grid + 1, 0);
  store->s_offsets.assign(grid + 1, 0);
  for (std::size_t i = 0; i < grid; ++i) {
    store->u_offsets[i + 1] = store->u_offsets[i];
    store->s_offsets[i + 1] = store->s_offsets[i];
    for (const auto& local : stats) {
      store->u_offsets[i + 1] += local.hist_u[i];
      store->s_offsets[i + 1] += local.hist_s[i];
    }
  }
  index.positive_ = store->u_offsets[grid];
  if (index.positive_ > std::numeric_limits<std::uint32_t>::max())
    throw std::length_error(
        "FrontierIndex: more than 2^32 - 1 attainable configurations "
        "(position-based strip grouping overflows)");

  std::vector<std::vector<std::uint64_t>> cursor_u(blocks.size()),
      cursor_s(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    cursor_u[b].resize(grid);
    cursor_s[b].resize(grid);
  }
  for (std::size_t i = 0; i < grid; ++i) {
    std::uint64_t run_u = store->u_offsets[i];
    std::uint64_t run_s = store->s_offsets[i];
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      cursor_u[b][i] = run_u;
      cursor_s[b][i] = run_s;
      run_u += stats[b].hist_u[i];
      run_s += stats[b].hist_s[i];
    }
  }

  // Pass B: scatter the SoA point lanes (u-strip grouping) and record each
  // point's lane position in the s-strip grouping.
  store->pu_u.resize(index.positive_);
  store->pu_cu.resize(index.positive_);
  store->pu_idx.resize(index.positive_);
  store->ps_pos.resize(index.positive_);
  {
    std::vector<std::future<void>> futures;
    futures.reserve(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      futures.push_back(pool.submit([&, b] {
        std::vector<std::uint64_t>& cu_cursor = cursor_u[b];
        std::vector<std::uint64_t>& cs_cursor = cursor_s[b];
        detail::walk_range(
            space, rates, hourly, zero_var, blocks[b],
            [&](std::uint64_t idx, double u, double cu, double /*v*/) {
              if (u <= 0) return;
              const std::uint64_t pos =
                  cu_cursor[strip_of(store->u_fences, u)]++;
              store->pu_u[pos] = u;
              store->pu_cu[pos] = cu;
              store->pu_idx[pos] = idx;
              store->ps_pos[cs_cursor[strip_of(store->s_fences, cu / u)]++] =
                  static_cast<std::uint32_t>(pos);
            });
      }));
    }
    for (auto& f : futures) f.get();
  }

  // Pass C: per-u-strip slope histogram (each row owned by one task), then
  // the (suffix-in-U, prefix-in-s) count matrix.
  std::vector<std::uint64_t> hist2d(grid * grid, 0);
  {
    parallel::ForOptions fo;
    fo.pool = &pool;
    parallel::parallel_for(
        0, grid,
        [&](std::uint64_t i) {
          std::uint64_t* row = hist2d.data() + i * grid;
          for (std::uint64_t p = store->u_offsets[i];
               p < store->u_offsets[i + 1]; ++p)
            ++row[strip_of(store->s_fences,
                           store->pu_cu[p] / store->pu_u[p])];
        },
        fo);
  }
  const std::size_t width = grid + 1;
  store->matrix.assign(width * width, 0);
  for (std::size_t i = grid; i-- > 0;) {
    std::uint64_t run = 0;
    for (std::size_t j = 1; j <= grid; ++j) {
      run += hist2d[i * grid + (j - 1)];
      store->matrix[i * width + j] =
          store->matrix[(i + 1) * width + j] + run;
    }
  }

  // Merge per-block staircase candidates into the final frontier, then
  // derive the wide candidate set from it.
  std::vector<Entry> candidates;
  for (auto& local : stats) {
    candidates.insert(candidates.end(), local.frontier.begin(),
                      local.frontier.end());
    local.frontier.clear();
  }
  index.frontier_ = staircase_filter(std::move(candidates));
  store->select_candidates(index.frontier_);
  index.store_ = std::move(store);
  build_seconds.record(build_timer.elapsed_seconds());
  return index;
}

FrontierIndex FrontierIndex::build(const ConfigurationSpace& space,
                                   const ResourceCapacity& capacity,
                                   const cloud::Catalog& catalog,
                                   const BuildOptions& options) {
  if (!capacity.compatible_with(catalog))
    throw std::invalid_argument(
        "FrontierIndex: capacity was characterized against a structurally "
        "different catalog than '" + catalog.name() + "'");
  FrontierIndex index = build(space, capacity, catalog.hourly_costs(), options);
  index.catalog_fingerprint_ = catalog.fingerprint();
  return index;
}

FrontierIndex FrontierIndex::build(const ConfigurationSpace& space,
                                   const ResourceCapacity& capacity,
                                   const BuildOptions& options) {
  const std::vector<double> hourly = ec2_hourly_costs();
  return build(space, capacity, hourly, options);
}

// --- Delta maintenance -----------------------------------------------------

std::uint64_t FrontierIndex::content_fingerprint() const {
  std::uint64_t hash = 1469598103934665603ull;
  hash = fnv_mix(hash, max_counts_.size());
  for (const int count : max_counts_)
    hash = fnv_mix(hash, static_cast<std::uint64_t>(count));
  for (const double rate : rates_) hash = fnv_mix(hash, double_bits(rate));
  for (const double price : hourly_) hash = fnv_mix(hash, double_bits(price));
  hash = fnv_mix(hash, catalog_fingerprint_);
  hash = fnv_mix(hash, total_);
  hash = fnv_mix(hash, positive_);
  hash = fnv_mix(hash, frontier_.size());
  for (const Entry& entry : frontier_) {
    hash = fnv_mix(hash, double_bits(entry.u));
    hash = fnv_mix(hash, double_bits(entry.cu));
    hash = fnv_mix(hash, entry.config_index);
  }
  return hash;
}

bool FrontierIndex::delta_capable() const {
  return store_ != nullptr && store_->delta_capable;
}

bool FrontierIndex::is_repriced() const { return repriced_; }

std::optional<FrontierIndex> FrontierIndex::repriced(
    std::span<const double> new_hourly) const {
  if (!delta_capable()) return std::nullopt;
  const std::size_t width = hourly_.size();
  if (new_hourly.size() != width || width == 0) return std::nullopt;

  // Per-type price ratios are taken against the ANCHOR prices (the ones
  // pu_cu / candidates were folded with), not this index's own — chains of
  // reprices re-derive from the anchor instead of compounding bands.
  const std::vector<double>& anchor = store_->anchor_hourly;
  double lo = kInf, hi = 0.0;
  for (std::size_t i = 0; i < width; ++i) {
    const double from = anchor[i];
    const double to = new_hourly[i];
    if (!(from > 0) || !(to > 0) || !std::isfinite(to)) return std::nullopt;
    const double ratio = to / from;
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  // Export how much of the provable anchor band this edit consumed, so a
  // /metrics reader can see rebuild-fallbacks coming before they happen:
  // 1 = prices still at the anchor, 0 = at the band edge, negative = the
  // edit fell outside the band and this call refused.
  static obs::Gauge& headroom = obs::gauge(
      "celia_frontier_reprice_band_headroom",
      "Remaining fraction of the repriced() anchor band after the latest "
      "attempt (1 = at the anchor, 0 = band edge, negative = refused)");
  headroom.set((kRepriceBand - hi / lo) / (kRepriceBand - 1.0));
  if (!(hi / lo <= kRepriceBand)) return std::nullopt;

  // Re-derive every wide candidate's Cu with the canonical walk fold —
  // bit-identical to the double a from-scratch walk at the new prices
  // would hand the staircase — and re-filter. The kWideKappa closure (see
  // the header) guarantees every from-scratch survivor is a candidate, and
  // dropping never-kept points does not perturb staircase_filter's state,
  // so the result equals the from-scratch staircase bit for bit.
  const ConfigurationSpace space(max_counts_);
  std::vector<int> digits(width);
  std::vector<Entry> entries;
  entries.reserve(store_->candidates.size());
  for (const Entry& candidate : store_->candidates) {
    space.decode_into(candidate.config_index, digits);
    entries.push_back({candidate.u,
                       SweepPlan::fold_value(digits, new_hourly),
                       candidate.config_index});
  }

  FrontierIndex out;
  out.max_counts_ = max_counts_;
  out.rates_ = rates_;
  out.hourly_.assign(new_hourly.begin(), new_hourly.end());
  out.total_ = total_;
  out.positive_ = positive_;
  out.grid_ = grid_;
  out.frontier_ = staircase_filter(std::move(entries));
  out.store_ = store_;  // shared: the point store is anchor-priced
  out.repriced_ = true;
  out.rho_lo_ = lo;
  out.rho_hi_ = hi;
  return out;
}

std::optional<FrontierIndex> FrontierIndex::repriced(
    const cloud::Catalog& to) const {
  if (to.size() != hourly_.size()) return std::nullopt;
  if (to.limits() != max_counts_) return std::nullopt;
  std::optional<FrontierIndex> out = repriced(to.hourly_costs());
  if (out) out->catalog_fingerprint_ = to.fingerprint();
  return out;
}

std::optional<FrontierIndex> FrontierIndex::with_limit(std::size_t type,
                                                       int new_max) const {
  if (repriced_ || !delta_capable()) return std::nullopt;
  const std::size_t width = max_counts_.size();
  if (type >= width) return std::nullopt;
  const int old_max = max_counts_[type];
  if (new_max < 0 || new_max >= old_max) return std::nullopt;

  const GridStore& old_store = *store_;
  const std::size_t grid = old_store.grid;

  // Mixed-radix surgery: removing the digits d_type > new_max keeps every
  // survivor's digit vector — hence its walk-computed U and Cu doubles —
  // unchanged, and remaps indexes MONOTONICALLY (the walk order of the
  // shrunken space is the old order restricted to survivors).
  std::uint64_t scale_below = 1;
  for (std::size_t i = 0; i < type; ++i)
    scale_below *= static_cast<std::uint64_t>(max_counts_[i]) + 1;
  const std::uint64_t radix_old = static_cast<std::uint64_t>(old_max) + 1;
  const std::uint64_t radix_new = static_cast<std::uint64_t>(new_max) + 1;
  const std::uint64_t block = scale_below * radix_old;
  const auto remap = [&](std::uint64_t idx, std::uint64_t& out_idx) {
    const std::uint64_t value = idx + 1;
    const std::uint64_t high = value / block;
    const std::uint64_t rem = value % block;
    const std::uint64_t digit = rem / scale_below;
    if (digit > static_cast<std::uint64_t>(new_max)) return false;
    out_idx =
        rem % scale_below + digit * scale_below + high * (scale_below * radix_new) - 1;
    return true;
  };

  // Surviving wide candidates and their staircase E: the exactness screen
  // below compares every survivor against E's slope envelope.
  std::vector<Entry> surviving;
  surviving.reserve(old_store.candidates.size());
  for (const Entry& candidate : old_store.candidates) {
    std::uint64_t remapped = 0;
    if (remap(candidate.config_index, remapped))
      surviving.push_back({candidate.u, candidate.cu, remapped});
  }
  const std::vector<Entry> screen_stairs = staircase_filter(surviving);
  const std::vector<double> screen_sm = slope_suffix_min(screen_stairs);

  // One pass over the point store: drop non-survivors, keep strip order
  // (which preserves in-strip walk order under a monotone remap), and
  // screen for points the true new staircase could keep. A survivor can be
  // kept by a from-scratch filter only if its slope is within kSlopeMargin
  // of the envelope over survivors ABOVE it, which E's suffix-min bounds
  // from above — so filtering (surviving candidates + screened extras)
  // reproduces the from-scratch staircase exactly, no envelope-rise
  // heuristics needed. The screen admits everything above E's top entry
  // (suffix-min +inf), which covers the new global-max-U region.
  auto next = std::make_shared<GridStore>();
  next->grid = grid;
  next->u_fences = old_store.u_fences;
  next->s_fences = old_store.s_fences;
  next->anchor_hourly = old_store.anchor_hourly;
  next->u_offsets.assign(grid + 1, 0);
  std::vector<Entry> extras;
  for (std::size_t i = 0; i < grid; ++i) {
    next->u_offsets[i] = next->pu_u.size();
    for (std::uint64_t p = old_store.u_offsets[i];
         p < old_store.u_offsets[i + 1]; ++p) {
      std::uint64_t remapped = 0;
      if (!remap(old_store.pu_idx[p], remapped)) continue;
      const double u = old_store.pu_u[p];
      const double cu = old_store.pu_cu[p];
      next->pu_u.push_back(u);
      next->pu_cu.push_back(cu);
      next->pu_idx.push_back(remapped);
      const double env = screen_sm[frontier_above(screen_stairs, u)];
      if (cu / u <= env * (1.0 + kRetestSlack)) {
        if (extras.size() >= kMaxScreened) return std::nullopt;
        extras.push_back({u, cu, remapped});
      }
    }
  }
  next->u_offsets[grid] = next->pu_u.size();
  next->rebuild_s_grouping();
  next->recount_matrix();

  surviving.insert(surviving.end(), extras.begin(), extras.end());

  FrontierIndex out;
  out.max_counts_ = max_counts_;
  out.max_counts_[type] = new_max;
  out.rates_ = rates_;
  out.hourly_ = hourly_;
  out.total_ = (total_ + 1) / radix_old * radix_new - 1;
  out.positive_ = next->pu_u.size();
  out.grid_ = grid;
  out.frontier_ = staircase_filter(std::move(surviving));
  // The result is a fresh anchor: reselect W so further deltas chain.
  next->select_candidates(out.frontier_);
  out.store_ = std::move(next);
  return out;
}

std::optional<FrontierIndex> FrontierIndex::with_limit(
    std::size_t type, int new_max, const cloud::Catalog& to) const {
  const std::size_t width = max_counts_.size();
  if (to.size() != width || type >= width) return std::nullopt;
  const std::span<const double> to_hourly = to.hourly_costs();
  for (std::size_t i = 0; i < width; ++i)
    if (to_hourly[i] != hourly_[i]) return std::nullopt;
  const std::vector<int>& to_limits = to.limits();
  for (std::size_t i = 0; i < width; ++i) {
    const int expected = i == type ? new_max : max_counts_[i];
    if (to_limits[i] != expected) return std::nullopt;
  }
  std::optional<FrontierIndex> out = with_limit(type, new_max);
  if (out) out->catalog_fingerprint_ = to.fingerprint();
  return out;
}

// --- Queries ---------------------------------------------------------------

std::uint64_t FrontierIndex::count_feasible(double demand,
                                            double deadline_seconds,
                                            double budget_dollars) const {
  const std::size_t grid = grid_;
  if (grid == 0 || positive_ == 0) return 0;
  const GridStore& store = *store_;

  // First u-fence meeting the deadline: strips >= m pass it wholly (exact:
  // division is monotone, and U does not depend on prices), strip m-1 is
  // the single partial strip, strips below fail wholly. m >= 1 always
  // because u_fences[0] = 0.
  const std::size_t m =
      static_cast<std::size_t>(
          std::partition_point(store.u_fences.begin(), store.u_fences.end(),
                               [&](double fence) {
                                 return !(demand / fence < deadline_seconds);
                               }) -
          store.u_fences.begin());
  if (m > grid) return 0;  // not even unbounded capacity meets the deadline

  const double hscale = demand / 3600.0;
  const std::size_t width = grid + 1;
  std::uint64_t count = 0;

  if (!repriced_) {
    // First s-fence failing the budget in slope form (cost ~ D/3600 * s):
    // strips < jm-1 pass wholly, strip jm-1 is partial, the rest fail.
    const std::size_t jm =
        static_cast<std::size_t>(
            std::partition_point(
                store.s_fences.begin(), store.s_fences.end(),
                [&](double fence) { return hscale * fence < budget_dollars; }) -
            store.s_fences.begin());
    count = store.matrix[m * width + (jm == 0 ? 0 : jm - 1)];

    // Partial u-strip m-1: exact per-point predicates.
    for (std::uint64_t p = store.u_offsets[m - 1]; p < store.u_offsets[m];
         ++p) {
      const double seconds = demand / store.pu_u[p];
      if (!(seconds < deadline_seconds)) continue;
      const double cost = seconds / 3600.0 * store.pu_cu[p];
      if (cost < budget_dollars) ++count;
    }

    // Partial s-strip jm-1, restricted to whole-passing u-strips (u >=
    // u_fences[m] excludes strip m-1, already counted above).
    if (jm >= 1) {
      const double u_min = store.u_fences[m];
      for (std::uint64_t p = store.s_offsets[jm - 1]; p < store.s_offsets[jm];
           ++p) {
        const std::uint32_t pos = store.ps_pos[p];
        const double u = store.pu_u[pos];
        if (!(u >= u_min)) continue;
        const double seconds = demand / u;
        if (!(seconds < deadline_seconds)) continue;
        const double cost = seconds / 3600.0 * store.pu_cu[pos];
        if (cost < budget_dollars) ++count;
      }
    }
    return count;
  }

  // Repriced: the grid's slopes are ANCHOR-priced while the budget must be
  // judged at the current prices. Any point's current cost lies within
  // [rho_lo, rho_hi] (x fold-rounding slack) of its anchor cost, so strips
  // whose anchor-slope fences clear the budget by more than the band are
  // counted in bulk, and only the band-straddling middle strips are
  // re-tested per point with the EXACT fold-derived current cost.
  const ConfigurationSpace space(max_counts_);
  std::vector<int> digits(max_counts_.size());
  const auto current_cost = [&](std::uint32_t pos, double seconds) {
    space.decode_into(store.pu_idx[pos], digits);
    return seconds / 3600.0 * SweepPlan::fold_value(digits, hourly_);
  };

  const double pass_scale = rho_hi_ * (1.0 + kRetestSlack);
  const double fail_scale = rho_lo_ * (1.0 - kRetestSlack);
  // Certainly-passing strips [0, j_hi - 1): every point's current cost is
  // below budget for sure; j_fail = first certainly-failing strip.
  const std::size_t j_hi =
      static_cast<std::size_t>(
          std::partition_point(store.s_fences.begin(), store.s_fences.end(),
                               [&](double fence) {
                                 return hscale * fence * pass_scale <
                                        budget_dollars;
                               }) -
          store.s_fences.begin());
  const std::size_t j_fail =
      static_cast<std::size_t>(
          std::partition_point(store.s_fences.begin(), store.s_fences.end(),
                               [&](double fence) {
                                 return !(hscale * fence * fail_scale >=
                                          budget_dollars);
                               }) -
          store.s_fences.begin());

  const std::size_t j_bulk = j_hi == 0 ? 0 : j_hi - 1;
  count = store.matrix[m * width + j_bulk];

  // Partial u-strip m-1: full per-point retest at current prices.
  for (std::uint64_t p = store.u_offsets[m - 1]; p < store.u_offsets[m]; ++p) {
    const double seconds = demand / store.pu_u[p];
    if (!(seconds < deadline_seconds)) continue;
    // pu lanes and ps_pos address the same arrays: p IS a position here.
    if (current_cost(static_cast<std::uint32_t>(p), seconds) < budget_dollars)
      ++count;
  }

  // Band-straddling s-strips [j_bulk, j_fail): per-point retest, skipping
  // u-strip m-1 (covered above) and wholly-failing u-strips.
  const double u_min = store.u_fences[m];
  for (std::size_t j = j_bulk; j < std::min(j_fail, grid); ++j) {
    for (std::uint64_t p = store.s_offsets[j]; p < store.s_offsets[j + 1];
         ++p) {
      const std::uint32_t pos = store.ps_pos[p];
      const double u = store.pu_u[pos];
      if (!(u >= u_min)) continue;
      const double seconds = demand / u;
      if (!(seconds < deadline_seconds)) continue;
      if (current_cost(pos, seconds) < budget_dollars) ++count;
    }
  }
  return count;
}

SweepResult FrontierIndex::query(double demand, const Constraints& constraints,
                                 bool collect_pareto) const {
  validate_query(demand, constraints);
  return query_impl(demand, constraints, collect_pareto);
}

SweepResult FrontierIndex::query(const Query& query) const {
  // Query::make already validated; don't pay validate_query twice.
  return query_impl(query.demand(), query.constraints(),
                    query.options().collect_pareto);
}

SweepResult FrontierIndex::query_impl(double demand,
                                      const Constraints& constraints,
                                      bool collect_pareto) const {
  if (constraints.confidence_z > 0 && constraints.rate_sigma > 0)
    throw std::invalid_argument(
        "FrontierIndex::query: risk-aware queries need sweep()");

  static obs::Counter& queries = obs::counter(
      "celia_frontier_queries_total", "FrontierIndex queries answered");
  static obs::Histogram& query_seconds = obs::histogram(
      "celia_frontier_query_seconds", {},
      "FrontierIndex query latency (staircase scan + counting grid)");
  queries.add(1);
  util::Stopwatch query_timer;

  const double deadline = constraints.deadline_seconds;
  const double budget = constraints.budget_dollars;

  SweepResult result;
  result.total = total_;
  result.feasible = count_feasible(demand, deadline, budget);

  // The staircase's U ascends, so predicted seconds descend: the deadline
  // admits a suffix (exact). Slopes ascend with U, so cost ascends
  // (modulo ulps) and the budget admits a prefix of that suffix.
  const auto begin = frontier_.begin();
  const auto lo = std::partition_point(
      begin, frontier_.end(),
      [&](const Entry& e) { return !(demand / e.u < deadline); });
  const auto hi = std::partition_point(lo, frontier_.end(), [&](const Entry& e) {
    const double seconds = demand / e.u;
    return seconds / 3600.0 * e.cu < budget;
  });
  const auto lo_i = static_cast<std::size_t>(lo - begin);
  const auto hi_i = static_cast<std::size_t>(hi - begin);

  // One exact pass over the (short) admitted range: rounded costs inside an
  // equal-slope run wiggle by ulps in either direction, so no early exit —
  // min-cost and min-time use sweep()'s exact comparisons and tie breaks.
  bool any = false;
  for (std::size_t i = lo_i; i < hi_i; ++i) {
    const Entry& e = frontier_[i];
    const double seconds = demand / e.u;
    const double cost = seconds / 3600.0 * e.cu;
    if (!(cost < budget)) continue;
    if (!any) {
      result.min_cost = result.min_time = {e.config_index, seconds, cost};
      any = true;
      continue;
    }
    if (cost < result.min_cost.cost ||
        (cost == result.min_cost.cost && seconds < result.min_cost.seconds)) {
      result.min_cost = {e.config_index, seconds, cost};
    }
    if (seconds < result.min_time.seconds ||
        (seconds == result.min_time.seconds && cost < result.min_time.cost)) {
      result.min_time = {e.config_index, seconds, cost};
    }
  }
  result.any_feasible = any;

  if (collect_pareto && any) {
    std::vector<CostTimePoint> candidates;
    candidates.reserve(hi_i - lo_i);
    for (std::size_t i = lo_i; i < hi_i; ++i) {
      const Entry& e = frontier_[i];
      const double seconds = demand / e.u;
      const double cost = seconds / 3600.0 * e.cu;
      if (!(cost < budget)) continue;
      candidates.push_back({e.config_index, seconds, cost});
    }
    result.pareto = pareto_filter(std::move(candidates));
  }
  result.route = QueryRoute::kIndex;
  query_seconds.record(query_timer.elapsed_seconds());
  return result;
}

std::size_t FrontierIndex::memory_bytes() const {
  std::size_t bytes = frontier_.capacity() * sizeof(Entry);
  // A repriced index SHARES its anchor's store; charging the shared bytes
  // to the anchor alone keeps cache accounting from double-counting.
  if (store_ && !repriced_) bytes += store_->bytes();
  return bytes;
}

bool FrontierIndex::matches(const ConfigurationSpace& space,
                            const ResourceCapacity& capacity,
                            std::span<const double> hourly_costs) const {
  if (space.max_counts() != max_counts_) return false;
  if (capacity.num_types() != rates_.size()) return false;
  for (std::size_t i = 0; i < rates_.size(); ++i)
    if (capacity.rate(i) != rates_[i]) return false;
  if (hourly_costs.size() != hourly_.size()) return false;
  for (std::size_t i = 0; i < hourly_.size(); ++i)
    if (hourly_costs[i] != hourly_[i]) return false;
  return true;
}

bool FrontierIndex::matches(const ConfigurationSpace& space,
                            const ResourceCapacity& capacity,
                            std::span<const double> hourly_costs,
                            std::uint64_t catalog_fingerprint) const {
  return catalog_fingerprint == catalog_fingerprint_ &&
         matches(space, capacity, hourly_costs);
}

namespace {

/// The shared-cache implementation behind both overloads. The key is
/// (catalog fingerprint, model content); span-based callers live in the
/// fingerprint-0 ("unpinned") key space, catalog-based callers in their
/// catalog's own, so the two can never serve each other's entries.
std::shared_ptr<const FrontierIndex> shared_frontier_index_keyed(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    std::span<const double> hourly_costs, const cloud::Catalog* catalog,
    parallel::ThreadPool* pool) {
  const std::uint64_t fingerprint = catalog ? catalog->fingerprint() : 0;
  static std::mutex mutex;
  static std::vector<std::shared_ptr<const FrontierIndex>> cache;  // MRU first
  constexpr std::size_t kMaxCached = 4;
  static obs::Counter& cache_hits =
      obs::counter("celia_frontier_cache_hits_total",
                   "shared_frontier_index lookups served from the cache");
  static obs::Counter& cache_misses = obs::counter(
      "celia_frontier_cache_misses_total",
      "shared_frontier_index lookups that had to build a new index");

  {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto it = cache.begin(); it != cache.end(); ++it) {
      if ((*it)->matches(space, capacity, hourly_costs, fingerprint)) {
        auto hit = *it;
        cache.erase(it);
        cache.insert(cache.begin(), hit);
        cache_hits.add(1);
        return hit;
      }
    }
  }
  cache_misses.add(1);

  // Build outside the lock; a concurrent builder of the same model may
  // race, in which case the first insertion wins.
  FrontierIndex::BuildOptions build_options;
  build_options.pool = pool;
  auto built = std::make_shared<const FrontierIndex>(
      catalog
          ? FrontierIndex::build(space, capacity, *catalog, build_options)
          : FrontierIndex::build(space, capacity, hourly_costs,
                                 build_options));

  std::lock_guard<std::mutex> lock(mutex);
  for (const auto& cached : cache)
    if (cached->matches(space, capacity, hourly_costs, fingerprint))
      return cached;
  cache.insert(cache.begin(), built);
  if (cache.size() > kMaxCached) cache.pop_back();
  return built;
}

}  // namespace

std::shared_ptr<const FrontierIndex> shared_frontier_index(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    std::span<const double> hourly_costs, parallel::ThreadPool* pool) {
  return shared_frontier_index_keyed(space, capacity, hourly_costs, nullptr,
                                     pool);
}

std::shared_ptr<const FrontierIndex> shared_frontier_index(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    const cloud::Catalog& catalog, parallel::ThreadPool* pool) {
  return shared_frontier_index_keyed(space, capacity, catalog.hourly_costs(),
                                     &catalog, pool);
}

}  // namespace celia::core
