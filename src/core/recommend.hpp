#pragma once
// Picking ONE configuration from a Pareto frontier.
//
// The paper stops at the frontier; a user must still choose a point on
// it. This module implements the standard selection rules for bi-objective
// frontiers, used by the planner example (--pick):
//
//   kCheapest  — minimum cost (the slowest frontier point);
//   kFastest   — minimum time (the most expensive frontier point);
//   kBalanced  — minimum normalized Euclidean distance to the utopia
//                point (min-time, min-cost), after scaling both
//                objectives to [0, 1] over the frontier;
//   kKnee      — maximum perpendicular distance from the chord joining
//                the frontier's endpoints in normalized space: the point
//                where the trade-off curvature is strongest (spending a
//                little more stops buying much time).

#include <optional>
#include <span>
#include <string_view>

#include "core/enumerate.hpp"
#include "core/pareto.hpp"

namespace celia::core {

enum class PickStrategy { kCheapest, kFastest, kBalanced, kKnee };

std::string_view pick_strategy_name(PickStrategy strategy);

/// Select one point from a (non-empty) frontier. The frontier need not be
/// sorted. Throws std::invalid_argument on an empty frontier.
CostTimePoint pick_from_frontier(std::span<const CostTimePoint> frontier,
                                 PickStrategy strategy);

/// One-call planner query: compute the Pareto frontier for (demand,
/// constraints) via the shared FrontierIndex (built on first use, reused
/// after — microseconds per call) and pick one point from it. Returns
/// nullopt when no configuration is feasible. Equivalent to sweep() +
/// pick_from_frontier; risk-aware constraints take the sweep path.
std::optional<CostTimePoint> recommend(const ConfigurationSpace& space,
                                       const ResourceCapacity& capacity,
                                       std::span<const double> hourly_costs,
                                       double demand,
                                       const Constraints& constraints,
                                       PickStrategy strategy,
                                       parallel::ThreadPool* pool = nullptr);

/// Vector-demand form: identical selection over the bottleneck-feasible
/// frontier. Multi-dimensional queries are index-ineligible, so this takes
/// the (observable) sweep-fallback route; a 1-D demand vector is
/// bit-identical to the scalar overload above.
std::optional<CostTimePoint> recommend(const ConfigurationSpace& space,
                                       const ResourceCapacity& capacity,
                                       std::span<const double> hourly_costs,
                                       const apps::DemandVector& demand,
                                       const Constraints& constraints,
                                       PickStrategy strategy,
                                       parallel::ThreadPool* pool = nullptr);

}  // namespace celia::core
