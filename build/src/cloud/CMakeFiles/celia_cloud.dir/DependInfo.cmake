
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/autoscaler.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/autoscaler.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/autoscaler.cpp.o.d"
  "/root/repo/src/cloud/cluster_exec.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/cluster_exec.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/cluster_exec.cpp.o.d"
  "/root/repo/src/cloud/gantt.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/gantt.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/gantt.cpp.o.d"
  "/root/repo/src/cloud/instance_type.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/instance_type.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/instance_type.cpp.o.d"
  "/root/repo/src/cloud/pricing.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/pricing.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/pricing.cpp.o.d"
  "/root/repo/src/cloud/provider.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/provider.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/provider.cpp.o.d"
  "/root/repo/src/cloud/region.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/region.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/region.cpp.o.d"
  "/root/repo/src/cloud/spot.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/spot.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/spot.cpp.o.d"
  "/root/repo/src/cloud/vm.cpp" "src/cloud/CMakeFiles/celia_cloud.dir/vm.cpp.o" "gcc" "src/cloud/CMakeFiles/celia_cloud.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/celia_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/celia_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/celia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/celia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/celia_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
