file(REMOVE_RECURSE
  "CMakeFiles/ext_region_choice.dir/ext_region_choice.cpp.o"
  "CMakeFiles/ext_region_choice.dir/ext_region_choice.cpp.o.d"
  "ext_region_choice"
  "ext_region_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_region_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
