#pragma once
// serve::CatalogWatchdog — the catalog-feed half of the serving layer's
// self-healing contract.
//
// A long-lived PlannerService answers from catalog snapshots that some
// external feed keeps replacing (prices drift, limits shrink — PR 9's
// delta maintenance makes those replaces cheap). The feed itself is a
// dependency that fails: fetches brown out, delta paths throw, a region
// stops publishing. The watchdog makes that failure mode explicit and
// bounded instead of silent:
//
//   * Every tracked catalog carries the age of its last SUCCESSFUL update
//     ("staleness"). While staleness stays inside the soft budget and the
//     feed isn't failing, the catalog is kHealthy.
//   * Soft budget breached, or feed_failure_threshold consecutive feed
//     failures, or the replace breaker not closed → kDegraded. The
//     service keeps answering from the warm FrontierIndex — degraded
//     serving beats no serving — but every outcome is stamped with
//     staleness_us and a DegradeReason so callers can judge the answer.
//   * Staleness past the HARD cap (max_staleness_seconds) additionally
//     withdraws serve permission (HealthReport::serve_allowed == false);
//     the service sheds those queries with a typed reason instead of
//     returning arbitrarily stale plans. Bounded staleness is the
//     contract the chaos soak asserts: no served answer is ever older
//     than the hard cap.
//   * Catalog replaces are gated behind a CircuitBreaker: repeated
//     apply_update failures open it and QUARANTINE further replaces (the
//     known-good snapshot keeps serving); after the seeded cooldown a
//     probe replace re-admits the feed automatically.
//
// Counter invariants (exact, asserted by the chaos soak):
//   updates_attempted == updates_applied + update_failures +
//                        replaces_quarantined
//   degraded_entries  == recoveries + (1 if currently degraded else 0),
//                        per catalog, summed over tracked catalogs.
//
// THREAD SAFETY: all methods are safe for concurrent callers (one mutex).
// Like every resilience primitive here, the watchdog reads an EXPLICIT
// clock passed by the caller — never the system clock — so chaos
// schedules replay bit-identically.

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cloud/catalog.hpp"
#include "util/resilience.hpp"

namespace celia::core {
class PlannerEngine;
}

namespace celia::serve {

/// Why a served answer (or a tracked feed) is degraded. Stamped on every
/// ServeOutcome; kNone for a healthy feed (or when no watchdog is wired).
enum class DegradeReason {
  kNone = 0,
  kStaleFeed,        // soft staleness budget breached
  kFeedFailing,      // consecutive feed failures at/over the threshold
  kFeedQuarantined,  // replace breaker open/half-open: updates vetoed
};

std::string_view degrade_reason_name(DegradeReason reason);

struct WatchdogOptions {
  /// Soft staleness budget: age of the last successful update beyond
  /// which the catalog is served DEGRADED (stamped, still answered).
  double staleness_budget_seconds = 300.0;
  /// Hard cap: beyond this age serve_allowed flips false and the service
  /// sheds instead of answering. Defaults to unlimited (degraded serving
  /// never turns into refusal unless the operator opts in).
  double max_staleness_seconds = std::numeric_limits<double>::infinity();
  /// Consecutive feed failures that flip the catalog degraded even while
  /// the snapshot itself is still fresh.
  int feed_failure_threshold = 3;
  /// Breaker gating apply_update; its failure_threshold is how many
  /// consecutive failed replaces quarantine the feed. The default exports
  /// no state gauge; wire Policy::state_gauge to
  /// "celia_resilience_breaker_state" for /metrics visibility.
  util::CircuitBreaker::Policy breaker;
};

/// Point-in-time health of one tracked catalog.
struct HealthReport {
  bool degraded = false;
  DegradeReason reason = DegradeReason::kNone;
  double staleness_seconds = 0.0;
  /// False only past the hard staleness cap: the service must shed.
  bool serve_allowed = true;
  /// Would the breaker admit a replace right now (without consuming a
  /// half-open probe)?
  bool replaces_allowed = true;
  std::uint64_t consecutive_failures = 0;
};

/// Monotonic transition/attempt counters across all tracked catalogs.
struct WatchdogStats {
  std::uint64_t updates_attempted = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t update_failures = 0;      // failed fetches + throwing replaces
  std::uint64_t replaces_quarantined = 0; // updates vetoed by the breaker
  std::uint64_t degraded_entries = 0;     // healthy -> degraded transitions
  std::uint64_t recoveries = 0;           // degraded -> healthy transitions
  std::uint64_t stale_breaches = 0;       // degraded entries caused by age
};

class CatalogWatchdog {
 public:
  /// `engine` is borrowed and must outlive the watchdog.
  explicit CatalogWatchdog(core::PlannerEngine& engine,
                           WatchdogOptions options = {});

  CatalogWatchdog(const CatalogWatchdog&) = delete;
  CatalogWatchdog& operator=(const CatalogWatchdog&) = delete;

  /// Start tracking `name` (which the engine must already hold), fresh as
  /// of `now`. Idempotent: re-tracking only refreshes the timestamp.
  void track(const std::string& name, double now);

  /// Feed delivery path: replace `name`'s snapshot through the breaker.
  /// Returns true when the engine accepted the replace (staleness resets,
  /// consecutive failures clear, a half-open probe success re-closes the
  /// breaker). Returns false when the breaker quarantined the replace, or
  /// when the engine's add_catalog threw (recorded as a feed failure; the
  /// engine's strong exception safety guarantees the old snapshot still
  /// serves).
  bool apply_update(const std::string& name,
                    std::shared_ptr<const cloud::Catalog> snapshot,
                    double now);

  /// Feed failure with no snapshot to offer (fetch timeout, brownout).
  void record_feed_failure(const std::string& name, double now);

  /// Health of `name` at `now`. Unknown names report healthy/serveable
  /// with zero staleness — an unwatched catalog must serve exactly like a
  /// service with no watchdog wired. Updates the degraded-mode gauge and
  /// transition counters (staleness grows between calls, so observation
  /// is also where age-driven transitions surface).
  HealthReport health(const std::string& name, double now) const;

  double staleness_seconds(const std::string& name, double now) const;

  WatchdogStats stats() const;

  /// Tracked catalogs currently degraded (the degraded-mode gauge value).
  std::size_t degraded_count() const;

 private:
  struct Tracked {
    double last_success = 0.0;
    std::uint64_t consecutive_failures = 0;
    bool degraded = false;  // last observed state, for transition counting
    std::unique_ptr<util::CircuitBreaker> breaker;
  };

  /// Recompute `entry`'s degraded state at `now`, counting transitions
  /// and updating the degraded-mode gauge. mutex_ must be held.
  HealthReport refresh_locked(Tracked& entry, double now) const;

  core::PlannerEngine& engine_;
  WatchdogOptions options_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, Tracked> tracked_;
  mutable WatchdogStats stats_;
  mutable std::size_t degraded_now_ = 0;
};

}  // namespace celia::serve
