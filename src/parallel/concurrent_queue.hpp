#pragma once
// Bounded multi-producer multi-consumer queue with blocking push/pop and a
// close() protocol. Used by the SAND master-worker simulator's work queue,
// the serving layer's shutdown path, and available as a general building
// block.
//
// SHUTDOWN CONTRACT (pinned by parallel_queue_test.cpp):
//  * close() is the graceful path: pushes fail from that point on, but
//    every item already queued remains poppable — consumers DRAIN the
//    queue and then (and only then) see the definite "closed" signal,
//    pop() == nullopt. A pop() blocked on an empty queue at close() time
//    wakes exactly once with nullopt; it can never miss the signal or
//    re-block, because the closed flag is checked under the same mutex
//    the wait predicate uses.
//  * close_and_drain() is the abortive path: it closes the queue AND
//    removes the pending items in one atomic step, handing them back to
//    the caller so unserved work can be REPORTED (failed over, answered
//    with a typed shutdown outcome, ...) instead of silently destroyed.
//    After it returns, every pop() — blocked or future — returns nullopt.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace celia::parallel {

template <typename T>
class ConcurrentQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit ConcurrentQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_))
        return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Graceful shutdown: pushes fail afterwards, pops drain the remaining
  /// items and then return nullopt (see the shutdown contract above).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Abortive shutdown: close AND take the pending items in one atomic
  /// step, in FIFO order, so the caller can report or re-route work that
  /// will never be served. Blocked pops wake with nullopt immediately.
  /// Idempotent: a second call (or a call after close()) returns whatever
  /// is still queued, which is empty unless items were pushed before the
  /// first close won the race.
  std::vector<T> close_and_drain() {
    std::vector<T> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      pending.reserve(items_.size());
      while (!items_.empty()) {
        pending.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return pending;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace celia::parallel
