#include "core/recommend.hpp"

#include <algorithm>

#include "core/query.hpp"
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace celia::core {

std::string_view pick_strategy_name(PickStrategy strategy) {
  switch (strategy) {
    case PickStrategy::kCheapest:
      return "cheapest";
    case PickStrategy::kFastest:
      return "fastest";
    case PickStrategy::kBalanced:
      return "balanced";
    case PickStrategy::kKnee:
      return "knee";
  }
  return "?";
}

namespace {

struct Normalized {
  double time01;
  double cost01;
};

std::vector<Normalized> normalize(std::span<const CostTimePoint> frontier) {
  double tmin = frontier[0].seconds, tmax = frontier[0].seconds;
  double cmin = frontier[0].cost, cmax = frontier[0].cost;
  for (const auto& point : frontier) {
    tmin = std::min(tmin, point.seconds);
    tmax = std::max(tmax, point.seconds);
    cmin = std::min(cmin, point.cost);
    cmax = std::max(cmax, point.cost);
  }
  const double tspan = tmax > tmin ? tmax - tmin : 1.0;
  const double cspan = cmax > cmin ? cmax - cmin : 1.0;
  std::vector<Normalized> out;
  out.reserve(frontier.size());
  for (const auto& point : frontier)
    out.push_back(
        {(point.seconds - tmin) / tspan, (point.cost - cmin) / cspan});
  return out;
}

}  // namespace

CostTimePoint pick_from_frontier(std::span<const CostTimePoint> frontier,
                                 PickStrategy strategy) {
  if (frontier.empty())
    throw std::invalid_argument("pick_from_frontier: empty frontier");

  switch (strategy) {
    case PickStrategy::kCheapest: {
      const auto it = std::min_element(
          frontier.begin(), frontier.end(),
          [](const CostTimePoint& a, const CostTimePoint& b) {
            if (a.cost != b.cost) return a.cost < b.cost;
            return a.seconds < b.seconds;
          });
      return *it;
    }
    case PickStrategy::kFastest: {
      const auto it = std::min_element(
          frontier.begin(), frontier.end(),
          [](const CostTimePoint& a, const CostTimePoint& b) {
            if (a.seconds != b.seconds) return a.seconds < b.seconds;
            return a.cost < b.cost;
          });
      return *it;
    }
    case PickStrategy::kBalanced: {
      const auto normalized = normalize(frontier);
      std::size_t best = 0;
      double best_distance = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const double d = normalized[i].time01 * normalized[i].time01 +
                         normalized[i].cost01 * normalized[i].cost01;
        if (d < best_distance) {
          best_distance = d;
          best = i;
        }
      }
      return frontier[best];
    }
    case PickStrategy::kKnee: {
      if (frontier.size() <= 2)
        return pick_from_frontier(frontier, PickStrategy::kBalanced);
      const auto normalized = normalize(frontier);
      // Chord endpoints: min-time and min-cost points in normalized space.
      std::size_t fast = 0, cheap = 0;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (normalized[i].time01 < normalized[fast].time01) fast = i;
        if (normalized[i].cost01 < normalized[cheap].cost01) cheap = i;
      }
      const double ax = normalized[fast].time01, ay = normalized[fast].cost01;
      const double bx = normalized[cheap].time01, by = normalized[cheap].cost01;
      const double chord = std::hypot(bx - ax, by - ay);
      if (chord == 0.0)
        return pick_from_frontier(frontier, PickStrategy::kBalanced);
      std::size_t best = 0;
      double best_distance = -1.0;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const double distance =
            std::abs((bx - ax) * (ay - normalized[i].cost01) -
                     (ax - normalized[i].time01) * (by - ay)) /
            chord;
        if (distance > best_distance) {
          best_distance = distance;
          best = i;
        }
      }
      return frontier[best];
    }
  }
  throw std::invalid_argument("pick_from_frontier: unknown strategy");
}

std::optional<CostTimePoint> recommend(const ConfigurationSpace& space,
                                       const ResourceCapacity& capacity,
                                       std::span<const double> hourly_costs,
                                       double demand,
                                       const Constraints& constraints,
                                       PickStrategy strategy,
                                       parallel::ThreadPool* pool) {
  SweepOptions options;
  options.index_policy = IndexPolicy::Shared();
  options.pool = pool;
  const SweepResult result = sweep(space, capacity, hourly_costs,
                                   Query::make(demand, constraints, options));
  if (!result.any_feasible) return std::nullopt;
  return pick_from_frontier(result.pareto, strategy);
}

std::optional<CostTimePoint> recommend(const ConfigurationSpace& space,
                                       const ResourceCapacity& capacity,
                                       std::span<const double> hourly_costs,
                                       const apps::DemandVector& demand,
                                       const Constraints& constraints,
                                       PickStrategy strategy,
                                       parallel::ThreadPool* pool) {
  SweepOptions options;
  options.index_policy = IndexPolicy::Shared();
  options.pool = pool;
  const SweepResult result = sweep(space, capacity, hourly_costs,
                                   Query::make(demand, constraints, options));
  if (!result.any_feasible) return std::nullopt;
  return pick_from_frontier(result.pareto, strategy);
}

}  // namespace celia::core
