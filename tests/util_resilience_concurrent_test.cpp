// Concurrency regression tests for the resilience primitives
// (util/resilience.hpp). These run under the TSan CI matrix: the
// invariants here must hold for EVERY interleaving, not just the lucky
// ones — in particular a racing half-open CircuitBreaker admits exactly
// `half_open_probes` probes.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/resilience.hpp"

namespace {

using celia::util::CircuitBreaker;
using celia::util::TokenBucket;

TEST(ResilienceConcurrent, HalfOpenAdmitsExactlyOneProbeUnderRacingAllow) {
  for (int round = 0; round < 20; ++round) {
    CircuitBreaker::Policy policy;
    policy.failure_threshold = 1;
    policy.open_seconds = 1.0;
    policy.half_open_probes = 1;
    policy.cooldown_jitter_fraction = 0.0;
    CircuitBreaker breaker(policy);

    ASSERT_TRUE(breaker.allow(0.0));
    breaker.record_failure(0.0);  // opens; cooldown ends at t = 1
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    // Many threads race allow() past the cooldown: the open → half-open
    // transition and the probe admission are one atomic step, so exactly
    // one caller may probe.
    constexpr int kThreads = 8;
    std::atomic<int> admitted{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&breaker, &admitted] {
        if (breaker.allow(2.0)) admitted.fetch_add(1);
      });
    for (std::thread& thread : threads) thread.join();

    EXPECT_EQ(admitted.load(), 1) << "round " << round;
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    // The probe succeeding closes the breaker again.
    breaker.record_success(2.5);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  }
}

TEST(ResilienceConcurrent, HalfOpenAdmitsExactlyKProbesUnderRacingAllow) {
  CircuitBreaker::Policy policy;
  policy.failure_threshold = 1;
  policy.open_seconds = 1.0;
  policy.half_open_probes = 3;
  CircuitBreaker breaker(policy);
  ASSERT_TRUE(breaker.allow(0.0));
  breaker.record_failure(0.0);

  constexpr int kThreads = 16;
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&breaker, &admitted] {
      if (breaker.allow(2.0)) admitted.fetch_add(1);
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(admitted.load(), 3);
}

TEST(ResilienceConcurrent, TokenBucketNeverMintsTokensUnderRace) {
  // 64 tokens, negligible refill: no matter how the threads interleave,
  // exactly 64 try_acquire calls may succeed.
  TokenBucket bucket(64.0, 1e-9);
  constexpr int kThreads = 8;
  constexpr int kAttempts = 64;
  std::atomic<int> acquired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&bucket, &acquired] {
      for (int i = 0; i < kAttempts; ++i)
        if (bucket.try_acquire(0.0)) acquired.fetch_add(1);
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(acquired.load(), 64);
  EXPECT_FALSE(bucket.try_acquire(0.0));
}

TEST(ResilienceConcurrent, SkewedClockReadsCannotMoveTheBucketBackwards) {
  // Racing callers observe the clock in different orders; the bucket
  // clamps `now` forward internally, so a stale read can never re-mint
  // tokens another thread already spent.
  TokenBucket bucket(1.0, 1.0);  // 1 token, 1 token/s
  ASSERT_TRUE(bucket.try_acquire(10.0));
  constexpr int kThreads = 8;
  std::atomic<int> acquired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&bucket, &acquired, t] {
      // Thread clocks skew from 10.2 to 11.6: at most one token has
      // refilled by ANY of these times.
      const double now = 10.2 + 0.2 * static_cast<double>(t);
      if (bucket.try_acquire(now)) acquired.fetch_add(1);
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(acquired.load(), 1);
}

TEST(ResilienceConcurrent, BreakerSurvivesAHammeringMixedWorkload) {
  CircuitBreaker::Policy policy;
  policy.failure_threshold = 3;
  policy.open_seconds = 0.01;
  policy.half_open_probes = 2;
  CircuitBreaker breaker(policy);

  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&breaker, t] {
      for (int i = 0; i < kOps; ++i) {
        const double now = 0.001 * static_cast<double>(i);
        if (!breaker.allow(now)) continue;
        if ((i + t) % 5 == 0)
          breaker.record_failure(now);
        else
          breaker.record_success(now);
      }
    });
  for (std::thread& thread : threads) thread.join();

  // No crash, no deadlock, and a coherent final snapshot: every closed
  // transition had a matching half-open episode, which had a matching
  // open transition.
  const CircuitBreaker::Stats stats = breaker.stats();
  EXPECT_GE(stats.opened, stats.half_opened);
  EXPECT_GE(stats.half_opened, stats.closed);
}

}  // namespace
