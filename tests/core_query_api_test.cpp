// Tests for the unified Query API: Query::make validates once and the
// Query-taking sweep() is bit-identical to the legacy (demand,
// constraints) overloads; SweepResult::route reports the path taken; the
// celia_planner_route_* / celia_frontier_cache_* counters account for
// every query exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "cloud/instance_type.hpp"
#include "core/enumerate.hpp"
#include "core/frontier_index.hpp"
#include "core/query.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::core;
namespace obs = celia::obs;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct RandomModel {
  ConfigurationSpace space;
  ResourceCapacity capacity;
  std::vector<double> hourly;
};

RandomModel random_model(celia::util::Xoshiro256& rng) {
  std::vector<int> max_counts(celia::cloud::catalog_size());
  bool any = false;
  for (auto& count : max_counts) {
    count = static_cast<int>(rng.bounded(4));
    any = any || count > 0;
  }
  if (!any) max_counts[rng.bounded(max_counts.size())] = 2;

  std::vector<double> per_vcpu(celia::cloud::catalog_size());
  for (auto& rate : per_vcpu) rate = rng.uniform(1e8, 2e9);

  std::vector<double> hourly(celia::cloud::catalog_size());
  for (auto& price : hourly) price = rng.uniform(0.05, 1.0);

  return {ConfigurationSpace(max_counts),
          ResourceCapacity(per_vcpu, celia::cloud::Catalog::ec2_table3()),
          std::move(hourly)};
}

void expect_same_result(const SweepResult& expected, const SweepResult& got,
                        const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(expected.total, got.total);
  EXPECT_EQ(expected.feasible, got.feasible);
  EXPECT_EQ(expected.any_feasible, got.any_feasible);
  if (expected.any_feasible && got.any_feasible) {
    EXPECT_EQ(expected.min_cost.config_index, got.min_cost.config_index);
    EXPECT_EQ(expected.min_cost.seconds, got.min_cost.seconds);
    EXPECT_EQ(expected.min_cost.cost, got.min_cost.cost);
    EXPECT_EQ(expected.min_time.config_index, got.min_time.config_index);
    EXPECT_EQ(expected.min_time.seconds, got.min_time.seconds);
    EXPECT_EQ(expected.min_time.cost, got.min_time.cost);
  }
  EXPECT_EQ(expected.pareto, got.pareto);
  // Sampled points are merged in block-completion order, which the thread
  // scheduler perturbs — compare them as multisets.
  auto sorted = [](std::vector<CostTimePoint> points) {
    std::sort(points.begin(), points.end(),
              [](const CostTimePoint& a, const CostTimePoint& b) {
                return a.config_index < b.config_index;
              });
    return points;
  };
  EXPECT_EQ(sorted(expected.feasible_points), sorted(got.feasible_points));
}

TEST(QueryApi, MakeValidatesOnceAndStoresFields) {
  Constraints constraints;
  constraints.deadline_seconds = 3600.0;
  constraints.budget_dollars = 10.0;
  SweepOptions options;
  options.sample_stride = 3;
  const Query query = Query::make(1e12, constraints, options);
  EXPECT_EQ(query.demand(), 1e12);
  EXPECT_EQ(query.constraints().deadline_seconds, 3600.0);
  EXPECT_EQ(query.constraints().budget_dollars, 10.0);
  EXPECT_EQ(query.options().sample_stride, 3u);

  SweepOptions other;
  other.collect_pareto = false;
  const Query changed = query.with_options(other);
  EXPECT_FALSE(changed.options().collect_pareto);
  EXPECT_EQ(changed.demand(), 1e12);  // demand/constraints carry over
  EXPECT_EQ(changed.constraints().budget_dollars, 10.0);
}

TEST(QueryApi, MakeRejectsMalformedQueries) {
  EXPECT_THROW(Query::make(0.0, Constraints{}), std::invalid_argument);
  EXPECT_THROW(Query::make(-1.0, Constraints{}), std::invalid_argument);
  EXPECT_THROW(Query::make(kInf, Constraints{}), std::invalid_argument);
  EXPECT_THROW(Query::make(std::nan(""), Constraints{}),
               std::invalid_argument);
  Constraints bad;
  bad.deadline_seconds = -1.0;
  EXPECT_THROW(Query::make(1e12, bad), std::invalid_argument);
  bad = {};
  bad.budget_dollars = std::nan("");
  EXPECT_THROW(Query::make(1e12, bad), std::invalid_argument);
  bad = {};
  bad.confidence_z = -0.5;
  EXPECT_THROW(Query::make(1e12, bad), std::invalid_argument);
  bad = {};
  bad.rate_sigma = kInf;
  EXPECT_THROW(Query::make(1e12, bad), std::invalid_argument);
}

TEST(QueryApi, QueryOverloadBitIdenticalToLegacyOverload) {
  celia::util::Xoshiro256 rng(20260805);
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE(trial);
    const RandomModel model = random_model(rng);
    const double demand = std::pow(10.0, rng.uniform(10.0, 15.0));
    Constraints constraints;
    constraints.deadline_seconds = demand / rng.uniform(1e9, 5e10);
    constraints.budget_dollars = rng.uniform(0.01, 50.0);
    SweepOptions options;
    options.sample_stride = trial % 3 == 0 ? 2 : 0;
    options.collect_pareto = trial % 2 == 0;

    const SweepResult legacy = sweep(model.space, model.capacity,
                                     model.hourly, demand, constraints,
                                     options);
    const SweepResult via_query =
        sweep(model.space, model.capacity, model.hourly,
              Query::make(demand, constraints, options));
    expect_same_result(legacy, via_query, "explicit hourly costs");
    EXPECT_EQ(legacy.route, QueryRoute::kSweep);
    EXPECT_EQ(via_query.route, QueryRoute::kSweep);

    // Catalog-priced convenience overloads agree the same way.
    const SweepResult legacy_ec2 =
        sweep(model.space, model.capacity, demand, constraints, options);
    const SweepResult query_ec2 = sweep(model.space, model.capacity,
                                        Query::make(demand, constraints,
                                                    options));
    expect_same_result(legacy_ec2, query_ec2, "EC2 catalog costs");
  }
}

TEST(QueryApi, RiskAwareQueriesAgreeThroughQueryRoute) {
  celia::util::Xoshiro256 rng(31);
  const RandomModel model = random_model(rng);
  Constraints risky;
  risky.deadline_seconds = 7200.0;
  risky.confidence_z = 1.645;
  risky.rate_sigma = 0.05;
  const SweepResult legacy =
      sweep(model.space, model.capacity, model.hourly, 1e13, risky);
  const SweepResult via_query = sweep(model.space, model.capacity,
                                      model.hourly, Query::make(1e13, risky));
  expect_same_result(legacy, via_query, "risk-aware");
}

TEST(QueryApi, RouteReportsThePathTaken) {
  celia::util::Xoshiro256 rng(37);
  const RandomModel model = random_model(rng);
  Constraints constraints;
  constraints.deadline_seconds = 3600.0;

  const SweepResult plain =
      sweep(model.space, model.capacity, model.hourly, 1e12, constraints);
  EXPECT_EQ(plain.route, QueryRoute::kSweep);

  const FrontierIndex index =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  SweepOptions options;
  options.index_policy = IndexPolicy::Prefer(&index);
  const SweepResult via_index = sweep(model.space, model.capacity,
                                      model.hourly, 1e12, constraints,
                                      options);
  EXPECT_EQ(via_index.route, QueryRoute::kIndex);

  options.index_policy = IndexPolicy::Shared();
  const SweepResult via_shared = sweep(model.space, model.capacity,
                                       model.hourly, 1e12, constraints,
                                       options);
  EXPECT_EQ(via_shared.route, QueryRoute::kSharedIndex);

  Constraints risky = constraints;
  risky.confidence_z = 1.645;
  risky.rate_sigma = 0.05;
  options.index_policy = IndexPolicy::Prefer(&index);
  const SweepResult fell_back = sweep(model.space, model.capacity,
                                      model.hourly, 1e12, risky, options);
  EXPECT_EQ(fell_back.route, QueryRoute::kSweepFallback);

  EXPECT_EQ(query_route_name(QueryRoute::kSweep), "sweep");
  EXPECT_EQ(query_route_name(QueryRoute::kIndex), "index");
  EXPECT_EQ(query_route_name(QueryRoute::kSharedIndex), "shared_index");
  EXPECT_EQ(query_route_name(QueryRoute::kSweepFallback), "sweep_fallback");
}

TEST(QueryApi, PreferWithNullIndexThrows) {
  celia::util::Xoshiro256 rng(41);
  const RandomModel model = random_model(rng);
  SweepOptions options;
  options.index_policy = IndexPolicy::Prefer(nullptr);
  EXPECT_THROW(sweep(model.space, model.capacity, model.hourly, 1e12,
                     Constraints{}, options),
               std::invalid_argument);
}

TEST(QueryApi, RouteCountersAccountForEveryQuery) {
  celia::util::Xoshiro256 rng(43);
  const RandomModel model = random_model(rng);
  const FrontierIndex index =
      FrontierIndex::build(model.space, model.capacity, model.hourly);
  // Counters are process-wide, so assert on before/after deltas.
  obs::Counter& sweep_route = obs::counter("celia_planner_route_sweep_total");
  obs::Counter& index_route = obs::counter("celia_planner_route_index_total");
  obs::Counter& fallback_route =
      obs::counter("celia_planner_route_fallback_total");
  const std::uint64_t sweeps_before = sweep_route.value();
  const std::uint64_t index_before = index_route.value();
  const std::uint64_t fallback_before = fallback_route.value();

  Constraints constraints;
  constraints.deadline_seconds = 3600.0;
  Constraints risky = constraints;
  risky.confidence_z = 1.645;
  risky.rate_sigma = 0.05;
  SweepOptions prefer;
  prefer.index_policy = IndexPolicy::Prefer(&index);
  for (int i = 0; i < 3; ++i) {
    sweep(model.space, model.capacity, model.hourly, 1e12, constraints);
    sweep(model.space, model.capacity, model.hourly, 1e12, constraints,
          prefer);
  }
  sweep(model.space, model.capacity, model.hourly, 1e12, risky, prefer);

  EXPECT_EQ(sweep_route.value() - sweeps_before, 3u);
  EXPECT_EQ(index_route.value() - index_before, 3u);
  EXPECT_EQ(fallback_route.value() - fallback_before, 1u);
}

TEST(QueryApi, SharedIndexCacheCountsHitsAcrossADeadlineLadder) {
  celia::util::Xoshiro256 rng(47);
  const RandomModel model = random_model(rng);
  obs::Counter& hits = obs::counter("celia_frontier_cache_hits_total");
  obs::Counter& misses = obs::counter("celia_frontier_cache_misses_total");
  // Prime the MRU cache so the ladder below is all hits, whatever models
  // earlier tests left cached.
  shared_frontier_index(model.space, model.capacity, model.hourly);
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();

  SweepOptions options;
  options.index_policy = IndexPolicy::Shared();
  constexpr int kLadder = 5;
  for (int i = 0; i < kLadder; ++i) {
    Constraints constraints;
    constraints.deadline_seconds = 600.0 * (i + 1);
    const SweepResult got = sweep(model.space, model.capacity, model.hourly,
                                  1e12, constraints, options);
    EXPECT_EQ(got.route, QueryRoute::kSharedIndex);
  }
  EXPECT_EQ(hits.value() - hits_before, static_cast<std::uint64_t>(kLadder));
  EXPECT_EQ(misses.value(), misses_before);
}

}  // namespace
