#include "hw/perf_counter.hpp"

namespace celia::hw {

std::string_view op_class_name(OpClass op) {
  switch (op) {
    case OpClass::kIntArith:
      return "int-arith";
    case OpClass::kIntMul:
      return "int-mul";
    case OpClass::kFloatAdd:
      return "fp-add";
    case OpClass::kFloatMul:
      return "fp-mul";
    case OpClass::kFloatDiv:
      return "fp-div";
    case OpClass::kFloatSqrt:
      return "fp-sqrt";
    case OpClass::kLoadStore:
      return "load-store";
    case OpClass::kBranch:
      return "branch";
    case OpClass::kOther:
      return "other";
  }
  return "?";
}

}  // namespace celia::hw
