// Ablation A3: robustness of the Table IV validation errors across cloud
// noise seeds. The paper validates against one set of EC2 runs; this
// ablation re-draws the "day on EC2" twenty times and reports the error
// distribution, checking the headline claim ("prediction error of our
// models is less than 17%") is not a lucky draw.

#include <iostream>
#include <vector>

#include "cloud/provider.hpp"
#include "core/validation.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  constexpr int kSeeds = 20;
  std::cout << "=== Ablation A3: Validation Error vs Cloud Noise Seed ("
            << kSeeds << " seeds) ===\n\n";

  std::vector<double> x264_errors, galaxy_errors, sand_errors, max_errors;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    cloud::CloudProvider provider(static_cast<std::uint64_t>(seed) * 1000);
    const auto rows = core::run_table4_validation(provider);
    double max_error = 0;
    for (const auto& row : rows) {
      if (row.app == "x264") x264_errors.push_back(row.time_error);
      if (row.app == "galaxy") galaxy_errors.push_back(row.time_error);
      if (row.app == "sand") sand_errors.push_back(row.time_error);
      max_error = std::max(max_error, row.time_error);
    }
    max_errors.push_back(max_error);
  }

  util::TablePrinter table({"Application", "mean", "p50", "p90", "max",
                            "paper max"});
  for (std::size_t c = 1; c < 6; ++c) table.set_right_aligned(c);
  auto add = [&](const char* name, std::vector<double>& errors,
                 const char* paper) {
    table.add_row({name, util::format_percent(util::mean(errors)),
                   util::format_percent(util::percentile(errors, 50)),
                   util::format_percent(util::percentile(errors, 90)),
                   util::format_percent(util::percentile(errors, 100)),
                   paper});
  };
  add("x264", x264_errors, "9.5%");
  add("galaxy", galaxy_errors, "13.1%");
  add("sand", sand_errors, "16.7%");
  table.print(std::cout);

  std::vector<double> all_errors;
  all_errors.insert(all_errors.end(), x264_errors.begin(), x264_errors.end());
  all_errors.insert(all_errors.end(), galaxy_errors.begin(),
                    galaxy_errors.end());
  all_errors.insert(all_errors.end(), sand_errors.begin(), sand_errors.end());
  util::Histogram histogram(0.0, 0.25, 10);
  histogram.add_all(all_errors);
  std::cout << "\ntime-error distribution over all "
            << all_errors.size() << " (seed x case) runs:\n";
  histogram.print(std::cout);

  int within_17 = 0;
  for (const double e : max_errors)
    if (e < 0.17) ++within_17;
  std::cout << "\nseeds whose worst-case error stays under the paper's 17% "
            << "bound: " << within_17 << "/" << kSeeds << "\n"
            << "worst error over all seeds and cases: "
            << util::format_percent(util::percentile(max_errors, 100))
            << "\n";
  return 0;
}
