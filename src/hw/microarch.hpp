#pragma once
// Micro-architecture catalog.
//
// The paper's measurement methodology depends on the local server and the
// cloud instances sharing an ISA and micro-architecture, so that instruction
// counts measured locally transfer to the cloud. We model the four processor
// models the paper names:
//   * Intel Xeon E5-2666 v3 (Haswell)  — EC2 c4 instances
//   * Intel Xeon E5-2676 v3 (Haswell)  — EC2 m4 instances
//   * Intel Xeon E5-2670    (Sandy Bridge) — EC2 r3 instances
//   * Intel Xeon E5-2630 v4 (Broadwell) — the local measurement server

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace celia::hw {

enum class Microarch {
  kHaswellE5_2666v3,
  kHaswellE5_2676v3,
  kSandyBridgeE5_2670,
  kBroadwellE5_2630v4,
};

/// Static description of a processor model.
struct ProcessorModel {
  Microarch microarch;
  std::string_view name;        // marketing name, e.g. "Intel Xeon E5-2666 v3"
  double base_frequency_ghz;    // sustained all-core frequency we model
  int physical_cores;           // per socket
  int threads_per_core;         // SMT width (2 on all modeled parts)
};

/// All modeled processors.
std::span<const ProcessorModel> processor_catalog();

/// Lookup by micro-architecture; throws std::out_of_range if unknown.
const ProcessorModel& processor(Microarch microarch);

std::string to_string(Microarch microarch);

}  // namespace celia::hw
