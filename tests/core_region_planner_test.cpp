// Tests for cross-region planning (core/region_planner.hpp).

#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "cloud/region.hpp"
#include "core/region_planner.hpp"

namespace {

using namespace celia::core;
using celia::cloud::CloudProvider;
using celia::cloud::kHomeRegion;
using celia::cloud::region_catalog;

const Celia& galaxy_celia() {
  static const Celia instance = [] {
    CloudProvider provider(2017);
    return Celia::build(*celia::apps::make_galaxy(), provider);
  }();
  return instance;
}

TEST(RegionCatalog, HomeRegionIsOregonAtParity) {
  const auto& home = region_catalog()[kHomeRegion];
  EXPECT_NE(std::string(home.name).find("us-west-2"), std::string::npos);
  EXPECT_DOUBLE_EQ(home.price_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(home.transfer_dollars_per_gb, 0.0);
}

TEST(RegionCatalog, RegionalPricingScales) {
  const auto& type = celia::cloud::ec2_catalog()[0];
  for (const auto& region : region_catalog()) {
    EXPECT_DOUBLE_EQ(celia::cloud::regional_hourly_cost(type, region),
                     type.cost_per_hour * region.price_multiplier);
  }
}

TEST(RegionPlanner, OnePlanPerRegion) {
  const auto plans =
      plan_across_regions(galaxy_celia(), {65536, 4000}, 24.0, 10.0);
  ASSERT_EQ(plans.size(), region_catalog().size());
  for (std::size_t r = 0; r < plans.size(); ++r)
    EXPECT_EQ(plans[r].region_index, r);
}

TEST(RegionPlanner, HomeRegionHasNoStaging) {
  const auto plans =
      plan_across_regions(galaxy_celia(), {65536, 4000}, 24.0, 500.0);
  EXPECT_DOUBLE_EQ(plans[kHomeRegion].staging_seconds, 0.0);
  EXPECT_DOUBLE_EQ(plans[kHomeRegion].transfer_cost, 0.0);
  for (std::size_t r = 1; r < plans.size(); ++r) {
    EXPECT_GT(plans[r].staging_seconds, 0.0) << r;
    EXPECT_GT(plans[r].transfer_cost, 0.0) << r;
  }
}

TEST(RegionPlanner, ComputeCostScalesWithMultiplier) {
  // With negligible input data, compute costs differ exactly by the
  // price multipliers (the selected configuration is the same).
  const auto plans =
      plan_across_regions(galaxy_celia(), {65536, 4000}, 24.0, 0.0);
  ASSERT_TRUE(plans[kHomeRegion].feasible);
  const double home = plans[kHomeRegion].compute_cost;
  for (const auto& plan : plans) {
    if (!plan.feasible) continue;
    EXPECT_NEAR(plan.compute_cost,
                home * region_catalog()[plan.region_index].price_multiplier,
                home * 1e-9);
    EXPECT_EQ(plan.config_index, plans[kHomeRegion].config_index);
  }
}

TEST(RegionPlanner, ZeroDataChoosesCheapestTariff) {
  const auto best = best_region_plan(galaxy_celia(), {65536, 4000}, 24.0,
                                     0.0);
  ASSERT_TRUE(best.has_value());
  // us-east-1 has the lowest multiplier (0.97) and free-ish staging of
  // nothing.
  EXPECT_EQ(best->region_index, 1u);
}

TEST(RegionPlanner, DataGravityKeepsBigInputsHome) {
  // A huge input makes every remote region pay a large egress fee, so the
  // home region wins despite parity pricing.
  const auto best = best_region_plan(galaxy_celia(), {65536, 4000}, 24.0,
                                     5000.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->region_index, kHomeRegion);
}

TEST(RegionPlanner, StagingTimeCanKillFeasibility) {
  // A deadline just above the FASTEST possible run leaves no room for
  // staging: remote regions become infeasible while home stays viable.
  const auto& celia = galaxy_celia();
  const SweepResult all = celia.select({65536, 4000}, 1e6, 1e18);
  ASSERT_TRUE(all.any_feasible);
  const double fastest_hours = all.min_time.seconds / 3600.0;
  const auto plans = plan_across_regions(
      celia, {65536, 4000},
      fastest_hours + 0.05,  // 3 minutes of slack over the fastest run
      2000.0);               // ~an hour of staging anywhere else
  EXPECT_TRUE(plans[kHomeRegion].feasible);
  for (std::size_t r = 1; r < plans.size(); ++r)
    EXPECT_FALSE(plans[r].feasible) << r;
}

TEST(RegionPlanner, NegativeDataThrows) {
  EXPECT_THROW(
      plan_across_regions(galaxy_celia(), {65536, 4000}, 24.0, -1.0),
      std::invalid_argument);
}

TEST(RegionPlanner, TotalsAreSums) {
  const auto plans =
      plan_across_regions(galaxy_celia(), {65536, 4000}, 24.0, 100.0);
  for (const auto& plan : plans) {
    EXPECT_DOUBLE_EQ(plan.total_cost(),
                     plan.compute_cost + plan.transfer_cost);
    EXPECT_DOUBLE_EQ(plan.total_seconds(),
                     plan.compute_seconds + plan.staging_seconds);
  }
}

}  // namespace
