#include "cloud/api_faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "cloud/catalog.hpp"
#include "util/rng.hpp"

namespace celia::cloud {

namespace {

/// Independent deterministic stream per (seed, request ordinal, channel) —
/// the control-plane twin of faults.cpp's fault_stream. Channels keep the
/// throttle and transient draws uncorrelated, so raising one probability
/// never perturbs the other fault timeline.
util::Xoshiro256 api_stream(std::uint64_t seed, std::uint64_t request,
                            std::uint64_t channel) {
  util::Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL +
                       request * 0xbf58476d1ce4e5b9ULL + channel);
  rng.next();
  rng.next();
  return rng;
}

constexpr std::uint64_t kThrottleChannel = 0x11;
constexpr std::uint64_t kTransientChannel = 0x12;

bool window_valid(double start, double end) {
  return std::isfinite(start) && std::isfinite(end) && start >= 0 &&
         end > start;
}

}  // namespace

std::string_view api_error_name(ApiErrorKind kind) {
  switch (kind) {
    case ApiErrorKind::kRequestLimitExceeded:
      return "RequestLimitExceeded";
    case ApiErrorKind::kInsufficientCapacity:
      return "InsufficientCapacity";
    case ApiErrorKind::kServiceUnavailable:
      return "ServiceUnavailable";
    case ApiErrorKind::kRegionalBrownout:
      return "RegionalBrownout";
  }
  return "UnknownApiError";
}

bool api_error_retryable(ApiErrorKind kind) {
  return kind != ApiErrorKind::kInsufficientCapacity;
}

void validate(const ApiFaultModel& model, const Catalog* catalog) {
  const auto probability_ok = [](double p) {
    return std::isfinite(p) && p >= 0 && p <= 1;
  };
  if (!probability_ok(model.throttle_probability) ||
      !probability_ok(model.transient_error_probability))
    throw std::invalid_argument("ApiFaultModel: probability outside [0, 1]");
  for (const CapacityWindow& window : model.capacity_windows) {
    if (!window_valid(window.start_seconds, window.end_seconds))
      throw std::invalid_argument(
          "ApiFaultModel: capacity window must satisfy 0 <= start < end");
    if (window.effective_limit < 0)
      throw std::invalid_argument(
          "ApiFaultModel: capacity window effective_limit must be >= 0");
    if (catalog) {
      if (window.type_index >= catalog->size())
        throw std::invalid_argument(
            "ApiFaultModel: capacity window type_index out of range for "
            "catalog " +
            catalog->name());
      if (window.effective_limit > catalog->limit(window.type_index))
        throw std::invalid_argument(
            "ApiFaultModel: capacity window effective_limit exceeds catalog "
            "limit for " +
            catalog->type(window.type_index).name);
    }
  }
  for (const BrownoutWindow& window : model.brownouts) {
    if (!window_valid(window.start_seconds, window.end_seconds))
      throw std::invalid_argument(
          "ApiFaultModel: brownout window must satisfy 0 <= start < end");
  }
}

bool api_throttled(const ApiFaultModel& model, std::uint64_t request) {
  if (model.throttle_probability <= 0) return false;
  auto rng = api_stream(model.seed, request, kThrottleChannel);
  return rng.next_double() < model.throttle_probability;
}

bool api_transient_error(const ApiFaultModel& model, std::uint64_t request) {
  if (model.transient_error_probability <= 0) return false;
  auto rng = api_stream(model.seed, request, kTransientChannel);
  return rng.next_double() < model.transient_error_probability;
}

int effective_limit(const ApiFaultModel& model, std::size_t type_index,
                    double now, int catalog_limit) {
  int limit = catalog_limit;
  for (const CapacityWindow& window : model.capacity_windows) {
    if (window.type_index == type_index && now >= window.start_seconds &&
        now < window.end_seconds)
      limit = std::min(limit, window.effective_limit);
  }
  return limit;
}

bool in_brownout(const ApiFaultModel& model, double now) {
  return std::any_of(model.brownouts.begin(), model.brownouts.end(),
                     [now](const BrownoutWindow& window) {
                       return now >= window.start_seconds &&
                              now < window.end_seconds;
                     });
}

}  // namespace celia::cloud
