#include "cloud/cluster_exec.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace celia::cloud {

namespace {

/// Simulated seconds -> chrome-trace microseconds. Executor events happen
/// in SIMULATED time, so the exported Gantt chart shows the modeled
/// schedule, not wall clock.
std::int64_t sim_us(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6);
}

/// FaultStats-mirroring counters (process-wide; the per-run numbers stay
/// in ExecutionReport::faults — these aggregate across runs for obs).
struct ExecCounters {
  obs::Counter& redispatched = obs::counter(
      "celia_exec_redispatch_total",
      "Tasks returned to the pending queue after a crash or stale copy");
  obs::Counter& node_failures = obs::counter(
      "celia_exec_node_failures_total", "Fleet nodes lost to crashes");
  obs::Counter& speculative = obs::counter(
      "celia_exec_speculative_total", "Speculative backup copies launched");
  obs::Counter& replacements = obs::counter(
      "celia_exec_replacements_total", "Replacement instances provisioned");
  obs::Counter& rollbacks = obs::counter(
      "celia_exec_rollbacks_total",
      "BSP rollbacks to the last durable checkpoint");
  obs::Counter& checkpoints = obs::counter(
      "celia_exec_checkpoints_total", "BSP checkpoints written");
};

ExecCounters& exec_counters() {
  static ExecCounters counters;
  return counters;
}

/// One compute slot: a vCPU of some instance, executing one task at a time.
struct Slot {
  double rate = 0.0;       // instructions/second delivered by this vCPU
  double busy_until = 0.0; // accumulated busy seconds (for utilization)
};

std::vector<Slot> make_slots(const std::vector<Instance>& instances,
                             hw::WorkloadClass workload) {
  std::vector<Slot> slots;
  for (const auto& instance : instances) {
    const double per_vcpu =
        instance.actual_rate(workload) / instance.type().vcpus;
    for (int v = 0; v < instance.type().vcpus; ++v)
      slots.push_back({per_vcpu, 0.0});
  }
  return slots;
}

}  // namespace

ExecutionReport ClusterExecutor::execute(const apps::Workload& workload,
                                         const std::vector<Instance>& instances,
                                         const std::vector<int>& node_counts,
                                         ExecutionOptions options) const {
  if (instances.empty())
    throw std::invalid_argument("ClusterExecutor: no instances");
  if (workload.total_instructions <= 0)
    throw std::invalid_argument("ClusterExecutor: empty workload");

  ExecutionReport report;
  switch (workload.pattern) {
    case apps::ParallelPattern::kIndependentTasks:
      report = run_task_farm(workload, instances, /*dispatch_seconds=*/0.0,
                             options.record_trace);
      break;
    case apps::ParallelPattern::kMasterWorker:
      report = run_task_farm(workload, instances,
                             workload.dispatch_seconds_per_task,
                             options.record_trace);
      break;
    case apps::ParallelPattern::kBulkSynchronous:
      report = run_bulk_synchronous(workload, instances);
      break;
  }
  report.nodes = instances.size();
  report.cost = configuration_cost(node_counts, report.seconds,
                                   options.billing);
  return report;
}

ExecutionReport ClusterExecutor::run_task_farm(
    const apps::Workload& workload, const std::vector<Instance>& instances,
    double dispatch_seconds, bool record_trace) const {
  if (workload.task_instructions.empty())
    throw std::invalid_argument("task farm: no tasks");
  std::vector<TraceSegment> trace;
  if (record_trace) trace.reserve(workload.task_instructions.size());

  std::vector<Slot> slots = make_slots(instances, workload.workload_class);

  // Serial master prologue: task creation runs single-threaded on one vCPU
  // of the first instance before anything can be dispatched.
  double serial_seconds = 0.0;
  if (workload.serial_instructions > 0.0) {
    const double master_rate =
        instances.front().actual_rate(workload.workload_class) /
        instances.front().type().vcpus;
    serial_seconds = workload.serial_instructions / master_rate;
  }

  sim::Simulator simulator;
  std::deque<std::size_t> idle;  // slot indices waiting for work
  for (std::size_t i = 0; i < slots.size(); ++i) idle.push_back(i);

  std::size_t next_task = 0;
  bool master_busy = false;
  double makespan = serial_seconds;

  // The master hands the next task to an idle worker, occupying itself for
  // `dispatch_seconds` per task (serialization + network round trip). With
  // dispatch_seconds == 0 this degenerates to greedy list scheduling of
  // independent tasks.
  std::function<void()> try_dispatch = [&] {
    if (master_busy || idle.empty() ||
        next_task >= workload.task_instructions.size())
      return;
    const std::size_t slot_index = idle.front();
    idle.pop_front();
    const std::size_t task_index = next_task;
    const double instructions = workload.task_instructions[next_task++];
    master_busy = dispatch_seconds > 0.0;
    simulator.schedule_after(dispatch_seconds, [&, slot_index, task_index,
                                                instructions] {
      master_busy = false;
      const double duration = instructions / slots[slot_index].rate;
      slots[slot_index].busy_until += duration;
      if (record_trace) {
        trace.push_back({slot_index, task_index, simulator.now(),
                         simulator.now() + duration});
      }
      simulator.schedule_after(duration, [&, slot_index] {
        makespan = std::max(makespan, simulator.now());
        idle.push_back(slot_index);
        try_dispatch();
      });
      try_dispatch();  // master is free again: overlap with compute
    });
  };

  if (serial_seconds > 0.0) {
    simulator.schedule_at(serial_seconds, [&] { try_dispatch(); });
  } else {
    try_dispatch();
  }
  const std::uint64_t events = simulator.run();

  ExecutionReport report;
  report.seconds = makespan;
  report.events = events;
  report.slots = slots.size();
  report.trace = std::move(trace);
  double busy = 0.0;
  for (const auto& slot : slots) busy += slot.busy_until;
  report.busy_fraction =
      makespan > 0 ? busy / (makespan * static_cast<double>(slots.size()))
                   : 0.0;
  return report;
}

namespace {

/// Failure-aware paths give up after this many node deaths: with a
/// pathologically small MTBF every replacement dies before the fleet makes
/// durable progress and the run would never converge.
constexpr std::uint64_t kMaxNodeFailures = 10000;

/// One member of the dynamic fleet (initial nodes + mid-run replacements).
struct FleetNode {
  Instance instance;
  double ready = 0.0;     // absolute time its slots join
  double crash_at = std::numeric_limits<double>::infinity();
  double end = -1.0;      // death time; < 0 while alive
  bool alive() const { return end < 0; }
};

std::vector<FleetNode> make_fleet(const ProvisionResult& fleet,
                                  const FaultModel& faults,
                                  std::uint64_t fault_seed) {
  std::vector<FleetNode> nodes;
  nodes.reserve(fleet.instances.size());
  for (std::size_t i = 0; i < fleet.instances.size(); ++i) {
    FleetNode node;
    node.instance = fleet.instances[i];
    node.ready = i < fleet.ready_seconds.size() ? fleet.ready_seconds[i] : 0.0;
    const InstanceFaultProfile profile =
        fault_profile(faults, fault_seed, node.instance.instance_id);
    node.crash_at = node.ready + profile.crash_after_seconds;
    nodes.push_back(node);
  }
  return nodes;
}

/// Per-instance billing over actual lifetimes: each node bills from the
/// moment it is ready until its death or the end of the run.
double fleet_cost(const std::vector<FleetNode>& nodes, double end_seconds,
                  BillingPolicy billing) {
  double cost = 0.0;
  for (const auto& node : nodes) {
    const double until = node.alive() ? end_seconds : node.end;
    const double billed = std::max(0.0, until - node.ready);
    if (billed > 0)
      cost += instance_cost(node.instance.type(), billed, billing);
  }
  return cost;
}

}  // namespace

ExecutionReport ClusterExecutor::execute_with_faults(
    const apps::Workload& workload, CloudProvider& provider,
    const ProvisionResult& fleet, const std::vector<int>& node_counts,
    FaultExecutionOptions options) const {
  validate(options.faults);
  validate(options.checkpoint);
  if (options.faults.inert() && !options.speculative_execution) {
    // Nothing can be injected: take the exact legacy path so a zero-fault
    // model is bit-identical to execute() (no-regression property test).
    return execute(workload, fleet.instances, node_counts, options.base);
  }
  if (fleet.instances.empty())
    throw std::invalid_argument("ClusterExecutor: no instances");
  if (workload.total_instructions <= 0)
    throw std::invalid_argument("ClusterExecutor: empty workload");

  // Wall-clock span for the simulation itself; the events recorded inside
  // carry SIMULATED timestamps (the Gantt chart of the modeled run).
  obs::Span exec_span("execute_with_faults", "exec");
  static obs::Counter& fault_runs = obs::counter(
      "celia_exec_fault_runs_total", "Fault-injected executions simulated");
  fault_runs.add(1);

  ExecutionReport report;
  switch (workload.pattern) {
    case apps::ParallelPattern::kIndependentTasks:
      report = run_task_farm_with_faults(workload, provider, fleet,
                                         /*dispatch_seconds=*/0.0, options);
      break;
    case apps::ParallelPattern::kMasterWorker:
      report = run_task_farm_with_faults(workload, provider, fleet,
                                         workload.dispatch_seconds_per_task,
                                         options);
      break;
    case apps::ParallelPattern::kBulkSynchronous:
      report = run_bulk_synchronous_with_faults(workload, provider, fleet,
                                                options);
      break;
  }
  report.nodes = fleet.instances.size();
  return report;
}

ExecutionReport ClusterExecutor::run_task_farm_with_faults(
    const apps::Workload& workload, CloudProvider& provider,
    const ProvisionResult& fleet, double dispatch_seconds,
    const FaultExecutionOptions& options) const {
  if (workload.task_instructions.empty())
    throw std::invalid_argument("task farm: no tasks");

  const std::uint64_t fault_seed = provider.seed();
  std::vector<FleetNode> nodes =
      make_fleet(fleet, options.faults, fault_seed);

  // One compute slot per vCPU; slots die with their node.
  struct FaultSlot {
    std::size_t node = 0;
    double rate = 0.0;
    double busy = 0.0;
    bool alive = true;
    bool running = false;
    std::size_t task = 0;
    double task_start = 0.0;
    std::uint64_t completion_event = 0;
  };
  std::vector<FaultSlot> slots;
  const std::size_t initial_slots = [&] {
    std::size_t n = 0;
    for (const auto& node : nodes)
      n += static_cast<std::size_t>(node.instance.type().vcpus);
    return n;
  }();
  slots.reserve(initial_slots);

  const auto add_slots_for = [&](std::size_t node_index) {
    const Instance& instance = nodes[node_index].instance;
    const double per_vcpu = instance.actual_rate(workload.workload_class) /
                            instance.type().vcpus;
    for (int v = 0; v < instance.type().vcpus; ++v)
      slots.push_back({node_index, per_vcpu});
  };

  const std::size_t num_tasks = workload.task_instructions.size();
  std::deque<std::size_t> pending;
  for (std::size_t t = 0; t < num_tasks; ++t) pending.push_back(t);
  std::vector<bool> task_done(num_tasks, false);
  std::vector<int> task_copies(num_tasks, 0);
  std::size_t remaining = num_tasks;

  // Serial master prologue on the first node (as in the legacy path); the
  // master itself is treated as reliable — only workers fail.
  double serial_seconds = 0.0;
  if (workload.serial_instructions > 0.0) {
    const double master_rate =
        nodes.front().instance.actual_rate(workload.workload_class) /
        nodes.front().instance.type().vcpus;
    serial_seconds = workload.serial_instructions / master_rate;
  }
  const double dispatch_open = nodes.front().ready + serial_seconds;

  sim::Simulator simulator;
  std::deque<std::size_t> idle;
  std::vector<std::uint64_t> crash_events;  // cancelled once the job ends
  std::vector<TraceSegment> trace;
  if (options.base.record_trace) trace.reserve(num_tasks);

  ExecutionReport report;
  bool serial_done = false;
  bool master_busy = false;
  bool replacements_allowed = options.provision_replacements;
  double makespan = dispatch_open;
  bool extinct = false;

  std::function<void()> try_dispatch;
  std::function<void(std::size_t)> on_complete;
  std::function<void(std::size_t)> on_crash;

  const auto finish_job = [&] {
    for (const std::uint64_t id : crash_events) simulator.cancel(id);
    crash_events.clear();
  };

  // Free every OTHER running copy of `task` (its result is in): their
  // slots return to the pool, their partial work counts as busy time.
  const auto reap_copies = [&](std::size_t task, std::size_t winner_slot) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (s == winner_slot || !slots[s].alive || !slots[s].running ||
          slots[s].task != task)
        continue;
      simulator.cancel(slots[s].completion_event);
      slots[s].busy += simulator.now() - slots[s].task_start;
      slots[s].running = false;
      --task_copies[task];
      idle.push_back(s);
    }
  };

  on_complete = [&](std::size_t slot_index) {
    FaultSlot& slot = slots[slot_index];
    const std::size_t task = slot.task;
    slot.busy += simulator.now() - slot.task_start;
    slot.running = false;
    --task_copies[task];
    if (!task_done[task]) {
      task_done[task] = true;
      --remaining;
      makespan = std::max(makespan, simulator.now());
      if (options.base.record_trace)
        trace.push_back(
            {slot_index, task, slot.task_start, simulator.now()});
      obs::record_complete("task", "exec", sim_us(slot.task_start),
                           sim_us(simulator.now() - slot.task_start),
                           slot_index);
      reap_copies(task, slot_index);
      if (remaining == 0) {
        finish_job();
      }
    }
    idle.push_back(slot_index);
    try_dispatch();
  };

  // Dispatch one unit of work (a pending task, or a speculative copy of
  // the straggler predicted to finish last) to the head idle slot; the
  // master serializes dispatches exactly as in the legacy path.
  try_dispatch = [&] {
    if (master_busy || idle.empty() || !serial_done || remaining == 0) return;
    while (!pending.empty() && task_done[pending.front()])
      pending.pop_front();

    std::size_t task_index;
    if (!pending.empty()) {
      task_index = pending.front();
      pending.pop_front();
    } else if (options.speculative_execution) {
      // Straggler with the latest predicted finish, one backup copy max.
      const std::size_t candidate_slot = idle.front();
      double worst_finish = -1.0;
      std::size_t worst_task = num_tasks;
      for (const auto& slot : slots) {
        if (!slot.alive || !slot.running || task_done[slot.task] ||
            task_copies[slot.task] > 1)
          continue;
        const double finish =
            slot.task_start + workload.task_instructions[slot.task] / slot.rate;
        if (finish > worst_finish) {
          worst_finish = finish;
          worst_task = slot.task;
        }
      }
      if (worst_task == num_tasks) return;
      const double copy_finish =
          simulator.now() + dispatch_seconds +
          workload.task_instructions[worst_task] / slots[candidate_slot].rate;
      if (copy_finish >= worst_finish) return;  // the copy would not help
      task_index = worst_task;
      ++report.faults.speculative_launches;
      exec_counters().speculative.add(1);
      obs::record_instant("speculative_launch", "exec",
                          sim_us(simulator.now()), idle.front());
    } else {
      return;
    }

    const std::size_t slot_index = idle.front();
    idle.pop_front();
    const double instructions = workload.task_instructions[task_index];
    // Count the copy from the moment it is dispatched, not when it lands:
    // two slots idling at the same instant must not both back up the same
    // straggler, and a copy in flight to a node that dies mid-dispatch must
    // requeue its task instead of silently dropping it.
    ++task_copies[task_index];
    master_busy = dispatch_seconds > 0.0;
    simulator.schedule_after(dispatch_seconds, [&, slot_index, task_index,
                                                instructions] {
      master_busy = false;
      FaultSlot& slot = slots[slot_index];
      if (task_done[task_index] || !slot.alive) {
        --task_copies[task_index];
        if (!task_done[task_index] && task_copies[task_index] == 0) {
          pending.push_front(task_index);
          ++report.faults.tasks_redispatched;
          exec_counters().redispatched.add(1);
          obs::record_instant("redispatch", "exec", sim_us(simulator.now()),
                              slot_index);
        }
        if (slot.alive) idle.push_back(slot_index);
        try_dispatch();
        return;
      }
      slot.running = true;
      slot.task = task_index;
      slot.task_start = simulator.now();
      const double duration = instructions / slot.rate;
      slot.completion_event = simulator.schedule_after(
          duration, [&, slot_index] { on_complete(slot_index); });
      try_dispatch();  // master is free again: overlap with compute
    });
  };

  on_crash = [&](std::size_t node_index) {
    if (remaining == 0) return;
    FleetNode& node = nodes[node_index];
    node.end = simulator.now();
    ++report.faults.node_failures;
    exec_counters().node_failures.add(1);
    obs::record_instant("node_crash", "exec", sim_us(simulator.now()),
                        node.instance.instance_id);

    for (std::size_t s = 0; s < slots.size(); ++s) {
      FaultSlot& slot = slots[s];
      if (slot.node != node_index || !slot.alive) continue;
      if (slot.running) {
        simulator.cancel(slot.completion_event);
        const double elapsed = simulator.now() - slot.task_start;
        report.faults.recomputed_instructions += elapsed * slot.rate;
        slot.busy += elapsed;
        slot.running = false;
        const std::size_t task = slot.task;
        --task_copies[task];
        if (!task_done[task] && task_copies[task] == 0) {
          pending.push_front(task);
          ++report.faults.tasks_redispatched;
          exec_counters().redispatched.add(1);
          obs::record_instant("redispatch", "exec", sim_us(simulator.now()),
                              s);
        }
      }
      slot.alive = false;
      idle.erase(std::remove(idle.begin(), idle.end(), s), idle.end());
    }

    if (report.faults.node_failures >= kMaxNodeFailures)
      replacements_allowed = false;

    if (replacements_allowed) {
      const ProvisionResult replacement = provider.provision_replacement(
          node.instance.type_index, options.faults, options.backoff);
      ++report.faults.replacements;
      exec_counters().replacements.add(1);
      obs::record_instant("replacement", "exec", sim_us(simulator.now()),
                          replacement.instances.front().instance_id);
      const double wait = replacement.report.ready_seconds;
      report.faults.replacement_wait_seconds += wait;
      FleetNode fresh;
      fresh.instance = replacement.instances.front();
      fresh.ready = simulator.now() + wait;
      const InstanceFaultProfile profile = fault_profile(
          options.faults, fault_seed, fresh.instance.instance_id);
      fresh.crash_at = fresh.ready + profile.crash_after_seconds;
      nodes.push_back(fresh);
      const std::size_t fresh_index = nodes.size() - 1;
      simulator.schedule_at(fresh.ready, [&, fresh_index] {
        if (remaining == 0) return;
        const std::size_t first_slot = slots.size();
        add_slots_for(fresh_index);
        for (std::size_t s = first_slot; s < slots.size(); ++s)
          idle.push_back(s);
        try_dispatch();
      });
      if (std::isfinite(nodes[fresh_index].crash_at)) {
        crash_events.push_back(simulator.schedule_at(
            nodes[fresh_index].crash_at,
            [&, fresh_index] { on_crash(fresh_index); }));
      }
    } else {
      // The fleet may now be extinct with work remaining.
      bool any_alive = false;
      for (const auto& n : nodes) any_alive = any_alive || n.alive();
      if (!any_alive) {
        extinct = true;
        makespan = std::max(makespan, simulator.now());
        finish_job();
      }
    }
  };

  // Bring up the initial fleet: slots join when their node is ready.
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    simulator.schedule_at(nodes[n].ready, [&, n] {
      if (remaining == 0 || !nodes[n].alive()) return;
      const std::size_t first_slot = slots.size();
      add_slots_for(n);
      for (std::size_t s = first_slot; s < slots.size(); ++s)
        idle.push_back(s);
      try_dispatch();
    });
    if (std::isfinite(nodes[n].crash_at)) {
      crash_events.push_back(simulator.schedule_at(
          nodes[n].crash_at, [&, n] { on_crash(n); }));
    }
  }
  simulator.schedule_at(dispatch_open, [&] {
    serial_done = true;
    try_dispatch();
  });

  report.events = simulator.run();
  report.completed = remaining == 0;
  if (!report.completed && !extinct) makespan = simulator.now();
  report.seconds = makespan;
  report.slots = initial_slots;
  report.trace = std::move(trace);

  double busy = 0.0;
  for (const auto& slot : slots) busy += slot.busy;
  report.busy_fraction =
      makespan > 0 && initial_slots > 0
          ? busy / (makespan * static_cast<double>(initial_slots))
          : 0.0;
  report.cost = fleet_cost(nodes, makespan, options.base.billing);
  return report;
}

ExecutionReport ClusterExecutor::run_bulk_synchronous_with_faults(
    const apps::Workload& workload, CloudProvider& provider,
    const ProvisionResult& fleet, const FaultExecutionOptions& options) const {
  if (workload.steps == 0)
    throw std::invalid_argument("bulk synchronous: no steps");

  const std::uint64_t fault_seed = provider.seed();
  std::vector<FleetNode> nodes =
      make_fleet(fleet, options.faults, fault_seed);
  const auto wc = workload.workload_class;

  ExecutionReport report;
  for (const auto& node : nodes)
    report.slots += static_cast<std::size_t>(node.instance.type().vcpus);

  // The run starts once the whole initial fleet is up (the application
  // partitions work across all of it).
  double now = 0.0;
  for (const auto& node : nodes) now = std::max(now, node.ready);

  CheckpointTracker tracker(options.checkpoint);
  const double ips = workload.instructions_per_step;
  std::uint64_t s = 0;             // next step to execute
  std::uint64_t durable_steps = 0; // steps safe on stable storage
  bool replacements_allowed = options.provision_replacements;
  double busy_node_seconds = 0.0;
  const double per_message = network_.latency_seconds +
                             workload.sync_bytes_per_step /
                                 network_.bandwidth_bytes_per_s;

  const auto alive_count = [&] {
    std::size_t n = 0;
    for (const auto& node : nodes) n += node.alive() ? 1 : 0;
    return n;
  };

  while (s < workload.steps) {
    if (alive_count() == 0) break;  // extinct fleet: give up

    // Static decomposition over the CURRENT fleet by nominal capacity,
    // executed at actual rates — the legacy per-step model, recomputed
    // after every fleet change.
    double nominal_total = 0.0;
    for (const auto& node : nodes)
      if (node.alive()) nominal_total += node.instance.nominal_rate(wc);
    double slowest = 0.0;
    double step_busy = 0.0;
    for (const auto& node : nodes) {
      if (!node.alive()) continue;
      const double share = ips * node.instance.nominal_rate(wc) /
                           nominal_total;
      const double t = share / node.instance.actual_rate(wc);
      slowest = std::max(slowest, t);
      step_busy += t;
    }
    double sync = 0.0;
    std::uint64_t lost_messages = 0;
    if (alive_count() > 1) {
      const double depth =
          std::ceil(std::log2(static_cast<double>(alive_count())));
      for (const auto& node : nodes) {
        if (!node.alive()) continue;
        if (message_lost(options.faults, fault_seed,
                         node.instance.instance_id, s))
          ++lost_messages;
      }
      // A lost message is retransmitted after one extra latency round.
      sync = per_message * depth +
             static_cast<double>(lost_messages) * per_message;
    }
    const double step_time = slowest + sync;

    // A crash inside this step (or earlier — e.g. during a checkpoint
    // write) kills the step: roll back to the last durable checkpoint.
    std::size_t crashed = nodes.size();
    double earliest = now + step_time;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (nodes[n].alive() && nodes[n].crash_at <= earliest) {
        earliest = nodes[n].crash_at;
        crashed = n;
      }
    }
    if (crashed != nodes.size()) {
      now = std::max(now, nodes[crashed].crash_at);
      nodes[crashed].end = nodes[crashed].crash_at;
      ++report.faults.node_failures;
      exec_counters().node_failures.add(1);
      obs::record_instant("node_crash", "exec", sim_us(now),
                          nodes[crashed].instance.instance_id);
      report.faults.recomputed_instructions += tracker.rollback();
      if (s > durable_steps) {
        ++report.faults.restarts;
        exec_counters().rollbacks.add(1);
        obs::record_instant("rollback", "exec", sim_us(now), 0);
      }
      s = durable_steps;
      if (report.faults.node_failures >= kMaxNodeFailures)
        replacements_allowed = false;
      if (replacements_allowed) {
        const ProvisionResult replacement = provider.provision_replacement(
            nodes[crashed].instance.type_index, options.faults,
            options.backoff);
        ++report.faults.replacements;
        exec_counters().replacements.add(1);
        obs::record_instant("replacement", "exec", sim_us(now),
                            replacement.instances.front().instance_id);
        const double wait = replacement.report.ready_seconds;
        report.faults.replacement_wait_seconds += wait;
        FleetNode fresh;
        fresh.instance = replacement.instances.front();
        fresh.ready = now + wait;
        const InstanceFaultProfile profile = fault_profile(
            options.faults, fault_seed, fresh.instance.instance_id);
        fresh.crash_at = fresh.ready + profile.crash_after_seconds;
        nodes.push_back(fresh);
        now = fresh.ready;  // the fleet stalls until it can repartition
      }
      continue;
    }

    now += step_time;
    obs::record_complete("step", "exec", sim_us(now - step_time),
                         sim_us(step_time), 0);
    tracker.run(step_time, ips);
    busy_node_seconds += step_busy;
    ++s;
    ++report.events;
    report.faults.sync_retransmits += lost_messages;
    if (tracker.until_due() <= 0 && s < workload.steps) {
      now += options.checkpoint.write_cost_seconds;
      tracker.commit();
      durable_steps = s;
      ++report.faults.checkpoints_written;
      exec_counters().checkpoints.add(1);
      obs::record_instant("checkpoint", "exec", sim_us(now), 0);
    }
  }

  report.completed = s >= workload.steps;
  report.seconds = now;
  report.busy_fraction =
      now > 0 && !fleet.instances.empty()
          ? busy_node_seconds /
                (static_cast<double>(fleet.instances.size()) * now)
          : 0.0;
  report.cost = fleet_cost(nodes, now, options.base.billing);
  return report;
}

ExecutionReport ClusterExecutor::run_bulk_synchronous(
    const apps::Workload& workload,
    const std::vector<Instance>& instances) const {
  if (workload.steps == 0)
    throw std::invalid_argument("bulk synchronous: no steps");

  // Static decomposition by *nominal* capacity (the application partitions
  // work from catalog specs, not from delivered performance), executed at
  // each node's *actual* rate: every step takes as long as its slowest
  // node, then pays a logarithmic-depth synchronization exchange.
  double nominal_total = 0.0;
  for (const auto& instance : instances)
    nominal_total += instance.nominal_rate(workload.workload_class);

  double slowest_step = 0.0;
  for (const auto& instance : instances) {
    const double share = workload.instructions_per_step *
                         instance.nominal_rate(workload.workload_class) /
                         nominal_total;
    slowest_step = std::max(
        share / instance.actual_rate(workload.workload_class), slowest_step);
  }

  double sync = 0.0;
  if (instances.size() > 1) {
    const double depth = std::ceil(std::log2(instances.size()));
    sync = (network_.latency_seconds +
            workload.sync_bytes_per_step / network_.bandwidth_bytes_per_s) *
           depth;
  }

  ExecutionReport report;
  report.seconds = static_cast<double>(workload.steps) * (slowest_step + sync);
  report.events = 0;  // analytic path: stepping is closed-form
  for (const auto& instance : instances)
    report.slots += static_cast<std::size_t>(instance.type().vcpus);
  // Utilization: average over nodes of (their compute share time / step).
  double busy = 0.0;
  for (const auto& instance : instances) {
    const double share = workload.instructions_per_step *
                         instance.nominal_rate(workload.workload_class) /
                         nominal_total;
    busy += share / instance.actual_rate(workload.workload_class);
  }
  report.busy_fraction =
      busy / (static_cast<double>(instances.size()) * (slowest_step + sync));
  return report;
}

}  // namespace celia::cloud
