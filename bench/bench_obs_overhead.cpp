// Asserts the observability tentpole's budget: metrics-on sweeps may cost
// at most 2% more wall time than the same sweeps with the runtime kill
// switch off. Instrumentation is block-granular, so the overhead is
// O(blocks) atomics against O(configurations) work — far under the
// budget on any sane machine.
//
// Method: ABAB-interleaved min-of-N timing (min is robust to scheduler
// noise; interleaving cancels thermal/clock drift). A noisy box can still
// produce a flaky ratio, so the comparison retries up to 3 rounds and
// only fails if every round exceeds the budget. Exits non-zero on
// failure so CI can gate on it.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_io.hpp"
#include "cloud/instance_type.hpp"
#include "core/enumerate.hpp"
#include "core/query.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace celia;

constexpr double kMaxOverhead = 0.02;
constexpr int kRepsPerRound = 5;
constexpr int kMaxRounds = 3;

double min_sweep_seconds(const core::ConfigurationSpace& space,
                         const core::ResourceCapacity& capacity,
                         const std::vector<double>& hourly,
                         const core::Query& query, bool metrics_on,
                         int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    obs::set_metrics_enabled(metrics_on);
    util::Stopwatch watch;
    const core::SweepResult result = core::sweep(space, capacity, hourly,
                                                 query);
    const double elapsed = watch.elapsed_seconds();
    obs::set_metrics_enabled(true);
    if (result.total != space.size()) {
      std::fprintf(stderr, "sweep walked %llu of %llu configurations\n",
                   static_cast<unsigned long long>(result.total),
                   static_cast<unsigned long long>(space.size()));
      std::exit(1);
    }
    if (elapsed < best) best = elapsed;
  }
  return best;
}

}  // namespace

int main() {
  // ~2M configurations: big enough that one sweep dwarfs timer noise,
  // small enough to keep the whole bench in seconds.
  std::vector<int> max_counts(cloud::catalog_size(), 4);
  const core::ConfigurationSpace space(max_counts);
  const core::ResourceCapacity capacity(
      std::vector<double>(cloud::catalog_size(), 1.2e9),
      cloud::Catalog::ec2_table3());
  const std::vector<double> hourly = core::ec2_hourly_costs();

  core::Constraints constraints;
  constraints.deadline_seconds = 3600.0;
  constraints.budget_dollars = 50.0;
  const core::Query query = core::Query::make(5e14, constraints);

  std::printf("obs overhead bench: %llu configurations per sweep, "
              "min of %d reps, budget %.1f%%\n",
              static_cast<unsigned long long>(space.size()), kRepsPerRound,
              kMaxOverhead * 100.0);

  // Warm up: thread pool spin-up, metric/site registration, page faults.
  min_sweep_seconds(space, capacity, hourly, query, true, 1);

  celia::benchio::JsonBench json("obs_overhead");
  bool passed = false;
  for (int round = 1; round <= kMaxRounds; ++round) {
    // Interleave A (metrics on) and B (off) so drift hits both equally.
    double best_on = 1e300, best_off = 1e300;
    for (int rep = 0; rep < kRepsPerRound; ++rep) {
      const double on =
          min_sweep_seconds(space, capacity, hourly, query, true, 1);
      const double off =
          min_sweep_seconds(space, capacity, hourly, query, false, 1);
      if (on < best_on) best_on = on;
      if (off < best_off) best_off = off;
    }
    const double overhead = best_on / best_off - 1.0;
    std::printf("round %d: metrics on %.3f ms, off %.3f ms, overhead "
                "%+.2f%%\n",
                round, best_on * 1e3, best_off * 1e3, overhead * 100.0);
    json.begin_row("round_" + std::to_string(round));
    json.metric("metrics_on_ms", best_on * 1e3);
    json.metric("metrics_off_ms", best_off * 1e3);
    json.metric("overhead_pct", overhead * 100.0);
    if (overhead <= kMaxOverhead) {
      passed = true;
      break;
    }
  }
  json.begin_row("verdict");
  json.metric("passed", passed ? 1.0 : 0.0);
  json.write();

  if (!passed) {
    std::fprintf(stderr,
                 "FAIL: metrics overhead exceeded %.1f%% in every round\n",
                 kMaxOverhead * 100.0);
    return 1;
  }
  std::printf("PASS: metrics overhead within the %.1f%% budget\n",
              kMaxOverhead * 100.0);
  return 0;
}
