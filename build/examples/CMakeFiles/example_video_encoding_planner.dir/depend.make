# Empty dependencies file for example_video_encoding_planner.
# This may be replaced when dependencies are built.
