# Empty compiler generated dependencies file for celia_fit.
# This may be replaced when dependencies are built.
