// Tests for the discrete-event cluster executor (cloud/cluster_exec.hpp):
// each parallel pattern's timing semantics, and the model/testbed gaps that
// produce the paper's Table IV prediction errors.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/registry.hpp"
#include "cloud/cluster_exec.hpp"
#include "cloud/provider.hpp"

namespace {

using namespace celia::cloud;
using celia::apps::ParallelPattern;
using celia::apps::Workload;
using celia::hw::WorkloadClass;

Workload independent_tasks(std::vector<double> tasks) {
  Workload workload;
  workload.app_name = "test";
  workload.workload_class = WorkloadClass::kVideoEncoding;
  workload.pattern = ParallelPattern::kIndependentTasks;
  workload.total_instructions =
      std::accumulate(tasks.begin(), tasks.end(), 0.0);
  workload.task_instructions = std::move(tasks);
  return workload;
}

std::vector<int> single(const std::string& name) {
  std::vector<int> counts(9, 0);
  counts[catalog_index(name)] = 1;
  return counts;
}

TEST(ClusterExec, SingleSlotRunsTasksSerially) {
  CloudProvider provider(1);
  const auto counts = single("c4.large");  // 2 vCPUs = 2 slots
  const auto instances = provider.provision(counts);
  const double slot_rate =
      instances[0].actual_rate(WorkloadClass::kVideoEncoding) / 2;

  // 4 equal tasks on 2 slots => exactly 2 rounds.
  const double per_task = 1e11;
  const Workload workload =
      independent_tasks({per_task, per_task, per_task, per_task});
  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, counts);
  EXPECT_NEAR(report.seconds, 2 * per_task / slot_rate, 1e-6);
  EXPECT_NEAR(report.busy_fraction, 1.0, 1e-9);
}

TEST(ClusterExec, IndivisibleTasksExceedFluidModel) {
  CloudProvider provider(2);
  const auto counts = single("c4.large");
  const auto instances = provider.provision(counts);
  // 3 equal tasks on 2 slots: fluid model says 1.5 rounds; reality is 2.
  const Workload workload = independent_tasks({1e11, 1e11, 1e11});
  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, counts);
  const double fluid =
      workload.total_instructions /
      instances[0].actual_rate(WorkloadClass::kVideoEncoding);
  EXPECT_GT(report.seconds, fluid * 1.3);
}

TEST(ClusterExec, ManySmallTasksApproachFluidModel) {
  CloudProvider provider(3);
  const auto counts = single("c4.2xlarge");
  const auto instances = provider.provision(counts);
  const Workload workload =
      independent_tasks(std::vector<double>(800, 1e9));
  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, counts);
  const double fluid =
      workload.total_instructions /
      instances[0].actual_rate(WorkloadClass::kVideoEncoding);
  EXPECT_NEAR(report.seconds / fluid, 1.0, 0.02);
}

TEST(ClusterExec, MasterDispatchDelaysExecution) {
  CloudProvider provider(4);
  const auto counts = single("c4.large");
  const auto instances = provider.provision(counts);

  Workload workload = independent_tasks(std::vector<double>(16, 1e10));
  const ClusterExecutor executor;
  const auto no_dispatch = executor.execute(workload, instances, counts);

  workload.pattern = ParallelPattern::kMasterWorker;
  workload.dispatch_seconds_per_task = 5.0;
  const auto with_dispatch = executor.execute(workload, instances, counts);
  EXPECT_GT(with_dispatch.seconds, no_dispatch.seconds + 8 * 5.0 * 0.9);
}

TEST(ClusterExec, BspStepTimeIsSlowestNodePlusSync) {
  CloudProvider provider(5);
  std::vector<int> counts(9, 0);
  counts[0] = 2;  // two c4.large
  const auto instances = provider.provision(counts);

  Workload workload;
  workload.app_name = "bsp";
  workload.workload_class = WorkloadClass::kNBody;
  workload.pattern = ParallelPattern::kBulkSynchronous;
  workload.steps = 100;
  workload.instructions_per_step = 1e10;
  workload.sync_bytes_per_step = 1e6;
  workload.total_instructions = 1e12;

  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, counts);

  // Reconstruct the expected step time.
  double nominal_total = 0;
  for (const auto& instance : instances)
    nominal_total += instance.nominal_rate(WorkloadClass::kNBody);
  double slowest = 0;
  for (const auto& instance : instances) {
    const double share = workload.instructions_per_step *
                         instance.nominal_rate(WorkloadClass::kNBody) /
                         nominal_total;
    slowest = std::max(slowest,
                       share / instance.actual_rate(WorkloadClass::kNBody));
  }
  const NetworkModel net;
  const double sync = (net.latency_seconds + 1e6 / net.bandwidth_bytes_per_s);
  EXPECT_NEAR(report.seconds, 100 * (slowest + sync), 1e-6);
}

TEST(ClusterExec, BspSingleNodeHasNoSync) {
  CloudProvider provider(6);
  const auto counts = single("m4.2xlarge");
  const auto instances = provider.provision(counts);
  Workload workload;
  workload.workload_class = WorkloadClass::kNBody;
  workload.pattern = ParallelPattern::kBulkSynchronous;
  workload.steps = 10;
  workload.instructions_per_step = 1e10;
  workload.sync_bytes_per_step = 1e9;  // would be huge if charged
  workload.total_instructions = 1e11;
  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, counts);
  const double expected =
      1e11 / instances[0].actual_rate(WorkloadClass::kNBody);
  EXPECT_NEAR(report.seconds, expected, 1e-6);
}

TEST(ClusterExec, BspStragglerSlowsWholeCluster) {
  // With per-instance noise, the heterogeneous-cluster BSP time is set by
  // the slowest node: it must be >= the noise-free fluid time.
  CloudProvider provider(7);
  std::vector<int> counts = {5, 5, 5, 3, 0, 0, 0, 0, 0};
  const auto instances = provider.provision(counts);
  Workload workload;
  workload.workload_class = WorkloadClass::kNBody;
  workload.pattern = ParallelPattern::kBulkSynchronous;
  workload.steps = 50;
  workload.instructions_per_step = 1e12;
  workload.sync_bytes_per_step = 0;
  workload.total_instructions = 5e13;
  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, counts);

  double slowest_factor = 1e9;
  for (const auto& instance : instances)
    slowest_factor = std::min(slowest_factor, instance.speed_factor);
  double nominal_total = 0;
  for (const auto& instance : instances)
    nominal_total += instance.nominal_rate(WorkloadClass::kNBody);
  const double fluid_nominal = 5e13 / nominal_total;
  // Zero sync bytes still pay per-step latency: depth x latency per step.
  const NetworkModel net;
  const double sync = 50 * net.latency_seconds *
                      std::ceil(std::log2(static_cast<double>(instances.size())));
  EXPECT_NEAR(report.seconds, fluid_nominal / slowest_factor + sync, 1e-6);
}

TEST(ClusterExec, CostUsesBillingPolicy) {
  CloudProvider provider(8);
  const auto counts = single("c4.large");
  const auto instances = provider.provision(counts);
  const Workload workload = independent_tasks({1e9});  // sub-second-ish run
  const ClusterExecutor executor;
  ExecutionOptions continuous;
  ExecutionOptions hourly;
  hourly.billing = BillingPolicy::kPerHour;
  const auto c = executor.execute(workload, instances, counts, continuous);
  const auto h = executor.execute(workload, instances, counts, hourly);
  EXPECT_LT(c.cost, h.cost);
  EXPECT_DOUBLE_EQ(h.cost, 0.105);  // one billed hour
}

TEST(ClusterExec, UtilizationNeverExceedsOne) {
  CloudProvider provider(9);
  std::vector<int> counts = {1, 1, 0, 1, 0, 0, 0, 0, 0};
  const auto instances = provider.provision(counts);
  const Workload workload = independent_tasks(std::vector<double>(37, 3e9));
  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, counts);
  EXPECT_GT(report.busy_fraction, 0.0);
  EXPECT_LE(report.busy_fraction, 1.0 + 1e-9);
  EXPECT_EQ(report.nodes, 3u);
}

TEST(ClusterExec, EmptyInputsThrow) {
  CloudProvider provider(10);
  const auto counts = single("c4.large");
  const auto instances = provider.provision(counts);
  const ClusterExecutor executor;
  Workload empty;
  empty.pattern = ParallelPattern::kIndependentTasks;
  EXPECT_THROW(executor.execute(empty, instances, counts),
               std::invalid_argument);
  const Workload ok = independent_tasks({1e9});
  EXPECT_THROW(executor.execute(ok, {}, counts), std::invalid_argument);
}

TEST(ClusterExec, RealAppWorkloadsRunEndToEnd) {
  CloudProvider provider(11);
  std::vector<int> counts = {2, 1, 0, 0, 0, 0, 0, 0, 0};
  const auto instances = provider.provision(counts);
  const ClusterExecutor executor;
  for (const auto& app : celia::apps::all_apps()) {
    const celia::apps::AppParams params =
        app->name() == "galaxy"
            ? celia::apps::AppParams{4096, 100}
            : (app->name() == "sand" ? celia::apps::AppParams{1e6, 0.32}
                                     : celia::apps::AppParams{64, 20});
    const auto workload = app->make_workload(params);
    const auto report = executor.execute(workload, instances, counts);
    EXPECT_GT(report.seconds, 0.0) << app->name();
    EXPECT_GT(report.cost, 0.0) << app->name();
  }
}

}  // namespace
