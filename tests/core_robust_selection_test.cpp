// Tests for risk-aware selection (Constraints::confidence_z) and the
// rate-spread estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "cloud/vm.hpp"
#include "core/capacity.hpp"
#include "core/celia.hpp"

namespace {

using namespace celia::core;
using celia::cloud::CloudProvider;

ResourceCapacity flat_capacity() {
  return ResourceCapacity(std::vector<double>(9, 1e9), celia::cloud::Catalog::ec2_table3());
}

TEST(RobustSweep, ZeroZMatchesDeterministic) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  Constraints det;
  det.deadline_seconds = 24 * 3600.0;
  Constraints zeroed = det;
  zeroed.confidence_z = 0.0;
  zeroed.rate_sigma = 0.06;  // sigma without z must be ignored
  SweepOptions options;
  options.collect_pareto = false;
  const auto a = sweep(space, capacity, 9e15, det, options);
  const auto b = sweep(space, capacity, 9e15, zeroed, options);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.min_cost.config_index, b.min_cost.config_index);
}

TEST(RobustSweep, HigherConfidenceNeverCheaper) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  SweepOptions options;
  options.collect_pareto = false;
  double previous_cost = 0.0;
  for (const double z : {0.0, 1.0, 1.645, 2.326}) {
    Constraints constraints;
    constraints.deadline_seconds = 24 * 3600.0;
    constraints.confidence_z = z;
    constraints.rate_sigma = 0.06;
    const auto result = sweep(space, capacity, 9e15, constraints, options);
    ASSERT_TRUE(result.any_feasible) << "z=" << z;
    EXPECT_GE(result.min_cost.cost, previous_cost - 1e-9) << "z=" << z;
    previous_cost = result.min_cost.cost;
  }
}

TEST(RobustSweep, FeasibleSetShrinksWithConfidence) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  SweepOptions options;
  options.collect_pareto = false;
  Constraints det;
  det.deadline_seconds = 24 * 3600.0;
  const auto loose = sweep(space, capacity, 9e15, det, options);
  Constraints strict = det;
  strict.confidence_z = 2.0;
  strict.rate_sigma = 0.10;
  const auto tight = sweep(space, capacity, 9e15, strict, options);
  EXPECT_LT(tight.feasible, loose.feasible);
}

TEST(RobustSweep, PessimisticTimeMatchesHandComputation) {
  // Single-type configurations have V = m (W sigma)^2, so the pessimistic
  // capacity is m W - z sqrt(m) W sigma.
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  Constraints constraints;
  constraints.confidence_z = 1.645;
  constraints.rate_sigma = 0.06;
  SweepOptions options;
  options.collect_pareto = false;
  const double demand = 1e15;
  const auto result = sweep(space, capacity, demand, constraints, options);
  ASSERT_TRUE(result.any_feasible);

  // Check the reported seconds of a known configuration: [5,0,...,0]
  // (5 x c4.large = 10 vCPUs at 1e9): U = 1e10, sigma_U = sqrt(5) * 2e9
  // * 0.06.
  Configuration probe(9, 0);
  probe[0] = 5;
  const std::uint64_t index = space.encode(probe);
  // Recover via a fresh sweep storing all feasible points is overkill;
  // recompute directly instead.
  const double u = 5 * 2e9;
  const double sigma_u = std::sqrt(5.0) * 2e9 * 0.06;
  const double expected_seconds = demand / (u - 1.645 * sigma_u);
  // The sweep's min_time point is the full fleet, not our probe, so just
  // verify the formula via a 1-configuration space.
  (void)index;
  ConfigurationSpace tiny(std::vector<int>{5, 0, 0, 0, 0, 0, 0, 0, 0});
  const auto tiny_result =
      sweep(tiny, capacity, demand, constraints, options);
  ASSERT_TRUE(tiny_result.any_feasible);
  // The last configuration in the tiny space is [5,0,...]; min_time picks
  // the largest capacity = 5 nodes.
  EXPECT_NEAR(tiny_result.min_time.seconds, expected_seconds,
              expected_seconds * 1e-12);
}

TEST(RobustSweep, ImpossibleConfidenceFindsNothing) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = flat_capacity();
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.confidence_z = 50.0;  // pessimistic capacity goes negative
  constraints.rate_sigma = 0.5;
  SweepOptions options;
  options.collect_pareto = false;
  const auto result = sweep(space, capacity, 9e15, constraints, options);
  EXPECT_EQ(result.feasible, 0u);
}

TEST(EstimateRateSigma, RecoversTheNoiseModel) {
  CloudProvider provider(123);
  const auto app = celia::apps::make_galaxy();
  const double sigma = estimate_rate_sigma(*app, provider, 0, 40);
  EXPECT_NEAR(sigma, celia::cloud::kSpeedSigma, 0.03);
}

TEST(EstimateRateSigma, ValidatesSampleCount) {
  CloudProvider provider(1);
  const auto app = celia::apps::make_galaxy();
  EXPECT_THROW(estimate_rate_sigma(*app, provider, 0, 1),
               std::invalid_argument);
}

}  // namespace
