file(REMOVE_RECURSE
  "CMakeFiles/celia_apps.dir/galaxy/galaxy_app.cpp.o"
  "CMakeFiles/celia_apps.dir/galaxy/galaxy_app.cpp.o.d"
  "CMakeFiles/celia_apps.dir/galaxy/nbody.cpp.o"
  "CMakeFiles/celia_apps.dir/galaxy/nbody.cpp.o.d"
  "CMakeFiles/celia_apps.dir/registry.cpp.o"
  "CMakeFiles/celia_apps.dir/registry.cpp.o.d"
  "CMakeFiles/celia_apps.dir/sand/align.cpp.o"
  "CMakeFiles/celia_apps.dir/sand/align.cpp.o.d"
  "CMakeFiles/celia_apps.dir/sand/sand_app.cpp.o"
  "CMakeFiles/celia_apps.dir/sand/sand_app.cpp.o.d"
  "CMakeFiles/celia_apps.dir/sand/sequence.cpp.o"
  "CMakeFiles/celia_apps.dir/sand/sequence.cpp.o.d"
  "CMakeFiles/celia_apps.dir/x264/encoder.cpp.o"
  "CMakeFiles/celia_apps.dir/x264/encoder.cpp.o.d"
  "CMakeFiles/celia_apps.dir/x264/x264_app.cpp.o"
  "CMakeFiles/celia_apps.dir/x264/x264_app.cpp.o.d"
  "libcelia_apps.a"
  "libcelia_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celia_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
