// Tests for provisioning and the VM performance model (src/cloud/).

#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "cloud/vm.hpp"
#include "util/stats.hpp"

namespace {

using namespace celia::cloud;
using celia::hw::WorkloadClass;

TEST(SpeedFactor, DeterministicPerSeedAndInstance) {
  EXPECT_DOUBLE_EQ(instance_speed_factor(1, 5), instance_speed_factor(1, 5));
  EXPECT_NE(instance_speed_factor(1, 5), instance_speed_factor(1, 6));
  EXPECT_NE(instance_speed_factor(1, 5), instance_speed_factor(2, 5));
}

TEST(SpeedFactor, DistributionCentersOnTurboHeadroom) {
  celia::util::RunningStats stats;
  for (std::uint64_t i = 0; i < 20000; ++i)
    stats.add(instance_speed_factor(42, i));
  EXPECT_NEAR(stats.mean(), kTurboHeadroom, 0.01);
  // Lognormal sigma ~ multiplicative spread.
  EXPECT_NEAR(stats.stddev() / stats.mean(), kSpeedSigma, 0.01);
  EXPECT_GT(stats.min(), 0.5);
  EXPECT_LT(stats.max(), 2.0);
}

TEST(Provider, ProvisionExpandsCounts) {
  CloudProvider provider(1);
  std::vector<int> counts = {2, 0, 1, 0, 0, 0, 0, 0, 3};
  const auto instances = provider.provision(counts);
  ASSERT_EQ(instances.size(), 6u);
  EXPECT_EQ(instances[0].type().name, "c4.large");
  EXPECT_EQ(instances[1].type().name, "c4.large");
  EXPECT_EQ(instances[2].type().name, "c4.2xlarge");
  EXPECT_EQ(instances[3].type().name, "r3.2xlarge");
}

TEST(Provider, EnforcesPerTypeLimit) {
  CloudProvider provider(1);
  std::vector<int> counts(9, 0);
  counts[0] = provider.catalog().limit(0) + 1;
  EXPECT_THROW(provider.provision(counts), std::invalid_argument);
}

TEST(Provider, RejectsNegativeAndEmpty) {
  CloudProvider provider(1);
  std::vector<int> negative(9, 0);
  negative[3] = -1;
  EXPECT_THROW(provider.provision(negative), std::invalid_argument);
  EXPECT_THROW(provider.provision(std::vector<int>(9, 0)),
               std::invalid_argument);
  EXPECT_THROW(provider.provision({1, 2}), std::invalid_argument);
}

TEST(Provider, SameSeedSameFleet) {
  CloudProvider a(7), b(7);
  std::vector<int> counts(9, 0);
  counts[1] = 3;
  const auto fa = a.provision(counts);
  const auto fb = b.provision(counts);
  for (std::size_t i = 0; i < fa.size(); ++i)
    EXPECT_DOUBLE_EQ(fa[i].speed_factor, fb[i].speed_factor);
}

TEST(Provider, InstanceIdsAreMonotonic) {
  CloudProvider provider(3);
  std::vector<int> counts(9, 0);
  counts[0] = 2;
  const auto first = provider.provision(counts);
  const auto second = provider.provision(counts);
  EXPECT_LT(first[1].instance_id, second[0].instance_id);
  EXPECT_EQ(provider.instances_provisioned(), 4u);
}

TEST(Provider, NominalRateFollowsEq4) {
  CloudProvider provider(1);
  std::vector<int> counts(9, 0);
  counts[2] = 1;  // c4.2xlarge: 8 vCPUs
  const auto instances = provider.provision(counts);
  const double per_vcpu = celia::hw::vcpu_rate(
      celia::hw::Microarch::kHaswellE5_2666v3, WorkloadClass::kNBody);
  EXPECT_DOUBLE_EQ(instances[0].nominal_rate(WorkloadClass::kNBody),
                   8 * per_vcpu);
  EXPECT_DOUBLE_EQ(instances[0].actual_rate(WorkloadClass::kNBody),
                   8 * per_vcpu * instances[0].speed_factor);
}

TEST(Provider, BenchmarkTimeIsDemandOverRate) {
  CloudProvider provider(5);
  const double demand = 1e12;
  const double seconds =
      provider.run_benchmark(0, demand, WorkloadClass::kVideoEncoding);
  EXPECT_GT(seconds, 0.0);
  // Within the noise envelope of the nominal time.
  std::vector<int> counts(9, 0);
  counts[0] = 1;
  CloudProvider fresh(5);
  const double nominal =
      demand / fresh.provision(counts)[0].nominal_rate(
                   WorkloadClass::kVideoEncoding);
  EXPECT_NEAR(seconds / nominal, 1.0 / kTurboHeadroom, 0.35);
}

TEST(Provider, BenchmarkValidatesArguments) {
  CloudProvider provider(1);
  EXPECT_THROW(provider.run_benchmark(99, 1e9, WorkloadClass::kNBody),
               std::out_of_range);
  EXPECT_THROW(provider.run_benchmark(0, 0, WorkloadClass::kNBody),
               std::invalid_argument);
}

}  // namespace
