#pragma once
// Model-based analyses of §IV-E: fixed-time scaling of problem size and
// accuracy (Figs. 5 and 6) and the cost of tightening the time deadline
// (§IV-E.3). Each point is a full configuration-space sweep for the
// minimum-cost feasible configuration.

#include <span>
#include <vector>

#include "core/celia.hpp"

namespace celia::core {

/// One point of a fixed-time scaling curve.
struct ScalingPoint {
  double value = 0.0;        // the swept parameter (n or a)
  bool feasible = false;     // any configuration meets the deadline?
  double min_cost = 0.0;     // $ of the cheapest feasible configuration
  std::uint64_t config_index = 0;
  double seconds = 0.0;      // predicted time of that configuration
};

/// Fig. 5: fix accuracy, scale problem size, report min cost per deadline.
/// `options` is forwarded to every underlying sweep — pass
/// `index_policy = IndexPolicy::Shared()` so the whole curve reuses one
/// FrontierIndex.
std::vector<ScalingPoint> problem_size_scaling(const Celia& celia,
                                               double fixed_accuracy,
                                               std::span<const double> sizes,
                                               double deadline_hours,
                                               SweepOptions options = {});

/// Fig. 6: fix problem size, scale accuracy, report min cost per deadline.
std::vector<ScalingPoint> accuracy_scaling(const Celia& celia,
                                           double fixed_size,
                                           std::span<const double> accuracies,
                                           double deadline_hours,
                                           SweepOptions options = {});

/// §IV-E.3: fix the problem entirely and tighten the deadline.
std::vector<ScalingPoint> deadline_tightening(
    const Celia& celia, const apps::AppParams& params,
    std::span<const double> deadlines_hours, SweepOptions options = {});

/// Observation-1 statistic: cost span of a Pareto frontier —
/// max cost / min cost (1.3x for galaxy, 1.2x for sand in the paper), and
/// the saving available by picking the cheapest frontier point instead of
/// the most expensive one (up to 30%).
struct ParetoSpan {
  double min_cost = 0.0;
  double max_cost = 0.0;
  double span_ratio = 0.0;     // max / min
  double saving_fraction = 0.0;  // 1 - min / max
};
ParetoSpan pareto_span(std::span<const CostTimePoint> frontier);

}  // namespace celia::core
