# Empty compiler generated dependencies file for celia_apps.
# This may be replaced when dependencies are built.
