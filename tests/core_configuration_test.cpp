// Tests for configurations and the configuration space (paper §III-A).

#include <gtest/gtest.h>

#include <vector>

#include "cloud/catalog.hpp"
#include "core/configuration.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::core;

TEST(ConfigurationSpace, PaperSizeEquation) {
  // S = prod(m_i,max + 1) - 1 = 6^9 - 1 = 10,077,695 (paper Eq. 1).
  const auto space = ConfigurationSpace::ec2_default();
  EXPECT_EQ(space.size(), 10'077'695u);
  EXPECT_EQ(space.num_types(), 9u);
}

TEST(ConfigurationSpace, SmallSpaceSize) {
  const ConfigurationSpace space({1, 2, 3});
  EXPECT_EQ(space.size(), 2u * 3 * 4 - 1);
}

TEST(ConfigurationSpace, FirstIndexIsSingleNodeOfFirstType) {
  const auto space = ConfigurationSpace::ec2_default();
  const Configuration config = space.decode(0);
  EXPECT_EQ(config[0], 1);
  for (std::size_t i = 1; i < config.size(); ++i) EXPECT_EQ(config[i], 0);
}

TEST(ConfigurationSpace, LastIndexIsFullFleet) {
  const auto space = ConfigurationSpace::ec2_default();
  const Configuration config = space.decode(space.size() - 1);
  for (const int count : config) EXPECT_EQ(count, 5);
}

TEST(ConfigurationSpace, EncodeDecodeRoundTripSampled) {
  const auto space = ConfigurationSpace::ec2_default();
  celia::util::Xoshiro256 rng(99);
  for (int k = 0; k < 10000; ++k) {
    const std::uint64_t index = rng.bounded(space.size());
    EXPECT_EQ(space.encode(space.decode(index)), index);
  }
}

TEST(ConfigurationSpace, ForCatalogUsesPerTypeLimits) {
  // A catalog with NON-uniform m_i,max: Eq. 1 still reads
  // S = prod(m_i,max + 1) - 1.
  const auto& table3 = celia::cloud::Catalog::ec2_table3();
  const std::vector<int> limits = {3, 0, 7, 5, 1, 2, 5, 4, 6};
  const celia::cloud::Catalog catalog(
      "non-uniform", "test",
      {table3.types().begin(), table3.types().end()}, limits);
  const auto space = ConfigurationSpace::for_catalog(catalog);
  ASSERT_EQ(space.num_types(), limits.size());
  std::uint64_t expected = 1;
  for (std::size_t i = 0; i < limits.size(); ++i) {
    EXPECT_EQ(space.max_counts()[i], limits[i]);
    expected *= static_cast<std::uint64_t>(limits[i]) + 1;
  }
  EXPECT_EQ(space.size(), expected - 1);
  // The default space is exactly the Table III catalog's space.
  const auto default_space =
      ConfigurationSpace::for_catalog(celia::cloud::Catalog::ec2_table3());
  EXPECT_EQ(default_space.size(), ConfigurationSpace::ec2_default().size());
}

TEST(ConfigurationSpace, NonUniformLimitsEncodeDecodeAreInverse) {
  // Exhaustive over a mixed-radix space that includes a zero limit (type
  // 1 can never be provisioned) — decode(encode(c)) == c and
  // encode(decode(i)) == i across the whole space.
  const ConfigurationSpace space({3, 0, 2, 5, 1});
  EXPECT_EQ(space.size(), 4u * 1 * 3 * 6 * 2 - 1);
  for (std::uint64_t index = 0; index < space.size(); ++index) {
    const Configuration config = space.decode(index);
    EXPECT_EQ(config[1], 0);
    EXPECT_EQ(space.encode(config), index);
  }
}

TEST(ConfigurationSpace, DecodeEncodeExhaustiveOnSmallSpace) {
  const ConfigurationSpace space({2, 1, 3});
  for (std::uint64_t index = 0; index < space.size(); ++index) {
    const Configuration config = space.decode(index);
    EXPECT_EQ(space.encode(config), index);
    bool all_zero = true;
    for (std::size_t i = 0; i < config.size(); ++i) {
      EXPECT_GE(config[i], 0);
      EXPECT_LE(config[i], space.max_counts()[i]);
      if (config[i] != 0) all_zero = false;
    }
    EXPECT_FALSE(all_zero);
  }
}

TEST(ConfigurationSpace, AllZeroIsExcluded) {
  const auto space = ConfigurationSpace::ec2_default();
  EXPECT_THROW(space.encode(std::vector<int>(9, 0)), std::invalid_argument);
}

TEST(ConfigurationSpace, OutOfRangeCountThrows) {
  const auto space = ConfigurationSpace::ec2_default();
  std::vector<int> config(9, 0);
  config[0] = 6;
  EXPECT_THROW(space.encode(config), std::invalid_argument);
  config[0] = -1;
  EXPECT_THROW(space.encode(config), std::invalid_argument);
}

TEST(ConfigurationSpace, WrongWidthThrows) {
  const auto space = ConfigurationSpace::ec2_default();
  EXPECT_THROW(space.encode(std::vector<int>{1, 2}), std::invalid_argument);
  std::vector<int> out(3);
  EXPECT_THROW(space.decode_into(0, out), std::invalid_argument);
}

TEST(ConfigurationSpace, DecodeOutOfRangeThrows) {
  const auto space = ConfigurationSpace::ec2_default();
  EXPECT_THROW(space.decode(space.size()), std::out_of_range);
}

TEST(ConfigurationSpace, ConstructionValidation) {
  EXPECT_THROW(ConfigurationSpace({}), std::invalid_argument);
  EXPECT_THROW(ConfigurationSpace({2, -1}), std::invalid_argument);
}

TEST(ConfigurationSpace, PaperAnnotationFormat) {
  EXPECT_EQ(to_string({5, 5, 5, 3, 0, 0, 0, 0, 0}),
            "[5,5,5,3,0,0,0,0,0]");
}

TEST(ConfigurationSpace, AdjacentIndicesDifferByOdometerStep) {
  const auto space = ConfigurationSpace::ec2_default();
  const Configuration a = space.decode(41);
  const Configuration b = space.decode(42);
  // Mixed-radix increment: the first non-max digit increases by one and
  // all digits before it wrap to zero.
  std::size_t i = 0;
  while (a[i] == space.max_counts()[i]) {
    EXPECT_EQ(b[i], 0);
    ++i;
  }
  EXPECT_EQ(b[i], a[i] + 1);
  for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
}

}  // namespace
