#pragma once
// Demand-invariant frontier index: pay the 10M-configuration enumeration
// once, answer every subsequent planner query in microseconds.
//
// A configuration's capacity U_j (Eq. 3) and unit cost C_j,u (Eq. 6) do
// not depend on the query — demand D, deadline T' and budget C' only enter
// through T = D/U (Eq. 2) and C = T * C_j,u / 3600 (Eq. 5/6). In the
// (U, s)-plane with slope s = C_u / U, both constraints become
// axis-aligned half-planes:
//
//     feasible  <=>  U > D/T'   and   s < 3600 C' / D.
//
// The index therefore precomputes, in one parallel pass over the space:
//
//  1. The STAIRCASE: the (max U, min s) non-dominated entries (equal
//     slopes all kept — integer multiples of one mix tie exactly in s but
//     their rounded costs differ by ulps either way). Sorted by ascending
//     U the surviving slopes are non-decreasing, so any query's feasible
//     frontier candidates form one contiguous range found by two binary
//     searches; one exact pass over that short range reproduces sweep()'s
//     min-cost/min-time points and (via pareto_filter) its exact Pareto
//     frontier.
//  2. The COUNTING GRID for the exact feasible count: ~sqrt(S) quantile
//     fences per axis, a (suffix-in-U, prefix-in-s) count matrix for the
//     strips that pass/fail wholly, and the (U, Cu) points bucketed by
//     strip so the one partial strip per axis is re-tested with the exact
//     per-point sweep predicates. O(log S + sqrt(S)) per query vs O(S).
//
// Exactness: U and Cu are the same doubles the sweep computes (both come
// from detail::walk_range), the deadline side of the grid classification
// is exact (division is monotone), and every point in a partial strip or
// in the staircase range is re-tested with bit-identical predicates. The
// only divergence from sweep() is for points whose cost lies within a few
// ulps of a constraint boundary (the budget-side strip classification and
// the staircase range end use a slope-form bound) — a measure-zero event
// for real-valued inputs, validated against sweep() by the property tests.
//
// Risk-aware queries (confidence_z > 0) change the effective capacity per
// configuration and keep the sweep path; see SweepOptions.
//
// DELTA MAINTENANCE (see DESIGN.md §13): the build also records a compact
// structure-of-arrays point store (per-strip U/Cu/config-index lanes) and
// a WIDE staircase candidate set — every point whose anchor slope is
// within kWideKappa of the staircase envelope at its capacity. Two catalog
// edits can then be absorbed without re-walking the space:
//
//  * repriced(): price-only changes whose per-type ratios to the ANCHOR
//    prices stay inside a bounded band. The new staircase is recomputed
//    from the candidate set with each candidate's Cu re-derived by the
//    canonical walk fold (bit-identical to what a from-scratch build's
//    walk would produce), and a closure argument over the band guarantees
//    every from-scratch survivor is a candidate — so the delta staircase
//    equals the from-scratch staircase bit for bit. Feasible counts reuse
//    the anchor grid: s-strips that certainly pass/fail under the ratio
//    band are counted in bulk, the narrow middle band is re-tested
//    per-point with exact fold-derived costs.
//  * with_limit(): a single type's limit DECREASE. Configuration indexes
//    remap monotonically, so the point store is filtered in place and the
//    grid recounted without a walk; the staircase is re-filtered from the
//    surviving candidates and verified against an envelope-rise bound
//    (if dropping points uncovered configurations outside the candidate
//    set, the delta refuses and the caller falls back to a full rebuild).
//
// Both return std::nullopt whenever the edit falls outside their provable
// envelope; callers (PlannerEngine) treat nullopt as "full rebuild".

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cloud/catalog.hpp"
#include "core/capacity.hpp"
#include "core/configuration.hpp"
#include "core/enumerate.hpp"

namespace celia::core {

/// Namespace-scope so the in-class `= {}` defaults below can use its
/// member initializers (nested aggregates can't until the enclosing class
/// is complete).
struct FrontierBuildOptions {
  /// Pool for the build passes; nullptr = parallel::default_pool().
  parallel::ThreadPool* pool = nullptr;
  /// Strips per axis of the counting grid; 0 picks ~sqrt(space size)
  /// (clamped to [8, 2048]).
  std::size_t grid = 0;
};

class FrontierIndex {
 public:
  using BuildOptions = FrontierBuildOptions;

  /// One staircase entry: capacity, hourly cost, configuration.
  struct Entry {
    double u = 0.0;
    double cu = 0.0;
    std::uint64_t config_index = 0;
  };

  /// One parallel pass over the space (plus a scatter pass for the grid).
  /// `hourly_costs[i]` is the per-hour price of one instance of type i.
  static FrontierIndex build(const ConfigurationSpace& space,
                             const ResourceCapacity& capacity,
                             std::span<const double> hourly_costs,
                             const BuildOptions& options = {});

  /// Build for a specific catalog: prices come from
  /// `catalog.hourly_costs()` and the index is PINNED to the catalog's
  /// full fingerprint, so the shared cache can never serve it for a
  /// different catalog (even one with identical prices). Throws
  /// std::invalid_argument when `capacity` was characterized against a
  /// structurally different catalog.
  static FrontierIndex build(const ConfigurationSpace& space,
                             const ResourceCapacity& capacity,
                             const cloud::Catalog& catalog,
                             const BuildOptions& options = {});

  /// Convenience overload pricing with the EC2 catalog (paper Table III).
  static FrontierIndex build(const ConfigurationSpace& space,
                             const ResourceCapacity& capacity,
                             const BuildOptions& options = {});

  /// Answer a deterministic (demand, deadline, budget) query. Equivalent
  /// to sweep() with the same arguments (see the exactness note above).
  /// Throws std::invalid_argument for non-positive demand and for
  /// risk-aware constraints (those need the sweep path).
  SweepResult query(double demand, const Constraints& constraints,
                    bool collect_pareto = true) const;

  /// As above for a pre-validated core::Query (validation already ran in
  /// Query::make, so it is not repeated). Risk-aware constraints still
  /// throw — route those through sweep().
  SweepResult query(const Query& query) const;

  /// The demand-invariant staircase: ascending U, non-decreasing slope.
  /// Equal-slope runs (integer multiples of one instance mix) are kept in
  /// full so rounded-cost ties resolve exactly as sweep()'s.
  std::span<const Entry> frontier() const { return frontier_; }

  std::uint64_t total_configurations() const { return total_; }
  /// Configurations with U > 0 (the only ones any query can return).
  std::uint64_t attainable_configurations() const { return positive_; }
  std::size_t grid_resolution() const { return grid_; }
  std::size_t memory_bytes() const;

  /// Full fingerprint of the catalog this index was built for; 0 when the
  /// index was built from an ad-hoc hourly-cost span (unpinned).
  std::uint64_t catalog_fingerprint() const { return catalog_fingerprint_; }

  /// Order-sensitive FNV-1a over the index's observable content: model
  /// identity (max_counts, rates, hourly prices), catalog pin, totals and
  /// every staircase entry's bits. Grid internals (fences, strip layout)
  /// are excluded — they only steer the exact counting partition, so a
  /// delta-maintained index and a from-scratch build are equal iff their
  /// content fingerprints (and hence frontiers, bit for bit) are equal.
  std::uint64_t content_fingerprint() const;

  // --- Delta maintenance ---------------------------------------------------

  /// True when the build retained the point store + wide candidate set
  /// that repriced()/with_limit() need (a degenerate space can exceed the
  /// candidate cap, in which case deltas refuse and callers rebuild).
  bool delta_capable() const;

  /// True for an index produced by repriced() (its point store still
  /// carries the anchor prices; with_limit() requires a pristine index).
  bool is_repriced() const;

  /// Price-only delta: same space, same rates, new hourly prices. Returns
  /// an index answering queries bit-identically to a from-scratch build at
  /// `new_hourly`, or nullopt when the edit is not provably coverable
  /// (width mismatch, ratio band vs the anchor prices exceeded, zero/
  /// negative prices, or delta_capable() is false). O(candidates), never
  /// walks the space.
  std::optional<FrontierIndex> repriced(
      std::span<const double> new_hourly) const;

  /// Catalog form: additionally requires an identical catalog STRUCTURE
  /// (types + limits) and pins the result to `to.fingerprint()`.
  std::optional<FrontierIndex> repriced(const cloud::Catalog& to) const;

  /// Single-axis delta: type `type`'s instance limit decreases to
  /// `new_max`. Filters + remaps the point store (one pass, no walk),
  /// recounts the grid and re-filters the staircase from the surviving
  /// candidates. Returns nullopt when the edit is an increase, the index
  /// is repriced or not delta-capable, the shrunken space is empty, or
  /// the envelope-rise verification cannot prove the filtered candidate
  /// set still covers the new staircase.
  std::optional<FrontierIndex> with_limit(std::size_t type, int new_max) const;

  /// Catalog form of with_limit: `to` must differ from the anchor catalog
  /// only in type `type`'s limit (same types, same prices); pins the
  /// result to `to.fingerprint()`.
  std::optional<FrontierIndex> with_limit(std::size_t type, int new_max,
                                          const cloud::Catalog& to) const;

  /// True when the index was built for exactly this model.
  bool matches(const ConfigurationSpace& space,
               const ResourceCapacity& capacity,
               std::span<const double> hourly_costs) const;

  /// As above, additionally requiring the index's catalog pin to equal
  /// `catalog_fingerprint` (0 = unpinned). The shared cache keys on this,
  /// so two catalogs never alias one staircase.
  bool matches(const ConfigurationSpace& space,
               const ResourceCapacity& capacity,
               std::span<const double> hourly_costs,
               std::uint64_t catalog_fingerprint) const;

 private:
  // Counting grid + SoA point store + wide candidate set, built once and
  // shared immutably between an anchor index and every index delta-derived
  // from it (a reprice must not copy hundreds of MB). Defined in the .cpp.
  struct GridStore;

  FrontierIndex() = default;

  SweepResult query_impl(double demand, const Constraints& constraints,
                         bool collect_pareto) const;

  std::uint64_t count_feasible(double demand, double deadline_seconds,
                               double budget_dollars) const;

  // Model identity.
  std::vector<int> max_counts_;
  std::vector<double> rates_;
  std::vector<double> hourly_;
  std::uint64_t catalog_fingerprint_ = 0;  // 0 = ad-hoc span build
  std::uint64_t total_ = 0;
  std::uint64_t positive_ = 0;

  std::vector<Entry> frontier_;

  std::size_t grid_ = 0;
  std::shared_ptr<const GridStore> store_;

  // Reprice state: when repriced_, `hourly_` holds the current prices
  // while store_ still carries the anchor ones; [rho_lo_, rho_hi_] bounds
  // every per-type price ratio current/anchor (used by the banded count).
  bool repriced_ = false;
  double rho_lo_ = 1.0;
  double rho_hi_ = 1.0;
};

/// Process-wide index cache (small LRU keyed by (catalog fingerprint,
/// model content)): returns the shared index for (space, capacity,
/// hourly_costs), building it on first use. This is what
/// IndexPolicy::Shared() consults. Span-based lookups use the unpinned
/// key space (fingerprint 0).
std::shared_ptr<const FrontierIndex> shared_frontier_index(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    std::span<const double> hourly_costs,
    parallel::ThreadPool* pool = nullptr);

/// Catalog-pinned shared index: keyed by `catalog.fingerprint()` in
/// addition to the model content, so two catalogs — even ones with
/// identical prices — never share a cache entry.
std::shared_ptr<const FrontierIndex> shared_frontier_index(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    const cloud::Catalog& catalog, parallel::ThreadPool* pool = nullptr);

}  // namespace celia::core
