// Tests for the analytical time/cost models, Eq. 2-6 (core/time_cost.hpp).

#include <gtest/gtest.h>

#include <cmath>

#include "core/time_cost.hpp"

namespace {

using namespace celia::core;

ResourceCapacity uniform_capacity(double per_vcpu) {
  return ResourceCapacity(std::vector<double>(9, per_vcpu), celia::cloud::Catalog::ec2_table3());
}

TEST(TimeCost, CapacityIsWeightedSum) {
  const auto capacity = uniform_capacity(1e9);
  // [1,0,0,2,0,0,0,0,1]: 1x2 + 2x2 + 1x8 vCPUs = 14 vCPUs at 1e9 each.
  const std::vector<int> config = {1, 0, 0, 2, 0, 0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(configuration_capacity(config, capacity), 14e9);
}

TEST(TimeCost, HourlyCostMatchesCatalog) {
  const std::vector<int> config = {2, 1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(configuration_hourly_cost(config), 2 * 0.105 + 0.209, 1e-12);
}

TEST(TimeCost, PredictionFollowsEquations) {
  const auto capacity = uniform_capacity(1e9);
  const std::vector<int> config = {5, 0, 0, 0, 0, 0, 0, 0, 0};  // U = 10e9
  const double demand = 3.6e13;
  const Prediction prediction = predict(demand, config, capacity);
  EXPECT_DOUBLE_EQ(prediction.seconds, 3600.0);        // Eq. 2
  EXPECT_NEAR(prediction.cost, 1.0 * 5 * 0.105, 1e-12);  // Eq. 5/6
}

TEST(TimeCost, EmptyConfigurationGivesInfiniteTime) {
  const auto capacity = uniform_capacity(1e9);
  const std::vector<int> config(9, 0);
  const Prediction prediction = predict(1e12, config, capacity);
  EXPECT_TRUE(std::isinf(prediction.seconds));
  EXPECT_TRUE(std::isinf(prediction.cost));
}

TEST(TimeCost, NonPositiveDemandThrows) {
  const auto capacity = uniform_capacity(1e9);
  const std::vector<int> config = {1, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_THROW(predict(0.0, config, capacity), std::invalid_argument);
  EXPECT_THROW(predict(-5.0, config, capacity), std::invalid_argument);
}

TEST(TimeCost, WidthMismatchThrows) {
  const auto capacity = uniform_capacity(1e9);
  const std::vector<int> narrow = {1, 2};
  EXPECT_THROW(configuration_capacity(narrow, capacity),
               std::invalid_argument);
  EXPECT_THROW(configuration_hourly_cost(narrow), std::invalid_argument);
}

TEST(TimeCost, MoreCapacityNeverSlower) {
  const auto capacity = uniform_capacity(2e9);
  std::vector<int> small = {1, 0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<int> big = {1, 0, 0, 0, 0, 0, 0, 0, 1};
  const double demand = 1e13;
  EXPECT_LT(predict(demand, big, capacity).seconds,
            predict(demand, small, capacity).seconds);
}

TEST(TimeCost, CostScaleInvariance) {
  // Doubling every node count halves time and leaves cost unchanged
  // under the fluid model (same capacity-to-cost ratio).
  const auto capacity = uniform_capacity(1.5e9);
  std::vector<int> one = {1, 1, 1, 0, 0, 0, 0, 0, 0};
  std::vector<int> two = {2, 2, 2, 0, 0, 0, 0, 0, 0};
  const double demand = 7e13;
  const auto p1 = predict(demand, one, capacity);
  const auto p2 = predict(demand, two, capacity);
  EXPECT_NEAR(p1.seconds / p2.seconds, 2.0, 1e-9);
  EXPECT_NEAR(p1.cost, p2.cost, 1e-9);
}

}  // namespace
