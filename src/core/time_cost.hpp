#pragma once
// CELIA's analytical time and cost models (paper §III-B, §III-C).
//
//   T = D / U_j                 (Eq. 2)
//   U_j = sum_i m_j,i x W_i     (Eq. 3)
//   C = T x C_j,u               (Eq. 5)
//   C_j,u = sum_i m_j,i x c_i   (Eq. 6)

#include <span>

#include "cloud/catalog.hpp"
#include "core/capacity.hpp"
#include "core/configuration.hpp"

namespace celia::core {

/// Predicted time (seconds) and cost ($) for one configuration.
struct Prediction {
  double seconds = 0.0;
  double cost = 0.0;
};

/// U_j: total capacity of a configuration (instructions/second).
double configuration_capacity(std::span<const int> config,
                              const ResourceCapacity& capacity);

/// C_j,u: total cost per hour of a configuration at `catalog` prices.
double configuration_hourly_cost(std::span<const int> config,
                                 const cloud::Catalog& catalog);

/// Convenience overload pricing with the paper's Table III catalog.
double configuration_hourly_cost(std::span<const int> config);

/// Full prediction for `demand` instructions on `config`, priced with
/// `catalog`.
Prediction predict(double demand, std::span<const int> config,
                   const ResourceCapacity& capacity,
                   const cloud::Catalog& catalog);

/// Convenience overload pricing with the paper's Table III catalog.
Prediction predict(double demand, std::span<const int> config,
                   const ResourceCapacity& capacity);

}  // namespace celia::core
