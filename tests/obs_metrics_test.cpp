// Tests for the obs metrics registry: exact totals under concurrent
// hammering (the sharded-slot design must lose no increments), exporter
// formats, the runtime kill switch and registry identity semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace celia::obs;

TEST(ObsMetrics, CounterSingleThreadExact) {
  Counter& c = counter("obs_test_counter_single");
  c.reset();
  for (int i = 0; i < 1000; ++i) c.add();
  c.add(42);
  EXPECT_EQ(c.value(), 1042u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, CounterConcurrentHammerExactTotal) {
  Counter& c = counter("obs_test_counter_hammer");
  c.reset();
  constexpr int kThreads = 16;
  constexpr std::uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, GaugeSetAndConcurrentAdd) {
  Gauge& g = gauge("obs_test_gauge");
  g.reset();
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, HistogramBucketsAndOverflow) {
  const double bounds[] = {1.0, 2.0, 5.0};
  Histogram& h = histogram("obs_test_histogram_buckets", bounds);
  h.reset();
  h.record(0.5);   // bucket 0 (le 1)
  h.record(1.0);   // bucket 0 (inclusive upper bound)
  h.record(1.5);   // bucket 1
  h.record(4.0);   // bucket 2
  h.record(100.0); // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(ObsMetrics, HistogramConcurrentHammerExactTotals) {
  const double bounds[] = {10.0, 20.0};
  Histogram& h = histogram("obs_test_histogram_hammer", bounds);
  h.reset();
  constexpr int kThreads = 12;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Thread t records a fixed value so per-bucket totals are exact.
      const double value = (t % 3 == 0) ? 5.0 : (t % 3 == 1) ? 15.0 : 25.0;
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.record(value);
    });
  }
  for (auto& thread : threads) thread.join();
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 4 * kPerThread);  // t = 0,3,6,9
  EXPECT_EQ(counts[1], 4 * kPerThread);  // t = 1,4,7,10
  EXPECT_EQ(counts[2], 4 * kPerThread);  // t = 2,5,8,11
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(ObsMetrics, SameNameReturnsSameMetric) {
  Counter& a = counter("obs_test_identity");
  Counter& b = counter("obs_test_identity");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(ObsMetrics, KindMismatchThrows) {
  counter("obs_test_kind_clash");
  EXPECT_THROW(gauge("obs_test_kind_clash"), std::invalid_argument);
  EXPECT_THROW(histogram("obs_test_kind_clash"), std::invalid_argument);
  EXPECT_THROW(counter(""), std::invalid_argument);
}

TEST(ObsMetrics, RuntimeKillSwitchStopsRecording) {
  Counter& c = counter("obs_test_kill_switch");
  c.reset();
  ASSERT_TRUE(metrics_enabled());
  set_metrics_enabled(false);
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  set_metrics_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(ObsMetrics, PrometheusExportFormat) {
  Counter& c = counter("obs_test_prom_counter", "a test counter");
  c.reset();
  c.add(3);
  const double bounds[] = {1.0, 2.0};
  Histogram& h = histogram("obs_test_prom_hist", bounds);
  h.reset();
  h.record(0.5);
  h.record(1.5);
  h.record(9.0);

  const std::string text = dump_metrics();
  EXPECT_NE(text.find("# TYPE obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# HELP obs_test_prom_counter a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_hist histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" -> 1, le="2" -> 2, le="+Inf" -> 3.
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count 3"), std::string::npos);
}

TEST(ObsMetrics, JsonExportContainsMetrics) {
  Counter& c = counter("obs_test_json_counter");
  c.reset();
  c.add(11);
  const std::string json = dump_metrics_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(
      json.find(
          "\"obs_test_json_counter\":{\"type\":\"counter\",\"value\":11}"),
      std::string::npos);
}

TEST(ObsMetrics, RegistryResetZeroesEverythingButKeepsRegistrations) {
  Counter& c = counter("obs_test_reset_counter");
  Gauge& g = gauge("obs_test_reset_gauge");
  c.add(5);
  g.set(2.0);
  reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  // Cached references stay valid and usable after reset.
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
  const auto names = celia::obs::Registry::global().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "obs_test_reset_counter"),
            names.end());
}

TEST(ObsMetrics, HistogramRejectsUnsortedBounds) {
  const double bad[] = {5.0, 1.0};
  EXPECT_THROW(histogram("obs_test_bad_bounds", bad), std::invalid_argument);
}

TEST(ObsMetrics, ThreadShardStableWithinThread) {
  const std::size_t a = thread_shard();
  const std::size_t b = thread_shard();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, kMetricShards);
}

}  // namespace
