// Reproduces paper Table II and Figure 2: resource demand of the three
// elastic applications as a function of problem size and accuracy, with
// automatic shape detection (linear / quadratic / logarithmic).
//
// Paper reference shapes:
//   x264  : linear in n, quadratic in f     (Fig. 2(a), 2(d))
//   galaxy: quadratic in n, linear in s     (Fig. 2(b), 2(e))
//   sand  : linear in n, logarithmic in t   (Fig. 2(c), 2(f))

#include <iostream>
#include <memory>
#include <vector>

#include "apps/registry.hpp"
#include "hw/perf_counter.hpp"
#include "fit/model_select.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace celia;

void panel(const apps::ElasticApp& app, bool sweep_n,
           const std::vector<double>& xs, const std::vector<double>& fixed,
           const char* fixed_name) {
  util::AsciiChart chart(
      std::string(app.name()) + " - " +
          std::string(sweep_n ? app.size_param_name()
                              : app.accuracy_param_name()),
      sweep_n ? "n" : "a", "instructions");
  util::TablePrinter table({sweep_n ? "n" : "a", "fixed", "demand (instr)",
                            "billion instr"});
  table.set_right_aligned(2);
  table.set_right_aligned(3);

  for (const double f : fixed) {
    util::Series series;
    series.label = std::string(fixed_name) + "=" + util::format_si(f, 0);
    for (const double x : xs) {
      const apps::AppParams params =
          sweep_n ? apps::AppParams{x, f} : apps::AppParams{f, x};
      const double demand = app.exact_demand(params);
      series.xs.push_back(x);
      series.ys.push_back(demand);
      table.add_row({util::format_si(x, 0), series.label,
                     util::format_instructions(demand),
                     util::format_fixed(demand / 1e9, 1)});
    }
    chart.add_series(std::move(series));
  }
  chart.print(std::cout);
  table.print(std::cout);

  // Shape detection on the first fixed value's series.
  std::vector<fit::Sample> samples;
  for (const double x : xs) {
    const apps::AppParams params =
        sweep_n ? apps::AppParams{x, fixed[0]} : apps::AppParams{fixed[0], x};
    samples.push_back({x, app.exact_demand(params)});
  }
  const auto detection = fit::detect_shape(samples);
  std::cout << "detected relationship: " << fit::shape_name(detection.shape)
            << " (R^2 = " << util::format_fixed(detection.fit.r2, 6)
            << ")\n\n";
}

}  // namespace

namespace {

// Evidence that the closed-form demand used for the sweeps below equals
// what an instrumented (perf-counted) run of the real kernels measures:
// executed here at scaled-down parameters where running is cheap.
void self_check() {
  using celia::apps::AppParams;
  struct Check {
    std::unique_ptr<celia::apps::ElasticApp> app;
    AppParams params;
  };
  std::vector<Check> checks;
  checks.push_back({celia::apps::make_x264_mini(), {2, 20}});
  checks.push_back({celia::apps::make_galaxy(), {64, 3}});
  checks.push_back({celia::apps::make_sand_mini(), {32, 0.32}});
  std::cout << "instrumented-run self-check (closed form vs perf counter):\n";
  for (const auto& check : checks) {
    celia::hw::PerfCounter counter;
    check.app->run_instrumented(check.params, counter);
    const double exact = check.app->exact_demand(check.params);
    const bool match = static_cast<double>(counter.instructions()) == exact;
    std::cout << "  " << check.app->name() << ": instrumented "
              << counter.instructions() << " instr, closed form "
              << static_cast<std::uint64_t>(exact) << " instr -> "
              << (match ? "EXACT MATCH" : "MISMATCH") << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  self_check();
  // Table II.
  util::TablePrinter table2({"Application", "Domain", "Problem Size",
                             "Accuracy"});
  const auto apps = apps::all_apps();
  for (const auto& app : apps) {
    table2.add_row({std::string(app->name()), std::string(app->domain()),
                    std::string(app->size_param_name()),
                    std::string(app->accuracy_param_name())});
  }
  std::cout << "=== Table II: Elastic Applications ===\n";
  table2.print(std::cout);
  std::cout << "\n=== Figure 2: Resource Demand of Elastic Applications ===\n"
            << "(paper shapes: x264 linear/quadratic, galaxy quadratic/"
               "linear, sand linear/logarithmic)\n\n";

  const auto& x264 = *apps[0];
  const auto& galaxy = *apps[1];
  const auto& sand = *apps[2];

  // (a) x264 - n at f = 10, 20.
  panel(x264, true, {2, 4, 8, 16, 32}, {10, 20}, "f");
  // (d) x264 - f at n = 2, 4.
  panel(x264, false, {10, 15, 20, 25, 30, 35, 40, 45, 50}, {2, 4}, "n");
  // (b) galaxy - n at s = 1000, 2000.
  panel(galaxy, true, {8192, 16384, 32768, 65536}, {1000, 2000}, "s");
  // (e) galaxy - s at n = 8192, 16384.
  panel(galaxy, false, {1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000},
        {8192, 16384}, "n");
  // (c) sand - n at t = 0.04, 0.08.
  panel(sand, true, {1e6, 2e6, 4e6, 8e6, 16e6, 32e6, 64e6}, {0.04, 0.08},
        "t");
  // (f) sand - t at n = 8M, 16M.
  panel(sand, false, {0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0},
        {8e6, 16e6}, "n");
  return 0;
}
