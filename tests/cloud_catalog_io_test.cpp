// Tests for catalog loading/saving (cloud/catalog_io.hpp): CSV and JSON
// round-trips plus malformed-input fuzzing — a mangled price list must
// throw a descriptive std::runtime_error, never crash or hand back a
// half-parsed catalog.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cloud/catalog.hpp"
#include "cloud/catalog_io.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::cloud;

const std::string kSmallCsv =
    "# name: tiny\n"
    "# region: test-1\n"
    "name,category,size,vcpus,frequency_ghz,memory_gb,storage,cost_per_hour,"
    "limit\n"
    "c4.large,compute,large,2,2.9,3.75,EBS,0.105,5\n"
    "m4.xlarge,general,xlarge,4,2.4,16,EBS,0.266,3\n"
    "r3.2xlarge,memory,2xlarge,8,2.5,61,160,0.664,2\n";

const std::string kSmallJson = R"({
  "name": "tiny",
  "region": "test-1",
  "types": [
    {"name": "c4.large", "category": "compute", "size": "large",
     "vcpus": 2, "frequency_ghz": 2.9, "memory_gb": 3.75,
     "storage": "EBS", "cost_per_hour": 0.105, "limit": 5},
    {"name": "m4.xlarge", "category": "general", "size": "xlarge",
     "vcpus": 4, "frequency_ghz": 2.4, "memory_gb": 16,
     "storage": "EBS", "cost_per_hour": 0.266, "limit": 3},
    {"name": "r3.2xlarge", "category": "memory", "size": "2xlarge",
     "vcpus": 8, "frequency_ghz": 2.5, "memory_gb": 61,
     "storage": "160", "cost_per_hour": 0.664, "limit": 2}
  ]
})";

TEST(CatalogIo, CsvLoadsTypesLimitsAndMetadata) {
  const Catalog catalog = catalog_from_csv(kSmallCsv);
  EXPECT_EQ(catalog.name(), "tiny");
  EXPECT_EQ(catalog.region(), "test-1");
  ASSERT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog.type(0).name, "c4.large");
  EXPECT_EQ(catalog.type(0).category, Category::kCompute);
  EXPECT_EQ(catalog.type(0).size, Size::kLarge);
  EXPECT_EQ(catalog.type(0).vcpus, 2);
  EXPECT_DOUBLE_EQ(catalog.type(0).cost_per_hour, 0.105);
  EXPECT_EQ(catalog.type(1).category, Category::kGeneralPurpose);
  EXPECT_EQ(catalog.type(2).category, Category::kMemoryOptimized);
  EXPECT_EQ(catalog.limits(), (std::vector<int>{5, 3, 2}));
}

TEST(CatalogIo, CsvLimitColumnIsOptional) {
  const Catalog catalog = catalog_from_csv(
      "name,category,size,vcpus,frequency_ghz,memory_gb,storage,"
      "cost_per_hour\n"
      "c4.large,c4,large,2,2.9,3.75,EBS,0.105\n");
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.limit(0), kDefaultInstanceLimit);
  // Missing directives fall back to placeholder metadata.
  EXPECT_EQ(catalog.name(), "unnamed");
}

TEST(CatalogIo, JsonLoadsTheSameCatalogAsCsv) {
  const Catalog from_csv = catalog_from_csv(kSmallCsv);
  const Catalog from_json = catalog_from_json(kSmallJson);
  EXPECT_EQ(from_csv.fingerprint(), from_json.fingerprint());
  EXPECT_EQ(from_csv.structure_fingerprint(),
            from_json.structure_fingerprint());
}

TEST(CatalogIo, FormatSniffingPicksTheRightParser) {
  EXPECT_EQ(catalog_from_string(kSmallCsv).fingerprint(),
            catalog_from_string("\n  " + kSmallJson).fingerprint());
}

TEST(CatalogIo, CsvRoundTripPreservesTheFingerprint) {
  const Catalog original = catalog_from_csv(kSmallCsv);
  const Catalog reloaded = catalog_from_csv(catalog_to_csv(original));
  EXPECT_EQ(reloaded.fingerprint(), original.fingerprint());
  EXPECT_EQ(reloaded.name(), original.name());
  EXPECT_EQ(reloaded.region(), original.region());
}

TEST(CatalogIo, TableThreeRoundTripsBitIdentically) {
  // Table III's category->microarch mapping is exactly the loader's
  // default, so writing and reloading the paper's catalog reproduces the
  // full fingerprint (types, limits, prices, microarchs).
  const Catalog& table3 = Catalog::ec2_table3();
  const Catalog reloaded = catalog_from_csv(catalog_to_csv(table3));
  EXPECT_EQ(reloaded.fingerprint(), table3.fingerprint());
  EXPECT_EQ(reloaded.structure_fingerprint(),
            table3.structure_fingerprint());
  ASSERT_EQ(reloaded.size(), table3.size());
  for (std::size_t i = 0; i < table3.size(); ++i) {
    EXPECT_EQ(reloaded.type(i).microarch, table3.type(i).microarch) << i;
    EXPECT_EQ(reloaded.type(i).cost_per_hour, table3.type(i).cost_per_hour)
        << i;
  }
}

TEST(CatalogIo, StreamAndStringEntryPointsAgree) {
  std::istringstream csv(kSmallCsv), json(kSmallJson), sniffed(kSmallJson);
  EXPECT_EQ(load_catalog_csv(csv).fingerprint(),
            catalog_from_csv(kSmallCsv).fingerprint());
  EXPECT_EQ(load_catalog_json(json).fingerprint(),
            catalog_from_json(kSmallJson).fingerprint());
  EXPECT_EQ(load_catalog(sniffed).fingerprint(),
            catalog_from_json(kSmallJson).fingerprint());
}

TEST(CatalogIo, MissingFileThrows) {
  EXPECT_THROW(load_catalog_file("/nonexistent/catalog.csv"),
               std::runtime_error);
}

// ---------------------------------------------------------------- fuzz --

TEST(CatalogIoFuzz, CsvRejectsStructuralDamage) {
  // No header; wrong header; empty input.
  EXPECT_THROW(catalog_from_csv(""), std::runtime_error);
  EXPECT_THROW(catalog_from_csv("c4.large,compute,large,2,2.9,3.75,EBS,0.1\n"),
               std::runtime_error);
  EXPECT_THROW(catalog_from_csv("name,price\nc4.large,0.1\n"),
               std::runtime_error);
  // Header but no rows.
  EXPECT_THROW(
      catalog_from_csv("name,category,size,vcpus,frequency_ghz,memory_gb,"
                       "storage,cost_per_hour\n"),
      std::runtime_error);
}

TEST(CatalogIoFuzz, CsvRejectsFieldDamage) {
  const auto row = [](const std::string& line) {
    return "name,category,size,vcpus,frequency_ghz,memory_gb,storage,"
           "cost_per_hour,limit\n" +
           line + "\n";
  };
  // Wrong field count, unknown category/size, non-numeric and non-positive
  // numerics, negative limit, duplicate names.
  EXPECT_THROW(catalog_from_csv(row("c4.large,compute,large")),
               std::runtime_error);
  EXPECT_THROW(
      catalog_from_csv(row("c4.large,turbo,large,2,2.9,3.75,EBS,0.105,5")),
      std::runtime_error);
  EXPECT_THROW(
      catalog_from_csv(row("c4.large,compute,mega,2,2.9,3.75,EBS,0.105,5")),
      std::runtime_error);
  EXPECT_THROW(
      catalog_from_csv(row("c4.large,compute,large,x,2.9,3.75,EBS,0.105,5")),
      std::runtime_error);
  EXPECT_THROW(
      catalog_from_csv(row("c4.large,compute,large,2,-2.9,3.75,EBS,0.105,5")),
      std::runtime_error);
  EXPECT_THROW(
      catalog_from_csv(row("c4.large,compute,large,2,2.9,3.75,EBS,0,5")),
      std::runtime_error);
  EXPECT_THROW(
      catalog_from_csv(row("c4.large,compute,large,2,2.9,3.75,EBS,0.105,-1")),
      std::runtime_error);
  EXPECT_THROW(catalog_from_csv(
                   row("c4.large,compute,large,2,2.9,3.75,EBS,0.105,5\n"
                       "c4.large,compute,large,2,2.9,3.75,EBS,0.105,5")),
               std::runtime_error);
}

TEST(CatalogIoFuzz, JsonRejectsMalformedDocuments) {
  EXPECT_THROW(catalog_from_json(""), std::runtime_error);
  EXPECT_THROW(catalog_from_json("{"), std::runtime_error);
  EXPECT_THROW(catalog_from_json("{}"), std::runtime_error);  // no types
  EXPECT_THROW(catalog_from_json(R"({"types": []})"), std::runtime_error);
  EXPECT_THROW(catalog_from_json(R"({"bogus": 1, "types": []})"),
               std::runtime_error);
  EXPECT_THROW(catalog_from_json(kSmallJson + "trailing"),
               std::runtime_error);
  // Unterminated string; missing required key; unknown type key.
  EXPECT_THROW(catalog_from_json(R"({"name": "oops)"), std::runtime_error);
  EXPECT_THROW(
      catalog_from_json(
          R"({"types": [{"name": "a", "category": "compute"}]})"),
      std::runtime_error);
  EXPECT_THROW(
      catalog_from_json(
          R"({"types": [{"name": "a", "category": "compute",
              "size": "large", "vcpus": 2, "frequency_ghz": 2.9,
              "memory_gb": 4, "cost_per_hour": 0.1, "color": "red"}]})"),
      std::runtime_error);
}

TEST(CatalogIoRowValidation, CsvErrorsCarryTheOffendingLineNumber) {
  // Rows land on line 5 of this scaffold (directives + header above).
  const auto doc = [](const std::string& bad_row) {
    return "# name: tiny\n"
           "# region: test-1\n"
           "\n"
           "name,category,size,vcpus,frequency_ghz,memory_gb,storage,"
           "cost_per_hour,limit\n" +
           bad_row + "\n";
  };
  const auto error_for = [&](const std::string& bad_row) -> std::string {
    try {
      (void)catalog_from_csv(doc(bad_row));
    } catch (const std::runtime_error& error) {
      return error.what();
    }
    return {};
  };

  struct Case {
    const char* row;
    const char* expect;  // substring of the error message
  };
  const Case cases[] = {
      {"c4.large,compute,large,2,2.9,3.75,EBS,nan,5", "cost_per_hour is NaN"},
      {"c4.large,compute,large,2,2.9,3.75,EBS,inf,5",
       "cost_per_hour must be positive and finite"},
      {"c4.large,compute,large,2,2.9,3.75,EBS,-0.105,5",
       "cost_per_hour must be positive and finite"},
      {"c4.large,compute,large,0,2.9,3.75,EBS,0.105,5",
       "vcpus must be >= 1, got 0"},
      {"c4.large,compute,large,-2,2.9,3.75,EBS,0.105,5",
       "vcpus must be >= 1, got -2"},
      {"c4.large,compute,large,2,nan,3.75,EBS,0.105,5",
       "frequency_ghz must be positive and finite"},
      {"c4.large,compute,large,2,2.9,inf,EBS,0.105,5",
       "memory_gb must be positive and finite"},
      {"c4.large,compute,large,2,2.9,3.75,EBS,0.105,-1",
       "limit must be non-negative, got -1"},
  };
  for (const Case& c : cases) {
    const std::string message = error_for(c.row);
    EXPECT_NE(message.find("line 5"), std::string::npos)
        << c.row << " -> " << message;
    EXPECT_NE(message.find(c.expect), std::string::npos)
        << c.row << " -> " << message;
  }
}

TEST(CatalogIoRowValidation, JsonErrorsNameTheOffendingType) {
  const auto type_doc = [](const std::string& fields) {
    return std::string(R"({"types": [{"name": "c4.large",
        "category": "compute", "size": "large", "storage": "EBS", )") +
           fields + "}]}";
  };
  const auto error_for = [&](const std::string& fields) -> std::string {
    try {
      (void)catalog_from_json(type_doc(fields));
    } catch (const std::runtime_error& error) {
      return error.what();
    }
    return {};
  };

  const std::string zero_vcpus = error_for(
      R"("vcpus": 0, "frequency_ghz": 2.9, "memory_gb": 4,
         "cost_per_hour": 0.1)");
  EXPECT_NE(zero_vcpus.find("json type 'c4.large'"), std::string::npos)
      << zero_vcpus;
  EXPECT_NE(zero_vcpus.find("vcpus must be >= 1"), std::string::npos);

  const std::string negative_price = error_for(
      R"("vcpus": 2, "frequency_ghz": 2.9, "memory_gb": 4,
         "cost_per_hour": -0.1)");
  EXPECT_NE(negative_price.find("cost_per_hour must be positive"),
            std::string::npos)
      << negative_price;
}

TEST(CatalogIoFuzz, SeededNumericGarbageNeverCrashesTheCsvLoader) {
  // Splice seed-derived garbage into each numeric column of an otherwise
  // valid row: every mutation must either load or throw runtime_error.
  const char* garbage[] = {"nan",  "-nan", "inf",   "-inf", "1e999",
                           "-1",   "0x10", "1.2.3", "2,",   "--3",
                           "1e-),", "NaN",  "1e",    ".",    "+"};
  int rejected = 0, accepted = 0;
  celia::util::SplitMix64 mix(20260805);
  for (int round = 0; round < 200; ++round) {
    std::string fields[] = {"c4.large", "compute", "large", "2",
                            "2.9",      "3.75",    "EBS",   "0.105",
                            "5"};
    const int column = static_cast<int>(mix.next() % 5);
    const int numeric_field[] = {3, 4, 5, 7, 8};
    fields[numeric_field[column]] =
        garbage[mix.next() % (sizeof(garbage) / sizeof(garbage[0]))];
    std::string row;
    for (const std::string& field : fields)
      row += (row.empty() ? "" : ",") + field;
    const std::string text =
        "name,category,size,vcpus,frequency_ghz,memory_gb,storage,"
        "cost_per_hour,limit\n" +
        row + "\n";
    try {
      (void)catalog_from_csv(text);
      ++accepted;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  // Every drawn mutation corrupts a numeric field: nothing may slip
  // through to a "successfully" loaded catalog.
  EXPECT_EQ(accepted, 0);
  EXPECT_EQ(rejected, 200);
}

TEST(CatalogIoFuzz, EveryTruncationOfValidInputsIsHandled) {
  // Truncations either load (a shorter CSV can still be complete rows) or
  // throw std::runtime_error — never crash or throw anything else.
  for (const std::string& text : {kSmallCsv, kSmallJson}) {
    for (std::size_t len = 0; len < text.size(); ++len) {
      try {
        (void)catalog_from_string(text.substr(0, len));
      } catch (const std::runtime_error&) {
      }
    }
  }
}

}  // namespace
