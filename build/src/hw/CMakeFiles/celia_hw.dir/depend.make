# Empty dependencies file for celia_hw.
# This may be replaced when dependencies are built.
