#pragma once
// serve::WeightedFairQueue — the PlannerService's bounded, multi-tenant
// submission queue. Extends the ConcurrentQueue protocol (one mutex + two
// condition variables, blocking pop, close()/close_and_drain() shutdown
// contract — see parallel/concurrent_queue.hpp) with per-tenant FIFO
// lanes drained by weighted deficit round-robin, so one hot tenant can
// fill its own lane but never starve the others:
//
//   * Each tenant owns a FIFO lane and a weight (default 1). The total
//     number of queued items across lanes is bounded by `capacity`.
//   * pop() serves lanes in registration order from a rotating cursor.
//     Every lane carries a CREDIT; serving one item costs one credit.
//     When no backlogged lane has credit left, every backlogged lane is
//     replenished by its weight — so over any long window tenant i
//     receives service proportional to weight_i, while an idle tenant's
//     credit is forfeited (reset when its lane empties), never hoarded.
//   * Lock-lean by construction: push/pop each take the one mutex once,
//     do O(#tenants) pointer work, and leave; the expensive planning work
//     happens strictly outside the lock.
//
// The queue is deliberately deterministic: given the same sequence of
// push/pop calls, the same items come out in the same order (the fairness
// test and the serving bench both rely on this).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace celia::serve {

template <typename T>
class WeightedFairQueue {
 public:
  /// capacity == 0 means unbounded (summed across every tenant lane).
  explicit WeightedFairQueue(std::size_t capacity = 0)
      : capacity_(capacity) {}

  /// Register `tenant` (idempotent) and set its scheduling weight.
  /// Throws std::invalid_argument unless weight >= 1.
  void set_weight(std::string_view tenant, double weight) {
    if (!(weight >= 1.0))
      throw std::invalid_argument(
          "WeightedFairQueue: tenant weight must be >= 1");
    std::lock_guard<std::mutex> lock(mutex_);
    lane_locked(tenant).weight = weight;
  }

  /// Non-blocking push into `tenant`'s lane; fails when the queue is full
  /// or closed. Unknown tenants are registered on first push (weight 1).
  bool try_push(std::string_view tenant, T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || (capacity_ != 0 && size_ >= capacity_)) return false;
      lane_locked(tenant).items.push_back(std::move(value));
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: the next item by weighted deficit round-robin. Returns
  /// nullopt once the queue is closed AND drained (definite shutdown
  /// signal, same contract as ConcurrentQueue::pop).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    return pop_locked();
  }

  /// Non-blocking pop (same scheduling as pop()).
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return pop_locked();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Graceful shutdown: pushes fail afterwards, pops drain what is queued
  /// and then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Abortive shutdown: close and hand back every queued item (in the
  /// order pop() would have served them) so unserved work can be answered
  /// with a typed outcome instead of silently destroyed.
  std::vector<T> close_and_drain() {
    std::vector<T> pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      pending.reserve(size_);
      while (size_ > 0) {
        std::optional<T> item = pop_locked();
        pending.push_back(std::move(*item));
      }
    }
    not_empty_.notify_all();
    return pending;
  }

 private:
  struct Lane {
    std::deque<T> items;
    double weight = 1.0;
    double credit = 0.0;
  };

  Lane& lane_locked(std::string_view tenant) {
    const auto it = lane_index_.find(std::string(tenant));
    if (it != lane_index_.end()) return lanes_[it->second];
    lane_index_.emplace(std::string(tenant), lanes_.size());
    lanes_.emplace_back();
    return lanes_.back();
  }

  std::optional<T> pop_locked() {
    if (size_ == 0) return std::nullopt;
    // Two scans from the cursor: serve the first backlogged lane with
    // credit; if every backlogged lane is out of credit, replenish each
    // by its weight and scan again (some lane then has credit >= 1).
    for (int attempt = 0; attempt < 2; ++attempt) {
      for (std::size_t step = 0; step < lanes_.size(); ++step) {
        Lane& lane = lanes_[(cursor_ + step) % lanes_.size()];
        if (lane.items.empty() || lane.credit < 1.0) continue;
        T value = std::move(lane.items.front());
        lane.items.pop_front();
        lane.credit -= 1.0;
        // An emptied lane forfeits leftover credit (classic DRR): a
        // tenant cannot bank idle time into a later burst.
        if (lane.items.empty()) lane.credit = 0.0;
        // Advance the cursor past lanes this one outranked only when its
        // credit is spent, so a weight-w lane serves up to w items per
        // round instead of exactly one.
        if (lane.credit < 1.0)
          cursor_ = ((cursor_ + step) % lanes_.size()) + 1;
        --size_;
        return value;
      }
      for (Lane& lane : lanes_)
        if (!lane.items.empty()) lane.credit += lane.weight;
    }
    return std::nullopt;  // unreachable: size_ > 0 guarantees a hit
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::unordered_map<std::string, std::size_t> lane_index_;
  std::vector<Lane> lanes_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace celia::serve
