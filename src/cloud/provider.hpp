#pragma once
// The simulated IaaS provider: provisioning against per-type limits and
// timed benchmark runs used by CELIA's cloud-side characterization.

#include <cstdint>
#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/vm.hpp"
#include "hw/workload_class.hpp"

namespace celia::cloud {

/// Interconnect between instances (EC2 "moderate-to-high" networking).
struct NetworkModel {
  double latency_seconds = 100e-6;       // per message
  double bandwidth_bytes_per_s = 1.0e9;  // per link
};

class CloudProvider {
 public:
  /// `seed` fixes every instance's speed factor, making all experiments
  /// reproducible; different seeds give different "days on EC2".
  explicit CloudProvider(std::uint64_t seed = 2017);

  /// Provision a configuration: node_counts aligned with ec2_catalog().
  /// Throws std::invalid_argument when a count exceeds kMaxInstancesPerType
  /// or the configuration is empty.
  std::vector<Instance> provision(const std::vector<int>& node_counts);

  /// Run a timed scale-down benchmark of `instructions` on one fresh
  /// instance of catalog type `type_index` using all its vCPUs, and return
  /// the measured wall-clock seconds. This is the cloud half of the
  /// paper's characterization: the user cannot read instruction counters
  /// in the VM, only time the run.
  double run_benchmark(std::size_t type_index, double instructions,
                       hw::WorkloadClass workload);

  const NetworkModel& network() const { return network_; }
  std::uint64_t seed() const { return seed_; }

  /// Total instances handed out so far (monotonic instance ids).
  std::uint64_t instances_provisioned() const { return next_instance_id_; }

 private:
  std::uint64_t seed_;
  std::uint64_t next_instance_id_ = 0;
  NetworkModel network_;
};

}  // namespace celia::cloud
