#pragma once
// core::SweepPlan — structure-of-arrays representation of the
// configuration walk.
//
// The sweep's mixed-radix odometer walk (enumerate.hpp) historically
// produced one (index, U, Cu, V) tuple per callback. SweepPlan keeps the
// same walk — identical suffix-sum maintenance, identical chained in-row
// additions, so every value is bit-identical to the scalar original — but
// deposits the per-configuration channels into contiguous SoA lanes
// (per-dimension capacity rows, hourly-cost lane, optional variance and
// instance-count lanes) and hands them to the consumer one batch at a
// time. Batches are what make the classification kernels in
// core/simd.hpp possible: they run 2-4 predicates per instruction over a
// lane instead of one callback per configuration.
//
// Accumulation-order contract (pinned by the hexfloat goldens): a value at
// digits (d_0, d_1, ..., d_{M-1}) is
//
//     fold = ((0 + d_{M-1} w_{M-1}) + ... + d_1 w_1)   // right-to-left
//     value = fold + w_0 + w_0 + ... (d_0 times)       // chained adds
//
// exactly as detail::walk_range has always computed it. fold_tail/
// fold_value expose that canonical order so the FrontierIndex delta paths
// can recompute a configuration's Cu at new prices bit-identically to
// what a from-scratch walk would produce.

#include <cstdint>
#include <span>
#include <vector>

#include "core/configuration.hpp"
#include "parallel/parallel_for.hpp"

namespace celia::core {

class SweepPlan {
 public:
  /// Lane length handed to consumers; sized so one batch's lanes stay in
  /// L1/L2 even with several demand dimensions.
  static constexpr std::size_t kBatch = 512;

  /// One batch of SoA lanes. Dimension d's capacities live at
  /// u_rows + d * kBatch (only the first `n` entries of each lane are
  /// valid for a consume(first, n, lanes) call).
  struct Lanes {
    const double* u_rows = nullptr;
    const double* cu = nullptr;
    const double* v = nullptr;                // nullptr: no variance lane
    const std::int32_t* instances = nullptr;  // nullptr: lane not tracked
    const double* u() const { return u_rows; }  // dimension 0
  };

  /// Scalar (1-D) plan. `var_terms` may be empty or all-zero, in which
  /// case the variance lane is dropped (its values are exactly +0.0
  /// either way). Throws std::invalid_argument on width mismatches.
  /// `space` must outlive the plan.
  SweepPlan(const ConfigurationSpace& space, std::span<const double> rates,
            std::span<const double> hourly,
            std::span<const double> var_terms = {},
            bool track_instances = false);

  /// Multi-dimensional plan: rate_rows[d][i] is the full-instance rate of
  /// type i in demand dimension d (row-major copies are taken, laid out
  /// contiguously [dimension][type]).
  SweepPlan(const ConfigurationSpace& space,
            std::span<const std::vector<double>> rate_rows,
            std::span<const double> hourly, bool track_instances = false);

  std::size_t num_types() const { return num_types_; }
  std::size_t num_dimensions() const { return dims_; }
  bool has_variance_lane() const { return has_var_; }
  bool has_instances_lane() const { return track_instances_; }
  const ConfigurationSpace& space() const { return *space_; }

  /// Rate of type i in dimension d (the contiguous row layout).
  double rate(std::size_t dim, std::size_t type) const {
    return rates_[dim * num_types_ + type];
  }

  /// Walk [range.begin, range.end) invoking
  /// consume(first_index, n, lanes) for successive batches of n <= kBatch
  /// consecutive configurations starting at first_index. Lane values are
  /// pure functions of the configuration — independent of the range
  /// partition and of the batch boundaries.
  template <typename Consumer>
  void walk(parallel::BlockedRange range, Consumer&& consume) const {
    if (dims_ == 1) {
      walk_impl<true>(range, consume);
    } else {
      walk_impl<false>(range, consume);
    }
  }

  /// The canonical right-to-left fold over digits 1..M-1 (the suffix-sum
  /// start value of a row): acc = (...(0 + d_{M-1} w_{M-1}) + ...) + d_1
  /// w_1. Bit-identical to the walk's su/scu/sv row bases.
  static double fold_tail(std::span<const int> digits,
                          std::span<const double> weights);

  /// Full canonical value: fold_tail plus d_0 chained additions of w_0 —
  /// exactly the double the walk passes to its consumer for this
  /// configuration.
  static double fold_value(std::span<const int> digits,
                           std::span<const double> weights);

 private:
  template <bool kOneDim, typename Consumer>
  void walk_impl(parallel::BlockedRange range, Consumer&& consume) const;

  const ConfigurationSpace* space_ = nullptr;
  std::size_t num_types_ = 0;
  std::size_t dims_ = 1;
  bool has_var_ = false;
  bool track_instances_ = false;
  std::vector<double> rates_;  // [dimension][type], contiguous rows
  std::vector<double> hourly_;
  std::vector<double> var_terms_;
};

template <bool kOneDim, typename Consumer>
void SweepPlan::walk_impl(parallel::BlockedRange range,
                          Consumer&& consume) const {
  if (range.empty()) return;
  const std::size_t m = num_types_;
  const std::size_t dims = kOneDim ? 1 : dims_;
  const auto& max_counts = space_->max_counts();
  std::vector<int> digits(m);
  space_->decode_into(range.begin, digits);

  const double hourly0 = hourly_[0];
  const double var0 = has_var_ ? var_terms_[0] : 0.0;
  const std::uint64_t row_radix =
      static_cast<std::uint64_t>(max_counts[0]) + 1;

  // Suffix sums: su[i * dims + d] = sum_{t >= i} digits[t] * rates[d][t],
  // maintained with the fixed right-to-left fold (see the header comment).
  std::vector<double> su((m + 1) * dims, 0.0);
  std::vector<double> scu(m + 1, 0.0);
  std::vector<double> sv(has_var_ ? m + 1 : 0, 0.0);
  std::vector<int> si(track_instances_ ? m + 1 : 0, 0);
  for (std::size_t i = m; i-- > 1;) {
    for (std::size_t d = 0; d < dims; ++d)
      su[i * dims + d] = su[(i + 1) * dims + d] + digits[i] * rate(d, i);
    scu[i] = scu[i + 1] + digits[i] * hourly_[i];
    if (has_var_) sv[i] = sv[i + 1] + digits[i] * var_terms_[i];
    if (track_instances_) si[i] = si[i + 1] + digits[i];
  }

  // Batch lanes (heap scratch: one allocation per walk call).
  std::vector<double> ubuf(dims * kBatch);
  std::vector<double> cubuf(kBatch);
  std::vector<double> vbuf(has_var_ ? kBatch : 0);
  std::vector<std::int32_t> ibuf(track_instances_ ? kBatch : 0);
  Lanes lanes;
  lanes.u_rows = ubuf.data();
  lanes.cu = cubuf.data();
  lanes.v = has_var_ ? vbuf.data() : nullptr;
  lanes.instances = track_instances_ ? ibuf.data() : nullptr;

  std::vector<double> cur(dims);
  std::uint64_t index = range.begin;
  std::uint64_t batch_first = range.begin;
  std::size_t fill = 0;
  const auto flush = [&] {
    if (fill > 0) {
      consume(batch_first, fill, static_cast<const Lanes&>(lanes));
      batch_first += fill;
      fill = 0;
    }
  };

  for (;;) {
    for (std::size_t d = 0; d < dims; ++d) cur[d] = su[dims + d];
    double cu = scu[1];
    double v = has_var_ ? sv[1] : 0.0;
    std::int32_t inst = track_instances_ ? si[1] : 0;
    const auto k_begin = static_cast<std::uint64_t>(digits[0]);
    for (std::uint64_t k = 0; k < k_begin; ++k) {
      for (std::size_t d = 0; d < dims; ++d) cur[d] += rate(d, 0);
      cu += hourly0;
      if (has_var_) v += var0;
      ++inst;
    }
    const std::uint64_t steps =
        std::min<std::uint64_t>(row_radix - k_begin, range.end - index);
    for (std::uint64_t j = 0; j < steps; ++j) {
      for (std::size_t d = 0; d < dims; ++d) {
        ubuf[d * kBatch + fill] = cur[d];
        cur[d] += rate(d, 0);
      }
      cubuf[fill] = cu;
      cu += hourly0;
      if (has_var_) {
        vbuf[fill] = v;
        v += var0;
      }
      if (track_instances_) ibuf[fill] = inst;
      ++inst;
      ++fill;
      if (fill == kBatch) flush();
    }
    index += steps;
    if (index >= range.end) break;
    digits[0] = 0;
    std::size_t i = 1;
    for (; i < m; ++i) {
      if (digits[i] < max_counts[i]) {
        ++digits[i];
        break;
      }
      digits[i] = 0;
    }
    for (std::size_t d = 0; d < dims; ++d)
      su[i * dims + d] = su[(i + 1) * dims + d] + digits[i] * rate(d, i);
    scu[i] = scu[i + 1] + digits[i] * hourly_[i];
    if (has_var_) sv[i] = sv[i + 1] + digits[i] * var_terms_[i];
    if (track_instances_) si[i] = si[i + 1] + digits[i];
    for (std::size_t t = i; t-- > 1;) {
      for (std::size_t d = 0; d < dims; ++d)
        su[t * dims + d] = su[(t + 1) * dims + d];
      scu[t] = scu[t + 1];
      if (has_var_) sv[t] = sv[t + 1];
      if (track_instances_) si[t] = si[t + 1];
    }
  }
  flush();
}

}  // namespace celia::core
