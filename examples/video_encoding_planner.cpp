// Example: planning a video-encoding batch on the cloud (the x264 scenario
// of the paper's introduction).
//
// A studio must encode a batch of 75 MB clips at a given compression
// factor before a deadline. This example builds CELIA for x264, finds the
// cheapest feasible configuration, inspects cost-vs-deadline sensitivity,
// and then validates the chosen plan against a simulated cluster run —
// including what per-hour billing (instead of the paper's continuous cost
// model) would change.
//
// Usage: example_video_encoding_planner [--clips=8000] [--factor=20]
//                                       [--deadline=24] [--budget=350]

#include <iostream>

#include "apps/registry.hpp"
#include "cloud/cluster_exec.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace celia;

  util::CliParser cli("video_encoding_planner",
                      "plan an x264 encoding batch on EC2");
  cli.add_option("clips", "number of 75 MB clips to encode", "8000");
  cli.add_option("factor", "compression factor f in [1, 51]", "20");
  cli.add_option("deadline", "time deadline in hours", "24");
  cli.add_option("budget", "cost budget in dollars", "350");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n";
    cli.print_usage(std::cerr);
    return 1;
  }

  const apps::AppParams params{static_cast<double>(cli.get_int("clips")),
                               static_cast<double>(cli.get_int("factor"))};
  const double deadline = cli.get_double("deadline");
  const double budget = cli.get_double("budget");

  cloud::CloudProvider provider(2017);
  const auto app = apps::make_x264();
  const core::Celia celia = core::Celia::build(*app, provider);

  std::cout << "encoding batch: " << params.n << " clips at f = " << params.a
            << "\npredicted demand: "
            << util::format_instructions(celia.predict_demand(params))
            << "\n\n";

  // 1. The cheapest plan that meets the deadline and budget.
  const core::SweepResult result = celia.select(params, deadline, budget);
  if (!result.any_feasible) {
    std::cout << "no configuration meets " << deadline << "h / $" << budget
              << " — relax one of the constraints.\n";
    return 0;
  }
  const core::Configuration plan =
      celia.space().decode(result.min_cost.config_index);
  std::cout << "cheapest feasible plan: " << core::to_string(plan) << "\n"
            << "  predicted time : "
            << util::format_duration(result.min_cost.seconds) << "\n"
            << "  predicted cost : "
            << util::format_money(result.min_cost.cost) << "\n"
            << "  (" << util::format_with_commas(result.feasible) << " of "
            << util::format_with_commas(result.total)
            << " configurations were feasible)\n\n";

  // 2. What would a tighter or looser deadline cost?
  util::TablePrinter sensitivity({"deadline (h)", "min cost", "plan"});
  sensitivity.set_right_aligned(1);
  for (const double hours : {6.0, 12.0, 24.0, 48.0, 72.0}) {
    const auto best = celia.min_cost_configuration(params, hours);
    sensitivity.add_row(
        {util::format_fixed(hours, 0),
         best ? util::format_money(best->cost) : "infeasible",
         best ? core::to_string(celia.space().decode(best->config_index))
              : "-"});
  }
  std::cout << "deadline sensitivity:\n";
  sensitivity.print(std::cout);

  // 3. Validate the plan on the simulated cloud, under both billing models.
  const apps::Workload workload = app->make_workload(params);
  const auto instances = provider.provision(plan);
  const cloud::ClusterExecutor executor(provider.network());
  const auto actual = executor.execute(workload, instances, plan);
  cloud::ExecutionOptions hourly;
  hourly.billing = cloud::BillingPolicy::kPerHour;
  const auto actual_hourly =
      executor.execute(workload, instances, plan, hourly);

  std::cout << "\nvalidation run on the simulated cloud:\n"
            << "  actual time           : "
            << util::format_duration(actual.seconds) << " (predicted "
            << util::format_duration(result.min_cost.seconds) << ")\n"
            << "  actual cost           : " << util::format_money(actual.cost)
            << " (continuous billing, the paper's model)\n"
            << "  with per-hour billing : "
            << util::format_money(actual_hourly.cost) << "\n"
            << "  cluster utilization   : "
            << util::format_percent(actual.busy_fraction) << "\n";
  return 0;
}
