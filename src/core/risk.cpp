#include "core/risk.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

#include "cloud/instance_type.hpp"
#include "parallel/parallel_for.hpp"
#include "util/stats.hpp"

namespace celia::core {

std::string_view risk_model_name(RiskModel model) {
  switch (model) {
    case RiskModel::kNone:
      return "deterministic";
    case RiskModel::kSumCapacity:
      return "sum-capacity";
    case RiskModel::kBottleneck:
      return "bottleneck";
  }
  return "?";
}

std::optional<CostTimePoint> robust_min_cost(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    double demand, double deadline_seconds, const RiskSpec& spec,
    parallel::ThreadPool* pool) {
  if (demand <= 0)
    throw std::invalid_argument("robust_min_cost: non-positive demand");
  if (spec.model != RiskModel::kNone &&
      (!(spec.confidence > 0 && spec.confidence < 1) || spec.sigma <= 0 ||
       spec.median_factor <= 0))
    throw std::invalid_argument("robust_min_cost: bad risk spec");
  if (space.num_types() != capacity.num_types() ||
      space.num_types() != cloud::catalog_size())
    throw std::invalid_argument("robust_min_cost: width mismatch");

  const std::size_t m = space.num_types();
  std::vector<double> rates(m), hourly(m), var_terms(m);
  for (std::size_t i = 0; i < m; ++i) {
    rates[i] = capacity.rate(i);
    hourly[i] = cloud::ec2_catalog()[i].cost_per_hour;
    const double term = rates[i] * spec.sigma;
    var_terms[i] = term * term;
  }

  const double z = spec.model == RiskModel::kSumCapacity
                       ? util::normal_quantile(spec.confidence)
                       : 0.0;
  const double ln_confidence = std::log(spec.confidence);
  const double ln_median = std::log(spec.median_factor);

  std::mutex merge_mutex;
  std::optional<CostTimePoint> best;

  parallel::ForOptions for_options;
  for_options.pool = pool;
  parallel::parallel_for_blocked(
      0, space.size(),
      [&](parallel::BlockedRange range) {
        std::vector<int> digits(m);
        space.decode_into(range.begin, digits);
        double u = 0, cu = 0, v = 0;
        int instances = 0;
        for (std::size_t i = 0; i < m; ++i) {
          u += digits[i] * rates[i];
          cu += digits[i] * hourly[i];
          v += digits[i] * var_terms[i];
          instances += digits[i];
        }

        std::optional<CostTimePoint> local;
        for (std::uint64_t index = range.begin; index < range.end; ++index) {
          if (u > 0) {
            bool feasible = false;
            switch (spec.model) {
              case RiskModel::kNone:
                feasible = demand / u < deadline_seconds;
                break;
              case RiskModel::kSumCapacity: {
                const double u_eff =
                    spec.median_factor * (u - z * std::sqrt(v));
                feasible = u_eff > 0 && demand / u_eff < deadline_seconds;
                break;
              }
              case RiskModel::kBottleneck: {
                // Need min over `instances` lognormal factors >= x.
                const double x = demand / (u * deadline_seconds);
                if (x <= 0) {
                  feasible = true;
                } else {
                  const double tail = 1.0 - util::normal_cdf(
                                                (std::log(x) - ln_median) /
                                                spec.sigma);
                  feasible = tail > 0 &&
                             instances * std::log(tail) >= ln_confidence;
                }
                break;
              }
            }
            if (feasible) {
              const double seconds = demand / u;  // deterministic quote
              const double cost = seconds / 3600.0 * cu;
              if (!local || cost < local->cost ||
                  (cost == local->cost && seconds < local->seconds)) {
                local = CostTimePoint{index, seconds, cost};
              }
            }
          }
          if (index + 1 >= range.end) break;
          for (std::size_t i = 0; i < m; ++i) {
            if (digits[i] < space.max_counts()[i]) {
              ++digits[i];
              u += rates[i];
              cu += hourly[i];
              v += var_terms[i];
              ++instances;
              break;
            }
            u -= digits[i] * rates[i];
            cu -= digits[i] * hourly[i];
            v -= digits[i] * var_terms[i];
            instances -= digits[i];
            digits[i] = 0;
          }
        }

        if (local) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          if (!best || local->cost < best->cost ||
              (local->cost == best->cost && local->seconds < best->seconds))
            best = local;
        }
      },
      for_options);
  return best;
}

}  // namespace celia::core
