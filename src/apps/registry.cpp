#include "apps/registry.hpp"

#include "apps/galaxy/galaxy_app.hpp"
#include "apps/oltp/oltp_app.hpp"
#include "apps/sand/sand_app.hpp"
#include "apps/x264/x264_app.hpp"

namespace celia::apps {

std::unique_ptr<ElasticApp> make_x264() {
  return std::make_unique<x264::X264App>(x264::ClipModel::full());
}

std::unique_ptr<ElasticApp> make_galaxy() {
  return std::make_unique<galaxy::GalaxyApp>();
}

std::unique_ptr<ElasticApp> make_sand() {
  return std::make_unique<sand::SandApp>(sand::SandModel::full());
}

std::unique_ptr<ElasticApp> make_oltp_classic() {
  return std::make_unique<oltp::OltpApp>(oltp::StorageArchitecture::kClassic);
}

std::unique_ptr<ElasticApp> make_oltp_aurora() {
  return std::make_unique<oltp::OltpApp>(oltp::StorageArchitecture::kAurora);
}

std::unique_ptr<ElasticApp> make_oltp_socrates() {
  return std::make_unique<oltp::OltpApp>(
      oltp::StorageArchitecture::kSocrates);
}

std::unique_ptr<ElasticApp> make_x264_mini() {
  return std::make_unique<x264::X264App>(x264::ClipModel::mini());
}

std::unique_ptr<ElasticApp> make_sand_mini() {
  return std::make_unique<sand::SandApp>(sand::SandModel::mini());
}

std::vector<std::unique_ptr<ElasticApp>> all_apps() {
  std::vector<std::unique_ptr<ElasticApp>> apps;
  apps.push_back(make_x264());
  apps.push_back(make_galaxy());
  apps.push_back(make_sand());
  return apps;
}

std::vector<std::unique_ptr<ElasticApp>> all_oltp_apps() {
  std::vector<std::unique_ptr<ElasticApp>> apps;
  apps.push_back(make_oltp_classic());
  apps.push_back(make_oltp_aurora());
  apps.push_back(make_oltp_socrates());
  return apps;
}

std::unique_ptr<ElasticApp> make_app(std::string_view name) {
  if (name == "x264") return make_x264();
  if (name == "galaxy") return make_galaxy();
  if (name == "sand") return make_sand();
  // "oltp" is the family shorthand for the monolithic baseline.
  if (name == "oltp" || name == "oltp-classic") return make_oltp_classic();
  if (name == "oltp-aurora") return make_oltp_aurora();
  if (name == "oltp-socrates") return make_oltp_socrates();
  return nullptr;
}

}  // namespace celia::apps
