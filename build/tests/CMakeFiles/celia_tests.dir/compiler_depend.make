# Empty compiler generated dependencies file for celia_tests.
# This may be replaced when dependencies are built.
