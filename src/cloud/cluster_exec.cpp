#include "cloud/cluster_exec.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "sim/simulator.hpp"

namespace celia::cloud {

namespace {

/// One compute slot: a vCPU of some instance, executing one task at a time.
struct Slot {
  double rate = 0.0;       // instructions/second delivered by this vCPU
  double busy_until = 0.0; // accumulated busy seconds (for utilization)
};

std::vector<Slot> make_slots(const std::vector<Instance>& instances,
                             hw::WorkloadClass workload) {
  std::vector<Slot> slots;
  for (const auto& instance : instances) {
    const double per_vcpu =
        instance.actual_rate(workload) / instance.type().vcpus;
    for (int v = 0; v < instance.type().vcpus; ++v)
      slots.push_back({per_vcpu, 0.0});
  }
  return slots;
}

}  // namespace

ExecutionReport ClusterExecutor::execute(const apps::Workload& workload,
                                         const std::vector<Instance>& instances,
                                         const std::vector<int>& node_counts,
                                         ExecutionOptions options) const {
  if (instances.empty())
    throw std::invalid_argument("ClusterExecutor: no instances");
  if (workload.total_instructions <= 0)
    throw std::invalid_argument("ClusterExecutor: empty workload");

  ExecutionReport report;
  switch (workload.pattern) {
    case apps::ParallelPattern::kIndependentTasks:
      report = run_task_farm(workload, instances, /*dispatch_seconds=*/0.0,
                             options.record_trace);
      break;
    case apps::ParallelPattern::kMasterWorker:
      report = run_task_farm(workload, instances,
                             workload.dispatch_seconds_per_task,
                             options.record_trace);
      break;
    case apps::ParallelPattern::kBulkSynchronous:
      report = run_bulk_synchronous(workload, instances);
      break;
  }
  report.nodes = instances.size();
  report.cost = configuration_cost(node_counts, report.seconds,
                                   options.billing);
  return report;
}

ExecutionReport ClusterExecutor::run_task_farm(
    const apps::Workload& workload, const std::vector<Instance>& instances,
    double dispatch_seconds, bool record_trace) const {
  if (workload.task_instructions.empty())
    throw std::invalid_argument("task farm: no tasks");
  std::vector<TraceSegment> trace;
  if (record_trace) trace.reserve(workload.task_instructions.size());

  std::vector<Slot> slots = make_slots(instances, workload.workload_class);

  // Serial master prologue: task creation runs single-threaded on one vCPU
  // of the first instance before anything can be dispatched.
  double serial_seconds = 0.0;
  if (workload.serial_instructions > 0.0) {
    const double master_rate =
        instances.front().actual_rate(workload.workload_class) /
        instances.front().type().vcpus;
    serial_seconds = workload.serial_instructions / master_rate;
  }

  sim::Simulator simulator;
  std::deque<std::size_t> idle;  // slot indices waiting for work
  for (std::size_t i = 0; i < slots.size(); ++i) idle.push_back(i);

  std::size_t next_task = 0;
  bool master_busy = false;
  double makespan = serial_seconds;

  // The master hands the next task to an idle worker, occupying itself for
  // `dispatch_seconds` per task (serialization + network round trip). With
  // dispatch_seconds == 0 this degenerates to greedy list scheduling of
  // independent tasks.
  std::function<void()> try_dispatch = [&] {
    if (master_busy || idle.empty() ||
        next_task >= workload.task_instructions.size())
      return;
    const std::size_t slot_index = idle.front();
    idle.pop_front();
    const std::size_t task_index = next_task;
    const double instructions = workload.task_instructions[next_task++];
    master_busy = dispatch_seconds > 0.0;
    simulator.schedule_after(dispatch_seconds, [&, slot_index, task_index,
                                                instructions] {
      master_busy = false;
      const double duration = instructions / slots[slot_index].rate;
      slots[slot_index].busy_until += duration;
      if (record_trace) {
        trace.push_back({slot_index, task_index, simulator.now(),
                         simulator.now() + duration});
      }
      simulator.schedule_after(duration, [&, slot_index] {
        makespan = std::max(makespan, simulator.now());
        idle.push_back(slot_index);
        try_dispatch();
      });
      try_dispatch();  // master is free again: overlap with compute
    });
  };

  if (serial_seconds > 0.0) {
    simulator.schedule_at(serial_seconds, [&] { try_dispatch(); });
  } else {
    try_dispatch();
  }
  const std::uint64_t events = simulator.run();

  ExecutionReport report;
  report.seconds = makespan;
  report.events = events;
  report.slots = slots.size();
  report.trace = std::move(trace);
  double busy = 0.0;
  for (const auto& slot : slots) busy += slot.busy_until;
  report.busy_fraction =
      makespan > 0 ? busy / (makespan * static_cast<double>(slots.size()))
                   : 0.0;
  return report;
}

ExecutionReport ClusterExecutor::run_bulk_synchronous(
    const apps::Workload& workload,
    const std::vector<Instance>& instances) const {
  if (workload.steps == 0)
    throw std::invalid_argument("bulk synchronous: no steps");

  // Static decomposition by *nominal* capacity (the application partitions
  // work from catalog specs, not from delivered performance), executed at
  // each node's *actual* rate: every step takes as long as its slowest
  // node, then pays a logarithmic-depth synchronization exchange.
  double nominal_total = 0.0;
  for (const auto& instance : instances)
    nominal_total += instance.nominal_rate(workload.workload_class);

  double slowest_step = 0.0;
  for (const auto& instance : instances) {
    const double share = workload.instructions_per_step *
                         instance.nominal_rate(workload.workload_class) /
                         nominal_total;
    slowest_step = std::max(
        share / instance.actual_rate(workload.workload_class), slowest_step);
  }

  double sync = 0.0;
  if (instances.size() > 1) {
    const double depth = std::ceil(std::log2(instances.size()));
    sync = (network_.latency_seconds +
            workload.sync_bytes_per_step / network_.bandwidth_bytes_per_s) *
           depth;
  }

  ExecutionReport report;
  report.seconds = static_cast<double>(workload.steps) * (slowest_step + sync);
  report.events = 0;  // analytic path: stepping is closed-form
  for (const auto& instance : instances)
    report.slots += static_cast<std::size_t>(instance.type().vcpus);
  // Utilization: average over nodes of (their compute share time / step).
  double busy = 0.0;
  for (const auto& instance : instances) {
    const double share = workload.instructions_per_step *
                         instance.nominal_rate(workload.workload_class) /
                         nominal_total;
    busy += share / instance.actual_rate(workload.workload_class);
  }
  report.busy_fraction =
      busy / (static_cast<double>(instances.size()) * (slowest_step + sync));
  return report;
}

}  // namespace celia::cloud
