// Extension E2: on-demand (the paper's setting) vs spot instances with
// checkpoint/restart (the related work the paper cites: Marathe et al.,
// Gong et al., paper §II).
//
// Task: sand(1024M, 0.32) — a long divisible job. We sweep the bid price
// and checkpoint interval on a simulated spot market and compare expected
// cost and completion time against CELIA's on-demand optimum, quantifying
// why the paper's deadline guarantees need on-demand capacity.

#include <iostream>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "cloud/spot.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  cloud::CloudProvider provider(2017);
  const auto app = apps::make_sand();
  const core::Celia celia = core::Celia::build(*app, provider);
  const apps::AppParams params{1024e6, 0.32};
  const double demand = celia.predict_demand(params);

  const auto on_demand = celia.min_cost_configuration(params, 24.0);
  std::cout << "=== Extension E2: On-demand vs Spot with Checkpointing ===\n"
            << "workload: sand(1024M, 0.32), demand "
            << util::format_instructions(demand) << "\n"
            << "on-demand optimum (24 h deadline): "
            << (on_demand
                    ? core::to_string(
                          celia.space().decode(on_demand->config_index)) +
                          " at " + util::format_money(on_demand->cost) +
                          " / " + util::format_duration(on_demand->seconds)
                    : "infeasible")
            << "\n\n";

  // Spot fleet: 4x c4.large (similar raw capacity to the on-demand plan).
  const cloud::InstanceType& type = cloud::ec2_catalog()[0];
  constexpr int kFleet = 8;
  const double horizon = 14.0 * 24 * 3600.0;

  util::TablePrinter table({"bid ($/h)", "ckpt (min)", "time", "cost",
                            "evictions", "lost work", "completed"});
  for (std::size_t c : {3u, 4u}) table.set_right_aligned(c);

  for (const double bid_fraction : {0.28, 0.40, 1.00}) {
    for (const double ckpt_minutes : {0.0, 15.0, 60.0}) {
      const cloud::SpotMarket market(type, /*seed=*/42);
      cloud::SpotRunPolicy policy;
      policy.bid_per_hour = bid_fraction * type.cost_per_hour;
      policy.checkpoint_interval_seconds = ckpt_minutes * 60.0;
      policy.instances = kFleet;
      const auto report = cloud::run_on_spot(
          market, app->workload_class(), demand, policy, horizon);
      table.add_row(
          {util::format_fixed(policy.bid_per_hour, 3),
           ckpt_minutes == 0 ? "none" : util::format_fixed(ckpt_minutes, 0),
           util::format_duration(report.seconds),
           util::format_money(report.cost),
           std::to_string(report.evictions),
           util::format_instructions(report.lost_work_instructions),
           report.completed ? "yes" : "no"});
    }
  }
  table.print(std::cout);

  // Gong-style replication: spot fleet + small on-demand replica; the
  // deadline is protected by the on-demand side no matter what the market
  // does.
  std::cout << "\nreplicated execution (spot fleet + 2 on-demand nodes, "
               "Gong et al. §II):\n";
  util::TablePrinter repl({"bid ($/h)", "time", "cost", "winner",
                           "spot evictions"});
  repl.set_right_aligned(2);
  for (const double bid_fraction : {0.28, 1.00}) {
    const cloud::SpotMarket market(type, /*seed=*/42);
    cloud::SpotRunPolicy policy;
    policy.bid_per_hour = bid_fraction * type.cost_per_hour;
    policy.checkpoint_interval_seconds = 900.0;
    policy.instances = kFleet;
    const auto report = cloud::run_replicated(
        market, app->workload_class(), demand, policy,
        /*on_demand_instances=*/2, horizon);
    repl.add_row({util::format_fixed(policy.bid_per_hour, 3),
                  util::format_duration(report.seconds),
                  util::format_money(report.cost),
                  report.spot_won ? "spot" : "on-demand",
                  std::to_string(report.spot_evictions)});
  }
  repl.print(std::cout);

  std::cout
      << "\nreading: generous bids on a calm market run ~"
      << util::format_percent(1.0 - 0.30) << " cheaper than on-demand, but"
      << "\nlow bids suffer evictions — without checkpoints the lost work"
      << "\nsnowballs and the deadline becomes impossible to guarantee,"
      << "\nwhich is exactly why the paper restricts CELIA to on-demand"
      << "\nresources (and why Marathe/Gong add checkpoints/replication).\n";
  return 0;
}
