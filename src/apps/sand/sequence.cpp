#include "apps/sand/sequence.hpp"

namespace celia::apps::sand {

Sequence make_sequence(std::size_t length, util::Xoshiro256& rng) {
  Sequence read(length);
  for (auto& base : read)
    base = static_cast<std::uint8_t>(rng.bounded(4));
  return read;
}

std::uint64_t kmer_scan(const Sequence& read, hw::PerfCounter& counter) {
  std::uint64_t hash = 0;
  for (const std::uint8_t base : read) {
    hash = (hash << 2) | base;   // extend the rolling 8-mer
    hash &= (1ULL << 16) - 1;    // keep k = 8 bases (16 bits)
  }
  counter.add(hw::OpClass::kLoadStore, read.size());
  counter.add(hw::OpClass::kIntArith, 2 * read.size());
  return hash;
}

hw::PerfCounter kmer_scan_ops(std::uint64_t length) {
  hw::PerfCounter ops;
  ops.add(hw::OpClass::kLoadStore, length);
  ops.add(hw::OpClass::kIntArith, 2 * length);
  return ops;
}

}  // namespace celia::apps::sand
