#include "parallel/parallel_for.hpp"

#include <algorithm>

namespace celia::parallel {

std::vector<BlockedRange> split_range(std::uint64_t begin, std::uint64_t end,
                                      std::size_t parts) {
  std::vector<BlockedRange> ranges;
  if (begin >= end || parts == 0) return ranges;
  const std::uint64_t total = end - begin;
  const std::uint64_t count = std::min<std::uint64_t>(parts, total);
  const std::uint64_t base = total / count;
  const std::uint64_t extra = total % count;
  std::uint64_t cursor = begin;
  for (std::uint64_t p = 0; p < count; ++p) {
    const std::uint64_t len = base + (p < extra ? 1 : 0);
    ranges.push_back({cursor, cursor + len});
    cursor += len;
  }
  return ranges;
}

void parallel_for_blocked(std::uint64_t begin, std::uint64_t end,
                          const std::function<void(BlockedRange)>& body,
                          ForOptions options) {
  if (begin >= end) return;
  ThreadPool& pool = options.pool ? *options.pool : default_pool();

  if (options.schedule == Schedule::kStatic) {
    const auto ranges = split_range(begin, end, pool.num_threads());
    std::vector<std::future<void>> futures;
    futures.reserve(ranges.size());
    for (const auto range : ranges)
      futures.push_back(pool.submit([range, &body] { body(range); }));
    for (auto& f : futures) f.get();
    return;
  }

  // Dynamic schedule: workers claim chunks from a shared atomic cursor.
  std::uint64_t chunk = options.chunk;
  if (chunk == 0) {
    const std::uint64_t total = end - begin;
    chunk = std::max<std::uint64_t>(
        1, total / (8 * std::max<std::size_t>(1, pool.num_threads())));
  }
  auto cursor = std::make_shared<std::atomic<std::uint64_t>>(begin);
  std::vector<std::future<void>> futures;
  futures.reserve(pool.num_threads());
  for (std::size_t t = 0; t < pool.num_threads(); ++t) {
    futures.push_back(pool.submit([cursor, begin, end, chunk, &body] {
      (void)begin;
      for (;;) {
        const std::uint64_t start =
            cursor->fetch_add(chunk, std::memory_order_relaxed);
        if (start >= end) return;
        body({start, std::min(start + chunk, end)});
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace celia::parallel
