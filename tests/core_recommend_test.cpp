// Tests for frontier-point selection (core/recommend.hpp).

#include <gtest/gtest.h>

#include "core/recommend.hpp"

namespace {

using namespace celia::core;

// A convex staircase frontier with an obvious knee at (10, 20):
// times 100 -> 10 cheaply, then tiny gains get expensive.
std::vector<CostTimePoint> knee_frontier() {
  return {
      {0, 100.0, 10.0},  // cheapest
      {1, 50.0, 12.0},
      {2, 20.0, 15.0},
      {3, 10.0, 20.0},   // the knee
      {4, 8.0, 60.0},
      {5, 7.0, 100.0},   // fastest
  };
}

TEST(Recommend, CheapestPicksMinCost) {
  const auto pick =
      pick_from_frontier(knee_frontier(), PickStrategy::kCheapest);
  EXPECT_EQ(pick.config_index, 0u);
}

TEST(Recommend, FastestPicksMinTime) {
  const auto pick =
      pick_from_frontier(knee_frontier(), PickStrategy::kFastest);
  EXPECT_EQ(pick.config_index, 5u);
}

TEST(Recommend, KneeFindsTheElbow) {
  const auto pick = pick_from_frontier(knee_frontier(), PickStrategy::kKnee);
  EXPECT_EQ(pick.config_index, 3u);
}

TEST(Recommend, BalancedPrefersUtopiaNeighborhood) {
  const auto pick =
      pick_from_frontier(knee_frontier(), PickStrategy::kBalanced);
  // Near-utopia points are 2 or 3; definitely not the extremes.
  EXPECT_NE(pick.config_index, 0u);
  EXPECT_NE(pick.config_index, 5u);
}

TEST(Recommend, SinglePointFrontierAlwaysReturnsIt) {
  const std::vector<CostTimePoint> one = {{7, 3.0, 4.0}};
  for (const auto strategy :
       {PickStrategy::kCheapest, PickStrategy::kFastest,
        PickStrategy::kBalanced, PickStrategy::kKnee}) {
    EXPECT_EQ(pick_from_frontier(one, strategy).config_index, 7u);
  }
}

TEST(Recommend, TwoPointFrontierKneeFallsBackToBalanced) {
  const std::vector<CostTimePoint> two = {{0, 10.0, 1.0}, {1, 1.0, 10.0}};
  const auto knee = pick_from_frontier(two, PickStrategy::kKnee);
  const auto balanced = pick_from_frontier(two, PickStrategy::kBalanced);
  EXPECT_EQ(knee.config_index, balanced.config_index);
}

TEST(Recommend, EmptyFrontierThrows) {
  EXPECT_THROW(pick_from_frontier({}, PickStrategy::kKnee),
               std::invalid_argument);
}

TEST(Recommend, OrderInvariant) {
  auto frontier = knee_frontier();
  std::reverse(frontier.begin(), frontier.end());
  EXPECT_EQ(pick_from_frontier(frontier, PickStrategy::kKnee).config_index,
            3u);
  EXPECT_EQ(
      pick_from_frontier(frontier, PickStrategy::kCheapest).config_index,
      0u);
}

TEST(Recommend, StrategyNames) {
  EXPECT_EQ(pick_strategy_name(PickStrategy::kCheapest), "cheapest");
  EXPECT_EQ(pick_strategy_name(PickStrategy::kFastest), "fastest");
  EXPECT_EQ(pick_strategy_name(PickStrategy::kBalanced), "balanced");
  EXPECT_EQ(pick_strategy_name(PickStrategy::kKnee), "knee");
}

TEST(Recommend, PicksAreAlwaysFrontierMembers) {
  const auto frontier = knee_frontier();
  for (const auto strategy :
       {PickStrategy::kCheapest, PickStrategy::kFastest,
        PickStrategy::kBalanced, PickStrategy::kKnee}) {
    const auto pick = pick_from_frontier(frontier, strategy);
    bool member = false;
    for (const auto& point : frontier)
      if (point == pick) member = true;
    EXPECT_TRUE(member) << pick_strategy_name(strategy);
  }
}

}  // namespace
