// Example: trading result accuracy for cost in genome assembly (the sand
// scenario — the paper's application-elasticity pitch).
//
// A lab has a fixed budget and deadline for assembling a large read set.
// Because sand's demand grows only logarithmically with the quality
// threshold t, accuracy is cheap at the top of the range: this example
// finds the highest affordable t, prints the whole accuracy-cost ladder,
// and compares full vs per-category characterization on the final plan.

#include <iostream>
#include <optional>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  constexpr double kReads = 1024e6;   // 1024 million candidate sequences
  constexpr double kDeadline = 24.0;  // hours
  constexpr double kBudget = 16.0;    // dollars

  cloud::CloudProvider provider(2017);
  const auto app = apps::make_sand();
  const core::Celia celia = core::Celia::build(*app, provider);

  std::cout << "sand: " << util::format_si(kReads, 0)
            << " reads, deadline " << kDeadline << " h, budget "
            << util::format_money(kBudget) << "\n\n";

  // The ladder fires a dozen queries at one fixed model: build the shared
  // frontier index once and answer them all from it.
  core::SweepOptions fast;
  fast.index_policy = core::IndexPolicy::Shared();

  // 1. The accuracy-cost ladder: min cost per quality threshold.
  const double thresholds[] = {0.01, 0.02, 0.04, 0.08, 0.16,
                               0.32, 0.64, 0.8, 1.0};
  util::TablePrinter ladder(
      {"quality t", "min cost", "within budget?", "configuration"});
  ladder.set_right_aligned(1);
  double best_t = 0.0;
  std::optional<core::CostTimePoint> best_plan;
  for (const double t : thresholds) {
    const auto best =
        celia.min_cost_configuration({kReads, t}, kDeadline, fast);
    const bool affordable = best && best->cost <= kBudget;
    if (affordable && t > best_t) {
      best_t = t;
      best_plan = best;
    }
    ladder.add_row(
        {util::format_fixed(t, 2),
         best ? util::format_money(best->cost) : "infeasible",
         affordable ? "yes" : "no",
         best ? core::to_string(celia.space().decode(best->config_index))
              : "-"});
  }
  ladder.print(std::cout);

  if (!best_plan) {
    std::cout << "\nno quality level fits the budget — relax a constraint.\n";
    return 0;
  }
  std::cout << "\nhighest affordable quality: t = " << best_t << " at "
            << util::format_money(best_plan->cost) << " ("
            << util::format_duration(best_plan->seconds) << ")\n";

  // 2. The elasticity headline: the last 1.6x of accuracy is cheap.
  const auto at_064 =
      celia.min_cost_configuration({kReads, 0.64}, kDeadline, fast);
  const auto at_100 =
      celia.min_cost_configuration({kReads, 1.0}, kDeadline, fast);
  if (at_064 && at_100) {
    std::cout << "accuracy 0.64 -> 1.0 (1.6x better results) costs only +"
              << util::format_percent(at_100->cost / at_064->cost - 1.0)
              << " (paper: ~+20%)\n";
  }

  // 3. Would the cheaper per-category characterization (paper §IV-C) have
  //    chosen a different plan?
  cloud::CloudProvider provider2(2017);
  const core::Celia celia_cat = core::Celia::build(
      *app, provider2, core::CharacterizationMode::kPerCategory);
  const auto plan_cat =
      celia_cat.min_cost_configuration({kReads, best_t}, kDeadline);
  std::cout << "\ncharacterization check (t = " << best_t << "):\n"
            << "  full measurement : "
            << core::to_string(celia.space().decode(best_plan->config_index))
            << " at " << util::format_money(best_plan->cost) << "\n"
            << "  per-category     : "
            << (plan_cat ? core::to_string(celia_cat.space().decode(
                               plan_cat->config_index)) +
                               " at " + util::format_money(plan_cat->cost)
                         : "infeasible")
            << "\n";
  return 0;
}
