#pragma once
// x264-like video encoding kernel.
//
// Models the computational core of encoding one video clip: per 8x8 block,
// a SAD motion search against the co-located reference block of the
// previous frame (16 candidate offsets), a 2-D DCT of the residual,
// quantization, zigzag + run-length entropy pass, and a rate-distortion
// refinement whose effort grows quadratically with the compression factor
// f (trellis-like search over an f x f candidate grid). This reproduces
// the paper's Fig. 2 demand shape for x264: linear in the number of clips
// n, quadratic in f.
//
// Every kernel *actually computes* on synthetic pixel data and reports its
// operations to a hw::PerfCounter; `block_ops()` is the closed-form ledger
// of the same loop structure (tests assert exact agreement).

#include <array>
#include <cstdint>

#include "hw/perf_counter.hpp"
#include "util/rng.hpp"

namespace celia::apps::x264 {

/// Dimensions of the modeled clip. The "full" model is calibrated so one
/// 75 MB clip costs ~50 G instructions at f=10 (paper Table IV scale);
/// the "mini" model keeps instrumented runs fast in tests.
struct ClipModel {
  int width = 320;       // pixels, multiple of 8
  int height = 240;      // pixels, multiple of 8
  int frames = 3400;     // frames per 75 MB clip

  static ClipModel full() { return {320, 240, 3400}; }
  static ClipModel mini() { return {64, 64, 2}; }

  int blocks_per_frame() const { return (width / 8) * (height / 8); }
  std::uint64_t blocks_per_clip() const {
    return static_cast<std::uint64_t>(blocks_per_frame()) * frames;
  }
};

/// One 8x8 pixel block in natural (row-major) order.
using Block = std::array<double, 64>;

/// Fill `block` with synthetic luma data (deterministic per rng state).
Block make_block(util::Xoshiro256& rng);

/// 1-D 8-point DCT-II of `input` into `output` (naive O(8^2) form, the
/// instruction count the closed form assumes).
void dct8(const double* input, double* output, hw::PerfCounter& counter);

/// Candidate motion-vector offsets evaluated per block.
inline constexpr int kMotionCandidates = 16;

/// SAD motion search: evaluates kMotionCandidates cyclic shifts of
/// `reference` against `block`; returns the index of the best candidate.
int motion_search(const Block& block, const Block& reference,
                  hw::PerfCounter& counter);

/// Full per-block encode at compression factor f, predicting from
/// `reference` (the co-located block of the previous frame); returns a
/// checksum of the produced coefficients so the computation cannot be
/// optimized away.
double encode_block(const Block& block, const Block& reference, int f,
                    hw::PerfCounter& counter);

/// Encode one whole clip (all frames/blocks of `model`); returns a checksum.
double encode_clip(const ClipModel& model, int f, std::uint64_t seed,
                   hw::PerfCounter& counter);

/// Closed-form per-block operation counts at compression factor f.
hw::PerfCounter block_ops(int f);

/// Closed-form per-clip operation counts (blocks + per-frame/clip overhead).
hw::PerfCounter clip_ops(const ClipModel& model, int f);

/// Per-frame and per-clip bookkeeping overhead (muxing, headers) charged to
/// OpClass::kOther; also part of the closed form.
inline constexpr std::uint64_t kPerFrameOverheadOps = 100;
inline constexpr std::uint64_t kPerClipOverheadOps = 10000;

}  // namespace celia::apps::x264
