#include "cloud/provider.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace celia::cloud {

namespace {

/// One node's boot chain: retry failed attempts with backoff until an
/// attempt succeeds or the budget is exhausted. Each attempt consumes a
/// fresh instance id (a replacement VM), so the fault draws of later
/// attempts are independent of earlier ones. `jitter_stream` overrides the
/// legacy per-id jitter seed (provision_replacement's independent stream);
/// nullopt keeps the historical derivation bit-identical.
Instance boot_one(std::uint64_t provider_seed, std::uint64_t& next_id,
                  const Catalog& catalog, std::size_t type_index,
                  const FaultModel& faults,
                  const util::BackoffPolicy& backoff, double& ready_at,
                  ProvisioningReport& report,
                  std::optional<std::uint64_t> jitter_stream = std::nullopt) {
  static obs::Counter& retry_count =
      obs::counter("celia_provision_retries_total",
                   "Instance boot attempts retried after a failure");
  static obs::Counter& boot_failure_count = obs::counter(
      "celia_provision_boot_failures_total", "Instance boot attempt failures");
  static obs::Histogram& backoff_seconds = obs::histogram(
      "celia_provision_backoff_seconds", {},
      "Simulated backoff delay before each boot retry");
  double clock = 0.0;
  for (int attempt = 0; attempt < backoff.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++report.retries;
      retry_count.add(1);
      const double delay = util::backoff_delay(
          backoff, attempt,
          jitter_stream ? *jitter_stream : (provider_seed ^ next_id));
      backoff_seconds.record(delay);
      report.retry_delays.push_back(delay);
      clock += delay;
    }
    const std::uint64_t id = next_id++;
    if (boot_attempt_fails(faults, provider_seed, id, attempt)) {
      ++report.boot_failures;
      boot_failure_count.add(1);
      clock += faults.boot_timeout_seconds;
      report.wasted_boot_seconds += faults.boot_timeout_seconds;
      continue;
    }
    const InstanceFaultProfile profile =
        fault_profile(faults, provider_seed, id);
    Instance instance;
    instance.type_index = type_index;
    instance.instance_id = id;
    instance.catalog = &catalog;
    // Gray degradation folds into the delivered rate; the fault seed for
    // crash times stays keyed on instance_id, so the schedule replays.
    instance.speed_factor =
        instance_speed_factor(provider_seed, id) * profile.slowdown;
    ready_at = clock + profile.boot_seconds;
    return instance;
  }
  throw ProvisioningError(
      "provision: type " + catalog.type(type_index).name +
      " failed to boot after " + std::to_string(backoff.max_attempts) +
      " attempts");
}

void validate_counts(const Catalog& catalog,
                     const std::vector<int>& node_counts) {
  if (node_counts.size() != catalog.size())
    throw std::invalid_argument(
        "provision: counts must match catalog size");
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (node_counts[i] < 0 || node_counts[i] > catalog.limit(i))
      throw std::invalid_argument(
          "provision: node count outside [0, " +
          std::to_string(catalog.limit(i)) + "] for " +
          catalog.type(i).name);
  }
}

}  // namespace

CloudProvider::CloudProvider(std::uint64_t seed,
                             std::shared_ptr<const Catalog> catalog)
    : seed_(seed), catalog_(std::move(catalog)) {
  if (!catalog_)
    throw std::invalid_argument("CloudProvider: null catalog");
}

std::vector<Instance> CloudProvider::provision(
    const std::vector<int>& node_counts) {
  validate_counts(*catalog_, node_counts);

  std::vector<Instance> instances;
  for (std::size_t i = 0; i < catalog_->size(); ++i) {
    for (int k = 0; k < node_counts[i]; ++k) {
      Instance instance;
      instance.type_index = i;
      instance.instance_id = next_instance_id_++;
      instance.catalog = catalog_.get();
      instance.speed_factor =
          instance_speed_factor(seed_, instance.instance_id);
      instances.push_back(instance);
    }
  }
  if (instances.empty())
    throw std::invalid_argument("provision: empty configuration");
  return instances;
}

ProvisionResult CloudProvider::provision_with_faults(
    const std::vector<int>& node_counts, const FaultModel& faults,
    const util::BackoffPolicy& backoff) {
  validate_counts(*catalog_, node_counts);
  validate(faults);

  ProvisionResult result;
  for (std::size_t i = 0; i < catalog_->size(); ++i) {
    for (int k = 0; k < node_counts[i]; ++k) {
      ++result.report.requested;
      double ready_at = 0.0;
      result.instances.push_back(boot_one(seed_, next_instance_id_,
                                          *catalog_, i, faults, backoff,
                                          ready_at, result.report));
      result.ready_seconds.push_back(ready_at);
      result.report.ready_seconds =
          std::max(result.report.ready_seconds, ready_at);
    }
  }
  if (result.instances.empty())
    throw std::invalid_argument("provision: empty configuration");
  result.report.provisioned = static_cast<int>(result.instances.size());
  return result;
}

std::uint64_t CloudProvider::replacement_jitter_seed(
    std::uint64_t provider_seed, std::uint64_t sequence) {
  // SplitMix64 over (seed, sequence): adjacent replacement calls land in
  // unrelated jitter streams, unlike the legacy provider_seed ^ next_id
  // derivation whose consecutive ids differ only in low bits — a burst of
  // replacements after one correlated outage would retry nearly in phase.
  util::SplitMix64 mix(provider_seed ^
                       (sequence + 1) * 0xbf58476d1ce4e5b9ULL);
  return mix.next();
}

ProvisionResult CloudProvider::provision_replacement(
    std::size_t type_index, const FaultModel& faults,
    const util::BackoffPolicy& backoff) {
  if (type_index >= catalog_->size())
    throw std::out_of_range("provision_replacement: bad type index");
  validate(faults);
  ProvisionResult result;
  result.report.requested = 1;
  double ready_at = 0.0;
  const std::uint64_t jitter =
      replacement_jitter_seed(seed_, replacement_sequence_++);
  result.instances.push_back(boot_one(seed_, next_instance_id_, *catalog_,
                                      type_index, faults, backoff, ready_at,
                                      result.report, jitter));
  result.ready_seconds.push_back(ready_at);
  result.report.ready_seconds = ready_at;
  result.report.provisioned = 1;
  return result;
}

ProvisionOutcome CloudProvider::provision_resilient(
    const std::vector<int>& node_counts,
    const ResilientProvisionOptions& options) {
  return provision_resilient_on(*catalog_, node_counts, options);
}

ProvisionOutcome CloudProvider::provision_resilient_on(
    const Catalog& catalog, const std::vector<int>& node_counts,
    const ResilientProvisionOptions& options) {
  validate_counts(catalog, node_counts);
  validate(options.faults);
  validate(options.api_faults, &catalog);
  util::validate(options.backoff);

  static obs::Counter& api_calls = obs::counter(
      "celia_provider_api_calls_total", "Provider control-plane API calls");
  static obs::Counter& api_throttled_count =
      obs::counter("celia_provider_api_throttled_total",
                   "API calls rejected with RequestLimitExceeded");
  static obs::Counter& api_transient_count =
      obs::counter("celia_provider_api_transient_errors_total",
                   "API calls failed with a transient ServiceUnavailable");
  static obs::Counter& api_capacity_count =
      obs::counter("celia_provider_api_capacity_rejections_total",
                   "API calls rejected with InsufficientCapacity");
  static obs::Counter& api_brownout_count =
      obs::counter("celia_provider_api_brownout_rejections_total",
                   "API calls failed inside a regional brownout");
  static obs::Counter& breaker_rejected_count =
      obs::counter("celia_provider_breaker_rejections_total",
                   "API calls vetoed locally by an open circuit breaker");
  static obs::Counter& retry_budget_veto_count =
      obs::counter("celia_provider_retry_budget_vetoes_total",
                   "Provisioning re-attempts refused by the RetryBudget");

  ProvisionOutcome outcome;
  outcome.acquired.assign(catalog.size(), 0);
  outcome.shortfall.assign(catalog.size(), 0);
  outcome.observed_limits.assign(catalog.limits().begin(),
                                 catalog.limits().end());
  double clock = options.start_seconds;

  for (std::size_t i = 0; i < catalog.size(); ++i) {
    bool type_exhausted = false;  // InsufficientCapacity: stop asking
    for (int k = 0; k < node_counts[i]; ++k) {
      ++outcome.report.requested;
      if (type_exhausted || outcome.deadline_exhausted) {
        ++outcome.shortfall[i];
        continue;
      }
      bool admitted = false;
      if (options.retry_budget) options.retry_budget->deposit(clock);
      for (int attempt = 0; attempt < options.backoff.max_attempts;
           ++attempt) {
        if (attempt > 0) {
          // Every re-attempt must first withdraw from the retry budget:
          // under a long brownout the budget dries up and the chain ends
          // here instead of amplifying the outage by max_attempts.
          if (options.retry_budget &&
              !options.retry_budget->try_withdraw(clock)) {
            ++outcome.api.retry_budget_vetoes;
            retry_budget_veto_count.add(1);
            break;
          }
          // Control-plane backoff draws from the API seed + call ordinal —
          // a stream disjoint from every data-plane jitter stream.
          const double delay = util::backoff_delay(
              options.backoff, attempt,
              options.api_faults.seed ^
                  (api_requests_ * 0xbf58476d1ce4e5b9ULL));
          const auto clamped = options.deadline.clamp_delay(clock, delay);
          if (!clamped) {
            outcome.deadline_exhausted = true;
            break;
          }
          clock += *clamped;
          outcome.api.backoff_seconds += *clamped;
        }
        if (options.deadline.expired(clock)) {
          outcome.deadline_exhausted = true;
          break;
        }
        if (options.breaker && !options.breaker->allow(clock)) {
          ++outcome.api.breaker_rejections;
          breaker_rejected_count.add(1);
          continue;  // fast local veto: no API call, back off and re-probe
        }
        if (options.rate_limiter) {
          const double at = options.rate_limiter->acquire(clock);
          outcome.api.rate_limited_seconds += at - clock;
          clock = at;
          if (options.deadline.expired(clock)) {
            outcome.deadline_exhausted = true;
            break;
          }
        }
        const std::uint64_t ordinal = api_requests_++;
        ++outcome.api.calls;
        api_calls.add(1);
        if (in_brownout(options.api_faults, clock)) {
          ++outcome.api.brownout_rejections;
          api_brownout_count.add(1);
          outcome.errors.push_back({ApiErrorKind::kRegionalBrownout,
                                    "RunInstances: region " +
                                        catalog.region() + " unavailable",
                                    clock});
          if (options.breaker) options.breaker->record_failure(clock);
          continue;
        }
        if (api_throttled(options.api_faults, ordinal)) {
          ++outcome.api.throttled;
          api_throttled_count.add(1);
          outcome.errors.push_back(
              {ApiErrorKind::kRequestLimitExceeded,
               "RunInstances: request rate limit exceeded", clock});
          // Client-side pressure, not endpoint health: no breaker failure.
          continue;
        }
        if (api_transient_error(options.api_faults, ordinal)) {
          ++outcome.api.transient_errors;
          api_transient_count.add(1);
          outcome.errors.push_back({ApiErrorKind::kServiceUnavailable,
                                    "RunInstances: service unavailable",
                                    clock});
          if (options.breaker) options.breaker->record_failure(clock);
          continue;
        }
        // The endpoint answered sanely — healthy as far as the breaker is
        // concerned, even if the answer is a capacity rejection.
        if (options.breaker) options.breaker->record_success(clock);
        const int limit_now = effective_limit(options.api_faults, i, clock,
                                              catalog.limit(i));
        if (outcome.acquired[i] >= limit_now) {
          ++outcome.api.capacity_rejections;
          api_capacity_count.add(1);
          outcome.errors.push_back({ApiErrorKind::kInsufficientCapacity,
                                    "RunInstances: insufficient capacity "
                                    "for " +
                                        catalog.type(i).name,
                                    clock});
          outcome.observed_limits[i] = outcome.acquired[i];
          type_exhausted = true;  // retrying is futile while the pool drains
          break;
        }
        admitted = true;
        break;
      }
      if (!admitted) {
        ++outcome.shortfall[i];
        continue;
      }
      ++outcome.acquired[i];
      double ready_at = 0.0;
      outcome.instances.push_back(boot_one(seed_, next_instance_id_, catalog,
                                           i, options.faults, options.backoff,
                                           ready_at, outcome.report));
      const double ready = (clock - options.start_seconds) + ready_at;
      outcome.ready_seconds.push_back(ready);
      outcome.report.ready_seconds =
          std::max(outcome.report.ready_seconds, ready);
    }
  }
  if (outcome.report.requested == 0)
    throw std::invalid_argument("provision: empty configuration");
  outcome.report.provisioned = static_cast<int>(outcome.instances.size());
  outcome.finished_at = clock;
  outcome.complete =
      !outcome.deadline_exhausted &&
      std::all_of(outcome.shortfall.begin(), outcome.shortfall.end(),
                  [](int missing) { return missing == 0; });
  return outcome;
}

OrchestrationResult CloudProvider::provision_orchestrated(
    const std::vector<int>& node_counts,
    const ResilientProvisionOptions& options, const ReplanFn& replan,
    int max_replans) {
  if (!replan)
    throw std::invalid_argument(
        "provision_orchestrated: null replan callback");
  if (max_replans < 0)
    throw std::invalid_argument(
        "provision_orchestrated: max_replans must be >= 0");
  static obs::Counter& replan_count =
      obs::counter("celia_provider_replans_total",
                   "Capacity-driven shrink-and-re-plan provisioning rounds");

  OrchestrationResult result;
  result.requested = node_counts;
  result.final_catalog = catalog_;
  std::vector<int> counts = node_counts;
  ResilientProvisionOptions round_options = options;
  for (;;) {
    ProvisionOutcome outcome =
        provision_resilient_on(*result.final_catalog, counts, round_options);
    result.errors.insert(result.errors.end(), outcome.errors.begin(),
                         outcome.errors.end());
    const bool capacity_limited = outcome.api.capacity_rejections > 0;
    if (outcome.complete || !capacity_limited ||
        result.replans >= max_replans) {
      result.final_node_counts = std::move(counts);
      result.outcome = std::move(outcome);
      return result;
    }
    // A type's pool drained mid-round: the partial set no longer matches
    // any plan, so hand it back, shrink the catalog to what the provider
    // demonstrably honors, and let the planner pick the best configuration
    // of THAT space.
    result.released_instances += static_cast<int>(outcome.instances.size());
    ++result.replans;
    replan_count.add(1);
    result.final_catalog =
        std::make_shared<const Catalog>(result.final_catalog->with_limits(
            result.final_catalog->name() + "#degraded" +
                std::to_string(result.replans),
            result.final_catalog->region(), outcome.observed_limits));
    counts = replan(*result.final_catalog);
    round_options.start_seconds = outcome.finished_at;  // clock carries over
  }
}

double CloudProvider::run_benchmark(std::size_t type_index,
                                    double instructions,
                                    hw::WorkloadClass workload) {
  if (type_index >= catalog_->size())
    throw std::out_of_range("run_benchmark: bad type index");
  if (instructions <= 0)
    throw std::invalid_argument("run_benchmark: non-positive demand");

  Instance instance;
  instance.type_index = type_index;
  instance.instance_id = next_instance_id_++;
  instance.catalog = catalog_.get();
  instance.speed_factor = instance_speed_factor(seed_, instance.instance_id);
  return instructions / instance.actual_rate(workload);
}

}  // namespace celia::cloud
