// Reproduces paper Figure 4: the cloud resource configuration space for a
// 24-hour deadline and $350 budget — the scatter of feasible
// configurations in the cost-time plane and the Pareto frontier, for
// galaxy(65536, 8000) and sand(8192M, 0.32).
//
// Paper reference: ~5.8 M feasible configurations and 23 Pareto-optimal
// ones spanning $126-$167 for galaxy; ~2 M feasible and 58 Pareto-optimal
// spanning $180-$210 for sand; frontier cost span ~1.3x (galaxy) and
// ~1.2x (sand); up to 30% saving from picking the right frontier point
// (Observation 1).

#include <iostream>

#include "apps/registry.hpp"
#include "bench_io.hpp"
#include "cloud/provider.hpp"
#include "core/analysis.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace celia;

benchio::CsvSink& csv() {
  static benchio::CsvSink sink("fig4_config_space");
  static bool initialized = false;
  if (!initialized) {
    sink.header({"case", "kind", "config_index", "time_hours",
                 "cost_dollars"});
    initialized = true;
  }
  return sink;
}

void run_case(const apps::ElasticApp& app, const apps::AppParams& params,
              const char* label) {
  cloud::CloudProvider provider(2017);
  const core::Celia celia = core::Celia::build(app, provider);

  core::SweepOptions options;
  options.sample_stride = 2000;  // scatter sampling for the chart
  util::Stopwatch watch;
  const core::SweepResult result = celia.select(params, 24.0, 350.0, options);
  const double sweep_seconds = watch.elapsed_seconds();

  std::cout << "--- " << label << ", T' = 24 h, C' = $350 ---\n"
            << "configurations evaluated : "
            << util::format_with_commas(result.total) << " (paper: 10,077,695)\n"
            << "feasible configurations  : "
            << util::format_with_commas(result.feasible) << "\n"
            << "Pareto-optimal           : " << result.pareto.size() << "\n"
            << "sweep wall-clock         : "
            << util::format_fixed(sweep_seconds, 2) << " s\n";

  util::AsciiChart chart(std::string("feasible configurations: ") + label,
                         "cost ($)", "time (h)");
  util::Series scatter{"sampled feasible", {}, {}};
  for (const auto& point : result.feasible_points) {
    scatter.xs.push_back(point.cost);
    scatter.ys.push_back(point.seconds / 3600.0);
  }
  util::Series frontier{"Pareto frontier", {}, {}};
  for (const auto& point : result.pareto) {
    frontier.xs.push_back(point.cost);
    frontier.ys.push_back(point.seconds / 3600.0);
    csv().row({label, "pareto", std::to_string(point.config_index),
               util::format_fixed(point.seconds / 3600.0, 4),
               util::format_fixed(point.cost, 4)});
  }
  for (const auto& point : result.feasible_points) {
    csv().row({label, "sampled", std::to_string(point.config_index),
               util::format_fixed(point.seconds / 3600.0, 4),
               util::format_fixed(point.cost, 4)});
  }
  chart.add_series(std::move(scatter));
  chart.add_series(std::move(frontier));
  chart.print(std::cout);

  const core::ParetoSpan span = core::pareto_span(result.pareto);
  std::cout << "frontier cost range      : " << util::format_money(span.min_cost)
            << " - " << util::format_money(span.max_cost) << "\n"
            << "frontier cost span ratio : "
            << util::format_fixed(span.span_ratio, 2) << "x\n"
            << "Observation 1 saving     : "
            << util::format_percent(span.saving_fraction)
            << " (paper: up to 30% for galaxy)\n";

  util::TablePrinter head({"Configuration", "time (h)", "cost ($)"});
  head.set_right_aligned(1);
  head.set_right_aligned(2);
  const std::size_t show = std::min<std::size_t>(8, result.pareto.size());
  for (std::size_t i = 0; i < show; ++i) {
    const auto& p = result.pareto[i];
    head.add_row({core::to_string(celia.space().decode(p.config_index)),
                  util::format_fixed(p.seconds / 3600.0, 1),
                  util::format_fixed(p.cost, 0)});
  }
  std::cout << "cheapest " << show << " frontier points:\n";
  head.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure 4: Cloud Resource Configuration Space ===\n\n";
  run_case(*apps::make_galaxy(), {65536, 8000}, "galaxy(65536, 8000)");
  run_case(*apps::make_sand(), {8192e6, 0.32}, "sand(8192M, 0.32)");
  csv().announce();
  return 0;
}
