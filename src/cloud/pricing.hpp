#pragma once
// Billing policies. The paper's cost model (Eq. 5) is continuous
// (C = T x hourly rate); real EC2 billed per full hour in 2017 and per
// second today. All three are available so the billing-granularity
// ablation can quantify the difference.

#include <string_view>
#include <vector>

#include "cloud/catalog.hpp"
#include "cloud/instance_type.hpp"

namespace celia::cloud {

enum class BillingPolicy {
  kContinuous,  // paper Eq. 5: cost accrues fractionally
  kPerSecond,   // rounded up to whole seconds (modern EC2)
  kPerHour,     // rounded up to whole hours (EC2 as of the paper)
};

std::string_view billing_policy_name(BillingPolicy policy);

/// Cost of running one instance of `type` for `seconds`.
double instance_cost(const InstanceType& type, double seconds,
                     BillingPolicy policy = BillingPolicy::kContinuous);

/// Hourly cost of a configuration given per-type node counts aligned with
/// `catalog.types()` (paper Eq. 6).
double configuration_hourly_cost(const std::vector<int>& node_counts,
                                 const Catalog& catalog);
/// Convenience overload pricing with the paper's Table III catalog.
double configuration_hourly_cost(const std::vector<int>& node_counts);

/// Cost of running a whole configuration for `seconds`.
double configuration_cost(const std::vector<int>& node_counts, double seconds,
                          const Catalog& catalog,
                          BillingPolicy policy = BillingPolicy::kContinuous);
/// Convenience overload pricing with the paper's Table III catalog.
double configuration_cost(const std::vector<int>& node_counts, double seconds,
                          BillingPolicy policy = BillingPolicy::kContinuous);

}  // namespace celia::cloud
