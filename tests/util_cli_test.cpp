// Tests for the CLI parser (util/cli.hpp).

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"

namespace {

using celia::util::CliParser;

CliParser make_parser() {
  CliParser parser("prog", "test program");
  parser.add_flag("verbose", "enable verbose output");
  parser.add_option("deadline", "deadline in hours", "24");
  parser.add_option("budget", "budget in dollars", "350.5");
  return parser;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_FALSE(parser.has("verbose"));
  EXPECT_EQ(parser.get_int("deadline"), 24);
  EXPECT_DOUBLE_EQ(parser.get_double("budget"), 350.5);
}

TEST(Cli, EqualsForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--deadline=48"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_EQ(parser.get_int("deadline"), 48);
  EXPECT_TRUE(parser.has("deadline"));
}

TEST(Cli, SpaceForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--budget", "100"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("budget"), 100.0);
}

TEST(Cli, FlagForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.has("verbose"));
}

TEST(Cli, FlagWithValueFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.error().find("verbose"), std::string::npos);
}

TEST(Cli, UnknownOptionFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(Cli, MissingValueFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--deadline"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(Cli, PositionalsCollected) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "galaxy", "--verbose", "sand"};
  ASSERT_TRUE(parser.parse(4, argv));
  ASSERT_EQ(parser.positionals().size(), 2u);
  EXPECT_EQ(parser.positionals()[0], "galaxy");
  EXPECT_EQ(parser.positionals()[1], "sand");
}

TEST(Cli, GetUnregisteredThrows) {
  auto parser = make_parser();
  EXPECT_THROW(parser.get("nope"), std::invalid_argument);
}

TEST(Cli, UsageMentionsAllOptions) {
  auto parser = make_parser();
  std::ostringstream out;
  parser.print_usage(out);
  EXPECT_NE(out.str().find("--verbose"), std::string::npos);
  EXPECT_NE(out.str().find("--deadline"), std::string::npos);
  EXPECT_NE(out.str().find("default: 24"), std::string::npos);
}

}  // namespace
