// Reproduces paper Figure 5 (effect of scaling PROBLEM SIZE on cost) and
// the §IV-E.3 deadline-tightening analysis (Observation 3).
//
// Fixed accuracy, scaled problem size, minimum feasible cost per deadline
// in {6, 12, 24, 48, 72} hours:
//   (a) galaxy, s = 1000, n in {32768 .. 262144} — quadratic cost growth;
//   (b) sand, t = 0.32, n in {1024M .. 8192M}    — linear cost growth.
//
// Paper reference for Observation 3: tightening galaxy(262144, 1000) from
// 72 h to 24 h (deadline -67%) raises cost by only ~40%; tightening
// sand(8192M, 0.32) from 48 h to 24 h (-50%) raises cost by ~25%.

#include <iostream>
#include <vector>

#include "apps/registry.hpp"
#include "bench_io.hpp"
#include "cloud/provider.hpp"
#include "core/analysis.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace celia;

const std::vector<double> kDeadlines = {6, 12, 24, 48, 72};

benchio::CsvSink& csv() {
  static benchio::CsvSink sink("fig5_problem_scaling");
  static bool initialized = false;
  if (!initialized) {
    sink.header({"panel", "n", "deadline_hours", "min_cost_dollars",
                 "feasible", "config_index"});
    initialized = true;
  }
  return sink;
}

void run_panel(const core::Celia& celia, double fixed_accuracy,
               const std::vector<double>& sizes, const char* label,
               double size_print_scale, const char* size_unit) {
  std::cout << "--- " << label << " ---\n";
  util::AsciiChart chart(label, size_unit, "min cost ($)");
  util::TablePrinter table([&] {
    std::vector<std::string> headers = {std::string(size_unit)};
    for (const double d : kDeadlines)
      headers.push_back(util::format_fixed(d, 0) + "hr");
    return headers;
  }());
  for (std::size_t c = 1; c <= kDeadlines.size(); ++c)
    table.set_right_aligned(c);

  std::vector<std::vector<core::ScalingPoint>> curves;
  for (const double deadline : kDeadlines) {
    curves.push_back(
        core::problem_size_scaling(celia, fixed_accuracy, sizes, deadline));
    util::Series series{util::format_fixed(deadline, 0) + "hr", {}, {}};
    for (const auto& point : curves.back()) {
      csv().row({label, util::format_fixed(point.value, 0),
                 util::format_fixed(deadline, 0),
                 util::format_fixed(point.min_cost, 4),
                 point.feasible ? "1" : "0",
                 std::to_string(point.config_index)});
      if (!point.feasible) continue;
      series.xs.push_back(point.value / size_print_scale);
      series.ys.push_back(point.min_cost);
    }
    chart.add_series(std::move(series));
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row = {
        util::format_si(sizes[i] / size_print_scale, 0)};
    for (const auto& curve : curves)
      row.push_back(curve[i].feasible
                        ? util::format_fixed(curve[i].min_cost, 0)
                        : "infeasible");
    table.add_row(std::move(row));
  }
  chart.print(std::cout);
  table.print(std::cout);
  std::cout << "\n";
}

void observation3(const core::Celia& celia, const apps::AppParams& params,
                  double from_hr, double to_hr, const char* label,
                  const char* paper_note) {
  const std::vector<double> deadlines = {from_hr, to_hr};
  const auto curve = core::deadline_tightening(celia, params, deadlines);
  if (!curve[0].feasible || !curve[1].feasible) {
    std::cout << label << ": infeasible at one of the deadlines\n";
    return;
  }
  const double deadline_cut = 1.0 - to_hr / from_hr;
  const double cost_up = curve[1].min_cost / curve[0].min_cost - 1.0;
  std::cout << label << ": " << util::format_fixed(from_hr, 0) << "h ("
            << util::format_money(curve[0].min_cost) << ") -> "
            << util::format_fixed(to_hr, 0) << "h ("
            << util::format_money(curve[1].min_cost) << "): deadline -"
            << util::format_percent(deadline_cut) << ", cost +"
            << util::format_percent(cost_up) << "  [" << paper_note << "]\n";
}

}  // namespace

int main() {
  cloud::CloudProvider provider(2017);
  const core::Celia galaxy =
      core::Celia::build(*apps::make_galaxy(), provider);
  const core::Celia sand = core::Celia::build(*apps::make_sand(), provider);

  std::cout << "=== Figure 5: Effect of Scaling Problem Size on Cost ===\n\n";
  run_panel(galaxy, 1000, {32768, 65536, 131072, 262144},
            "(a) galaxy - n (s = 1000)", 1.0, "n (masses)");
  run_panel(sand, 0.32, {1024e6, 2048e6, 4096e6, 8192e6},
            "(b) sand - n (t = 0.32)", 1e6, "n (millions)");

  std::cout << "=== Observation 3: Cost of Tightening the Time Deadline ===\n";
  observation3(galaxy, {262144, 1000}, 72.0, 24.0, "galaxy(262144, 1000)",
               "paper: -67% deadline for +40% cost");
  observation3(sand, {8192e6, 0.32}, 48.0, 24.0, "sand(8192M, 0.32)",
               "paper: -50% deadline for +25% cost");
  csv().announce();
  return 0;
}
