#include "fit/demand_fit.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace celia::fit {

namespace {

/// Value of the second parameter that has the most samples along the first
/// — the best "slice" for a one-dimensional fit.
double best_reference(std::span<const ProfilePoint> grid,
                      double ProfilePoint::*key) {
  std::map<double, int> counts;
  for (const auto& point : grid) ++counts[point.*key];
  double best = 0.0;
  int best_count = -1;
  for (const auto& [value, count] : counts) {
    if (count > best_count) {
      best = value;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

SeparableDemandModel SeparableDemandModel::fit(
    std::span<const ProfilePoint> grid) {
  if (grid.size() < 7)
    throw std::invalid_argument(
        "SeparableDemandModel: need at least 7 profile points");

  SeparableDemandModel model;
  model.a0_ = best_reference(grid, &ProfilePoint::a);
  model.n0_ = best_reference(grid, &ProfilePoint::n);

  std::vector<Sample> n_slice;   // D(n, a0) vs n
  std::vector<Sample> a_slice;   // D(n0, a) vs a
  double d00 = 0.0;
  int d00_count = 0;
  for (const auto& point : grid) {
    if (point.a == model.a0_) n_slice.push_back({point.n, point.instructions});
    if (point.n == model.n0_) a_slice.push_back({point.a, point.instructions});
    if (point.n == model.n0_ && point.a == model.a0_) {
      d00 += point.instructions;
      ++d00_count;
    }
  }
  if (n_slice.size() < 4 || a_slice.size() < 4)
    throw std::invalid_argument(
        "SeparableDemandModel: need >= 4 samples along each parameter at "
        "the reference slice");
  if (d00_count == 0)
    throw std::invalid_argument(
        "SeparableDemandModel: missing the (n0, a0) reference point");
  d00 /= d00_count;
  if (d00 <= 0)
    throw std::invalid_argument(
        "SeparableDemandModel: non-positive reference demand");

  ShapeDetection n_detect = detect_shape(n_slice);
  ShapeDetection a_detect = detect_shape(a_slice);
  model.n_shape_ = n_detect.shape;
  model.a_shape_ = a_detect.shape;
  model.n_fit_ = std::move(n_detect.fit);
  model.a_fit_ = std::move(a_detect.fit);
  model.d00_ = d00;

  // Goodness of the separable combination over the full grid.
  double y_mean = 0.0;
  for (const auto& point : grid) y_mean += point.instructions;
  y_mean /= static_cast<double>(grid.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (const auto& point : grid) {
    const double r = point.instructions - model.predict(point.n, point.a);
    const double d = point.instructions - y_mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  model.grid_r2_ =
      ss_tot > 0 ? 1.0 - ss_res / ss_tot : (ss_res == 0 ? 1.0 : 0.0);
  return model;
}

SeparableDemandModel SeparableDemandModel::from_parts(
    Shape n_shape, Shape a_shape, FitResult n_fit, FitResult a_fit,
    double n0, double a0, double d00, double grid_r2) {
  if (d00 <= 0)
    throw std::invalid_argument(
        "SeparableDemandModel: non-positive reference demand");
  SeparableDemandModel model;
  model.n_shape_ = n_shape;
  model.a_shape_ = a_shape;
  model.n_fit_ = std::move(n_fit);
  model.a_fit_ = std::move(a_fit);
  model.n0_ = n0;
  model.a0_ = a0;
  model.d00_ = d00;
  model.grid_r2_ = grid_r2;
  return model;
}

double SeparableDemandModel::predict(double n, double a) const {
  const double f = n_fit_.predict(n);
  const double g = a_fit_.predict(a);
  return std::max(0.0, f * g / d00_);
}

}  // namespace celia::fit
