// Tests for execution tracing and the Gantt renderer (cloud/gantt.hpp).

#include <gtest/gtest.h>

#include <numeric>

#include "cloud/cluster_exec.hpp"
#include "cloud/gantt.hpp"
#include "cloud/provider.hpp"

namespace {

using namespace celia::cloud;
using celia::apps::ParallelPattern;
using celia::apps::Workload;
using celia::hw::WorkloadClass;

Workload farm(std::vector<double> tasks) {
  Workload workload;
  workload.workload_class = WorkloadClass::kVideoEncoding;
  workload.pattern = ParallelPattern::kIndependentTasks;
  workload.total_instructions =
      std::accumulate(tasks.begin(), tasks.end(), 0.0);
  workload.task_instructions = std::move(tasks);
  return workload;
}

ExecutionReport traced_run(int tasks, std::uint64_t seed) {
  CloudProvider provider(seed);
  std::vector<int> counts(9, 0);
  counts[0] = 1;  // c4.large: 2 slots
  const auto instances = provider.provision(counts);
  const ClusterExecutor executor;
  ExecutionOptions options;
  options.record_trace = true;
  return executor.execute(farm(std::vector<double>(tasks, 1e10)), instances,
                          counts, options);
}

TEST(Trace, RecordsOneSegmentPerTask) {
  const auto report = traced_run(7, 1);
  EXPECT_EQ(report.trace.size(), 7u);
  EXPECT_EQ(report.slots, 2u);
}

TEST(Trace, SegmentsAreWellFormed) {
  const auto report = traced_run(9, 2);
  for (const auto& segment : report.trace) {
    EXPECT_LT(segment.slot, report.slots);
    EXPECT_LT(segment.task, 9u);
    EXPECT_GE(segment.start_seconds, 0.0);
    EXPECT_GT(segment.end_seconds, segment.start_seconds);
    EXPECT_LE(segment.end_seconds, report.seconds + 1e-9);
  }
}

TEST(Trace, SegmentsOnOneSlotNeverOverlap) {
  const auto report = traced_run(20, 3);
  for (const auto& a : report.trace) {
    for (const auto& b : report.trace) {
      if (&a == &b || a.slot != b.slot) continue;
      const bool disjoint = a.end_seconds <= b.start_seconds + 1e-9 ||
                            b.end_seconds <= a.start_seconds + 1e-9;
      EXPECT_TRUE(disjoint);
    }
  }
}

TEST(Trace, BusyTimeMatchesUtilization) {
  const auto report = traced_run(10, 4);
  double busy = 0.0;
  for (const auto& segment : report.trace)
    busy += segment.end_seconds - segment.start_seconds;
  EXPECT_NEAR(busy / (report.seconds * static_cast<double>(report.slots)),
              report.busy_fraction, 1e-9);
}

TEST(Trace, OffByDefault) {
  CloudProvider provider(5);
  std::vector<int> counts(9, 0);
  counts[0] = 1;
  const auto instances = provider.provision(counts);
  const ClusterExecutor executor;
  const auto report =
      executor.execute(farm({1e10, 1e10}), instances, counts);
  EXPECT_TRUE(report.trace.empty());
}

TEST(Gantt, RendersRowsAndUtilization) {
  const auto report = traced_run(6, 6);
  const std::string out = gantt_to_string(report);
  EXPECT_NE(out.find("slot  0"), std::string::npos);
  EXPECT_NE(out.find("slot  1"), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
  EXPECT_NE(out.find('%'), std::string::npos);
}

TEST(Gantt, HashMarksWhenUnlabeled) {
  const auto report = traced_run(4, 7);
  GanttOptions options;
  options.label_tasks = false;
  const std::string out = gantt_to_string(report, options);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Gantt, SummarizesExtraRows) {
  CloudProvider provider(8);
  std::vector<int> counts(9, 0);
  counts[2] = 2;  // 16 slots
  const auto instances = provider.provision(counts);
  const ClusterExecutor executor;
  ExecutionOptions exec_options;
  exec_options.record_trace = true;
  const auto report = executor.execute(
      farm(std::vector<double>(32, 1e9)), instances, counts, exec_options);
  GanttOptions options;
  options.max_rows = 4;
  const std::string out = gantt_to_string(report, options);
  EXPECT_NE(out.find("12 more slots not shown"), std::string::npos);
}

TEST(Gantt, ThrowsWithoutTrace) {
  ExecutionReport empty;
  empty.seconds = 10;
  empty.slots = 2;
  EXPECT_THROW(gantt_to_string(empty), std::invalid_argument);
}

}  // namespace
