// Tests for the ASCII histogram (util/histogram.hpp).

#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace {

using celia::util::Histogram;

TEST(Histogram, BinsValuesUniformly) {
  Histogram h(0.0, 10.0, 5);
  for (const double v : {0.5, 1.0, 3.0, 5.0, 7.0, 9.0}) h.add(v);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.count(1), 1u);  // 3.0
  EXPECT_EQ(h.count(2), 1u);  // 5.0
  EXPECT_EQ(h.count(3), 1u);  // 7.0
  EXPECT_EQ(h.count(4), 1u);  // 9.0
}

TEST(Histogram, ClampsOutOfRangeValues) {
  Histogram h(0.0, 1.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, AddAllSpan) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> values = {0.5, 1.5, 2.5, 3.5, 3.9};
  h.add_all(values);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(3), 2u);
}

TEST(Histogram, RendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.to_string(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bin
  EXPECT_NE(out.find(" 2\n"), std::string::npos);
  EXPECT_NE(out.find(" 1\n"), std::string::npos);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, EmptyHistogramRenders) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_FALSE(h.to_string().empty());
  EXPECT_EQ(h.total(), 0u);
}

}  // namespace
