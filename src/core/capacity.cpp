#include "core/capacity.hpp"

#include <stdexcept>

#include "cloud/catalog.hpp"
#include "util/stats.hpp"

namespace celia::core {

std::string_view characterization_mode_name(CharacterizationMode mode) {
  switch (mode) {
    case CharacterizationMode::kFullMeasurement:
      return "full-measurement";
    case CharacterizationMode::kPerCategory:
      return "per-category";
    case CharacterizationMode::kSpecFrequency:
      return "spec-frequency";
  }
  return "?";
}

ResourceCapacity::ResourceCapacity(std::vector<double> per_vcpu_rates)
    : ResourceCapacity(std::move(per_vcpu_rates),
                       cloud::Catalog::ec2_table3()) {}

ResourceCapacity::ResourceCapacity(std::vector<double> per_vcpu_rates,
                                   const cloud::Catalog& catalog)
    : per_vcpu_rates_(std::move(per_vcpu_rates)),
      structure_fingerprint_(catalog.structure_fingerprint()) {
  if (per_vcpu_rates_.size() != catalog.size())
    throw std::invalid_argument(
        "ResourceCapacity: need one rate per catalog type");
  for (const double rate : per_vcpu_rates_)
    if (rate <= 0)
      throw std::invalid_argument("ResourceCapacity: non-positive rate");
  vcpus_.reserve(catalog.size());
  hourly_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    vcpus_.push_back(catalog.type(i).vcpus);
    hourly_.push_back(catalog.type(i).cost_per_hour);
  }
}

double ResourceCapacity::per_vcpu_rate(std::size_t type_index) const {
  return per_vcpu_rates_.at(type_index);
}

double ResourceCapacity::rate(std::size_t type_index) const {
  return per_vcpu_rates_.at(type_index) * vcpus_.at(type_index);
}

double ResourceCapacity::normalized_performance(std::size_t type_index) const {
  return rate(type_index) / hourly_.at(type_index);
}

bool ResourceCapacity::compatible_with(const cloud::Catalog& catalog) const {
  return structure_fingerprint_ == catalog.structure_fingerprint();
}

ResourceCapacity ResourceCapacity::rebound(const cloud::Catalog& catalog) const {
  if (catalog.size() != per_vcpu_rates_.size())
    throw std::invalid_argument(
        "ResourceCapacity::rebound: catalog type count differs");
  for (std::size_t i = 0; i < vcpus_.size(); ++i)
    if (catalog.type(i).vcpus != vcpus_[i])
      throw std::invalid_argument(
          "ResourceCapacity::rebound: vCPU count differs for " +
          catalog.type(i).name);
  return ResourceCapacity(per_vcpu_rates_, catalog);
}

apps::AppParams characterization_point(const apps::ElasticApp& app) {
  // Small steady-state runs, mirroring the paper's "small problem size"
  // profiling on each resource type (§IV-B).
  const std::string_view name = app.name();
  if (name == "x264") return {4, 20};
  if (name == "galaxy") return {4096, 10};
  if (name == "sand") return {100000, 0.32};
  // Generic fallback: smallest corner of the valid range.
  const apps::ParamRange range = app.param_range();
  return {range.min_n, range.min_a};
}

ResourceCapacity characterize_capacity(const apps::ElasticApp& app,
                                       cloud::CloudProvider& provider,
                                       CharacterizationMode mode,
                                       const hw::LocalServer& local) {
  return characterize_capacity_with_report(app, provider, mode, local)
      .capacity;
}

CharacterizationReport characterize_capacity_with_report(
    const apps::ElasticApp& app, cloud::CloudProvider& provider,
    CharacterizationMode mode, const hw::LocalServer& local) {
  const auto catalog = provider.catalog().types();
  const apps::AppParams point = characterization_point(app);

  // Local half of the measurement: the scale-down run's instruction count,
  // read from the local server's hardware counters. Our instrumentation
  // layer makes this exact (tests prove exact_demand == instrumented count),
  // so the closed form stands in for the full local run.
  const double demand = app.exact_demand(point);
  (void)local;  // the local box only supplies counters, which are exact

  int runs = 0;
  double total_seconds = 0.0;
  double total_cost = 0.0;
  auto timed_run = [&](std::size_t type_index) {
    const double seconds =
        provider.run_benchmark(type_index, demand, app.workload_class());
    ++runs;
    total_seconds += seconds;
    total_cost += seconds / 3600.0 * catalog[type_index].cost_per_hour;
    return seconds;
  };

  std::vector<double> per_vcpu(catalog.size(), 0.0);
  switch (mode) {
    case CharacterizationMode::kFullMeasurement: {
      for (std::size_t i = 0; i < catalog.size(); ++i) {
        const double seconds = timed_run(i);
        per_vcpu[i] = demand / seconds / catalog[i].vcpus;
      }
      break;
    }
    case CharacterizationMode::kPerCategory: {
      // Measure only the `large` type of each category; spread its
      // instructions/second/$ across the category (paper §IV-C).
      for (std::size_t i = 0; i < catalog.size(); ++i) {
        if (catalog[i].size != cloud::Size::kLarge) continue;
        const double seconds = timed_run(i);
        const double normalized =
            demand / seconds / catalog[i].cost_per_hour;
        for (std::size_t j = 0; j < catalog.size(); ++j) {
          if (catalog[j].category != catalog[i].category) continue;
          per_vcpu[j] =
              normalized * catalog[j].cost_per_hour / catalog[j].vcpus;
        }
      }
      break;
    }
    case CharacterizationMode::kSpecFrequency: {
      // Naive upper bound: one instruction per cycle at base frequency.
      for (std::size_t i = 0; i < catalog.size(); ++i)
        per_vcpu[i] = catalog[i].frequency_ghz * 1e9;
      break;
    }
  }
  return CharacterizationReport{
      ResourceCapacity(std::move(per_vcpu), provider.catalog()), runs,
      total_seconds, total_cost};
}

double estimate_rate_sigma(const apps::ElasticApp& app,
                           cloud::CloudProvider& provider,
                           std::size_t type_index, int samples) {
  if (samples < 2)
    throw std::invalid_argument("estimate_rate_sigma: need >= 2 samples");
  const double demand = app.exact_demand(characterization_point(app));
  util::RunningStats stats;
  for (int k = 0; k < samples; ++k) {
    const double seconds =
        provider.run_benchmark(type_index, demand, app.workload_class());
    stats.add(demand / seconds);
  }
  return stats.mean() > 0 ? stats.stddev() / stats.mean() : 0.0;
}

}  // namespace celia::core
