file(REMOVE_RECURSE
  "CMakeFiles/celia_cloud.dir/autoscaler.cpp.o"
  "CMakeFiles/celia_cloud.dir/autoscaler.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/cluster_exec.cpp.o"
  "CMakeFiles/celia_cloud.dir/cluster_exec.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/gantt.cpp.o"
  "CMakeFiles/celia_cloud.dir/gantt.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/instance_type.cpp.o"
  "CMakeFiles/celia_cloud.dir/instance_type.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/pricing.cpp.o"
  "CMakeFiles/celia_cloud.dir/pricing.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/provider.cpp.o"
  "CMakeFiles/celia_cloud.dir/provider.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/region.cpp.o"
  "CMakeFiles/celia_cloud.dir/region.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/spot.cpp.o"
  "CMakeFiles/celia_cloud.dir/spot.cpp.o.d"
  "CMakeFiles/celia_cloud.dir/vm.cpp.o"
  "CMakeFiles/celia_cloud.dir/vm.cpp.o.d"
  "libcelia_cloud.a"
  "libcelia_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celia_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
