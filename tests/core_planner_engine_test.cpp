// Tests for core::PlannerEngine (core/planner_engine.hpp): named catalog
// snapshots, per-(catalog, model) FrontierIndex caching with exact
// observability counters, and correctness of interleaved concurrent
// queries across multiple catalogs (run under TSan in CI).
//
// Most tests run on a SMALL synthetic pair of catalogs (6 types, limit 3,
// ~4k configurations) — the engine's routing, caching and locking are
// space-size independent, and this keeps the suite fast under TSan/ASan.
// One test (LoadedModelPlansAgainstItsOwnCatalogOnly) exercises the full
// Table III pipeline end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "cloud/catalog.hpp"
#include "cloud/provider.hpp"
#include "core/planner_engine.hpp"
#include "core/serialize.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace celia::core;
using celia::cloud::Catalog;
using celia::cloud::CloudProvider;
namespace obs = celia::obs;

/// 6 Table III types with uniform limit 3 — 4^6 - 1 = 4095 configurations.
std::shared_ptr<const Catalog> alpha() {
  static const auto catalog = [] {
    const auto& table3 = Catalog::ec2_table3();
    return std::make_shared<const Catalog>(
        "alpha", "test-1",
        std::vector<celia::cloud::InstanceType>{table3.types().begin(),
                                                table3.types().begin() + 6},
        std::vector<int>{3, 3, 3, 3, 3, 3});
  }();
  return catalog;
}

/// Same structure as alpha(), every price 1.4x — a distinct fingerprint,
/// so a query answered from the wrong catalog's index changes cost.
std::shared_ptr<const Catalog> beta() {
  static const auto catalog = std::make_shared<const Catalog>(
      alpha()->with_price_multiplier("beta", "test-2", 1.4));
  return catalog;
}

/// A capacity "characterized" against the alpha/beta structure.
const ResourceCapacity& small_capacity() {
  static const ResourceCapacity capacity = [] {
    std::vector<double> per_vcpu(alpha()->size());
    for (std::size_t i = 0; i < per_vcpu.size(); ++i)
      per_vcpu[i] = 1.1e9 + 3.7e7 * static_cast<double>(i);
    return ResourceCapacity(std::move(per_vcpu), *alpha());
  }();
  return capacity;
}

Query small_query(double deadline_hours) {
  Constraints constraints;
  constraints.deadline_seconds = deadline_hours * 3600.0;
  SweepOptions options;
  options.collect_pareto = false;
  return Query::make(1e13, constraints, options);
}

TEST(PlannerEngine, RegistrationAndLookup) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  engine.add_catalog("beta", beta());
  EXPECT_EQ(engine.num_catalogs(), 2u);
  EXPECT_EQ(engine.catalog_names(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(engine.catalog("beta")->fingerprint(), beta()->fingerprint());
  EXPECT_THROW(engine.catalog("gamma"), std::out_of_range);
  EXPECT_THROW(engine.add_catalog("alpha", alpha()), std::invalid_argument);
  EXPECT_THROW(engine.add_catalog("", alpha()), std::invalid_argument);
  EXPECT_THROW(engine.add_catalog("x", nullptr), std::invalid_argument);
}

TEST(PlannerEngine, ReplaceRepricesTheCachedIndexInPlace) {
  // beta() -> alpha() is a price-only edit (uniform 1/1.4 rescale), so the
  // replace is absorbed as a reprice delta: the cached index is re-derived
  // for the new snapshot without a rebuild, not dropped.
  PlannerEngine engine;
  engine.add_catalog("live", beta());
  (void)engine.plan("live", small_capacity(), small_query(1.0));
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  engine.add_catalog("live", alpha(), /*replace=*/true);
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  EXPECT_EQ(engine.catalog("live")->fingerprint(), alpha()->fingerprint());
  // A structural replace (different type count) has no delta path; the
  // stale cache is dropped and the next query rebuilds from scratch.
  engine.add_catalog("live", Catalog::ec2_table3_ptr(), /*replace=*/true);
  EXPECT_EQ(engine.num_cached_indexes(), 0u);
}

TEST(PlannerEngine, ReplaceKeepsTheIndexWhileAnotherNameReferencesIt) {
  PlannerEngine engine;
  engine.add_catalog("live", beta());
  engine.add_catalog("alias", beta());
  (void)engine.plan("live", small_capacity(), small_query(1.0));
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
  engine.add_catalog("live", alpha(), /*replace=*/true);
  // "alias" still serves the old snapshot, so its index survives; the
  // replace also delta-derives alpha's index from it, so both are cached.
  EXPECT_EQ(engine.num_cached_indexes(), 2u);
}

TEST(PlannerEngine, MismatchedCapacityThrowsDescriptively) {
  PlannerEngine engine;
  engine.add_catalog("table3", Catalog::ec2_table3_ptr());
  // small_capacity() was characterized against the 6-type structure, not
  // Table III's 9 types.
  try {
    (void)engine.plan("table3", small_capacity(), small_query(1.0));
    FAIL() << "planning a 6-type capacity against Table III succeeded";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("structurally different"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("table3"), std::string::npos)
        << error.what();
  }
}

TEST(PlannerEngine, LoadedModelPlansAgainstItsOwnCatalogOnly) {
  // Full-pipeline representative: a model restored by load_model carries
  // its catalog; the engine serves it against a matching snapshot and
  // refuses a structurally different one.
  CloudProvider provider(2017);
  const Celia built = Celia::build(*celia::apps::make_galaxy(), provider);
  const Celia loaded = model_from_string(model_to_string(built));
  Query query = [&] {
    Constraints constraints;
    constraints.deadline_seconds = 24 * 3600.0;
    SweepOptions options;
    options.collect_pareto = false;
    return Query::make(loaded.predict_demand({65536, 8000}), constraints,
                       options);
  }();

  PlannerEngine engine;
  engine.add_catalog("oregon", loaded.catalog_ptr());
  const SweepResult served = engine.plan("oregon", loaded, query);
  EXPECT_TRUE(served.any_feasible);
  EXPECT_EQ(served.route, QueryRoute::kIndex);

  engine.add_catalog("small", alpha());
  EXPECT_THROW((void)engine.plan("small", loaded, query),
               std::invalid_argument);
}

TEST(PlannerEngine, ResultsMatchDirectSweepsPerCatalog) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  engine.add_catalog("beta", beta());
  const ConfigurationSpace space = ConfigurationSpace::for_catalog(*alpha());
  for (const double hours : {0.5, 1.0, 2.0, 4.0}) {
    const Query query = small_query(hours);
    for (const auto& name : {"alpha", "beta"}) {
      const SweepResult expected =
          sweep(space, small_capacity(), *engine.catalog(name), query);
      const SweepResult got = engine.plan(name, small_capacity(), query);
      ASSERT_EQ(got.any_feasible, expected.any_feasible) << name;
      EXPECT_EQ(got.feasible, expected.feasible) << name;
      EXPECT_EQ(got.min_cost.config_index, expected.min_cost.config_index);
      EXPECT_EQ(got.min_cost.cost, expected.min_cost.cost) << name;
      EXPECT_EQ(got.min_cost.seconds, expected.min_cost.seconds) << name;
      EXPECT_EQ(got.min_time.config_index, expected.min_time.config_index);
      EXPECT_EQ(got.route, QueryRoute::kIndex) << name;
    }
  }
  // Same structure, different prices and identity: the two catalogs never
  // share a cached index.
  EXPECT_EQ(engine.num_cached_indexes(), 2u);
  // And beta really is 1.4x alpha at the same optimum, so an answer from
  // the wrong cache would be visibly mispriced.
  const SweepResult a = engine.plan("alpha", small_capacity(),
                                    small_query(1.0));
  const SweepResult b = engine.plan("beta", small_capacity(),
                                    small_query(1.0));
  EXPECT_NEAR(b.min_cost.cost, 1.4 * a.min_cost.cost,
              1e-12 * b.min_cost.cost);
}

TEST(PlannerEngineCounters, EligibilityRoutesAndCountsExactly) {
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  obs::Counter& queries = obs::counter("celia_planner_engine_queries_total");
  obs::Counter& hits = obs::counter("celia_planner_engine_index_hits_total");
  obs::Counter& builds =
      obs::counter("celia_planner_engine_index_builds_total");
  obs::Counter& sweeps = obs::counter("celia_planner_engine_sweeps_total");
  const auto q0 = queries.value(), h0 = hits.value(), b0 = builds.value(),
             s0 = sweeps.value();

  (void)engine.plan("alpha", small_capacity(), small_query(1.0));  // build
  (void)engine.plan("alpha", small_capacity(), small_query(0.5));  // hit
  (void)engine.plan("alpha", small_capacity(), small_query(2.0));  // hit

  // A risk-aware query is index-ineligible: full sweep, cache untouched.
  Constraints risky;
  risky.deadline_seconds = 3600.0;
  risky.confidence_z = 1.645;
  risky.rate_sigma = 0.1;
  const SweepResult risk_result =
      engine.plan("alpha", small_capacity(), Query::make(1e13, risky, {}));
  EXPECT_NE(risk_result.route, QueryRoute::kIndex);

  EXPECT_EQ(queries.value() - q0, 4u);
  EXPECT_EQ(builds.value() - b0, 1u);
  EXPECT_EQ(hits.value() - h0, 2u);
  EXPECT_EQ(sweeps.value() - s0, 1u);
  // The accounting invariant: every query is exactly one of the three.
  EXPECT_EQ((hits.value() - h0) + (builds.value() - b0) +
                (sweeps.value() - s0),
            queries.value() - q0);
  EXPECT_EQ(engine.num_cached_indexes(), 1u);
}

TEST(PlannerEngineConcurrent, InterleavedQueriesAcrossTwoCatalogsAreExact) {
  // The acceptance scenario: one engine, two catalogs, many threads
  // interleaving queries against both. Each answer must come from the
  // catalog it was addressed to (the prices differ, so cross-catalog
  // cache contamination changes costs), and after a serial warm-up the
  // counters must show EXACTLY one cached-index hit per concurrent query.
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  engine.add_catalog("beta", beta());

  const std::vector<double> ladder = {0.3, 0.5, 0.8, 1.0, 2.0, 4.0};
  const char* names[] = {"alpha", "beta"};
  // Expected answers, computed from indexes built OUTSIDE the engine (the
  // index-vs-sweep exactness is proven in ResultsMatchDirectSweepsPerCatalog;
  // this test is about the engine's routing under contention).
  const ConfigurationSpace space = ConfigurationSpace::for_catalog(*alpha());
  SweepResult expected[2][6];
  for (int c = 0; c < 2; ++c) {
    const FrontierIndex index = FrontierIndex::build(
        space, small_capacity(), *engine.catalog(names[c]), {});
    for (std::size_t d = 0; d < ladder.size(); ++d)
      expected[c][d] = index.query(small_query(ladder[d]));
  }

  obs::Counter& queries = obs::counter("celia_planner_engine_queries_total");
  obs::Counter& hits = obs::counter("celia_planner_engine_index_hits_total");
  obs::Counter& builds =
      obs::counter("celia_planner_engine_index_builds_total");
  obs::Counter& sweeps = obs::counter("celia_planner_engine_sweeps_total");

  // Serial warm-up: exactly one build per catalog.
  const auto b0 = builds.value();
  (void)engine.plan("alpha", small_capacity(), small_query(1.0));
  (void)engine.plan("beta", small_capacity(), small_query(1.0));
  ASSERT_EQ(builds.value() - b0, 2u);
  ASSERT_EQ(engine.num_cached_indexes(), 2u);

  const auto q0 = queries.value(), h0 = hits.value(), b1 = builds.value(),
             s0 = sweeps.value();
  constexpr int kThreads = 8;
  constexpr int kRounds = 32;
  std::atomic<int> wrong_answers{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t d = 0; d < ladder.size(); ++d) {
          // Threads start on different catalogs so both are always in
          // flight at once.
          const int c = (t + round + static_cast<int>(d)) % 2;
          const SweepResult got = engine.plan(names[c], small_capacity(),
                                              small_query(ladder[d]));
          const SweepResult& want = expected[c][d];
          if (got.min_cost.config_index != want.min_cost.config_index ||
              got.min_cost.cost != want.min_cost.cost ||
              got.min_time.config_index != want.min_time.config_index ||
              got.feasible != want.feasible)
            wrong_answers.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_answers.load(), 0);
  const auto total =
      static_cast<std::uint64_t>(kThreads) * kRounds * ladder.size();
  EXPECT_EQ(queries.value() - q0, total);
  // Every concurrent query hit the already-built index for its catalog:
  // no spurious rebuilds, no sweep fallbacks, hits account for all of it.
  EXPECT_EQ(hits.value() - h0, total);
  EXPECT_EQ(builds.value() - b1, 0u);
  EXPECT_EQ(sweeps.value() - s0, 0u);
  EXPECT_EQ(engine.num_cached_indexes(), 2u);
}

TEST(PlannerEngineConcurrent, RacingFirstQueriesBuildEachIndexOnce) {
  // No warm-up: many threads race the FIRST query against both catalogs.
  // Builds may race (each is counted), but the cache must converge to one
  // index per catalog and hits + builds must equal queries exactly.
  PlannerEngine engine;
  engine.add_catalog("alpha", alpha());
  engine.add_catalog("beta", beta());

  obs::Counter& queries = obs::counter("celia_planner_engine_queries_total");
  obs::Counter& hits = obs::counter("celia_planner_engine_index_hits_total");
  obs::Counter& builds =
      obs::counter("celia_planner_engine_index_builds_total");
  obs::Counter& sweeps = obs::counter("celia_planner_engine_sweeps_total");
  const auto q0 = queries.value(), h0 = hits.value(), b0 = builds.value(),
             s0 = sweeps.value();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      (void)engine.plan(t % 2 ? "beta" : "alpha", small_capacity(),
                        small_query(1.0));
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(queries.value() - q0, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(sweeps.value() - s0, 0u);
  EXPECT_EQ((hits.value() - h0) + (builds.value() - b0),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(builds.value() - b0, 2u);  // at least one build per catalog
  // First insertion won; racing duplicates were discarded.
  EXPECT_EQ(engine.num_cached_indexes(), 2u);
}

}  // namespace
