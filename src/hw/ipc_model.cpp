#include "hw/ipc_model.hpp"

#include <stdexcept>

namespace celia::hw {

namespace {

struct IpcRow {
  Microarch microarch;
  // Indexed by WorkloadClass: video-encoding, n-body, genome-alignment,
  // transaction-processing.
  double ipc[kNumWorkloadClasses];
};

// Calibration (see DESIGN.md §2): per-vCPU rate = ipc x frequency, and
// normalized performance = vCPUs x rate / hourly cost must land on the
// paper's Figure 3 (galaxy on c4 ~= 26.2 B instr/s/$; c4 ~= 2x r3 and
// m4 ~= 1.5x r3 for every application). Transaction processing is
// pointer-chasing and cache-hostile: IPC sits between n-body and
// genome-alignment on every part.
constexpr IpcRow kIpcTable[] = {
    {Microarch::kHaswellE5_2666v3, {0.999, 0.476, 0.652, 0.541}},   // c4
    {Microarch::kHaswellE5_2676v3, {1.197, 0.570, 0.781, 0.648}},   // m4
    {Microarch::kSandyBridgeE5_2670, {0.916, 0.436, 0.598, 0.495}}, // r3
    {Microarch::kBroadwellE5_2630v4, {1.050, 0.500, 0.680, 0.566}}, // local
};

}  // namespace

double ipc(Microarch microarch, WorkloadClass workload) {
  for (const auto& row : kIpcTable) {
    if (row.microarch == microarch)
      return row.ipc[static_cast<int>(workload)];
  }
  throw std::out_of_range("ipc: unknown micro-architecture");
}

double vcpu_rate(Microarch microarch, WorkloadClass workload) {
  return ipc(microarch, workload) *
         processor(microarch).base_frequency_ghz * 1e9;
}

}  // namespace celia::hw
