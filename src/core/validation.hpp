#pragma once
// Model validation machinery (paper §IV-D, Table IV): run CELIA's
// prediction for one (application, parameters, configuration) case, run the
// same case on the simulated cloud, and report the relative errors.

#include <string>
#include <vector>

#include "apps/elastic_app.hpp"
#include "cloud/cluster_exec.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"

namespace celia::core {

struct ValidationRow {
  std::string app;
  apps::AppParams params;
  Configuration config;
  double predicted_hours = 0.0;
  double actual_hours = 0.0;
  double predicted_cost = 0.0;
  double actual_cost = 0.0;
  /// |predicted - actual| / actual.
  double time_error = 0.0;
  double cost_error = 0.0;
};

/// Validate one case: `celia` supplies the prediction; `provider` +
/// `executor` supply the measured run of app's workload on `config`.
ValidationRow validate_case(const Celia& celia, const apps::ElasticApp& app,
                            const apps::AppParams& params,
                            const Configuration& config,
                            cloud::CloudProvider& provider,
                            const cloud::ClusterExecutor& executor);

/// The paper's nine Table IV cases (three per application) against the
/// paper's configurations.
std::vector<ValidationRow> run_table4_validation(
    cloud::CloudProvider& provider,
    CharacterizationMode mode = CharacterizationMode::kFullMeasurement);

}  // namespace celia::core
