#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace celia::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)), right_aligned_(headers_.size(), false) {
  if (headers_.empty())
    throw std::invalid_argument("TablePrinter: empty header");
}

void TablePrinter::add_row(std::vector<std::string> fields) {
  if (fields.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: row width mismatch");
  rows_.push_back(std::move(fields));
}

void TablePrinter::set_right_aligned(std::size_t column, bool right) {
  if (column >= headers_.size())
    throw std::out_of_range("TablePrinter: column out of range");
  right_aligned_[column] = right;
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = widths[c] - row[c].size();
      out << ' ';
      if (right_aligned_[c]) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };
  auto print_rule = [&] {
    out << "+";
    for (const auto w : widths) out << std::string(w + 2, '-') << "+";
    out << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string TablePrinter::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void AsciiChart::add_series(Series series) {
  if (series.xs.size() != series.ys.size())
    throw std::invalid_argument("AsciiChart: xs/ys size mismatch");
  series_.push_back(std::move(series));
}

void AsciiChart::set_size(int width, int height) {
  width_ = std::max(16, width);
  height_ = std::max(4, height);
}

void AsciiChart::print(std::ostream& out) const {
  static constexpr char kMarkers[] = "*o+x#@%&";

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      double y = s.ys[i];
      if (log_y_ && y <= 0) continue;
      if (log_y_) y = std::log10(y);
      xmin = std::min(xmin, s.xs[i]);
      xmax = std::max(xmax, s.xs[i]);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
      any = true;
    }
  }
  out << "=== " << title_ << " ===\n";
  if (!any) {
    out << "(no data)\n";
    return;
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    const char marker = kMarkers[si % (sizeof(kMarkers) - 1)];
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      double y = s.ys[i];
      if (log_y_) {
        if (y <= 0) continue;
        y = std::log10(y);
      }
      const int col = static_cast<int>(
          std::lround((s.xs[i] - xmin) / (xmax - xmin) * (width_ - 1)));
      const int row = static_cast<int>(
          std::lround((y - ymin) / (ymax - ymin) * (height_ - 1)));
      grid[height_ - 1 - row][col] = marker;
    }
  }

  const double ytop = log_y_ ? std::pow(10.0, ymax) : ymax;
  const double ybot = log_y_ ? std::pow(10.0, ymin) : ymin;
  out << "  y: " << y_label_ << "  [" << format_si(ybot) << " .. "
      << format_si(ytop) << (log_y_ ? ", log scale" : "") << "]\n";
  for (const auto& line : grid) out << "  |" << line << "\n";
  out << "  +" << std::string(width_, '-') << "\n";
  out << "  x: " << x_label_ << "  [" << format_si(xmin) << " .. "
      << format_si(xmax) << "]\n";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out << "    '" << kMarkers[si % (sizeof(kMarkers) - 1)]
        << "' = " << series_[si].label << "\n";
  }
}

std::string AsciiChart::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace celia::util
