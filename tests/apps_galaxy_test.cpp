// Tests for the galaxy n-body application: ledger/closed-form agreement,
// demand shape (quadratic in n, linear in s — paper Fig. 2(b,e)), and the
// physics of the kernel itself (energy conservation, Plummer properties).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/galaxy/galaxy_app.hpp"
#include "apps/galaxy/nbody.hpp"
#include "fit/model_select.hpp"
#include "util/rng.hpp"

namespace {

using namespace celia::apps::galaxy;
using celia::apps::AppParams;
using celia::hw::PerfCounter;

TEST(NBody, PlummerHasRequestedSizeAndUnitMass) {
  celia::util::Xoshiro256 rng(1);
  const Bodies bodies = make_plummer(500, rng);
  EXPECT_EQ(bodies.size(), 500u);
  double mass = 0;
  for (const double m : bodies.mass) mass += m;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(NBody, PlummerIsRoughlyCentered) {
  celia::util::Xoshiro256 rng(2);
  const Bodies bodies = make_plummer(4000, rng);
  double cx = 0, cy = 0, cz = 0;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    cx += bodies.x[i];
    cy += bodies.y[i];
    cz += bodies.z[i];
  }
  const auto n = static_cast<double>(bodies.size());
  EXPECT_NEAR(cx / n, 0.0, 0.2);
  EXPECT_NEAR(cy / n, 0.0, 0.2);
  EXPECT_NEAR(cz / n, 0.0, 0.2);
}

TEST(NBody, PlummerIsBoundSystem) {
  celia::util::Xoshiro256 rng(3);
  Bodies bodies = make_plummer(300, rng);
  EXPECT_LT(total_energy(bodies), 0.0);  // gravitationally bound
}

TEST(NBody, ForcesAreEqualAndOpposite) {
  // Two equal masses: momentum derivative must vanish.
  Bodies bodies;
  bodies.resize(2);
  bodies.x = {0.0, 1.0};
  bodies.y = {0.0, 0.0};
  bodies.z = {0.0, 0.0};
  bodies.mass = {0.5, 0.5};
  PerfCounter counter;
  compute_forces(bodies, counter);
  EXPECT_NEAR(bodies.ax[0] + bodies.ax[1], 0.0, 1e-12);
  EXPECT_GT(bodies.ax[0], 0.0);  // attraction toward the other body
  EXPECT_LT(bodies.ax[1], 0.0);
}

TEST(NBody, LeapfrogConservesEnergy) {
  celia::util::Xoshiro256 rng(4);
  Bodies bodies = make_plummer(128, rng);
  const double e0 = total_energy(bodies);
  PerfCounter counter;
  simulate(bodies, 50, counter);
  const double e1 = total_energy(bodies);
  EXPECT_LT(std::abs(e1 - e0) / std::abs(e0), 0.02);
}

TEST(NBody, StepLedgerMatchesClosedForm) {
  celia::util::Xoshiro256 rng(5);
  for (const std::size_t n : {2u, 16u, 64u}) {
    Bodies bodies = make_plummer(n, rng);
    PerfCounter measured;
    leapfrog_step(bodies, measured);
    const PerfCounter expected = step_ops(n);
    for (int i = 0; i < celia::hw::kNumOpClasses; ++i) {
      const auto op = static_cast<celia::hw::OpClass>(i);
      EXPECT_EQ(measured.ops(op), expected.ops(op))
          << "n=" << n << " op=" << celia::hw::op_class_name(op);
    }
  }
}

TEST(GalaxyApp, InstrumentedRunMatchesExactDemand) {
  const GalaxyApp app;
  for (const AppParams params :
       {AppParams{8, 3}, AppParams{32, 5}, AppParams{64, 2}}) {
    PerfCounter counter;
    app.run_instrumented(params, counter);
    EXPECT_DOUBLE_EQ(static_cast<double>(counter.instructions()),
                     app.exact_demand(params));
  }
}

TEST(GalaxyApp, DemandIsLinearInSteps) {
  const GalaxyApp app;
  const double d1 = app.exact_demand({100, 1});
  for (const double s : {2.0, 7.0, 100.0})
    EXPECT_DOUBLE_EQ(app.exact_demand({100, s}), s * d1);
}

TEST(GalaxyApp, DemandShapeDetectedQuadraticInN) {
  const GalaxyApp app;
  std::vector<celia::fit::Sample> samples;
  for (const double n : {64, 128, 256, 512, 1024})
    samples.push_back({n, app.exact_demand({n, 10})});
  EXPECT_EQ(celia::fit::detect_shape(samples).shape,
            celia::fit::Shape::kQuadratic);
}

TEST(GalaxyApp, PerPairCostIsCalibrated) {
  // DESIGN.md calibration: ~260 instructions per pairwise interaction.
  const GalaxyApp app;
  const double n = 1024, s = 4;
  const double pair_dominated = app.exact_demand({n, s}) / (s * n * (n - 1));
  EXPECT_NEAR(pair_dominated, 260.0, 2.0);
}

TEST(GalaxyApp, WorkloadIsBulkSynchronous) {
  const GalaxyApp app;
  const auto workload = app.make_workload({256, 10});
  EXPECT_EQ(workload.pattern, celia::apps::ParallelPattern::kBulkSynchronous);
  EXPECT_EQ(workload.steps, 10u);
  EXPECT_DOUBLE_EQ(workload.instructions_per_step * 10,
                   workload.total_instructions);
  EXPECT_DOUBLE_EQ(workload.total_instructions, app.exact_demand({256, 10}));
  EXPECT_DOUBLE_EQ(workload.sync_bytes_per_step, 24.0 * 256);
}

TEST(GalaxyApp, InvalidParamsThrow) {
  const GalaxyApp app;
  EXPECT_THROW(app.exact_demand({1, 10}), std::invalid_argument);
  EXPECT_THROW(app.exact_demand({100, 0}), std::invalid_argument);
}

TEST(GalaxyApp, ProfileGridMatchesPaperRanges) {
  const GalaxyApp app;
  for (const auto& params : app.profile_grid()) {
    EXPECT_GE(params.n, 8192);
    EXPECT_LE(params.n, 65536);
    EXPECT_GE(params.a, 1000);
    EXPECT_LE(params.a, 8000);
  }
}

TEST(GalaxyApp, Metadata) {
  const GalaxyApp app;
  EXPECT_EQ(app.name(), "galaxy");
  EXPECT_EQ(app.domain(), "astrophysics");
  EXPECT_EQ(app.workload_class(), celia::hw::WorkloadClass::kNBody);
}

}  // namespace
