// Ablation A6: how does demand-model error propagate to the selection?
//
// CELIA's predictions have two inputs: measured capacities (A1) and the
// fitted demand model. This ablation perturbs the demand estimate by
// +/- delta and reports (i) how the chosen min-cost configuration changes
// and (ii) the REGRET: what the configuration chosen under the wrong
// demand actually costs/takes at the true demand, versus the oracle
// choice. Underestimating demand is the dangerous direction — the chosen
// plan silently misses the deadline.

#include <iostream>

#include "apps/registry.hpp"
#include "cloud/provider.hpp"
#include "core/celia.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace celia;

  cloud::CloudProvider provider(2017);
  const auto app = apps::make_galaxy();
  const core::Celia celia = core::Celia::build(*app, provider);
  const apps::AppParams params{65536, 8000};
  const double true_demand = celia.predict_demand(params);
  constexpr double kDeadlineHours = 24.0;
  const double deadline_seconds = kDeadlineHours * 3600.0;

  std::cout << "=== Ablation A6: Demand-model Error Propagation ===\n"
            << "workload: galaxy(65536, 8000), 24 h deadline; fitted demand "
            << util::format_instructions(true_demand) << "\n\n";

  core::SweepOptions options;
  options.collect_pareto = false;
  core::Constraints constraints;
  constraints.deadline_seconds = deadline_seconds;

  const auto oracle = core::sweep(celia.space(), celia.capacity(),
                                  true_demand, constraints, options);

  util::TablePrinter table({"demand error", "chosen config",
                            "believed cost", "true time (h)", "true cost",
                            "regret", "misses deadline"});
  for (std::size_t c = 2; c < 6; ++c) table.set_right_aligned(c);

  for (const double delta : {-0.20, -0.10, -0.05, 0.0, 0.05, 0.10, 0.20}) {
    const double believed = true_demand * (1.0 + delta);
    const auto result = core::sweep(celia.space(), celia.capacity(),
                                    believed, constraints, options);
    if (!result.any_feasible) {
      table.add_row({util::format_percent(delta), "infeasible", "-", "-",
                     "-", "-", "-"});
      continue;
    }
    const core::Configuration config =
        celia.space().decode(result.min_cost.config_index);
    // Evaluate the chosen configuration at the TRUE demand.
    const core::Prediction truth =
        core::predict(true_demand, config, celia.capacity());
    const double regret =
        oracle.any_feasible ? truth.cost / oracle.min_cost.cost - 1.0 : 0.0;
    table.add_row(
        {(delta >= 0 ? "+" : "") + util::format_percent(delta),
         core::to_string(config),
         util::format_money(result.min_cost.cost),
         util::format_fixed(truth.seconds / 3600.0, 1),
         util::format_money(truth.cost),
         (regret >= 0 ? "+" : "") + util::format_percent(regret),
         truth.seconds >= deadline_seconds ? "YES" : "no"});
  }
  table.print(std::cout);
  std::cout
      << "\nreading: overestimating demand only wastes a few percent "
         "(bigger fleet,\nsame instr/$ mix); UNDERESTIMATING makes the "
         "chosen configuration miss\nthe real deadline outright. CELIA's "
         "conservative direction is to round\ndemand estimates up — or use "
         "the E3 risk models, which absorb demand\nerror and rate noise "
         "together.\n";
  return 0;
}
