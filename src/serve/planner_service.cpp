#include "serve/planner_service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace celia::serve {

namespace {

struct ServeCounters {
  obs::Counter& submitted = obs::counter(
      "celia_serve_submitted_total", "Requests submitted to a PlannerService");
  obs::Counter& admitted = obs::counter(
      "celia_serve_admitted_total",
      "Requests answered on their merits (planned or typed failure)");
  obs::Counter& shed = obs::counter(
      "celia_serve_shed_total",
      "Requests shed by admission control or a queued-deadline expiry");
  obs::Counter& shed_queue_full = obs::counter(
      "celia_serve_shed_queue_full_total",
      "Sheds caused by the queue-depth watermark");
  obs::Counter& shed_slo = obs::counter(
      "celia_serve_shed_slo_total",
      "Sheds caused by a rolling-p99 latency SLO breach");
  obs::Counter& shed_deadline = obs::counter(
      "celia_serve_shed_deadline_total",
      "Sheds caused by a request deadline expiring before dispatch");
  obs::Counter& shed_shutdown = obs::counter(
      "celia_serve_shed_shutdown_total",
      "Requests resolved as shed because the service stopped");
  obs::Counter& rejected_quota = obs::counter(
      "celia_serve_rejected_quota_total",
      "Requests rejected by the tenant's token-bucket quota");
  obs::Counter& coalesced = obs::counter(
      "celia_serve_coalesced_total",
      "Requests answered by attaching to an identical in-flight computation");
  obs::Counter& failed = obs::counter(
      "celia_serve_failed_total",
      "Admitted requests the engine answered with a typed failure");
  obs::Counter& shed_stale = obs::counter(
      "celia_serve_shed_stale_total",
      "Sheds caused by the serving catalog exceeding the watchdog's hard "
      "staleness cap");
  obs::Counter& quarantine_rejections = obs::counter(
      "celia_serve_quarantine_rejections_total",
      "Submissions fast-failed because their query identity is quarantined");
  obs::Counter& quarantine_entries = obs::counter(
      "celia_serve_quarantine_entries_total",
      "Quarantine episodes begun (strike threshold reached or probe failed)");
  obs::Counter& quarantine_recoveries = obs::counter(
      "celia_serve_quarantine_recoveries_total",
      "Poison-cache entries cleared by a subsequent successful plan");
  obs::Counter& worker_lost = obs::counter(
      "celia_serve_worker_lost_total",
      "Waiters failed with kWorkerLost by the stall supervisor");
  obs::Counter& worker_restarts = obs::counter(
      "celia_serve_worker_restarts_total",
      "Stalled workers detached and respawned by check_workers()");
  obs::Counter& plan_retries = obs::counter(
      "celia_serve_plan_retries_total",
      "Plan re-attempts granted by the retry budget");
  obs::Counter& retry_vetoes = obs::counter(
      "celia_serve_retry_vetoes_total",
      "Plan re-attempts the retry budget refused");
  obs::Gauge& queue_depth = obs::gauge(
      "celia_serve_queue_depth", "Requests currently queued for dispatch");
  obs::Gauge& quarantine_active = obs::gauge(
      "celia_serve_quarantine_active",
      "Query identities currently quarantined");
};

ServeCounters& serve_counters() {
  static ServeCounters counters;
  return counters;
}

obs::Histogram& latency_histogram() {
  static obs::Histogram& hist = obs::histogram(
      "celia_serve_latency_seconds", {},
      "Admission-to-resolution latency of admitted requests");
  return hist;
}

obs::Histogram& queue_wait_histogram() {
  static obs::Histogram& hist = obs::histogram(
      "celia_serve_queue_wait_seconds", {},
      "Admission-to-dispatch wait of admitted requests");
  return hist;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t value) {
  return splitmix64(seed ^ splitmix64(value));
}

std::uint64_t hash_mix(std::uint64_t seed, double value) {
  return hash_mix(seed, std::bit_cast<std::uint64_t>(value));
}

void validate_quota(const TenantQuota& quota) {
  if (!(quota.burst >= 1.0))
    throw std::invalid_argument("TenantQuota: burst must be >= 1");
  if (!(quota.requests_per_second > 0.0))
    throw std::invalid_argument(
        "TenantQuota: requests_per_second must be positive");
  if (!(quota.weight >= 1.0))
    throw std::invalid_argument("TenantQuota: weight must be >= 1");
}

ServiceOptions validated(ServiceOptions options) {
  if (options.queue_capacity < 1)
    throw std::invalid_argument(
        "PlannerService: queue_capacity must be >= 1");
  if (options.shed_watermark == 0)
    options.shed_watermark = options.queue_capacity;
  if (options.shed_watermark > options.queue_capacity)
    throw std::invalid_argument(
        "PlannerService: shed_watermark exceeds queue_capacity");
  validate_quota(options.default_quota);
  if (options.quarantine.strike_threshold < 0)
    throw std::invalid_argument(
        "PlannerService: quarantine strike_threshold must be >= 0");
  if (options.quarantine.strike_threshold > 0) {
    if (!(options.quarantine.hard_wall_clock_seconds > 0))
      throw std::invalid_argument(
          "PlannerService: quarantine hard_wall_clock_seconds must be > 0");
    // backoff_delay() validates the rest of the expiry schedule; fail at
    // construction instead of on the first quarantine.
    util::BackoffPolicy expiry;
    expiry.initial_seconds = options.quarantine.base_seconds;
    expiry.multiplier = options.quarantine.multiplier;
    expiry.max_seconds = options.quarantine.max_seconds;
    expiry.jitter_fraction = options.quarantine.jitter_fraction;
    (void)util::backoff_delay(expiry, 1, options.quarantine.seed);
  }
  if (options.plan_retries < 0)
    throw std::invalid_argument(
        "PlannerService: plan_retries must be >= 0");
  if (!(options.worker_stall_seconds > 0))
    throw std::invalid_argument(
        "PlannerService: worker_stall_seconds must be > 0");
  if (!options.clock) {
    options.clock = [] {
      static const auto epoch = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch)
          .count();
    };
  }
  return options;
}

}  // namespace

std::string_view shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kLatencySlo: return "latency-slo";
    case ShedReason::kDeadlineExpired: return "deadline-expired";
    case ShedReason::kShutdown: return "shutdown";
    case ShedReason::kStaleCatalog: return "stale-catalog";
  }
  return "unknown";
}

std::string_view serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kPlanned: return "planned";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kRejectedQuota: return "rejected-quota";
    case ServeStatus::kFailed: return "failed";
    case ServeStatus::kQuarantined: return "quarantined";
    case ServeStatus::kWorkerLost: return "worker-lost";
  }
  return "unknown";
}

std::size_t PlannerService::CoalesceKeyHash::operator()(
    const CoalesceKey& key) const noexcept {
  std::uint64_t h = hash_mix(key.catalog_fingerprint, key.capacity_structure);
  for (const double rate : key.per_vcpu_rates) h = hash_mix(h, rate);
  for (const double d : key.demand) h = hash_mix(h, d);
  h = hash_mix(h, key.deadline_seconds);
  h = hash_mix(h, key.budget_dollars);
  h = hash_mix(h, key.confidence_z);
  h = hash_mix(h, key.rate_sigma);
  h = hash_mix(h, key.sample_stride);
  h = hash_mix(h, static_cast<std::uint64_t>(key.collect_pareto));
  return static_cast<std::size_t>(h);
}

PlannerService::PlannerService(core::PlannerEngine& engine,
                               ServiceOptions options)
    : engine_(engine),
      options_(validated(std::move(options))),
      queue_(options_.queue_capacity),
      probe_(options_.latency_slo_seconds, options_.slo_probe_stride),
      retry_budget_(options_.retry_budget) {
  slots_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
    WorkerSlot* slot = slots_.back().get();
    slot->thread = std::thread(
        [this, slot] { worker_loop(slot, /*generation=*/0); });
  }
}

PlannerService::~PlannerService() { stop(StopMode::kDrain); }

std::size_t PlannerService::num_workers() const {
  return options_.num_workers;
}

util::TokenBucket& PlannerService::tenant_bucket_locked(
    const std::string& tenant) {
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end()) return *it->second;
  const auto quota_it = quotas_.find(tenant);
  const TenantQuota& quota =
      quota_it == quotas_.end() ? options_.default_quota : quota_it->second;
  queue_.set_weight(tenant, quota.weight);
  return *buckets_
              .emplace(tenant, std::make_unique<util::TokenBucket>(
                                   quota.burst, quota.requests_per_second))
              .first->second;
}

void PlannerService::set_tenant_quota(const std::string& tenant,
                                      const TenantQuota& quota) {
  validate_quota(quota);
  std::lock_guard<std::mutex> lock(mutex_);
  quotas_[tenant] = quota;
  buckets_[tenant] =
      std::make_unique<util::TokenBucket>(quota.burst,
                                          quota.requests_per_second);
  queue_.set_weight(tenant, quota.weight);
}

void PlannerService::resolve(Waiter& waiter, ServeOutcome outcome,
                             double total) {
  outcome.coalesced = waiter.coalesced;
  outcome.total_seconds = total;
  waiter.promise.set_value(std::move(outcome));
}

std::future<ServeOutcome> PlannerService::submit(PlanRequest request) {
  ServeCounters& counters = serve_counters();
  const double submit_now = now();
  counters.submitted.add(1);

  Waiter waiter;
  waiter.deadline = request.deadline;
  waiter.submitted_at = submit_now;
  std::future<ServeOutcome> future = waiter.promise.get_future();

  // Fast typed rejection: resolve the promise before submit() returns.
  const auto reject_now = [&](ServeStatus status, ShedReason reason,
                              std::string error = {}) {
    ServeOutcome outcome;
    outcome.status = status;
    outcome.shed_reason = reason;
    outcome.error = std::move(error);
    resolve(waiter, std::move(outcome), now() - submit_now);
    return std::move(future);
  };

  // Resolve the catalog before admission: an unknown catalog is a typed
  // answer on the merits (kFailed), not an overload artifact.
  std::shared_ptr<const cloud::Catalog> catalog;
  try {
    catalog = engine_.catalog(request.catalog);
  } catch (const std::out_of_range& error) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.submitted;
      ++stats_.admitted;
      ++stats_.failed;
    }
    counters.admitted.add(1);
    counters.failed.add(1);
    return reject_now(ServeStatus::kFailed, ShedReason::kNone, error.what());
  }

  const bool coalescible = options_.coalesce;
  // The quarantine negative-cache shares the coalescing identity, so the
  // key is also needed when coalescing is off but quarantine is on.
  const bool keyed = coalescible || quarantine_enabled();
  CoalesceKey key;
  if (keyed) {
    key.catalog_fingerprint = catalog->fingerprint();
    key.capacity_structure = request.capacity.catalog_structure_fingerprint();
    key.per_vcpu_rates.reserve(request.capacity.num_types());
    for (std::size_t i = 0; i < request.capacity.num_types(); ++i)
      key.per_vcpu_rates.push_back(request.capacity.per_vcpu_rate(i));
    const core::Constraints& constraints = request.query.constraints();
    key.demand = request.query.demand_vector().values;
    key.deadline_seconds = constraints.deadline_seconds;
    key.budget_dollars = constraints.budget_dollars;
    key.confidence_z = constraints.confidence_z;
    key.rate_sigma = constraints.rate_sigma;
    key.sample_stride = request.query.options().sample_stride;
    key.collect_pareto = request.query.options().collect_pareto;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    if (stopped_) {
      ++stats_.shed;
      ++stats_.shed_shutdown;
      counters.shed.add(1);
      counters.shed_shutdown.add(1);
      return reject_now(ServeStatus::kOverloaded, ShedReason::kShutdown);
    }
    if (quarantine_enabled()) {
      // Negative-cache check precedes even the quota: a known-poison
      // identity is fast-failed for free, before it can spend tokens or
      // queue capacity. Expiry admits the request — it becomes the probe
      // that either clears the entry or re-quarantines it.
      const auto poison_it = poison_.find(key);
      if (poison_it != poison_.end() && poison_it->second.quarantined &&
          submit_now < poison_it->second.until) {
        ++stats_.quarantined;
        counters.quarantine_rejections.add(1);
        return reject_now(ServeStatus::kQuarantined, ShedReason::kNone,
                          "query identity quarantined after repeated "
                          "failures");
      }
    }
    if (!tenant_bucket_locked(request.tenant).try_acquire(submit_now)) {
      ++stats_.rejected_quota;
      counters.rejected_quota.add(1);
      return reject_now(ServeStatus::kRejectedQuota, ShedReason::kNone);
    }
    if (request.deadline.expired(submit_now)) {
      ++stats_.shed;
      ++stats_.shed_deadline;
      counters.shed.add(1);
      counters.shed_deadline.add(1);
      return reject_now(ServeStatus::kOverloaded,
                        ShedReason::kDeadlineExpired);
    }
    if (queue_.size() >= options_.shed_watermark) {
      ++stats_.shed;
      ++stats_.shed_queue_full;
      counters.shed.add(1);
      counters.shed_queue_full.add(1);
      return reject_now(ServeStatus::kOverloaded, ShedReason::kQueueFull);
    }
    if (probe_.should_shed()) {
      ++stats_.shed;
      ++stats_.shed_slo;
      counters.shed.add(1);
      counters.shed_slo.add(1);
      return reject_now(ServeStatus::kOverloaded, ShedReason::kLatencySlo);
    }

    if (coalescible) {
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        waiter.coalesced = true;
        it->second->waiters.push_back(std::move(waiter));
        ++stats_.coalesced;
        counters.coalesced.add(1);
        return future;
      }
    }

    auto entry = std::make_shared<InFlight>(std::move(request));
    entry->coalescible = coalescible;
    entry->keyed = keyed;
    entry->key = std::move(key);
    entry->waiters.push_back(std::move(waiter));
    if (coalescible) inflight_.emplace(entry->key, entry);
    if (!queue_.try_push(entry->request.tenant, entry)) {
      // Lost the watermark race (or the queue closed underneath us):
      // same typed outcome as the watermark check.
      unregister_inflight_locked(entry);
      Waiter back = std::move(entry->waiters.front());
      ++stats_.shed;
      ++stats_.shed_queue_full;
      counters.shed.add(1);
      counters.shed_queue_full.add(1);
      ServeOutcome outcome;
      outcome.status = ServeStatus::kOverloaded;
      outcome.shed_reason = ShedReason::kQueueFull;
      resolve(back, std::move(outcome), now() - submit_now);
      return future;
    }
  }
  serve_counters().queue_depth.set(static_cast<double>(queue_.size()));
  return future;
}

void PlannerService::dispatch(const std::shared_ptr<InFlight>& entry) {
  ServeCounters& counters = serve_counters();
  const double start = now();

  // Deadline gate: requests whose deadline passed while queued are shed
  // with a typed outcome, and doomed work is skipped entirely. The
  // survivors' tightest deadline drives the engine's degradation ladder.
  std::vector<Waiter> expired;
  util::DeadlineBudget tightest;  // unlimited until a live waiter narrows it
  bool any_live = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Waiter> live;
    live.reserve(entry->waiters.size());
    for (Waiter& waiter : entry->waiters) {
      if (waiter.deadline.expired(start)) {
        expired.push_back(std::move(waiter));
        continue;
      }
      if (!any_live ||
          waiter.deadline.deadline_seconds() < tightest.deadline_seconds())
        tightest = waiter.deadline;
      any_live = true;
      live.push_back(std::move(waiter));
    }
    entry->waiters = std::move(live);
    if (!any_live) unregister_inflight_locked(entry);
    stats_.shed += expired.size();
    stats_.shed_deadline += expired.size();
  }
  if (!expired.empty()) {
    counters.shed.add(expired.size());
    counters.shed_deadline.add(expired.size());
    for (Waiter& waiter : expired) {
      ServeOutcome outcome;
      outcome.status = ServeStatus::kOverloaded;
      outcome.shed_reason = ShedReason::kDeadlineExpired;
      outcome.queue_seconds = start - waiter.submitted_at;
      resolve(waiter, std::move(outcome), start - waiter.submitted_at);
    }
  }
  if (!any_live) return;

  // Staleness gate: with a watchdog wired, a catalog past the HARD
  // staleness cap is shed typed instead of serving an arbitrarily old
  // plan; anything softer stamps every outcome with staleness_us and the
  // DegradeReason so callers can judge the (still served) answer.
  std::uint64_t staleness_us = 0;
  DegradeReason degrade = DegradeReason::kNone;
  if (options_.watchdog != nullptr) {
    const HealthReport health =
        options_.watchdog->health(entry->request.catalog, start);
    staleness_us = static_cast<std::uint64_t>(
        std::llround(std::max(0.0, health.staleness_seconds) * 1e6));
    degrade = health.reason;
    if (!health.serve_allowed) {
      std::vector<Waiter> stale;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        unregister_inflight_locked(entry);
        stale = std::move(entry->waiters);
        stats_.shed += stale.size();
        stats_.shed_stale += stale.size();
      }
      counters.shed.add(stale.size());
      counters.shed_stale.add(stale.size());
      for (Waiter& waiter : stale) {
        ServeOutcome outcome;
        outcome.status = ServeStatus::kOverloaded;
        outcome.shed_reason = ShedReason::kStaleCatalog;
        outcome.staleness_us = staleness_us;
        outcome.degrade_reason = degrade;
        outcome.queue_seconds = start - waiter.submitted_at;
        resolve(waiter, std::move(outcome), start - waiter.submitted_at);
      }
      return;
    }
  }

  core::PlanBudget budget;
  budget.now_seconds = start;
  budget.deadline = tightest;
  budget.index_build_cost_seconds = options_.index_build_cost_seconds;
  budget.sweep_cost_seconds = options_.sweep_cost_seconds;
  budget.truncated_sweep_configs = options_.truncated_sweep_configs;

  // The expensive part runs strictly outside every lock; identical
  // requests arriving meanwhile still attach to this entry. A throwing
  // plan may be re-attempted, but only while the Finagle-style retry
  // budget (fed one deposit per dispatched request) grants a token — a
  // hard-down engine is retried at a bounded ratio, never amplified.
  ServeOutcome base;
  if (options_.plan_retries > 0) retry_budget_.deposit(start);
  int retries_left = options_.plan_retries;
  for (;;) {
    try {
      if (options_.before_plan_hook) options_.before_plan_hook(entry->request);
      base.result = engine_.plan(entry->request.catalog,
                                 entry->request.capacity,
                                 entry->request.query, budget);
      base.status = ServeStatus::kPlanned;
      base.error.clear();
    } catch (const std::exception& error) {
      base.status = ServeStatus::kFailed;
      base.error = error.what();
      if (retries_left > 0) {
        if (retry_budget_.try_withdraw(now())) {
          --retries_left;
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.plan_retries;
          }
          counters.plan_retries.add(1);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.retry_vetoes;
        }
        counters.retry_vetoes.add(1);
      }
    }
    break;
  }

  const double end = now();
  // A strike is any outcome the quarantine counts against the query
  // identity: a crash (after retries), the degradation ladder exhausted
  // to its last-resort truncated sweep, or a hard wall-clock overrun.
  const bool strike =
      base.status == ServeStatus::kFailed ||
      (base.status == ServeStatus::kPlanned &&
       base.result.route == core::QueryRoute::kTruncatedSweep) ||
      (end - start) > options_.quarantine.hard_wall_clock_seconds;

  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    unregister_inflight_locked(entry);
    waiters = std::move(entry->waiters);
    stats_.admitted += waiters.size();
    if (base.status == ServeStatus::kFailed) stats_.failed += waiters.size();
    // An empty waiter list means the stall supervisor already detached
    // this dispatch and answered its waiters with kWorkerLost — this
    // thread's late result must not touch the poison cache either.
    if (!waiters.empty() && quarantine_enabled() && entry->keyed)
      note_dispatch_outcome_locked(entry, strike, end);
  }
  counters.admitted.add(waiters.size());
  if (base.status == ServeStatus::kFailed) counters.failed.add(waiters.size());
  base.staleness_us = staleness_us;
  base.degrade_reason = degrade;
  for (Waiter& waiter : waiters) {
    const double queue_seconds = start - waiter.submitted_at;
    const double total_seconds = end - waiter.submitted_at;
    queue_wait_histogram().record(queue_seconds);
    latency_histogram().record(total_seconds);
    probe_.record(total_seconds);
    ServeOutcome outcome = base;
    outcome.queue_seconds = queue_seconds;
    resolve(waiter, std::move(outcome), total_seconds);
  }
}

bool PlannerService::drain_one() {
  std::optional<std::shared_ptr<InFlight>> entry = queue_.try_pop();
  if (!entry) return false;
  serve_counters().queue_depth.set(static_cast<double>(queue_.size()));
  dispatch(*entry);
  return true;
}

void PlannerService::worker_loop(WorkerSlot* slot, std::uint64_t generation) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Superseded by the supervisor: the slot (and its state) now
      // belongs to the replacement thread. Exit without touching it.
      if (slot->generation != generation) return;
    }
    std::optional<std::shared_ptr<InFlight>> entry = queue_.pop();
    if (!entry) return;
    serve_counters().queue_depth.set(static_cast<double>(queue_.size()));
    bool tracked = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (slot->generation == generation) {
        slot->busy = true;
        slot->busy_since = now();
        slot->current = *entry;
        tracked = true;
      }
      // Detached between pop and here: still dispatch (the queue may
      // already be closed, so requeueing is not an option) but leave the
      // replacement's slot state alone.
    }
    dispatch(*entry);
    if (tracked) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (slot->generation == generation) {
        slot->busy = false;
        slot->current.reset();
      }
    }
  }
}

std::size_t PlannerService::check_workers() {
  if (!std::isfinite(options_.worker_stall_seconds)) return 0;
  ServeCounters& counters = serve_counters();
  const double t = now();
  struct LostBatch {
    std::vector<Waiter> waiters;
    double busy_since = 0.0;
  };
  std::vector<LostBatch> lost;
  std::size_t restarted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return 0;
    for (std::unique_ptr<WorkerSlot>& slot_ptr : slots_) {
      WorkerSlot& slot = *slot_ptr;
      if (!slot.busy ||
          t - slot.busy_since < options_.worker_stall_seconds)
        continue;

      // Take the wedged dispatch's waiters while holding the mutex: when
      // (if) the detached thread's plan finally resolves, it finds an
      // empty waiter list and an inflight_ slot that is no longer its
      // own, and exits at its next generation check.
      std::shared_ptr<InFlight> entry = std::move(slot.current);
      LostBatch batch;
      batch.busy_since = slot.busy_since;
      if (entry) {
        unregister_inflight_locked(entry);
        batch.waiters = std::move(entry->waiters);
        entry->waiters.clear();
      }
      stats_.admitted += batch.waiters.size();
      stats_.worker_lost += batch.waiters.size();
      ++stats_.worker_restarts;
      counters.admitted.add(batch.waiters.size());
      counters.worker_lost.add(batch.waiters.size());
      counters.worker_restarts.add(1);
      lost.push_back(std::move(batch));

      // Fence the wedged thread out, retire its handle for stop() to
      // join, and respawn capacity under the new generation.
      const std::uint64_t next_generation = ++slot.generation;
      slot.busy = false;
      slot.busy_since = 0.0;
      retired_.push_back(std::move(slot.thread));
      WorkerSlot* slot_raw = &slot;
      slot.thread = std::thread([this, slot_raw, next_generation] {
        worker_loop(slot_raw, next_generation);
      });
      ++restarted;
    }
  }
  for (LostBatch& batch : lost) {
    for (Waiter& waiter : batch.waiters) {
      ServeOutcome outcome;
      outcome.status = ServeStatus::kWorkerLost;
      outcome.error =
          "worker exceeded worker_stall_seconds mid-dispatch and was "
          "detached";
      outcome.queue_seconds = batch.busy_since - waiter.submitted_at;
      resolve(waiter, std::move(outcome), t - waiter.submitted_at);
    }
  }
  return restarted;
}

std::size_t PlannerService::busy_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t busy = 0;
  for (const std::unique_ptr<WorkerSlot>& slot : slots_)
    if (slot->busy) ++busy;
  return busy;
}

void PlannerService::unregister_inflight_locked(
    const std::shared_ptr<InFlight>& entry) {
  if (!entry->coalescible) return;
  const auto it = inflight_.find(entry->key);
  if (it != inflight_.end() && it->second == entry) inflight_.erase(it);
}

void PlannerService::note_dispatch_outcome_locked(
    const std::shared_ptr<InFlight>& entry, bool strike, double end) {
  ServeCounters& counters = serve_counters();
  if (!strike) {
    const auto it = poison_.find(entry->key);
    if (it == poison_.end()) return;
    if (it->second.quarantined) {
      // A successful probe: the identity healed. Clearing the entry is
      // the recovery the chaos soak's convergence assertion counts.
      --quarantine_active_;
      counters.quarantine_active.set(static_cast<double>(quarantine_active_));
      ++stats_.quarantine_recoveries;
      counters.quarantine_recoveries.add(1);
    }
    poison_.erase(it);
    return;
  }

  PoisonEntry& poison = poison_[entry->key];
  if (poison.quarantined) {
    // The expired entry admitted this dispatch as a probe and the probe
    // struck out: re-quarantine at the next (longer) backoff rung.
    ++poison.episodes;
  } else {
    ++poison.strikes;
    if (poison.strikes < options_.quarantine.strike_threshold) return;
    poison.quarantined = true;
    poison.strikes = 0;
    ++poison.episodes;
    ++quarantine_active_;
    counters.quarantine_active.set(static_cast<double>(quarantine_active_));
  }
  ++stats_.quarantine_entries;
  counters.quarantine_entries.add(1);
  util::BackoffPolicy expiry;
  expiry.initial_seconds = options_.quarantine.base_seconds;
  expiry.multiplier = options_.quarantine.multiplier;
  expiry.max_seconds = options_.quarantine.max_seconds;
  expiry.jitter_fraction = options_.quarantine.jitter_fraction;
  // Per-identity seeding keeps distinct poisonous queries from expiring
  // in lockstep while staying bit-identical per (seed, identity, rung).
  poison.until =
      end + util::backoff_delay(
                expiry, poison.episodes,
                options_.quarantine.seed ^
                    static_cast<std::uint64_t>(CoalesceKeyHash{}(entry->key)));
}

void PlannerService::stop(StopMode mode) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  if (mode == StopMode::kAbort) {
    ServeCounters& counters = serve_counters();
    const double stop_now = now();
    std::vector<std::shared_ptr<InFlight>> pending = queue_.close_and_drain();
    std::vector<Waiter> orphans;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const std::shared_ptr<InFlight>& entry : pending) {
        unregister_inflight_locked(entry);
        for (Waiter& waiter : entry->waiters)
          orphans.push_back(std::move(waiter));
        entry->waiters.clear();
      }
      stats_.shed += orphans.size();
      stats_.shed_shutdown += orphans.size();
    }
    counters.shed.add(orphans.size());
    counters.shed_shutdown.add(orphans.size());
    for (Waiter& waiter : orphans) {
      ServeOutcome outcome;
      outcome.status = ServeStatus::kOverloaded;
      outcome.shed_reason = ShedReason::kShutdown;
      outcome.queue_seconds = stop_now - waiter.submitted_at;
      resolve(waiter, std::move(outcome), stop_now - waiter.submitted_at);
    }
  } else {
    queue_.close();
    // Caller-driven mode has no workers: drain the backlog right here so
    // kDrain keeps its promise that admitted requests get answers.
    if (slots_.empty()) {
      while (drain_one()) {
      }
    }
  }
  // End-to-end shutdown: join current workers AND every supervisor-
  // detached thread. A detached thread may still be mid-plan; it resolves
  // nothing (its waiters were taken) but must not outlive the service it
  // dereferences. Callers injecting stalls must unwedge them first.
  for (std::unique_ptr<WorkerSlot>& slot : slots_)
    if (slot->thread.joinable()) slot->thread.join();
  for (std::thread& thread : retired_)
    if (thread.joinable()) thread.join();
  retired_.clear();
  serve_counters().queue_depth.set(static_cast<double>(queue_.size()));
}

ServeStats PlannerService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace celia::serve
