// Unit tests for the model-analysis helpers (core/analysis.hpp), using a
// synthetic CELIA model so expectations are computable by hand.

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/serialize.hpp"

namespace {

using namespace celia::core;
using celia::apps::AppParams;

/// A hand-built model: demand D(n, a) = n * a * 1e9 instructions, uniform
/// per-vCPU rates, the standard EC2 space.
Celia synthetic_celia() {
  // Fit from an exactly bilinear grid so predictions are exact.
  std::vector<celia::fit::ProfilePoint> grid;
  for (double n : {1, 2, 3, 4, 5})
    for (double a : {1, 2, 3, 4, 5}) grid.push_back({n, a, n * a * 1e9});
  auto demand = celia::fit::SeparableDemandModel::fit(grid);
  return Celia("synthetic", celia::hw::WorkloadClass::kNBody,
               std::move(demand),
               ResourceCapacity(std::vector<double>(9, 1e9), celia::cloud::Catalog::ec2_table3()),
               ConfigurationSpace::ec2_default());
}

TEST(Analysis, SyntheticDemandIsExact) {
  const Celia celia = synthetic_celia();
  EXPECT_NEAR(celia.predict_demand({7, 11}), 77e9, 77e9 * 1e-9);
}

TEST(Analysis, ProblemSizeScalingTracksDemand) {
  const Celia celia = synthetic_celia();
  const std::vector<double> sizes = {10, 20, 40};
  const auto curve = problem_size_scaling(celia, 100.0, sizes, 1000.0);
  ASSERT_EQ(curve.size(), 3u);
  for (const auto& point : curve) ASSERT_TRUE(point.feasible);
  // Linear demand in n: min cost doubles with n (fluid model, ample
  // deadline so the cheapest type mix stays the same).
  EXPECT_NEAR(curve[1].min_cost / curve[0].min_cost, 2.0, 0.02);
  EXPECT_NEAR(curve[2].min_cost / curve[1].min_cost, 2.0, 0.02);
  EXPECT_EQ(curve[0].value, 10.0);
}

TEST(Analysis, AccuracyScalingTracksDemand) {
  const Celia celia = synthetic_celia();
  const std::vector<double> accuracies = {5, 10};
  const auto curve = accuracy_scaling(celia, 50.0, accuracies, 1000.0);
  ASSERT_TRUE(curve[0].feasible && curve[1].feasible);
  EXPECT_NEAR(curve[1].min_cost / curve[0].min_cost, 2.0, 0.02);
}

TEST(Analysis, DeadlineTighteningMonotone) {
  const Celia celia = synthetic_celia();
  const std::vector<double> deadlines = {100.0, 10.0, 1.0};
  const auto curve = deadline_tightening(celia, {100, 100}, deadlines);
  ASSERT_EQ(curve.size(), 3u);
  double previous = 0.0;
  for (const auto& point : curve) {
    if (!point.feasible) continue;
    EXPECT_GE(point.min_cost, previous - 1e-9);
    previous = point.min_cost;
  }
}

TEST(Analysis, InfeasiblePointHasDefaults) {
  const Celia celia = synthetic_celia();
  // 1 second deadline for ~1e13 instructions on <= 2.7e11 instr/s: hopeless.
  const std::vector<double> sizes = {100};
  const auto curve = problem_size_scaling(celia, 100, sizes, 1.0 / 3600.0);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_FALSE(curve[0].feasible);
  EXPECT_EQ(curve[0].min_cost, 0.0);
}

TEST(Analysis, ParetoSpanOfSingleton) {
  const std::vector<CostTimePoint> frontier = {{0, 10, 50}};
  const ParetoSpan span = pareto_span(frontier);
  EXPECT_DOUBLE_EQ(span.min_cost, 50.0);
  EXPECT_DOUBLE_EQ(span.max_cost, 50.0);
  EXPECT_DOUBLE_EQ(span.span_ratio, 1.0);
  EXPECT_DOUBLE_EQ(span.saving_fraction, 0.0);
}

TEST(Analysis, ParetoSpanOfEmptyThrows) {
  EXPECT_THROW(pareto_span({}), std::invalid_argument);
}

TEST(Analysis, ParetoSpanComputesRatioAndSaving) {
  const std::vector<CostTimePoint> frontier = {
      {0, 20, 100}, {1, 10, 120}, {2, 5, 130}};
  const ParetoSpan span = pareto_span(frontier);
  EXPECT_DOUBLE_EQ(span.min_cost, 100.0);
  EXPECT_DOUBLE_EQ(span.max_cost, 130.0);
  EXPECT_DOUBLE_EQ(span.span_ratio, 1.3);
  EXPECT_NEAR(span.saving_fraction, 1.0 - 100.0 / 130.0, 1e-12);
}

TEST(Analysis, SyntheticModelSurvivesSerialization) {
  const Celia celia = synthetic_celia();
  const Celia loaded = model_from_string(model_to_string(celia));
  EXPECT_DOUBLE_EQ(loaded.predict_demand({3, 4}),
                   celia.predict_demand({3, 4}));
}

}  // namespace
