// Tests for the baseline searchers (core/baselines.hpp) against CELIA's
// exhaustive guarantee.

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/time_cost.hpp"

namespace {

using namespace celia::core;

ResourceCapacity paper_like_capacity() {
  // Per-vCPU rates shaped like the galaxy characterization (c4 best $/instr).
  std::vector<double> per_vcpu = {1.38e9, 1.38e9, 1.38e9, 1.31e9, 1.31e9,
                                  1.31e9, 1.09e9, 1.09e9, 1.09e9};
  return ResourceCapacity(per_vcpu, celia::cloud::Catalog::ec2_table3());
}

Constraints day_constraints() {
  Constraints constraints;
  constraints.deadline_seconds = 24 * 3600.0;
  constraints.budget_dollars = 350.0;
  return constraints;
}

TEST(Baselines, EvaluateConfigurationAgreesWithPredict) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const Configuration config = {5, 5, 5, 3, 0, 0, 0, 0, 0};
  const auto point = evaluate_configuration(space, capacity, 9e15,
                                            day_constraints(), config);
  ASSERT_TRUE(point.has_value());
  const Prediction p = predict(9e15, config, capacity);
  EXPECT_DOUBLE_EQ(point->seconds, p.seconds);
  EXPECT_DOUBLE_EQ(point->cost, p.cost);
  EXPECT_EQ(point->config_index, space.encode(config));
}

TEST(Baselines, EvaluateRejectsInfeasible) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  Constraints tight;
  tight.deadline_seconds = 1.0;
  const Configuration config = {1, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(evaluate_configuration(space, capacity, 9e15, tight, config)
                   .has_value());
}

TEST(Baselines, ExhaustiveFindsOptimum) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const auto outcome =
      exhaustive_search(space, capacity, 9e15, day_constraints());
  EXPECT_TRUE(outcome.found);
  EXPECT_EQ(outcome.evaluations, space.size());
}

TEST(Baselines, HeuristicsNeverBeatExhaustive) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const double demand = 9e15;
  const auto constraints = day_constraints();
  const auto optimal = exhaustive_search(space, capacity, demand, constraints);
  ASSERT_TRUE(optimal.found);

  const auto greedy = greedy_cost_search(space, capacity, demand, constraints);
  const auto random =
      random_search(space, capacity, demand, constraints, 5000, 1);
  const auto hill =
      hill_climb_search(space, capacity, demand, constraints, 3, 2);
  for (const auto* outcome : {&greedy, &random, &hill}) {
    if (outcome->found) {
      EXPECT_GE(outcome->best.cost, optimal.best.cost - 1e-9);
    }
  }
}

TEST(Baselines, GreedyFindsFeasibleWhenOneExists) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const auto outcome =
      greedy_cost_search(space, capacity, 9e15, day_constraints());
  EXPECT_TRUE(outcome.found);
  // Greedy fills the best capacity-per-dollar category (c4) first, so its
  // answer uses only c4 nodes when c4 alone meets the deadline.
  EXPECT_LT(outcome.evaluations, 50u);
}

TEST(Baselines, GreedyFailsGracefullyWhenNothingFeasible) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  Constraints impossible;
  impossible.deadline_seconds = 1e-9;
  const auto outcome =
      greedy_cost_search(space, capacity, 9e15, impossible);
  EXPECT_FALSE(outcome.found);
}

TEST(Baselines, RandomSearchIsSeedDeterministic) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const auto a =
      random_search(space, capacity, 9e15, day_constraints(), 2000, 7);
  const auto b =
      random_search(space, capacity, 9e15, day_constraints(), 2000, 7);
  EXPECT_EQ(a.found, b.found);
  if (a.found) {
    EXPECT_EQ(a.best.config_index, b.best.config_index);
  }
}

TEST(Baselines, RandomSearchRespectsEvaluationBudget) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const auto outcome =
      random_search(space, capacity, 9e15, day_constraints(), 123, 3);
  EXPECT_EQ(outcome.evaluations, 123u);
}

TEST(Baselines, HillClimbImprovesOnGreedyOrMatches) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const double demand = 2.0e16;  // forces spilling beyond one category
  const auto constraints = day_constraints();
  const auto greedy = greedy_cost_search(space, capacity, demand, constraints);
  const auto hill =
      hill_climb_search(space, capacity, demand, constraints, 1, 5);
  ASSERT_TRUE(greedy.found);
  ASSERT_TRUE(hill.found);
  EXPECT_LE(hill.best.cost, greedy.best.cost + 1e-9);
}

TEST(Baselines, HillClimbNearOptimalOnPaperScale) {
  const auto space = ConfigurationSpace::ec2_default();
  const auto capacity = paper_like_capacity();
  const double demand = 9e15;
  const auto constraints = day_constraints();
  const auto optimal = exhaustive_search(space, capacity, demand, constraints);
  const auto hill =
      hill_climb_search(space, capacity, demand, constraints, 5, 11);
  ASSERT_TRUE(hill.found);
  EXPECT_LT(hill.best.cost / optimal.best.cost, 1.05);
  EXPECT_LT(hill.evaluations, space.size() / 100);
}

}  // namespace
