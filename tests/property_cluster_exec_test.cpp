// Property-style parameterized sweeps over the cluster executor: timing
// bounds that must hold for every configuration and every application
// pattern.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "apps/registry.hpp"
#include "cloud/cluster_exec.hpp"
#include "cloud/provider.hpp"
#include "core/configuration.hpp"

namespace {

using namespace celia::cloud;

struct ExecCase {
  const char* app;          // "x264" | "galaxy" | "sand" (mini variants)
  std::vector<int> config;
  std::uint64_t seed;
};

std::unique_ptr<celia::apps::ElasticApp> make_for(const std::string& name) {
  if (name == "x264") return celia::apps::make_x264_mini();
  if (name == "galaxy") return celia::apps::make_galaxy();
  return celia::apps::make_sand_mini();
}

celia::apps::AppParams params_for(const std::string& name) {
  if (name == "x264") return {40, 20};
  if (name == "galaxy") return {512, 20};
  return {400, 0.32};
}

class ClusterExecProperties : public ::testing::TestWithParam<ExecCase> {};

TEST_P(ClusterExecProperties, ActualTimeBoundedByFluidEnvelope) {
  const ExecCase param = GetParam();
  const auto app = make_for(param.app);
  const auto params = params_for(param.app);
  const auto workload = app->make_workload(params);

  CloudProvider provider(param.seed);
  const auto instances = provider.provision(param.config);
  const ClusterExecutor executor;
  const auto report = executor.execute(workload, instances, param.config);

  // Lower bound: perfect-fluid time at the fleet's ACTUAL aggregate rate.
  double actual_rate = 0.0;
  double slowest_factor = 1e9, fastest_factor = 0.0;
  for (const auto& instance : instances) {
    actual_rate += instance.actual_rate(workload.workload_class);
    slowest_factor = std::min(slowest_factor, instance.speed_factor);
    fastest_factor = std::max(fastest_factor, instance.speed_factor);
  }
  const double fluid = workload.total_instructions / actual_rate;
  EXPECT_GE(report.seconds, fluid * 0.999)
      << param.app << " " << celia::core::to_string(param.config);

  // Generous upper bound: everything serialized on the slowest vCPU plus
  // all dispatch/serial overheads.
  double slowest_slot_rate = 1e18;
  for (const auto& instance : instances) {
    slowest_slot_rate =
        std::min(slowest_slot_rate,
                 instance.actual_rate(workload.workload_class) /
                     instance.type().vcpus);
  }
  const double serial_everything =
      workload.total_instructions / slowest_slot_rate +
      workload.dispatch_seconds_per_task *
          static_cast<double>(workload.task_instructions.size()) +
      1000.0;  // sync slack
  EXPECT_LE(report.seconds, serial_everything)
      << param.app << " " << celia::core::to_string(param.config);

  EXPECT_GT(report.cost, 0.0);
  EXPECT_LE(report.busy_fraction, 1.0 + 1e-9);
}

TEST_P(ClusterExecProperties, MoreNodesNeverSlower) {
  const ExecCase param = GetParam();
  const auto app = make_for(param.app);
  const auto params = params_for(param.app);
  const auto workload = app->make_workload(params);

  // Same fleet plus one extra c4.2xlarge must not increase the makespan
  // (same seed => the original instances draw identical factors).
  std::vector<int> bigger = param.config;
  if (bigger[2] < celia::cloud::kDefaultInstanceLimit) ++bigger[2];
  else return;  // nothing to grow

  CloudProvider provider_a(param.seed), provider_b(param.seed);
  const ClusterExecutor executor;
  const auto small = executor.execute(
      workload, provider_a.provision(param.config), param.config);
  const auto large =
      executor.execute(workload, provider_b.provision(bigger), bigger);
  EXPECT_LE(large.seconds, small.seconds * 1.001)
      << param.app << " " << celia::core::to_string(param.config);
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndConfigs, ClusterExecProperties,
    ::testing::Values(
        ExecCase{"x264", {1, 0, 0, 0, 0, 0, 0, 0, 0}, 1},
        ExecCase{"x264", {2, 1, 0, 0, 1, 0, 0, 0, 1}, 2},
        ExecCase{"x264", {0, 0, 0, 0, 0, 0, 0, 0, 3}, 3},
        ExecCase{"galaxy", {1, 0, 0, 0, 0, 0, 0, 0, 0}, 4},
        ExecCase{"galaxy", {2, 2, 2, 2, 2, 2, 2, 2, 2}, 5},
        ExecCase{"galaxy", {0, 0, 5, 0, 0, 5, 0, 0, 0}, 6},
        ExecCase{"sand", {1, 0, 0, 0, 0, 0, 0, 0, 0}, 7},
        ExecCase{"sand", {3, 0, 1, 0, 2, 0, 1, 0, 0}, 8},
        ExecCase{"sand", {0, 0, 0, 5, 0, 0, 0, 0, 0}, 9}));

}  // namespace
