#include "core/risk.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

#include "cloud/catalog.hpp"
#include "parallel/parallel_for.hpp"
#include "util/stats.hpp"

namespace celia::core {

std::string_view risk_model_name(RiskModel model) {
  switch (model) {
    case RiskModel::kNone:
      return "deterministic";
    case RiskModel::kSumCapacity:
      return "sum-capacity";
    case RiskModel::kBottleneck:
      return "bottleneck";
  }
  return "?";
}

std::optional<CostTimePoint> robust_min_cost(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    double demand, double deadline_seconds, const RiskSpec& spec,
    parallel::ThreadPool* pool) {
  return robust_min_cost(space, capacity, cloud::Catalog::ec2_table3(),
                         demand, deadline_seconds, spec, pool);
}

std::optional<CostTimePoint> robust_min_cost(
    const ConfigurationSpace& space, const ResourceCapacity& capacity,
    const cloud::Catalog& catalog, double demand, double deadline_seconds,
    const RiskSpec& spec, parallel::ThreadPool* pool) {
  if (demand <= 0)
    throw std::invalid_argument("robust_min_cost: non-positive demand");
  if (spec.model != RiskModel::kNone &&
      (!(spec.confidence > 0 && spec.confidence < 1) || spec.sigma <= 0 ||
       spec.median_factor <= 0))
    throw std::invalid_argument("robust_min_cost: bad risk spec");
  if (space.num_types() != capacity.num_types() ||
      space.num_types() != catalog.size())
    throw std::invalid_argument("robust_min_cost: width mismatch");
  if (!capacity.compatible_with(catalog))
    throw std::invalid_argument(
        "robust_min_cost: capacity was characterized against a structurally "
        "different catalog than '" + catalog.name() + "'");

  const std::size_t m = space.num_types();
  const std::span<const double> catalog_hourly = catalog.hourly_costs();
  std::vector<double> rates(m), hourly(m), var_terms(m);
  for (std::size_t i = 0; i < m; ++i) {
    rates[i] = capacity.rate(i);
    hourly[i] = catalog_hourly[i];
    const double term = rates[i] * spec.sigma;
    var_terms[i] = term * term;
  }

  const double z = spec.model == RiskModel::kSumCapacity
                       ? util::normal_quantile(spec.confidence)
                       : 0.0;
  const double ln_confidence = std::log(spec.confidence);
  const double ln_median = std::log(spec.median_factor);

  std::mutex merge_mutex;
  std::optional<CostTimePoint> best;

  parallel::ForOptions for_options;
  for_options.pool = pool;
  parallel::parallel_for_blocked(
      0, space.size(),
      [&](parallel::BlockedRange range) {
        if (range.empty()) return;
        // Suffix-sum walk mirroring detail::walk_range's arithmetic
        // exactly, so kNone reproduces sweep()'s doubles bit for bit; the
        // extra `instances` channel (exact integer) feeds kBottleneck.
        const auto& max_counts = space.max_counts();
        std::vector<int> digits(m);
        space.decode_into(range.begin, digits);
        const double rate0 = rates[0];
        const double hourly0 = hourly[0];
        const double var0 = var_terms[0];
        const std::uint64_t row_radix =
            static_cast<std::uint64_t>(max_counts[0]) + 1;

        std::optional<CostTimePoint> local;
        const auto consider = [&](std::uint64_t index, double u, double cu,
                                  double v, int instances) {
          if (u <= 0) return;
          bool feasible = false;
          switch (spec.model) {
            case RiskModel::kNone:
              feasible = demand / u < deadline_seconds;
              break;
            case RiskModel::kSumCapacity: {
              const double u_eff = spec.median_factor * (u - z * std::sqrt(v));
              feasible = u_eff > 0 && demand / u_eff < deadline_seconds;
              break;
            }
            case RiskModel::kBottleneck: {
              // Need min over `instances` lognormal factors >= x.
              const double x = demand / (u * deadline_seconds);
              if (x <= 0) {
                feasible = true;
              } else {
                const double tail = 1.0 - util::normal_cdf(
                                              (std::log(x) - ln_median) /
                                              spec.sigma);
                feasible =
                    tail > 0 && instances * std::log(tail) >= ln_confidence;
              }
              break;
            }
          }
          if (feasible) {
            const double seconds = demand / u;  // deterministic quote
            const double cost = seconds / 3600.0 * cu;
            if (!local || cost < local->cost ||
                (cost == local->cost && seconds < local->seconds)) {
              local = CostTimePoint{index, seconds, cost};
            }
          }
        };

        std::vector<double> su(m + 1, 0.0), scu(m + 1, 0.0), sv(m + 1, 0.0);
        std::vector<int> si(m + 1, 0);
        for (std::size_t i = m; i-- > 1;) {
          su[i] = su[i + 1] + digits[i] * rates[i];
          scu[i] = scu[i + 1] + digits[i] * hourly[i];
          sv[i] = sv[i + 1] + digits[i] * var_terms[i];
          si[i] = si[i + 1] + digits[i];
        }

        std::uint64_t index = range.begin;
        for (;;) {
          double u = su[1], cu = scu[1], v = sv[1];
          int instances = si[1];
          const auto k_begin = static_cast<std::uint64_t>(digits[0]);
          for (std::uint64_t k = 0; k < k_begin; ++k) {
            u += rate0;
            cu += hourly0;
            v += var0;
            ++instances;
          }
          const std::uint64_t steps =
              std::min<std::uint64_t>(row_radix - k_begin, range.end - index);
          for (std::uint64_t j = 0; j < steps; ++j) {
            consider(index + j, u, cu, v, instances);
            u += rate0;
            cu += hourly0;
            v += var0;
            ++instances;
          }
          index += steps;
          if (index >= range.end) break;
          digits[0] = 0;
          std::size_t i = 1;
          for (; i < m; ++i) {
            if (digits[i] < max_counts[i]) {
              ++digits[i];
              break;
            }
            digits[i] = 0;
          }
          su[i] = su[i + 1] + digits[i] * rates[i];
          scu[i] = scu[i + 1] + digits[i] * hourly[i];
          sv[i] = sv[i + 1] + digits[i] * var_terms[i];
          si[i] = si[i + 1] + digits[i];
          for (std::size_t t = i; t-- > 1;) {
            su[t] = su[t + 1];
            scu[t] = scu[t + 1];
            sv[t] = sv[t + 1];
            si[t] = si[t + 1];
          }
        }

        if (local) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          if (!best || local->cost < best->cost ||
              (local->cost == best->cost && local->seconds < best->seconds))
            best = local;
        }
      },
      for_options);
  return best;
}

}  // namespace celia::core
