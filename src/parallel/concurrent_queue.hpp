#pragma once
// Bounded multi-producer multi-consumer queue with blocking push/pop and a
// close() protocol. Used by the SAND master-worker simulator's work queue
// and available as a general building block.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace celia::parallel {

template <typename T>
class ConcurrentQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit ConcurrentQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_))
        return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// After close(), pushes fail and pops drain the remaining items.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace celia::parallel
