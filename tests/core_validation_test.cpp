// Tests for model validation (paper §IV-D, Table IV): CELIA predictions vs
// simulated-cloud measurements must land within the paper's error band.

#include <gtest/gtest.h>

#include "core/validation.hpp"

namespace {

using namespace celia::core;
using celia::cloud::CloudProvider;

const std::vector<ValidationRow>& table4() {
  static const std::vector<ValidationRow> rows = [] {
    CloudProvider provider(2017);
    return run_table4_validation(provider);
  }();
  return rows;
}

TEST(Validation, NineCasesThreePerApp) {
  ASSERT_EQ(table4().size(), 9u);
  int x264 = 0, galaxy = 0, sand = 0;
  for (const auto& row : table4()) {
    if (row.app == "x264") ++x264;
    if (row.app == "galaxy") ++galaxy;
    if (row.app == "sand") ++sand;
  }
  EXPECT_EQ(x264, 3);
  EXPECT_EQ(galaxy, 3);
  EXPECT_EQ(sand, 3);
}

TEST(Validation, AllQuantitiesPositive) {
  for (const auto& row : table4()) {
    EXPECT_GT(row.predicted_hours, 0.0) << row.app;
    EXPECT_GT(row.actual_hours, 0.0) << row.app;
    EXPECT_GT(row.predicted_cost, 0.0) << row.app;
    EXPECT_GT(row.actual_cost, 0.0) << row.app;
  }
}

TEST(Validation, ErrorsWithinPaperBand) {
  // Paper: "the prediction error of our models is less than 17%".
  for (const auto& row : table4()) {
    EXPECT_LT(row.time_error, 0.20)
        << row.app << "(" << row.params.n << ", " << row.params.a << ")";
    EXPECT_LT(row.cost_error, 0.20)
        << row.app << "(" << row.params.n << ", " << row.params.a << ")";
  }
}

TEST(Validation, GalaxyTableIvScale) {
  // galaxy(65536, 8000) on [5,5,5,3,...] runs about a day (paper: 24h
  // predicted, 22h actual).
  for (const auto& row : table4()) {
    if (row.app == "galaxy" && row.params.a == 8000) {
      EXPECT_NEAR(row.predicted_hours, 24.0, 5.0);
      EXPECT_NEAR(row.actual_hours, 24.0, 6.0);
    }
  }
}

TEST(Validation, CostErrorTracksTimeError) {
  // Under continuous billing cost = time x fixed hourly rate, so the two
  // relative errors must coincide.
  for (const auto& row : table4())
    EXPECT_NEAR(row.time_error, row.cost_error, 1e-9);
}

TEST(Validation, CommunicationPatternsRankErrors) {
  // Paper ordering: x264 (no inter-node communication) has the smallest
  // max error; sand (master-worker dispatch) the largest. Compare the
  // mean error per app.
  double sum_x264 = 0, sum_sand = 0;
  for (const auto& row : table4()) {
    if (row.app == "x264") sum_x264 += row.time_error;
    if (row.app == "sand") sum_sand += row.time_error;
  }
  EXPECT_LT(sum_x264, sum_sand);
}

TEST(Validation, DeterministicForFixedSeed) {
  CloudProvider provider(2017);
  const auto again = run_table4_validation(provider);
  ASSERT_EQ(again.size(), table4().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].predicted_hours, table4()[i].predicted_hours);
    EXPECT_DOUBLE_EQ(again[i].actual_hours, table4()[i].actual_hours);
  }
}

TEST(Validation, PerCategoryCharacterizationStaysInBand) {
  // The §IV-C optimization (profile one type per category) must not blow
  // up validation error.
  CloudProvider provider(2017);
  const auto rows =
      run_table4_validation(provider, CharacterizationMode::kPerCategory);
  for (const auto& row : rows) EXPECT_LT(row.time_error, 0.25) << row.app;
}

}  // namespace
